"""Tests for PTX register-fragment layouts (repro.gpusim.fragments)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.fragments import (
    FASTED_SHAPE,
    SUPPORTED_SHAPES,
    WARP_SIZE,
    a_fragment_owner,
    b_fragment_owner,
    c_fragment_owner,
    gather_a,
    gather_b,
    gather_c,
    scatter_a,
    scatter_b,
    scatter_c,
)


class TestTable1:
    def test_six_shapes(self):
        assert len(SUPPORTED_SHAPES) == 6

    def test_fasted_uses_16x8x16_ptx_only(self):
        assert (FASTED_SHAPE.m, FASTED_SHAPE.n, FASTED_SHAPE.k) == (16, 8, 16)
        assert FASTED_SHAPE.ptx_mma and not FASTED_SHAPE.wmma_api

    def test_wmma_shapes_match_paper(self):
        wmma = {(s.m, s.n, s.k) for s in SUPPORTED_SHAPES if s.wmma_api}
        assert wmma == {(16, 16, 16), (32, 8, 16), (8, 32, 16)}

    def test_ptx_shapes_match_paper(self):
        ptx = {(s.m, s.n, s.k) for s in SUPPORTED_SHAPES if s.ptx_mma}
        assert ptx == {(8, 8, 4), (16, 8, 8), (16, 8, 16)}

    def test_labels(self):
        assert SUPPORTED_SHAPES[0].label == "16x16x16"


class TestOwnership:
    def test_a_ownership_is_bijective(self):
        rows, cols = np.meshgrid(np.arange(16), np.arange(16), indexing="ij")
        lane, half = a_fragment_owner(rows, cols)
        assert lane.min() >= 0 and lane.max() < WARP_SIZE
        slots = set(zip(lane.ravel().tolist(), half.ravel().tolist()))
        assert len(slots) == 256  # every (lane, halfword) used exactly once

    def test_b_ownership_is_bijective(self):
        rows, cols = np.meshgrid(np.arange(16), np.arange(8), indexing="ij")
        lane, half = b_fragment_owner(rows, cols)
        slots = set(zip(lane.ravel().tolist(), half.ravel().tolist()))
        assert len(slots) == 128

    def test_c_ownership_is_bijective(self):
        rows, cols = np.meshgrid(np.arange(16), np.arange(8), indexing="ij")
        lane, reg = c_fragment_owner(rows, cols)
        slots = set(zip(lane.ravel().tolist(), reg.ravel().tolist()))
        assert len(slots) == 128

    def test_a_lane_groups(self):
        # PTX: lane group (lane // 4) owns rows (group, group + 8).
        lane, _ = a_fragment_owner(np.array([3]), np.array([0]))
        assert lane[0] // 4 == 3
        lane, _ = a_fragment_owner(np.array([11]), np.array([0]))
        assert lane[0] // 4 == 3  # row 11 = 3 + 8 shares the group


class TestScatterGather:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_a_roundtrip(self, seed):
        m = np.random.default_rng(seed).normal(size=(16, 16)).astype(np.float16)
        assert np.array_equal(gather_a(scatter_a(m)), m)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_b_roundtrip(self, seed):
        m = np.random.default_rng(seed).normal(size=(16, 8)).astype(np.float16)
        assert np.array_equal(gather_b(scatter_b(m)), m)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_c_roundtrip(self, seed):
        m = np.random.default_rng(seed).normal(size=(16, 8)).astype(np.float32)
        assert np.array_equal(gather_c(scatter_c(m)), m)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            scatter_a(np.zeros((8, 16)))
        with pytest.raises(ValueError):
            gather_a(np.zeros((16, 8)))
        with pytest.raises(ValueError):
            scatter_b(np.zeros((8, 16)))
        with pytest.raises(ValueError):
            scatter_c(np.zeros((8, 8)))

    def test_register_counts_match_ptx(self):
        """A: 4 regs (8 halves); B: 2 regs (4 halves); C/D: 4 FP32 regs."""
        assert scatter_a(np.zeros((16, 16))).shape == (32, 8)
        assert scatter_b(np.zeros((16, 8))).shape == (32, 4)
        assert scatter_c(np.zeros((16, 8))).shape == (32, 4)
