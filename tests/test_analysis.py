"""Tests for analysis tables and experiment drivers (repro.analysis)."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    PAPER_TABLE5,
    run_fig8,
    run_fig9,
    run_real_dataset,
    run_table5,
    run_table6,
)
from repro.analysis.tables import (
    ascii_histogram,
    format_heatmap,
    format_table,
    implementation_matrix,
    implementation_table,
    mma_shape_table,
    optimized_parameters_table,
)


class TestTableRendering:
    def test_format_table_alignment(self):
        out = format_table(("a", "bb"), [("1", "2"), ("333", "4")], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) <= 2  # consistent column widths

    def test_format_heatmap(self):
        m = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = format_heatmap(m, ["r0", "r1"], ["c0", "c1"], corner="x")
        assert "r0" in out and "c1" in out and "4" in out

    def test_ascii_histogram_rebins(self):
        counts = np.ones(100)
        edges = np.linspace(-1, 1, 101)
        out = ascii_histogram(counts, edges, max_rows=10)
        assert len(out.splitlines()) <= 11

    def test_static_tables_content(self):
        assert "16x8x16 (Used by FaSTED)" in mma_shape_table()
        assert "128x128x64" in optimized_parameters_table()
        assert "MiSTIC" in implementation_table()
        assert len(implementation_matrix()) == 5


class TestModelDrivenExperiments:
    def test_fig8_small_grid(self):
        res = run_fig8(sizes=(1000, 100_000), dims=(64, 4096))
        assert res.tflops.shape == (2, 2)
        # More data and more dims are both faster per FLOP.
        assert res.tflops[1, 1] > res.tflops[0, 0]

    def test_table5_rows_complete(self):
        res = run_table5()
        assert {r.disabled for r in res.rows} == set(PAPER_TABLE5)
        assert all(r.tflops < res.baseline_tflops for r in res.rows)

    def test_fig9_series(self):
        res = run_fig9(dims=(64, 256, 4096))
        assert len(res.fasted_tflops) == 3
        assert res.tedjoin_tflops[0] is not None
        assert res.tedjoin_tflops[2] is None  # OOM at 4096

    def test_table6_reports(self):
        reports = run_table6(dims=(128, 4096))
        labels = [r.label for r in reports]
        assert labels == [
            "FaSTED d=128", "FaSTED d=4096", "TED-Join d=128", "TED-Join d=4096",
        ]
        assert reports[-1].oom


class TestRealDatasetDriver:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_real_dataset(
            "Sift10M",
            n=1200,
            selectivities=(16,),
            with_accuracy=True,
            with_error_stats=True,
        )

    def test_structure(self, outcome):
        assert outcome.dims == 128
        assert outcome.n_points == 1200
        assert list(outcome.eps_by_s) == [16]
        assert len(outcome.fig10_rows) == 1
        assert len(outcome.accuracy) == 1

    def test_methods_present(self, outcome):
        names = [o.name for o in outcome.fig10_rows[0].outcomes]
        assert names == ["FaSTED", "MiSTIC", "GDS-Join", "TED-Join-Index"]

    def test_speedups_defined(self, outcome):
        # n=1200 is far below the regime where FaSTED's fixed overheads
        # amortize, so we only require the tensor-core TED baseline to
        # lose here; the full-scale win is asserted in bench_fig10_sota.
        row = outcome.fig10_rows[0]
        for method in ("MiSTIC", "GDS-Join", "TED-Join-Index"):
            su = row.speedup_over(method)
            assert su is not None and su > 0.5, method
        assert row.speedup_over("TED-Join-Index") > 1.0

    def test_selectivity_near_target(self, outcome):
        res = outcome.fasted_results[16]
        assert 8 <= res.selectivity <= 28

    def test_accuracy_on_integer_data_exact(self, outcome):
        acc = outcome.accuracy[0]
        assert acc.overlap == 1.0
        assert acc.error_stats.mean == 0.0

    def test_speedup_over_unknown_method(self, outcome):
        assert outcome.fig10_rows[0].speedup_over("FAISS") is None
