"""Tests for the application utilities and the CLI."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import build_parser, main
from repro.core.api import self_join
from repro.core.applications import (
    epsilon_neighborhood_counts,
    knn_outlier_scores,
    knn_search,
    knn_self,
)


def _blobs(n=300, d=24, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 4, size=(5, d))
    return centers[rng.integers(0, 5, n)] + rng.normal(0, 0.4, size=(n, d))


class TestKnnSearch:
    def test_matches_bruteforce_fp64(self):
        data = _blobs(seed=1)
        queries = data[:20]
        idx, dist = knn_search(queries, data, 5, precision="fp64")
        d2 = ((queries[:, None, :] - data[None, :, :]) ** 2).sum(axis=2)
        # Compare distances (exact up to expansion rounding) and neighbor
        # sets; index *order* may differ at exact-tie boundaries.
        assert np.allclose(dist, np.sqrt(np.sort(d2, axis=1)[:, :5]), atol=1e-6)
        ref = np.argsort(d2, axis=1)[:, :5]
        agree = np.mean(
            [len(set(a) & set(b)) / 5 for a, b in zip(idx, ref)]
        )
        assert agree > 0.99

    def test_mixed_precision_agrees_on_indices(self):
        data = _blobs(seed=2)
        i64, _ = knn_search(data[:30], data, 8, precision="fp64")
        i16, _ = knn_search(data[:30], data, 8, precision="fp16-32")
        # Neighbor *sets* agree almost always; ordering may differ at ties.
        agree = np.mean(
            [len(set(a) & set(b)) / 8 for a, b in zip(i64, i16)]
        )
        assert agree > 0.97

    def test_distances_sorted(self):
        data = _blobs(seed=3)
        _, dist = knn_search(data[:10], data, 7)
        assert np.all(np.diff(dist, axis=1) >= -1e-9)

    def test_block_invariance(self):
        data = _blobs(seed=4)
        a = knn_search(data[:50], data, 4, block=7)[0]
        b = knn_search(data[:50], data, 4, block=1000)[0]
        assert np.array_equal(a, b)

    @given(st.integers(1, 10))
    @settings(max_examples=10, deadline=None)
    def test_k_shape_property(self, k):
        data = _blobs(60, 8, seed=5)
        idx, dist = knn_search(data[:9], data, k)
        assert idx.shape == (9, k) and dist.shape == (9, k)

    def test_k_validation(self):
        data = _blobs(20, 4, seed=6)
        with pytest.raises(ValueError):
            knn_search(data, data, 0)
        with pytest.raises(ValueError):
            knn_search(data, data, 21)


class TestKnnSelfAndOutliers:
    def test_self_excluded(self):
        data = _blobs(seed=7)
        idx, dist = knn_self(data, 3)
        for i in range(len(data)):
            assert i not in idx[i]
        assert np.all(dist > 0) or np.any(dist == 0)  # duplicates allowed

    def test_outlier_scores_flag_planted_outlier(self):
        data = _blobs(seed=8)
        data[0] = 100.0  # plant an extreme outlier
        scores = knn_outlier_scores(data, k=8)
        assert scores[0] == scores.max()
        assert scores[0] > 5 * np.median(scores)

    def test_outlier_scores_precision_agreement(self):
        data = _blobs(seed=9)
        s64 = knn_outlier_scores(data, k=8, precision="fp64")
        s16 = knn_outlier_scores(data, k=8, precision="fp16-32")
        # Rank correlation of the top decile must be strong.
        top64 = set(np.argsort(s64)[-30:])
        top16 = set(np.argsort(s16)[-30:])
        assert len(top64 & top16) >= 27

    def test_neighborhood_counts(self):
        data = _blobs(seed=10)
        res = self_join(data, 2.0, store_distances=False)
        counts = epsilon_neighborhood_counts(res)
        assert counts.min() >= 1  # every point counts itself
        assert counts.sum() == res.pairs_i.size + len(data)


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        for cmd in ("fig8", "table5", "fig9", "table6"):
            args = parser.parse_args([cmd])
            assert callable(args.fn)

    def test_model_commands_run(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "warp_tile" in out

    def test_fig9_output(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "OOM" in out  # TED-Join at high d

    def test_data_command_small(self, capsys):
        assert main(["accuracy", "--dataset", "Sift10M", "--n", "600"]) == 0
        out = capsys.readouterr().out
        assert "Overlap" in out

    def test_dataset_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig10", "--dataset", "MNIST"])
