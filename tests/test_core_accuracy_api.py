"""Tests for accuracy metrics, scaling and the public API (repro.core)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accuracy import distance_error_stats, overlap_accuracy
from repro.core.api import METHODS, pairwise_sq_dists, self_join
from repro.core.results import NeighborResult
from repro.core.scaling import Fp16Scaler, fit_scaler
from repro.fp.fp16 import FP16_MAX, dynamic_range_report


def _res(n, pairs, dists=None):
    ii = np.array([p[0] for p in pairs], dtype=np.int64)
    jj = np.array([p[1] for p in pairs], dtype=np.int64)
    sq = (
        np.asarray(dists, dtype=np.float32)
        if dists is not None
        else np.empty(0, np.float32)
    )
    return NeighborResult(n_points=n, eps=1.0, pairs_i=ii, pairs_j=jj, sq_dists=sq)


class TestOverlapAccuracy:
    def test_identical_sets_score_one(self):
        r = _res(6, [(0, 1), (1, 0), (2, 3), (3, 2)])
        assert overlap_accuracy(r, r) == 1.0

    def test_empty_sets_score_one(self):
        assert overlap_accuracy(_res(4, []), _res(4, [])) == 1.0

    def test_disjoint_sets(self):
        a = _res(4, [(0, 1), (1, 0)])
        b = _res(4, [(2, 3), (3, 2)])
        # Points 0-3 each have IoU 0; no point scores 1.
        assert overlap_accuracy(a, b) == 0.0

    def test_partial_overlap_known_value(self):
        a = _res(3, [(0, 1), (0, 2)])
        b = _res(3, [(0, 1)])
        # Point 0: |{1} ∩ {1,2}| / |{1,2}| = 0.5; points 1, 2 both empty->1.
        assert overlap_accuracy(a, b) == pytest.approx((0.5 + 1 + 1) / 3)

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            overlap_accuracy(_res(3, []), _res(4, []))

    @given(st.integers(2, 20), st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_bounds_and_symmetry(self, n, seed):
        rng = np.random.default_rng(seed)
        def rand_res():
            m = rng.integers(0, 3 * n)
            ii = rng.integers(0, n, m)
            jj = rng.integers(0, n, m)
            keep = ii != jj
            return _res(n, list(zip(ii[keep], jj[keep])))
        a, b = rand_res(), rand_res()
        v = overlap_accuracy(a, b)
        assert 0.0 <= v <= 1.0
        assert v == pytest.approx(overlap_accuracy(b, a))


class TestDistanceErrorStats:
    def test_identical_zero_error(self):
        r = _res(4, [(0, 1), (1, 0)], dists=[1.0, 1.0])
        stats = distance_error_stats(r, r)
        assert stats.mean == 0.0 and stats.std == 0.0
        assert stats.n_pairs == 2

    def test_known_error(self):
        a = _res(4, [(0, 1)], dists=[1.21])
        b = _res(4, [(0, 1)], dists=[1.0])
        stats = distance_error_stats(a, b)
        assert stats.mean == pytest.approx(0.1, abs=1e-6)

    def test_only_common_pairs_compared(self):
        a = _res(4, [(0, 1), (2, 3)], dists=[1.0, 4.0])
        b = _res(4, [(0, 1)], dists=[1.0])
        assert distance_error_stats(a, b).n_pairs == 1

    def test_requires_distances(self):
        with pytest.raises(ValueError):
            distance_error_stats(_res(4, [(0, 1)]), _res(4, [(0, 1)]))

    def test_histogram(self):
        a = _res(4, [(0, 1), (1, 0), (2, 3)], dists=[1.1, 0.95, 2.0])
        b = _res(4, [(0, 1), (1, 0), (2, 3)], dists=[1.0, 1.0, 2.0])
        counts, edges = distance_error_stats(a, b).histogram(bins=11)
        assert counts.sum() == 3
        assert edges[0] == -edges[-1]  # symmetric range


class TestScaling:
    def test_fit_centers_and_scales(self):
        rng = np.random.default_rng(0)
        data = rng.normal(1000, 1, size=(500, 8))
        scaler = fit_scaler(data)
        out = scaler.transform(data)
        assert abs(out.mean()) < 1.0
        assert np.abs(out).max() == pytest.approx(0.25 * FP16_MAX, rel=1e-6)

    def test_distances_preserved_exactly_in_fp64(self):
        rng = np.random.default_rng(1)
        data = rng.normal(50, 5, size=(100, 16))
        scaler = fit_scaler(data)
        t = scaler.transform(data)
        d_orig = np.sqrt(((data[0] - data[1]) ** 2).sum())
        d_t = np.sqrt(((t[0] - t[1]) ** 2).sum())
        assert d_t == pytest.approx(scaler.transform_radius(d_orig), rel=1e-12)

    def test_inverse_transform(self):
        data = np.random.default_rng(2).normal(10, 2, size=(50, 4))
        scaler = fit_scaler(data)
        back = scaler.inverse_transform(scaler.transform(data))
        assert np.allclose(back, data, rtol=1e-12)

    def test_scaling_improves_quantization(self):
        """The paper's future-work hypothesis, verified."""
        rng = np.random.default_rng(3)
        data = rng.normal(3000, 1, size=(200, 8))  # large offset, small spread
        raw = dynamic_range_report(data).max_rel_error
        scaled = fit_scaler(data).transform(data)
        # Compare absolute quantization error of the *differences* scale.
        def dist_err(x, scale=1.0):
            q = x.astype(np.float16).astype(np.float64)
            d_q = np.sqrt(((q[0] - q[1]) ** 2).sum()) / scale
            d = np.sqrt(((x[0] - x[1]) ** 2).sum()) / scale
            return abs(d_q - d)
        s = fit_scaler(data)
        assert dist_err(s.transform(data), s.scale) < dist_err(data)

    def test_all_zero_data(self):
        scaler = fit_scaler(np.zeros((10, 3)))
        assert scaler.scale == 1.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            fit_scaler(np.ones((4, 2)), target_fraction=0.0)


class TestPublicApi:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(4)
        centers = rng.normal(0, 4, size=(6, 24))
        return centers[rng.integers(0, 6, 250)] + rng.normal(0, 0.3, (250, 24))

    def test_methods_tuple_matches_table3(self):
        assert METHODS == (
            "fasted", "ted-join-brute", "ted-join-index", "gds-join", "mistic"
        )

    def test_all_methods_agree(self, data):
        eps = 2.5
        results = {m: self_join(data, eps, method=m) for m in METHODS}
        truth = set(
            zip(
                results["ted-join-brute"].pairs_i.tolist(),
                results["ted-join-brute"].pairs_j.tolist(),
            )
        )
        for m, res in results.items():
            got = set(zip(res.pairs_i.tolist(), res.pairs_j.tolist()))
            sym = got.symmetric_difference(truth)
            assert len(sym) <= 0.01 * max(len(truth), 1), m

    def test_unknown_method(self, data):
        with pytest.raises(ValueError):
            self_join(data, 1.0, method="faiss")

    def test_precision_validation(self, data):
        with pytest.raises(ValueError):
            self_join(data, 1.0, method="fasted", precision="fp64")
        with pytest.raises(ValueError):
            self_join(data, 1.0, method="mistic", precision="fp64")

    def test_gds_fp64_ground_truth_mode(self, data):
        res = self_join(data, 2.5, method="gds-join", precision="fp64")
        assert res.n_points == len(data)

    def test_pairwise_sq_dists_precisions(self):
        rng = np.random.default_rng(5)
        a, b = rng.normal(size=(20, 16)), rng.normal(size=(15, 16))
        d64 = pairwise_sq_dists(a, b, precision="fp64")
        d32 = pairwise_sq_dists(a, b, precision="fp32")
        d16 = pairwise_sq_dists(a, b, precision="fp16-32")
        assert d64.shape == (20, 15)
        assert np.allclose(d32, d64, rtol=1e-4, atol=1e-4)
        assert np.allclose(d16, d64, rtol=2e-2, atol=2e-2)
        ref = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(d64, ref, rtol=1e-10, atol=1e-10)

    def test_pairwise_validation(self):
        with pytest.raises(ValueError):
            pairwise_sq_dists(np.zeros((3, 4)), np.zeros((3, 5)))
        with pytest.raises(ValueError):
            pairwise_sq_dists(np.zeros((3, 4)), np.zeros((3, 4)), precision="int8")
