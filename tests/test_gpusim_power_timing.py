"""Tests for power throttling and timing resolution (power, timing, boxone)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.boxone import reuse_requirements
from repro.gpusim.pipeline import PipelineConfig
from repro.gpusim.power import (
    IDLE_CLOCK_HZ,
    PowerState,
    ramped_average_clock,
    throttled_clock,
)
from repro.gpusim.spec import A100_PCIE, A100_SXM, V100_SXM2
from repro.gpusim.timing import KernelCost, ResourceDemand, resolve_timing


class TestPowerModel:
    def test_low_utilization_near_boost(self):
        state = throttled_clock(A100_PCIE, 0.02, 0.01)
        assert state.clock_hz > 0.97 * A100_PCIE.boost_clock_hz

    def test_high_utilization_throttles(self):
        """Paper Table 6: 64% TC utilization throttles 1.41 -> ~1.12 GHz."""
        state = throttled_clock(A100_PCIE, 0.64, 0.16)
        assert state.throttled
        assert 1.05e9 <= state.clock_hz <= 1.20e9

    def test_power_never_exceeds_budget(self):
        for u in (0.0, 0.3, 0.6, 1.0):
            state = throttled_clock(A100_PCIE, u, u / 2)
            assert state.power_w <= A100_PCIE.power_budget_w + 1e-6

    @given(st.floats(0, 1), st.floats(0, 1))
    @settings(max_examples=100, deadline=None)
    def test_clock_bounds(self, tc, mem):
        state = throttled_clock(A100_PCIE, tc, mem)
        assert 0 < state.clock_hz <= A100_PCIE.boost_clock_hz

    @given(st.floats(0, 0.9))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_utilization(self, u):
        low = throttled_clock(A100_PCIE, u, 0.1)
        high = throttled_clock(A100_PCIE, u + 0.1, 0.1)
        assert high.clock_hz <= low.clock_hz + 1e-6

    def test_sxm_throttles_less(self):
        """The conclusion's what-if: a 400 W SXM sustains a higher clock."""
        pcie = throttled_clock(A100_PCIE, 0.64, 0.16)
        sxm = throttled_clock(A100_SXM, 0.64, 0.16)
        assert sxm.clock_hz > pcie.clock_hz

    def test_budget_below_static_raises(self):
        with pytest.raises(ValueError):
            throttled_clock(A100_PCIE.with_power_budget(10.0), 0.5, 0.1)


class TestBoostRamp:
    def test_long_kernel_reaches_target(self):
        assert ramped_average_clock(1.4e9, 1.0) == pytest.approx(1.4e9, rel=0.01)

    def test_short_kernel_near_idle(self):
        avg = ramped_average_clock(1.4e9, 1e-6)
        assert avg < IDLE_CLOCK_HZ * 1.1

    def test_monotone_in_duration(self):
        prev = 0.0
        for t in (1e-5, 1e-4, 1e-3, 1e-2, 1e-1):
            cur = ramped_average_clock(1.4e9, t)
            assert cur >= prev
            prev = cur


def _cost(**overrides):
    demand = ResourceDemand(
        tc_cycles=2048,
        smem_load_cycles=1024,
        issue_cycles=120,
        gmem_bytes=32768,
        smem_store_bytes=32768,
    )
    base = dict(
        n_tiles=10_000,
        chunks_per_tile=16,
        demand=demand,
        epilogue_cycles=5000,
        pipeline=PipelineConfig(True, 2),
        grid_blocks=216,
        blocks_per_sm=2,
        l2_hit_rate=0.875,
    )
    base.update(overrides)
    return KernelCost(**base)


class TestResolveTiming:
    def test_basic_sanity(self):
        t = resolve_timing(A100_PCIE, _cost())
        assert t.seconds > 0
        assert 0 < t.tc_utilization <= 1
        assert 0 <= t.dram_utilization <= 1
        assert t.clock_hz <= A100_PCIE.boost_clock_hz

    def test_derived_tflops_below_peak(self):
        t = resolve_timing(A100_PCIE, _cost())
        flops = 10_000 * 16 * 2 * 128 * 128 * 64
        assert t.derived_tflops(flops) < A100_PCIE.fp16_tc_flops / 1e12

    def test_more_chunks_better_utilization(self):
        short = resolve_timing(A100_PCIE, _cost(chunks_per_tile=1))
        long = resolve_timing(A100_PCIE, _cost(chunks_per_tile=64))
        assert long.tc_utilization > short.tc_utilization

    def test_low_hit_rate_slows_kernel(self):
        good = resolve_timing(A100_PCIE, _cost(l2_hit_rate=0.9))
        bad = resolve_timing(A100_PCIE, _cost(l2_hit_rate=0.1))
        assert bad.seconds >= good.seconds

    def test_fixed_overhead_added(self):
        t0 = resolve_timing(A100_PCIE, _cost())
        t1 = resolve_timing(A100_PCIE, _cost(fixed_overhead_s=0.5))
        assert t1.seconds == pytest.approx(t0.seconds + 0.5, rel=1e-6)

    def test_small_grid_wave_quantization(self):
        few = resolve_timing(A100_PCIE, _cost(n_tiles=217))
        one_wave = resolve_timing(A100_PCIE, _cost(n_tiles=216))
        # 217 tiles need two waves of 216 blocks: ~2x the kernel time.
        assert few.kernel_seconds > 1.5 * one_wave.kernel_seconds


class TestBoxOne:
    def test_paper_numbers(self):
        """Box #1: ~98x reuse vs L2, ~35x vs shared memory."""
        req = reuse_requirements(A100_PCIE)
        assert req.required_l2_reuse == pytest.approx(98, rel=0.03)
        assert req.required_smem_reuse == pytest.approx(35, rel=0.03)

    def test_fasted_tiles_satisfy_requirements(self):
        req = reuse_requirements(A100_PCIE)
        assert req.block_tile_sufficient  # 128 > 98
        assert req.warp_tile_p_reuse == 8
        assert req.warp_tile_q_reuse == 4
        assert req.warp_tile_sufficient  # 32-ish vs 35 via combined grid

    def test_smaller_block_tile_fails(self):
        req = reuse_requirements(A100_PCIE, block_points=64)
        assert not req.block_tile_sufficient

    def test_v100_requirements_differ(self):
        a100 = reuse_requirements(A100_PCIE)
        v100 = reuse_requirements(V100_SXM2)
        assert v100.required_l2_reuse != a100.required_l2_reuse
