"""Tests for round-toward-zero arithmetic (repro.fp.rounding).

The bit-twiddling fast paths (decrement-correction conversion, mantissa-mask
reduction, native kernel) are all validated against
``round_toward_zero_f32_reference`` -- the original ``nextafter``-based
implementation kept as the oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp import native
from repro.fp.rounding import (
    round_toward_zero_f32,
    round_toward_zero_f32_reference,
    rz_sum,
    rz_sum_squares,
    tc_accumulate_rz,
)

finite_floats = st.floats(
    min_value=-1e30, max_value=1e30, allow_nan=False, allow_infinity=False
)


class TestRoundTowardZero:
    def test_representable_values_unchanged(self):
        vals = np.array([0.0, 1.0, -1.5, 2.0**-20, 3.0], dtype=np.float32)
        out = round_toward_zero_f32(vals.astype(np.float64))
        assert np.array_equal(out, vals)

    def test_truncates_positive(self):
        # 1 + 2^-25 is between 1.0 and nextafter(1.0): RZ gives exactly 1.0.
        x = 1.0 + 2.0**-25
        assert round_toward_zero_f32(x) == np.float32(1.0)

    def test_truncates_negative_toward_zero(self):
        x = -(1.0 + 2.0**-25)
        assert round_toward_zero_f32(x) == np.float32(-1.0)

    def test_value_just_above_representable_midpoint(self):
        # Round-to-nearest would go up; RZ must not.
        one_plus = np.nextafter(np.float32(1.0), np.float32(2.0))
        mid = (1.0 + float(one_plus)) / 2.0 + 1e-12
        assert round_toward_zero_f32(mid) == np.float32(1.0)

    @given(finite_floats)
    @settings(max_examples=300, deadline=None)
    def test_never_increases_magnitude(self, x):
        out = float(round_toward_zero_f32(x))
        assert abs(out) <= abs(x) or np.isinf(out)

    @given(finite_floats)
    @settings(max_examples=300, deadline=None)
    def test_within_one_ulp(self, x):
        out = np.float32(round_toward_zero_f32(x))
        nearest = np.float64(x).astype(np.float32)
        # RZ result is either the nearest rounding or one ulp toward zero.
        assert out == nearest or out == np.nextafter(nearest, np.float32(0.0))


def _assert_bits_equal(got: np.ndarray, want: np.ndarray) -> None:
    """Bitwise float32 equality with NaN treated as equal to NaN."""
    got = np.asarray(got, np.float32).ravel()
    want = np.asarray(want, np.float32).ravel()
    assert got.shape == want.shape
    gn, wn = np.isnan(got), np.isnan(want)
    assert np.array_equal(gn, wn)
    assert np.array_equal(got.view(np.uint32)[~gn], want.view(np.uint32)[~wn])


class TestBitTwiddleAgainstOracle:
    """The fast RZ conversion must agree with the nextafter oracle bitwise."""

    #: Hand-picked adversarial float64 inputs (see ISSUE satellite): float32
    #: subnormals, negatives, exact grid points, exact rounding ties, signed
    #: zeros, inf/nan, overflow, and the normal/subnormal boundary.
    EDGE_VALUES = [
        0.0,
        -0.0,
        np.inf,
        -np.inf,
        np.nan,
        1.0,
        -1.0,
        1.0 + 2.0**-25,  # just above a float32 grid point
        -(1.0 + 2.0**-25),
        1.0 + 2.0**-24,  # exact tie between 1.0 and nextafter(1.0)
        -(1.0 + 2.0**-24),
        1.0 + 3.0 * 2.0**-24,  # exact value on the odd side of the grid
        float(np.finfo(np.float32).max),  # largest normal, exact
        float(np.finfo(np.float32).max) * (1 + 2.0**-25),  # overshoots to inf
        3.5e38,  # between f32 max and 2**128
        2.0**128,
        -(2.0**128),
        1e308,
        float(np.finfo(np.float32).tiny),  # smallest normal, exact
        float(np.finfo(np.float32).tiny) * (1 - 2.0**-25),  # straddles boundary
        float(np.finfo(np.float32).tiny) * (1 + 2.0**-30),
        -float(np.finfo(np.float32).tiny) * (1 - 2.0**-30),
        2.0**-149,  # smallest f32 subnormal, exact
        2.0**-149 * 1.5,  # tie between subnormals
        2.0**-149 * 0.5,  # tie between 0 and the smallest subnormal
        2.0**-149 * 0.4999,  # truncates to zero
        -(2.0**-149 * 0.4999),
        2.0**-140,  # subnormal region, exact
        2.0**-140 + 2.0**-165,  # subnormal region, inexact
        -(2.0**-140 + 2.0**-165),
        5e-324,  # smallest float64 subnormal
        -5e-324,
    ]

    def test_edge_values(self):
        x = np.array(self.EDGE_VALUES, dtype=np.float64)
        _assert_bits_equal(
            round_toward_zero_f32(x), round_toward_zero_f32_reference(x)
        )

    def test_scalar_inputs(self):
        for v in self.EDGE_VALUES:
            _assert_bits_equal(
                round_toward_zero_f32(v), round_toward_zero_f32_reference(v)
            )

    @given(st.floats(allow_nan=True, allow_infinity=True, width=64))
    @settings(max_examples=500, deadline=None)
    def test_agrees_everywhere(self, v):
        _assert_bits_equal(
            round_toward_zero_f32(v), round_toward_zero_f32_reference(v)
        )

    @given(st.integers(0, 2**31 - 1), st.integers(-60, 60))
    @settings(max_examples=200, deadline=None)
    def test_random_scales(self, seed, exp):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=64) * 2.0**exp
        _assert_bits_equal(
            round_toward_zero_f32(x), round_toward_zero_f32_reference(x)
        )

    def test_oracle_semantics_unchanged(self):
        """The oracle itself still never increases magnitude."""
        x = np.array(self.EDGE_VALUES, dtype=np.float64)
        out = round_toward_zero_f32_reference(x).astype(np.float64)
        finite = np.isfinite(x)
        assert np.all(np.abs(out[finite]) <= np.abs(x[finite]))


class TestRzSumFastPaths:
    """rz_sum's masked/general fast paths vs a direct oracle-based loop."""

    @staticmethod
    def _oracle_rz_sum(values, step):
        v = np.asarray(values, dtype=np.float64)
        acc = np.zeros(v.shape[:-1], dtype=np.float32)
        with np.errstate(invalid="ignore", over="ignore"):
            for start in range(0, v.shape[-1], step):
                chunk = v[..., start : start + step].sum(axis=-1)
                acc = round_toward_zero_f32_reference(
                    acc.astype(np.float64) + chunk
                )
        return acc

    @given(st.integers(0, 2**31 - 1), st.integers(1, 8))
    @settings(max_examples=100, deadline=None)
    def test_nonnegative_masked_path(self, seed, step):
        rng = np.random.default_rng(seed)
        v = rng.uniform(0, 1e3, size=(8, int(rng.integers(1, 40))))
        _assert_bits_equal(rz_sum(v, step=step), self._oracle_rz_sum(v, step))

    @given(st.integers(0, 2**31 - 1), st.integers(1, 8))
    @settings(max_examples=100, deadline=None)
    def test_signed_general_path(self, seed, step):
        rng = np.random.default_rng(seed)
        scale = 10.0 ** rng.integers(-40, 30)
        v = rng.normal(size=(8, int(rng.integers(1, 40)))) * scale
        _assert_bits_equal(rz_sum(v, step=step), self._oracle_rz_sum(v, step))

    def test_ragged_tail_keeps_seed_reduction_order(self):
        """A short tail chunk must sum at its true length: padding it to
        ``step`` would switch np.sum from sequential to 8-way pairwise
        association and shift inexact sums by an ulp (found by review)."""
        v = np.array(
            [[-2.14828911e01, -7.82808578e-04, 2.29153905e00,
              -2.49389428e-03, -9.05780077e-07]]
        )
        for step in (8, 16):
            _assert_bits_equal(rz_sum(v, step=step), self._oracle_rz_sum(v, step))

    @given(st.integers(0, 2**31 - 1), st.integers(8, 16))
    @settings(max_examples=100, deadline=None)
    def test_ragged_tail_random(self, seed, step):
        rng = np.random.default_rng(seed)
        d = int(rng.integers(1, 3 * step))  # frequently ragged
        v = rng.normal(size=(6, d)) * 10.0 ** rng.integers(-6, 6, size=(6, d))
        _assert_bits_equal(rz_sum(v, step=step), self._oracle_rz_sum(v, step))

    def test_cancellation_into_subnormals(self):
        # Forces the general path: partial sums dip below 2**-126.
        v = np.array([[1.0, -1.0 + 2.0**-140, 2.0**-140, -(2.0**-141)]])
        for step in (1, 2, 4):
            _assert_bits_equal(
                rz_sum(v, step=step), self._oracle_rz_sum(v, step)
            )

    def test_inf_nan_columns(self):
        v = np.array(
            [
                [np.inf, 1.0, 2.0, 3.0],
                [np.nan, 1.0, 2.0, 3.0],
                [np.inf, -np.inf, 1.0, 2.0],
                [1e300, 1e300, 1e300, 1e300],
            ]
        )
        _assert_bits_equal(rz_sum(v, step=4), self._oracle_rz_sum(v, 4))

    def test_empty_axis(self):
        out = rz_sum(np.empty((3, 0)), axis=-1)
        assert out.shape == (3,)
        assert np.all(out == 0.0)


class TestNativeKernel:
    """The optional C kernel must be bit-identical to the NumPy paths."""

    @pytest.mark.skipif(not native.available(), reason="no C compiler")
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_matches_numpy_path(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 30))
        d = int(rng.integers(1, 70))
        pts = rng.normal(size=(n, d)) * 10.0 ** rng.integers(-40, 8)
        got = native.rz_sum_squares_native(pts, 4)
        from repro.fp.fp16 import to_fp16

        q = to_fp16(pts).astype(np.float64)
        want = TestRzSumFastPaths._oracle_rz_sum(q * q, 4)
        _assert_bits_equal(got, want)

    @pytest.mark.skipif(not native.available(), reason="no C compiler")
    def test_edge_coordinates(self):
        pts = np.array(
            [
                [65504.0, 65519.0, 65520.0, 1e30],  # f16 max / overflow
                [np.inf, -np.inf, np.nan, 1.0],
                [2.0**-24, 2.0**-25, 5.96e-8, 6.2e-5],  # f16 subnormals
                [0.0, -0.0, 1e-300, 2.0**-14],
            ]
        )
        got = native.rz_sum_squares_native(pts, 4)
        from repro.fp.fp16 import to_fp16

        q = to_fp16(pts).astype(np.float64)
        want = TestRzSumFastPaths._oracle_rz_sum(q * q, 4)
        _assert_bits_equal(got, want)

    def test_disabled_by_env(self, monkeypatch):
        # The public entry must work regardless of native availability.
        pts = np.random.default_rng(0).normal(size=(16, 32))
        expected = rz_sum_squares(pts)
        monkeypatch.setattr(native, "_lib", None)
        monkeypatch.setattr(native, "_tried", True)
        _assert_bits_equal(rz_sum_squares(pts), expected)

    @pytest.mark.skipif(not native.available(), reason="no C compiler")
    @given(st.integers(0, 2**31 - 1), st.integers(1, 7))
    @settings(max_examples=50, deadline=None)
    def test_rz_sum_matches_oracle(self, seed, step):
        """The general C kernel on safe (non-negative) inputs."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 30))
        d = int(rng.integers(1, 70))
        v = rng.uniform(0, 1e3, size=(n, d))
        got = native.rz_sum_native(v, step)
        assert got is not None, "non-negative normal-range input must be safe"
        _assert_bits_equal(got, TestRzSumFastPaths._oracle_rz_sum(v, step))

    @pytest.mark.skipif(not native.available(), reason="no C compiler")
    def test_rz_sum_bails_outside_safe_range(self):
        """Unsafe inputs return None and the NumPy fallback serves the
        public entry with the oracle's exact bits."""
        unsafe = [
            np.random.default_rng(1).normal(size=(8, 33)),  # signed
            np.array([[1.0, -1.0 + 2.0**-140, 2.0**-140, -(2.0**-141)]]),
            np.array([[np.inf, 1.0, 2.0, 3.0]]),
            np.array([[np.nan, 1.0, 2.0, 3.0]]),
            np.array([[1e300, 1e300, 1e300, 1e300]]),
        ]
        for v in unsafe:
            assert native.rz_sum_native(v, 4) is None
            _assert_bits_equal(
                rz_sum(v, step=4), TestRzSumFastPaths._oracle_rz_sum(v, 4)
            )

    @pytest.mark.skipif(not native.available(), reason="no C compiler")
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_rz_sum_public_entry_native_vs_numpy(self, seed):
        """rz_sum must answer identically with the native kernel on and off
        -- the same contract rz_sum_squares carries."""
        rng = np.random.default_rng(seed)
        shape = (int(rng.integers(1, 8)), int(rng.integers(1, 40)))
        v = rng.uniform(0, 1e3, size=shape) * 10.0 ** rng.integers(-3, 4)
        with_native = rz_sum(v, step=4)
        saved_lib, saved_tried = native._lib, native._tried
        native._lib, native._tried = None, True
        try:
            without_native = rz_sum(v, step=4)
        finally:
            native._lib, native._tried = saved_lib, saved_tried
        _assert_bits_equal(without_native, with_native)

    @pytest.mark.skipif(not native.available(), reason="no C compiler")
    def test_rz_sum_shapes_and_steps(self):
        """Rank handling (1-D, 3-D) and the >= 8 step guard."""
        rng = np.random.default_rng(2)
        one_d = rng.uniform(0, 10, size=17)
        _assert_bits_equal(
            rz_sum(one_d), TestRzSumFastPaths._oracle_rz_sum(one_d, 4)
        )
        three_d = rng.uniform(0, 10, size=(3, 4, 9))
        _assert_bits_equal(
            rz_sum(three_d), TestRzSumFastPaths._oracle_rz_sum(three_d, 4)
        )
        # Steps at or past the pairwise-reduction threshold stay on NumPy.
        assert native.rz_sum_native(one_d[None], 8) is None


class TestRzSum:
    def test_exact_small_integers(self):
        x = np.arange(16, dtype=np.float64)
        assert rz_sum(x) == np.float32(x.sum())

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=64,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_nonneg_rz_le_exact(self, vals):
        """For non-negative input, truncation only loses mass."""
        x = np.array(vals)
        assert float(rz_sum(x)) <= x.sum() + 1e-30

    def test_axis_handling(self):
        x = np.ones((3, 8))
        out = rz_sum(x, axis=1)
        assert out.shape == (3,)
        assert np.all(out == 8.0)

    def test_step_one_matches_sequential(self):
        x = np.array([1.0, 2.0**-24, 2.0**-24, 2.0**-24])
        # step=1: each tiny addend is truncated away against 1.0.
        assert rz_sum(x, step=1) == np.float32(1.0)


class TestTcAccumulate:
    def test_zero_accumulator(self):
        c = np.zeros((2, 2), dtype=np.float32)
        prods = np.ones((2, 2, 4), dtype=np.float32)
        out = tc_accumulate_rz(c, prods)
        assert np.all(out == 4.0)

    def test_single_rz_per_step(self):
        # c=1, products sum to 2^-25: exact sum 1+2^-25 truncates to 1.
        c = np.array([1.0], dtype=np.float32)
        prods = np.full((1, 4), 2.0**-27, dtype=np.float32)
        out = tc_accumulate_rz(c, prods)
        assert out[0] == np.float32(1.0)


class TestRzSumSquares:
    def test_rank_agnostic(self):
        """Non-2-D inputs keep working (single points, batched stacks)."""
        rng = np.random.default_rng(0)
        one = rng.normal(size=11)
        batch = rng.normal(size=(2, 5, 11))
        q1 = one.astype(np.float16).astype(np.float64)
        _assert_bits_equal(rz_sum_squares(one), rz_sum(q1 * q1, axis=-1))
        out = rz_sum_squares(batch)
        assert out.shape == (2, 5)
        _assert_bits_equal(out[1, 3], rz_sum_squares(batch[1, 3:4])[0])

    def test_matches_exact_for_integers(self):
        pts = np.array([[1.0, 2.0, 3.0, 4.0]])
        assert rz_sum_squares(pts)[0] == np.float32(30.0)

    def test_quantizes_through_fp16(self):
        # 0.1 is not exact in FP16; the norm must use the quantized value.
        pts = np.array([[0.1]])
        q = np.float16(0.1).astype(np.float64)
        assert abs(float(rz_sum_squares(pts)[0]) - q * q) < 1e-9

    @given(st.integers(min_value=1, max_value=64), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_le_exact_norm(self, d, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 10, size=(4, d))
        q = pts.astype(np.float16).astype(np.float64)
        exact = (q * q).sum(axis=1)
        assert np.all(rz_sum_squares(pts).astype(np.float64) <= exact + 1e-12)
