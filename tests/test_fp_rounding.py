"""Tests for round-toward-zero arithmetic (repro.fp.rounding)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.rounding import (
    round_toward_zero_f32,
    rz_sum,
    rz_sum_squares,
    tc_accumulate_rz,
)

finite_floats = st.floats(
    min_value=-1e30, max_value=1e30, allow_nan=False, allow_infinity=False
)


class TestRoundTowardZero:
    def test_representable_values_unchanged(self):
        vals = np.array([0.0, 1.0, -1.5, 2.0**-20, 3.0], dtype=np.float32)
        out = round_toward_zero_f32(vals.astype(np.float64))
        assert np.array_equal(out, vals)

    def test_truncates_positive(self):
        # 1 + 2^-25 is between 1.0 and nextafter(1.0): RZ gives exactly 1.0.
        x = 1.0 + 2.0**-25
        assert round_toward_zero_f32(x) == np.float32(1.0)

    def test_truncates_negative_toward_zero(self):
        x = -(1.0 + 2.0**-25)
        assert round_toward_zero_f32(x) == np.float32(-1.0)

    def test_value_just_above_representable_midpoint(self):
        # Round-to-nearest would go up; RZ must not.
        one_plus = np.nextafter(np.float32(1.0), np.float32(2.0))
        mid = (1.0 + float(one_plus)) / 2.0 + 1e-12
        assert round_toward_zero_f32(mid) == np.float32(1.0)

    @given(finite_floats)
    @settings(max_examples=300, deadline=None)
    def test_never_increases_magnitude(self, x):
        out = float(round_toward_zero_f32(x))
        assert abs(out) <= abs(x) or np.isinf(out)

    @given(finite_floats)
    @settings(max_examples=300, deadline=None)
    def test_within_one_ulp(self, x):
        out = np.float32(round_toward_zero_f32(x))
        nearest = np.float64(x).astype(np.float32)
        # RZ result is either the nearest rounding or one ulp toward zero.
        assert out == nearest or out == np.nextafter(nearest, np.float32(0.0))


class TestRzSum:
    def test_exact_small_integers(self):
        x = np.arange(16, dtype=np.float64)
        assert rz_sum(x) == np.float32(x.sum())

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=64,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_nonneg_rz_le_exact(self, vals):
        """For non-negative input, truncation only loses mass."""
        x = np.array(vals)
        assert float(rz_sum(x)) <= x.sum() + 1e-30

    def test_axis_handling(self):
        x = np.ones((3, 8))
        out = rz_sum(x, axis=1)
        assert out.shape == (3,)
        assert np.all(out == 8.0)

    def test_step_one_matches_sequential(self):
        x = np.array([1.0, 2.0**-24, 2.0**-24, 2.0**-24])
        # step=1: each tiny addend is truncated away against 1.0.
        assert rz_sum(x, step=1) == np.float32(1.0)


class TestTcAccumulate:
    def test_zero_accumulator(self):
        c = np.zeros((2, 2), dtype=np.float32)
        prods = np.ones((2, 2, 4), dtype=np.float32)
        out = tc_accumulate_rz(c, prods)
        assert np.all(out == 4.0)

    def test_single_rz_per_step(self):
        # c=1, products sum to 2^-25: exact sum 1+2^-25 truncates to 1.
        c = np.array([1.0], dtype=np.float32)
        prods = np.full((1, 4), 2.0**-27, dtype=np.float32)
        out = tc_accumulate_rz(c, prods)
        assert out[0] == np.float32(1.0)


class TestRzSumSquares:
    def test_matches_exact_for_integers(self):
        pts = np.array([[1.0, 2.0, 3.0, 4.0]])
        assert rz_sum_squares(pts)[0] == np.float32(30.0)

    def test_quantizes_through_fp16(self):
        # 0.1 is not exact in FP16; the norm must use the quantized value.
        pts = np.array([[0.1]])
        q = np.float16(0.1).astype(np.float64)
        assert abs(float(rz_sum_squares(pts)[0]) - q * q) < 1e-9

    @given(st.integers(min_value=1, max_value=64), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_le_exact_norm(self, d, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 10, size=(4, d))
        q = pts.astype(np.float16).astype(np.float64)
        exact = (q * q).sum(axis=1)
        assert np.all(rz_sum_squares(pts).astype(np.float64) <= exact + 1e-12)
