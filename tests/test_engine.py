"""Tests for the shared join engine (repro.core.engine, PairAccumulator).

The centerpiece is the bit-identity suite: every kernel's self-join routed
through the engine must reproduce the seed (pre-engine) implementation
exactly -- same pair set and bitwise-equal squared distances -- on
fixed-seed datasets across d in {32, 64, 128}.  The seed algorithms live
in :mod:`repro.kernels.reference` (shared with the benchmark so the pinned
baseline cannot drift), giving the engine an independent executor to be
checked against.
"""

import numpy as np
import pytest

from repro.core.engine import (
    candidate_self_join,
    norm_expansion_sq_dists,
    symmetric_self_join,
)
from repro.core.results import NeighborResult, PairAccumulator
from repro.core.selectivity import epsilon_for_selectivity
from repro.index.grid import GridIndex
from repro.index.mstree import MultiSpaceTree
from repro.kernels.fasted import FastedKernel
from repro.kernels.gdsjoin import GdsJoinKernel
from repro.kernels.mistic import MisticKernel
from repro.kernels.reference import (
    canon as _canon,
)
from repro.kernels.reference import (
    seed_candidate_join,
    seed_fasted_join,
    seed_ted_brute_join,
)
from repro.kernels.tedjoin import TedJoinKernel


def _dataset(d, n=400, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 4, size=(6, d))
    return centers[rng.integers(0, 6, n)] + rng.normal(0, 0.5, size=(n, d))


def assert_bit_identical(a: NeighborResult, b: NeighborResult):
    """Same pair set (order-insensitive) and bitwise-equal distances."""
    ai, aj, ad = _canon(a)
    bi, bj, bd = _canon(b)
    np.testing.assert_array_equal(ai, bi)
    np.testing.assert_array_equal(aj, bj)
    assert np.array_equal(ad.view(np.uint32), bd.view(np.uint32))


# ----------------------------------------------------------------------
# Kernel bit-identity through the engine
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d", [32, 64, 128])
class TestKernelBitIdentity:
    def test_fasted(self, d):
        data = _dataset(d)
        eps = epsilon_for_selectivity(data, 24)
        got = FastedKernel().self_join(data, eps)
        assert_bit_identical(got, seed_fasted_join(data, eps))

    def test_ted_join_brute(self, d):
        data = _dataset(d, seed=1)
        eps = epsilon_for_selectivity(data, 24)
        got = TedJoinKernel(variant="brute").self_join(data, eps).result
        assert_bit_identical(got, seed_ted_brute_join(data, eps))

    def test_ted_join_index(self, d):
        data = _dataset(d, seed=2)
        eps = epsilon_for_selectivity(data, 24)
        got = TedJoinKernel(variant="index").self_join(data, eps).result
        ref = seed_candidate_join(
            data, eps, GridIndex(data, eps).iter_cells(), np.float64
        )
        assert_bit_identical(got, ref)

    def test_gds_join(self, d):
        data = _dataset(d, seed=3)
        eps = epsilon_for_selectivity(data, 24)
        # The seed reference IS the per-group executor; pin that path
        # explicitly (batched=None may auto-route small-group shapes
        # through the padded-batch executor, whose contract is pair-set
        # equality, not seed bit-identity).
        got = GdsJoinKernel().self_join(data, eps, batched=False).result
        ref = seed_candidate_join(
            data, eps, GridIndex(data, eps).iter_cells(), np.float32
        )
        assert_bit_identical(got, ref)

    def test_mistic(self, d):
        data = _dataset(d, seed=4)
        eps = epsilon_for_selectivity(data, 24)
        got = MisticKernel().self_join(data, eps).result
        tree = MultiSpaceTree(data, eps, n_levels=6, n_candidates=38, seed=0)
        ref = seed_candidate_join(
            data, eps, tree.iter_groups(group=512), np.float32, einsum_norms=True
        )
        assert_bit_identical(got, ref)


class TestEngineExecution:
    def test_row_block_invariance(self):
        """Tiling is a performance knob: the pair set must not change.

        (FP32 GEMMs reassociate the k-reduction per tile shape, so
        distances are compared to a small float32 tolerance, while the
        FP64 TED path below stays strictly bit-identical.)
        """
        data = _dataset(48, seed=5)
        eps = epsilon_for_selectivity(data, 16)
        base = _canon(FastedKernel().self_join(data, eps))
        for rb in (64, 100, 1000, 10_000):
            got = _canon(FastedKernel().self_join(data, eps, row_block=rb))
            np.testing.assert_array_equal(base[0], got[0])
            np.testing.assert_array_equal(base[1], got[1])
            np.testing.assert_allclose(base[2], got[2], rtol=1e-3, atol=1e-3)

    def test_ted_row_block_bit_invariance(self):
        data = _dataset(48, seed=5)
        eps = epsilon_for_selectivity(data, 16)
        base = TedJoinKernel(variant="brute").self_join(data, eps).result
        for rb in (64, 100, 10_000):

            def tile(r0, r1, c0, c1, _d=np.ascontiguousarray(data)):
                s = (_d * _d).sum(axis=1)
                return norm_expansion_sq_dists(
                    s[r0:r1], s[c0:c1], _d[r0:r1] @ _d[c0:c1].T
                )

            acc = symmetric_self_join(
                len(data), float(eps) ** 2, tile, row_block=rb
            )
            assert_bit_identical(base, acc.finalize(len(data), float(eps)))

    def test_workers_identical_to_serial(self):
        data = _dataset(32, n=600, seed=6)
        eps = epsilon_for_selectivity(data, 16)
        serial = FastedKernel().self_join(data, eps, row_block=128)
        threaded = FastedKernel().self_join(
            data, eps, row_block=128, workers=4
        )
        # Deterministic commit order: identical arrays, not just same set.
        np.testing.assert_array_equal(serial.pairs_i, threaded.pairs_i)
        np.testing.assert_array_equal(serial.pairs_j, threaded.pairs_j)
        assert np.array_equal(
            serial.sq_dists.view(np.uint32), threaded.sq_dists.view(np.uint32)
        )

    def test_ted_brute_workers(self):
        data = _dataset(32, n=500, seed=7)
        eps = epsilon_for_selectivity(data, 16)
        a = TedJoinKernel(variant="brute").self_join(data, eps).result
        b = TedJoinKernel(variant="brute").self_join(data, eps, workers=3).result
        assert_bit_identical(a, b)

    def test_store_distances_off(self):
        data = _dataset(32, n=200, seed=8)
        eps = epsilon_for_selectivity(data, 8)
        with_d = FastedKernel().self_join(data, eps)
        without = FastedKernel().self_join(data, eps, store_distances=False)
        assert without.sq_dists.size == 0
        ai = np.lexsort((with_d.pairs_j, with_d.pairs_i))
        bi = np.lexsort((without.pairs_j, without.pairs_i))
        np.testing.assert_array_equal(with_d.pairs_i[ai], without.pairs_i[bi])
        np.testing.assert_array_equal(with_d.pairs_j[ai], without.pairs_j[bi])

    def test_empty_result(self):
        data = _dataset(16, n=50, seed=9) * 100.0  # spread out, tiny eps
        res = symmetric_self_join(
            50,
            np.float32(1e-12),
            lambda r0, r1, c0, c1: np.full((r1 - r0, c1 - c0), 1.0, np.float32),
            row_block=16,
        )
        assert len(res) == 0
        out = res.finalize(50, 1e-6)
        assert out.pairs_i.size == 0 and out.sq_dists.size == 0

    def test_candidate_chunking_invariance(self):
        data = _dataset(24, n=300, seed=10)
        eps = epsilon_for_selectivity(data, 16)
        index = GridIndex(data, eps)
        work = data.astype(np.float64)
        s = (work * work).sum(axis=1)

        def dist(members, cand):
            return norm_expansion_sq_dists(
                s[members], s[cand], work[members] @ work[cand].T
            )

        eps2 = float(eps) ** 2
        whole = candidate_self_join(index.iter_cells(), dist, eps2)
        chunked = candidate_self_join(
            index.iter_cells(), dist, eps2, candidate_chunk=7
        )
        assert_bit_identical(whole.finalize(300, eps), chunked.finalize(300, eps))

    def test_on_group_sees_every_nonempty_group(self):
        data = _dataset(16, n=150, seed=11)
        eps = epsilon_for_selectivity(data, 8)
        index = GridIndex(data, eps)
        seen = []
        candidate_self_join(
            index.iter_cells(),
            lambda m, c: np.zeros((m.size, c.size)),
            -1.0,  # keep nothing
            on_group=lambda m, c: seen.append((m.size, c.size)),
        )
        expect = [
            (m.size, c.size)
            for m, c in index.iter_cells()
            if m.size and c.size
        ]
        assert seen == expect


class TestNormExpansion:
    def test_bit_identical_to_naive(self):
        rng = np.random.default_rng(0)
        for dt in (np.float32, np.float64):
            a = rng.normal(size=(40, 16)).astype(dt)
            b = rng.normal(size=(30, 16)).astype(dt)
            sa = (a * a).sum(axis=1)
            sb = (b * b).sum(axis=1)
            g = a @ b.T
            naive = sa[:, None] + sb[None, :] - dt(2.0) * g
            naive = np.maximum(naive, 0.0)
            got = norm_expansion_sq_dists(sa, sb, g.copy())
            assert got.dtype == dt
            assert np.array_equal(
                naive.view(np.uint32 if dt is np.float32 else np.uint64),
                got.view(np.uint32 if dt is np.float32 else np.uint64),
            )


class TestPairAccumulator:
    def test_growth_and_finalize(self):
        acc = PairAccumulator(capacity=2)
        rng = np.random.default_rng(0)
        all_i, all_j, all_d = [], [], []
        for _ in range(20):
            m = int(rng.integers(0, 50))
            gi = rng.integers(0, 1000, m)
            gj = rng.integers(0, 1000, m)
            dd = rng.random(m).astype(np.float32)
            acc.append(gi, gj, dd)
            all_i.append(gi)
            all_j.append(gj)
            all_d.append(dd)
        res = acc.finalize(1000, 0.5)
        np.testing.assert_array_equal(res.pairs_i, np.concatenate(all_i))
        np.testing.assert_array_equal(res.pairs_j, np.concatenate(all_j))
        np.testing.assert_array_equal(res.sq_dists, np.concatenate(all_d))

    def test_no_distances_mode(self):
        acc = PairAccumulator(store_distances=False)
        acc.append(np.array([1, 2]), np.array([3, 4]))
        assert len(acc) == 2
        res = acc.finalize(5, 1.0)
        assert res.sq_dists.size == 0

    def test_requires_parallel_arrays(self):
        acc = PairAccumulator()
        with pytest.raises(ValueError):
            acc.append(np.array([1]), np.array([1, 2]), np.array([0.1], np.float32))
        with pytest.raises(ValueError):
            acc.append(np.array([1]), np.array([2]))  # missing distances

    def test_empty_append_is_noop(self):
        acc = PairAccumulator()
        acc.append(np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0, np.float32))
        assert len(acc) == 0
        assert acc.capacity == 1024

    def test_capacity_doubles(self):
        acc = PairAccumulator(capacity=4)
        acc.append(np.arange(5), np.arange(5), np.zeros(5, np.float32))
        assert acc.capacity >= 5
        assert len(acc) == 5


# ----------------------------------------------------------------------
# Auto-selection of the batched candidate executor (batched=None)
# ----------------------------------------------------------------------


class TestAutoBatchedSelection:
    """``batched=None`` routes by measured group shape, never by guess."""

    @staticmethod
    def _stats(mean_m, mean_c, n_groups):
        from types import SimpleNamespace

        return SimpleNamespace(
            mean_members=mean_m,
            mean_group_candidates=mean_c,
            n_nonempty_cells=n_groups,
        )

    def test_small_typical_block_batches(self):
        from repro.core.engine import auto_batched_from_stats

        assert auto_batched_from_stats(self._stats(8.0, 64.0, 200)) is True

    def test_large_typical_block_stays_per_group(self):
        from repro.core.engine import AUTO_BATCH_ELEMS, auto_batched_from_stats

        big = self._stats(256.0, float(AUTO_BATCH_ELEMS), 200)
        assert auto_batched_from_stats(big) is False

    def test_threshold_is_inclusive(self):
        from repro.core.engine import AUTO_BATCH_ELEMS, auto_batched_from_stats

        at = self._stats(1.0, float(AUTO_BATCH_ELEMS), 200)
        above = self._stats(1.0, float(AUTO_BATCH_ELEMS + 1), 200)
        assert auto_batched_from_stats(at) is True
        assert auto_batched_from_stats(above) is False

    def test_too_few_groups_never_batch(self):
        from repro.core.engine import AUTO_BATCH_MIN_GROUPS, auto_batched_from_stats

        few = self._stats(4.0, 16.0, AUTO_BATCH_MIN_GROUPS - 1)
        enough = self._stats(4.0, 16.0, AUTO_BATCH_MIN_GROUPS)
        assert auto_batched_from_stats(few) is False
        assert auto_batched_from_stats(enough) is True

    def test_degenerate_empty_shape_stays_per_group(self):
        from repro.core.engine import auto_batched_from_stats

        assert auto_batched_from_stats(self._stats(0.0, 0.0, 500)) is False

    def test_kernel_auto_matches_forced_choice(self):
        """The batched=None run is bit-identical to explicitly forcing
        whichever executor the heuristic picks for this index shape."""
        from repro.core.engine import auto_batched_from_stats

        data = _dataset(32, seed=9)
        eps = epsilon_for_selectivity(data, 24)
        kernel = GdsJoinKernel()
        index = GridIndex(data, eps, n_dims=kernel.n_index_dims)
        choice = auto_batched_from_stats(index.stats())
        auto = kernel.self_join(data, eps).result
        forced = kernel.self_join(data, eps, batched=choice).result
        assert_bit_identical(auto, forced)
        # ...and forcing the OTHER executor still yields the same pair
        # set (distance bits may differ: padded GEMMs reassociate).
        other = kernel.self_join(data, eps, batched=not choice).result
        ai, aj, _ = _canon(auto)
        oi, oj, _ = _canon(other)
        np.testing.assert_array_equal(ai, oi)
        np.testing.assert_array_equal(aj, oj)
