"""Regression tests pinning the model to the paper's published numbers.

These are the quantitative acceptance criteria of the reproduction
(EXPERIMENTS.md records the full comparison).  Tolerances are deliberately
loose enough to survive harmless refactoring but tight enough that a
broken calibration or a regression in the timing model fails loudly.
"""

import numpy as np
import pytest

from repro.gpusim.spec import A100_PCIE
from repro.kernels.fasted import FastedConfig, FastedKernel, FastedOptimizations
from repro.kernels.tedjoin import TedJoinKernel

#: Paper Figure 9 / Figure 8 row |D|=1e5.
PAPER_FASTED_BY_D = {64: 17, 128: 31, 256: 57, 512: 94, 1024: 133, 2048: 150, 4096: 154}

#: Paper Table 5.
PAPER_ABLATION = {
    "block_tile_ordering": 133.1,
    "block_tile": 95.8,
    "memcpy_async": 48.6,
    "multistage_pipeline": 145.0,
    "sm_block_residency": 110.8,
    "warp_tile": 38.0,
    "swizzle": 120.8,
    "smem_alignment": 120.7,
}


class TestFig9Curve:
    @pytest.mark.parametrize("d,paper", sorted(PAPER_FASTED_BY_D.items()))
    def test_fasted_within_20pct(self, d, paper):
        model = FastedKernel().derived_tflops(100_000, d)
        assert abs(model - paper) / paper < 0.20, (d, model, paper)

    def test_peak_fraction_headline(self):
        """Paper: 49% of the 312 TFLOPS peak at d=4096."""
        frac = FastedKernel().derived_tflops(100_000, 4096) / 312.0
        assert 0.42 <= frac <= 0.55

    def test_ted_join_headline(self):
        """Paper: TED-Join reaches only 6.8% of FP64 peak at d=64."""
        eff = TedJoinKernel().derived_tflops(100_000, 64) / 19.5
        assert abs(eff - 0.068) < 0.004


class TestTable5Ablations:
    @pytest.mark.parametrize("name,paper", sorted(PAPER_ABLATION.items()))
    def test_within_20pct(self, name, paper):
        opts = FastedOptimizations().disable(name)
        model = FastedKernel(config=FastedConfig(opts=opts)).derived_tflops(
            100_000, 4096
        )
        assert abs(model - paper) / paper < 0.20, (name, model, paper)

    def test_impact_ordering_of_worst_three(self):
        """Paper: warp tile, async copies and block tile dominate."""
        vals = {}
        for name in PAPER_ABLATION:
            opts = FastedOptimizations().disable(name)
            vals[name] = FastedKernel(config=FastedConfig(opts=opts)).derived_tflops(
                100_000, 4096
            )
        worst = sorted(vals, key=vals.get)[:3]
        assert set(worst) == {"warp_tile", "memcpy_async", "block_tile"}


class TestTable6Counters:
    def test_fasted_column_trends(self):
        k = FastedKernel()
        t128 = k.timing(100_000, 128)
        t4096 = k.timing(100_000, 4096)
        # TC utilization ~10% -> ~64%.
        assert 0.07 <= t128.tc_utilization <= 0.14
        assert 0.52 <= t4096.tc_utilization <= 0.70
        # Clock 1.36-1.41 -> ~1.12 GHz.
        assert t128.clock_hz > 1.3e9
        assert 1.05e9 <= t4096.clock_hz <= 1.20e9
        # Zero bank conflicts with the swizzle enabled.
        assert t128.bank_conflict_rate == 0.0
        # L2 hit rate 84-90%.
        assert 0.82 <= t4096.l2_hit_rate <= 0.92

    def test_dram_utilization_rises_with_d(self):
        k = FastedKernel()
        u = [k.timing(100_000, d).dram_utilization for d in (128, 256, 4096)]
        assert u[0] < u[1] < u[2]


class TestFig8Corners:
    def test_small_dataset_low_throughput(self):
        """Paper: |D|=1000, d=64 rounds to 0 TFLOPS."""
        assert FastedKernel().derived_tflops(1000, 64) < 3.0

    def test_saturation_dataset_size(self):
        """Paper: |D|>=46416 with d>=2048 reaches ~150 TFLOPS."""
        assert FastedKernel().derived_tflops(46416, 2048) > 130.0

    def test_million_points_no_degradation(self):
        k = FastedKernel()
        assert k.derived_tflops(1_000_000, 4096) > 140.0


class TestBoxOnePaperArithmetic:
    def test_312_peak_and_bandwidths(self):
        """The spec carries exactly the constants Box #1 uses."""
        assert A100_PCIE.fp16_tc_flops == 312e12
        assert A100_PCIE.dram_bandwidth == 1.5e12
        assert A100_PCIE.l2_bandwidth == 6.4e12
        assert A100_PCIE.smem_bandwidth == 17.9e12
        assert A100_PCIE.sm_count == 108
        assert A100_PCIE.power_budget_w == 250.0
