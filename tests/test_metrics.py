"""Metrics registry + /metrics endpoint: the observability contracts.

* **Bucket math, exactly** -- :class:`LogHistogram` quantiles
  interpolate linearly within the containing bucket (clamped to the max
  observed value), the overflow bucket resolves to the max, an empty
  histogram to ``nan``; all pinned on hand-computable bucket layouts.
* **Atomic snapshots** -- every serving counter lives in one registry
  behind one lock; multi-counter invariants can never be observed torn
  (the regression test hammers ``QueryService.stats()`` from a reader
  thread during live dispatch).
* **Prometheus exposition** -- ``render()`` output must round-trip
  through :func:`parse_prometheus_text`, counters must be monotone
  across concurrent scrapes, and ``/stats`` must agree with ``/metrics``
  because both are views of the same registry.
"""

import json
import math
import threading
import urllib.request

import numpy as np
import pytest

from repro.core.api import build_index
from repro.core.selectivity import epsilon_for_selectivity
from repro.service import (
    IndexCache,
    LogHistogram,
    QueryService,
    log_buckets,
    make_server,
    parse_prometheus_text,
)
from repro.service.metrics import (
    BATCH_FILL_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
)


def _dataset(n=400, d=8, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, d))
    return data, float(epsilon_for_selectivity(data, 16))


@pytest.fixture(scope="module")
def index_path(tmp_path_factory):
    data, eps = _dataset()
    path = tmp_path_factory.mktemp("metrics-idx") / "index"
    build_index(data, eps, path, kind="grid")
    return path, data, eps


# ----------------------------------------------------------------------
# LogHistogram bucket math
# ----------------------------------------------------------------------


class TestLogHistogram:
    def test_exact_quantiles_small_layout(self):
        h = LogHistogram((1.0, 2.0, 4.0, 8.0))
        for v in (0.5, 1.5, 3.0, 7.0):
            h.observe(v)
        # Ranks 1..4 land in buckets 1, 2, 4, 8; each rank sits exactly
        # at the top of its bucket, so interpolation resolves to the
        # upper bound -- except p100, which clamps to the max observed.
        assert h.quantile(0.25) == 1.0
        assert h.quantile(0.50) == 2.0
        assert h.quantile(0.75) == 4.0
        assert h.quantile(1.00) == 7.0

    def test_mid_bucket_quantiles_interpolate(self):
        # A lone 3.0 in the (2, 4] bucket: p50 must NOT read as the 4.0
        # upper bound (the pre-interpolation overstatement).
        h = LogHistogram((1.0, 2.0, 4.0, 8.0))
        h.observe(3.0)
        assert h.quantile(0.5) == 3.0  # rank 0.5 -> 2 + 2*0.5 = 3, <= max
        # Two samples in one bucket: ranks interpolate across the width.
        h2 = LogHistogram((4.0,))
        h2.observe(1.0)
        h2.observe(3.9)
        assert h2.quantile(0.25) == pytest.approx(1.0)  # 0 + 4 * 0.5/2
        assert h2.quantile(0.50) == pytest.approx(2.0)  # 0 + 4 * 1.0/2
        assert h2.quantile(1.00) == pytest.approx(3.9)  # clamped to max

    def test_interpolation_clamps_to_observed_max(self):
        h = LogHistogram((1.0, 8.0))
        h.observe(1.5)
        assert h.quantile(0.99) == 1.5  # not the 8.0 bucket bound

    def test_boundary_value_counts_in_its_bucket(self):
        # bisect_left: an observation equal to a bound belongs to that
        # bound's bucket (le semantics).
        h = LogHistogram((1.0, 2.0))
        h.observe(1.0)
        assert h.counts == [1, 0]
        assert h.quantile(1.0) == 1.0

    def test_empty_is_nan(self):
        h = LogHistogram((1.0, 2.0))
        assert math.isnan(h.quantile(0.5))
        snap = h.snapshot()
        assert snap["count"] == 0
        assert math.isnan(snap["p99"])

    def test_overflow_resolves_to_max_observed(self):
        h = LogHistogram((1.0, 2.0))
        h.observe(100.0)
        h.observe(37.5)
        assert h.overflow == 2
        assert h.quantile(0.99) == 100.0  # finite, not +Inf
        assert h.quantile(0.5) == 100.0

    def test_low_quantile_clamps_to_first_sample(self):
        h = LogHistogram((1.0, 2.0, 4.0))
        h.observe(3.0)
        # rank 0 resolves to the lower bound of the only occupied bucket.
        assert h.quantile(0.0) == 2.0

    def test_sum_count_max_tracked(self):
        h = LogHistogram((1.0, 10.0))
        for v in (0.5, 2.0, 5.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(7.5)
        assert snap["max"] == 5.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram(())
        with pytest.raises(ValueError):
            LogHistogram((1.0, 1.0))
        with pytest.raises(ValueError):
            LogHistogram((2.0, 1.0))

    def test_invalid_quantile_rejected(self):
        h = LogHistogram((1.0,))
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_concurrent_observes_all_counted(self):
        h = LogHistogram(DEFAULT_LATENCY_BUCKETS)

        def worker(wi):
            for i in range(500):
                h.observe(1e-4 * (1 + (wi * 500 + i) % 100))

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.total == 8 * 500
        assert sum(h.counts) + h.overflow == h.total


class TestLogBuckets:
    def test_geometric_growth(self):
        b = log_buckets(start=1.0, factor=2.0, count=5)
        assert b == (1.0, 2.0, 4.0, 8.0, 16.0)

    def test_defaults_span_latency_range(self):
        b = DEFAULT_LATENCY_BUCKETS
        assert b[0] == pytest.approx(1e-4)
        assert b[-1] > 50.0  # spans past 50 s
        assert len(b) == 40

    def test_validation(self):
        with pytest.raises(ValueError):
            log_buckets(start=0.0)
        with pytest.raises(ValueError):
            log_buckets(factor=1.0)
        with pytest.raises(ValueError):
            log_buckets(count=0)

    def test_batch_fill_buckets_are_powers_of_two(self):
        assert BATCH_FILL_BUCKETS[0] == 1.0
        assert all(
            b2 == 2 * b1
            for b1, b2 in zip(BATCH_FILL_BUCKETS, BATCH_FILL_BUCKETS[1:])
        )


# ----------------------------------------------------------------------
# Registry: counters, gauges, get-or-create, rendering
# ----------------------------------------------------------------------


class TestRegistry:
    def test_counter_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("t_total")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1.0)

    def test_labeled_counter(self):
        c = MetricsRegistry().counter("t_total", labels=("endpoint",))
        c.inc(endpoint="/range")
        c.inc(endpoint="/range")
        c.inc(endpoint="/knn")
        assert c.value(endpoint="/range") == 2.0
        assert c.value(endpoint="/knn") == 1.0
        with pytest.raises(ValueError, match="expected labels"):
            c.inc()  # missing the declared label

    def test_gauge_set_and_callback(self):
        reg = MetricsRegistry()
        g = reg.gauge("t_gauge")
        g.set(7.0)
        assert g.value() == 7.0
        state = {"v": 3.0}
        cb = reg.gauge("t_cb", fn=lambda: state["v"])
        assert cb.value() == 3.0
        state["v"] = 9.0
        assert cb.value() == 9.0  # evaluated at read time
        with pytest.raises(ValueError, match="callback-backed"):
            cb.set(1.0)

    def test_callback_gauge_cannot_be_labeled(self):
        with pytest.raises(ValueError, match="cannot be labeled"):
            MetricsRegistry().gauge(
                "t_cb", labels=("x",), fn=lambda: 0.0
            )

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")

    def test_kind_and_label_mismatch_raise(self):
        reg = MetricsRegistry()
        reg.counter("a_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("a_total", labels=("x",))

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        snap = reg.snapshot()
        assert snap["c_total"] == 2.0
        assert snap["g"] == 1.5
        assert snap["h"]["count"] == 1

    def test_render_parse_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "a counter").inc(3)
        reg.counter("lc_total", labels=("ep",)).inc(2, ep="/range")
        reg.gauge("g", "a gauge").set(0.25)
        h = reg.histogram("h", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(5.0)
        fams = parse_prometheus_text(reg.render())
        assert fams["c_total"][()] == 3.0
        assert fams["lc_total"][(("ep", "/range"),)] == 2.0
        assert fams["g"][()] == 0.25
        # Cumulative buckets: le=1 holds 1, le=2 still 1, +Inf all 2.
        assert fams["h_bucket"][(("le", "1"),)] == 1.0
        assert fams["h_bucket"][(("le", "2"),)] == 1.0
        assert fams["h_bucket"][(("le", "+Inf"),)] == 2.0
        assert fams["h_count"][()] == 2.0
        assert fams["h_sum"][()] == 5.5

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("e_total", labels=("p",)).inc(p='a"b\\c')
        fams = parse_prometheus_text(reg.render())
        assert fams["e_total"][(("p", 'a"b\\c'),)] == 1.0

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError, match="unquoted"):
            parse_prometheus_text('m{le=1} 2')
        with pytest.raises(ValueError, match="invalid sample value"):
            parse_prometheus_text("m notanumber")
        with pytest.raises(ValueError, match="invalid metric name"):
            parse_prometheus_text("0bad 1")
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus_text("m 1 2 3")

    def test_atomic_multi_counter_group(self):
        """Grouped increments under registry.lock are never seen torn."""
        reg = MetricsRegistry()
        a = reg.counter("a_total")
        b = reg.counter("b_total")
        stop = threading.Event()
        torn = []

        def writer():
            while not stop.is_set():
                with reg.lock:
                    a.inc()
                    b.inc()

        def reader():
            for _ in range(2000):
                snap = reg.snapshot()
                if snap["a_total"] != snap["b_total"]:
                    torn.append(snap)

        w = threading.Thread(target=writer, daemon=True)
        r = threading.Thread(target=reader)
        w.start()
        r.start()
        r.join()
        stop.set()
        w.join()
        assert torn == []


# ----------------------------------------------------------------------
# Service integration: /stats and /metrics as views of one registry
# ----------------------------------------------------------------------


class TestServiceMetrics:
    def test_cache_counters_live_in_registry(self, index_path, tmp_path):
        path, _, _ = index_path
        cache = IndexCache()
        cache.get(path)
        cache.get(path)
        snap = cache.metrics.snapshot()
        assert snap["repro_cache_misses_total"] == 1.0
        assert snap["repro_cache_hits_total"] == 1.0
        assert cache.hits == 1 and cache.misses == 1  # legacy properties
        assert snap["repro_cache_loaded"] == 1.0  # callback gauge

    def test_service_adopts_cache_registry(self, index_path):
        path, _, _ = index_path
        cache = IndexCache()
        svc = QueryService(cache)
        try:
            assert svc.metrics is cache.metrics
        finally:
            svc.stop()

    def test_stats_torn_read_regression(self, index_path):
        """stats() snapshots must satisfy cross-counter invariants while
        dispatch is live: served/coalesced/batches move together under
        the registry lock, so no interleaving may expose served without
        its batch or coalesced > served."""
        path, data, eps = index_path
        svc = QueryService(max_delay_s=0.001)
        bad = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                s = svc.stats()
                if s["requests_coalesced"] > s["requests_served"]:
                    bad.append(s)
                if s["requests_served"] and not s["batches_dispatched"]:
                    bad.append(s)

        try:
            r = threading.Thread(target=reader, daemon=True)
            r.start()
            threads = [
                threading.Thread(
                    target=lambda: [
                        svc.query(path, data[:4], eps=eps)
                        for _ in range(25)
                    ]
                )
                for _ in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stop.set()
            r.join(timeout=5.0)
        finally:
            stop.set()
            svc.stop()
        assert bad == []
        final = svc.stats()
        assert final["requests_served"] == 100

    def test_stats_agrees_with_metrics_snapshot(self, index_path):
        path, data, eps = index_path
        svc = QueryService()
        try:
            for _ in range(5):
                svc.query(path, data[:4], eps=eps)
            stats = svc.stats()
            snap = svc.metrics.snapshot()
        finally:
            svc.stop()
        assert stats["requests_served"] == snap[
            "repro_service_requests_served_total"
        ]
        assert stats["batches_dispatched"] == snap[
            "repro_service_batches_dispatched_total"
        ]
        assert stats["cache"]["hits"] == snap["repro_cache_hits_total"]

    def test_dispatch_latency_histogram_fills(self, index_path):
        path, data, eps = index_path
        svc = QueryService()
        try:
            for _ in range(3):
                svc.query(path, data[:4], eps=eps)
            snap = svc.metrics.snapshot()
        finally:
            svc.stop()
        h = snap["repro_service_dispatch_seconds"]
        assert h["count"] >= 1
        assert h["p99"] > 0.0 and math.isfinite(h["p99"])
        fill = snap["repro_service_batch_fill"]
        assert fill["count"] == snap[
            "repro_service_batches_dispatched_total"
        ]


class TestMetricsEndpoint:
    @pytest.fixture()
    def server(self, index_path):
        path, data, eps = index_path
        srv = make_server({"default": path}, host="127.0.0.1", port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        yield srv, data, eps
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5.0)

    def _get(self, srv, path):
        host, port = srv.server_address[0], srv.server_address[1]
        with urllib.request.urlopen(
            f"http://{host}:{port}{path}"
        ) as resp:
            return resp.status, resp.headers.get("Content-Type"), (
                resp.read().decode()
            )

    def _post(self, srv, path, payload):
        host, port = srv.server_address[0], srv.server_address[1]
        req = urllib.request.Request(
            f"http://{host}:{port}{path}",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.loads(resp.read())

    def test_metrics_parses_with_content_type(self, server):
        srv, data, eps = server
        status, ctype, text = self._get(srv, "/metrics")
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        fams = parse_prometheus_text(text)
        assert "repro_service_queue_depth" in fams
        assert "repro_cache_hits_total" in fams
        assert "repro_fork_recoveries" in fams

    def test_http_requests_counted_per_endpoint(self, server):
        srv, data, eps = server
        self._post(srv, "/range", {"queries": data[:2].tolist()})
        self._get(srv, "/healthz")
        _, _, text = self._get(srv, "/metrics")
        fams = parse_prometheus_text(text)
        reqs = fams["repro_http_requests_total"]
        assert reqs[
            (("endpoint", "range"), ("status", "200"))
        ] >= 1.0
        assert reqs[
            (("endpoint", "healthz"), ("status", "200"))
        ] >= 1.0
        lat = fams["repro_http_request_seconds_count"]
        assert lat[(("endpoint", "range"),)] >= 1.0

    def test_unknown_paths_share_other_label(self, server):
        srv, _, _ = server
        with pytest.raises(urllib.error.HTTPError):
            self._get(srv, "/nope/123")
        with pytest.raises(urllib.error.HTTPError):
            self._get(srv, "/also/nope")
        _, _, text = self._get(srv, "/metrics")
        reqs = parse_prometheus_text(text)["repro_http_requests_total"]
        assert reqs[(("endpoint", "other"), ("status", "404"))] == 2.0
        endpoints = {dict(k).get("endpoint") for k in reqs}
        assert "/nope/123" not in endpoints  # bounded cardinality

    def test_stats_and_metrics_agree_over_http(self, server):
        srv, data, eps = server
        for _ in range(4):
            self._post(srv, "/range", {"queries": data[:2].tolist()})
        _, stats_body = 200, json.loads(self._get(srv, "/stats")[2])
        _, _, text = self._get(srv, "/metrics")
        fams = parse_prometheus_text(text)
        assert stats_body["requests_served"] == fams[
            "repro_service_requests_served_total"
        ][()]
        assert stats_body["cache"]["hits"] == fams[
            "repro_cache_hits_total"
        ][()]

    def test_counters_monotone_under_concurrent_hammer(self, server):
        srv, data, eps = server
        stop = threading.Event()
        errors = []

        def hammer():
            while not stop.is_set():
                try:
                    self._post(
                        srv, "/range", {"queries": data[:2].tolist()}
                    )
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for t in threads:
            t.start()
        last_served = -1.0
        last_http = -1.0
        try:
            for _ in range(10):
                _, _, text = self._get(srv, "/metrics")
                fams = parse_prometheus_text(text)
                served = fams["repro_service_requests_served_total"][()]
                # Labeled counters render no samples until first inc --
                # the first scrape can race ahead of the first request.
                http_total = sum(
                    fams.get("repro_http_requests_total", {}).values()
                )
                assert served >= last_served
                assert http_total >= last_http
                last_served, last_http = served, http_total
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10.0)
        assert errors == []
        assert last_served > 0
