"""Tests for the XOR swizzle, Eq. 2 and Figures 5-6 (repro.gpusim.swizzle)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.smem import CHUNKS_PER_ROW, bank_group_of_chunk, conflict_degree
from repro.gpusim.swizzle import (
    layout,
    load_phase_addresses,
    row_major_chunk_addr,
    store_phase_addresses,
    swizzled_chunk_addr,
    unswizzle_chunk_addr,
)


class TestEquation2:
    def test_matches_paper_figure6(self):
        """Figure 6: row i's slice s lands in bank group s XOR (i mod 8)."""
        for i in range(8):
            for s in range(8):
                addr = swizzled_chunk_addr(i, s)
                assert bank_group_of_chunk(addr) == (s ^ i)

    def test_row_zero_unchanged(self):
        # XOR with 0: the first point's row is stored unswizzled.
        for s in range(8):
            assert swizzled_chunk_addr(0, s) == s

    def test_rows_stay_in_their_region(self):
        # Swizzling permutes within a row's 8 chunks, never across rows.
        for i in range(32):
            addrs = swizzled_chunk_addr(np.full(8, i), np.arange(8))
            assert addrs.min() == 8 * i and addrs.max() == 8 * i + 7

    @given(st.integers(0, 10**6), st.integers(0, 7))
    @settings(max_examples=300, deadline=None)
    def test_unswizzle_inverts(self, i, s):
        addr = swizzled_chunk_addr(i, s)
        ri, rs = unswizzle_chunk_addr(addr)
        assert (ri, rs) == (i, s)

    @given(st.integers(0, 10**4))
    @settings(max_examples=200, deadline=None)
    def test_bijection_per_row(self, i):
        addrs = swizzled_chunk_addr(np.full(8, i), np.arange(8))
        assert len(set(addrs.tolist())) == 8


class TestConflictProperties:
    def test_ldmatrix_phase_conflict_free_swizzled(self):
        """Paper's central claim: every load phase hits 8 distinct groups."""
        lay = layout(True)
        for base in range(0, 120, 8):
            for s in range(8):
                assert conflict_degree(load_phase_addresses(lay, base, s)) == 1

    def test_ldmatrix_phase_8way_row_major(self):
        """Figure 5 contrast: row-major gives 8-way conflicts on loads."""
        lay = layout(False)
        for s in range(8):
            assert conflict_degree(load_phase_addresses(lay, 0, s)) == 8

    def test_store_phase_conflict_free_both_layouts(self):
        """Stores are conflict-free with or without the swizzle (Sec 3.3.8)."""
        for swz in (True, False):
            lay = layout(swz)
            for i in range(16):
                assert conflict_degree(store_phase_addresses(lay, i)) == 1

    @given(st.integers(0, 15), st.integers(0, 7))
    @settings(max_examples=100, deadline=None)
    def test_load_phase_property(self, block, s):
        """Any aligned 8-row load phase is conflict-free when swizzled."""
        addrs = load_phase_addresses(layout(True), block * 8, s)
        assert conflict_degree(addrs) == 1


class TestLayoutSelector:
    def test_selects(self):
        assert layout(True) is swizzled_chunk_addr
        assert layout(False) is row_major_chunk_addr

    def test_row_major_identity(self):
        assert row_major_chunk_addr(3, 5) == 3 * CHUNKS_PER_ROW + 5
