"""Tests for the shared-memory bank model (repro.gpusim.smem)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.smem import (
    BANK_WIDTH,
    CHUNKS_PER_ROW,
    NUM_BANKS,
    SharedMemory,
    bank_group_of_chunk,
    bank_of_byte,
    conflict_degree,
)


class TestBankArithmetic:
    def test_bank_of_byte_wraps(self):
        assert bank_of_byte(0) == 0
        assert bank_of_byte(4) == 1
        assert bank_of_byte(BANK_WIDTH * NUM_BANKS) == 0

    def test_bank_group_wraps(self):
        assert bank_group_of_chunk(0) == 0
        assert bank_group_of_chunk(7) == 7
        assert bank_group_of_chunk(8) == 0

    def test_vectorized(self):
        groups = bank_group_of_chunk(np.arange(16))
        assert groups.tolist() == list(range(8)) * 2


class TestConflictDegree:
    def test_distinct_groups_no_conflict(self):
        assert conflict_degree(np.arange(8)) == 1

    def test_same_address_broadcast(self):
        # Identical addresses broadcast -- not a conflict.
        assert conflict_degree(np.zeros(8, dtype=int)) == 1

    def test_full_conflict(self):
        # 8 distinct addresses in the same group: 8-way serialization.
        assert conflict_degree(np.arange(8) * 8) == 8

    def test_partial_conflict(self):
        addrs = np.array([0, 8, 1, 2, 3, 4, 5, 6])  # two in group 0
        assert conflict_degree(addrs) == 2

    def test_empty(self):
        assert conflict_degree(np.array([], dtype=int)) == 1

    @given(st.lists(st.integers(0, 1023), min_size=1, max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_degree_bounds(self, addrs):
        deg = conflict_degree(np.array(addrs))
        assert 1 <= deg <= len(addrs)

    @given(st.lists(st.integers(0, 1023), min_size=1, max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_degree_invariant_under_permutation(self, addrs):
        a = np.array(addrs)
        rng = np.random.default_rng(0)
        assert conflict_degree(a) == conflict_degree(rng.permutation(a))


class TestSharedMemory:
    def test_store_load_roundtrip(self):
        smem = SharedMemory(n_chunks=64)
        vals = np.arange(8 * 8, dtype=np.float16).reshape(8, 8)
        addrs = np.arange(8) * 8
        smem.store_phase(addrs, vals)
        out, deg = smem.load_phase(addrs)
        assert np.array_equal(out, vals)
        assert deg == 8  # all in group 0: fully conflicting

    def test_stats_accumulate(self):
        smem = SharedMemory(n_chunks=64)
        smem.store_phase(np.arange(8), np.zeros((8, 8), dtype=np.float16))
        smem.load_phase(np.arange(8))
        assert smem.stats.store_phases == 1
        assert smem.stats.store_transactions == 1
        assert smem.stats.load_phases == 1
        assert smem.stats.load_transactions == 1
        assert smem.stats.conflict_rate == 0.0

    def test_conflict_rate_definition(self):
        smem = SharedMemory(n_chunks=128)
        smem.load_phase(np.arange(8) * 8)  # 8-way conflict
        # 1 phase, 8 transactions -> 7/8 replays.
        assert smem.stats.conflict_rate == pytest.approx(1 - 1 / 8)

    def test_reset_stats_keeps_data(self):
        smem = SharedMemory(n_chunks=16)
        vals = np.ones((8, 8), dtype=np.float16)
        smem.store_phase(np.arange(8), vals)
        smem.reset_stats()
        assert smem.stats.store_phases == 0
        out, _ = smem.load_phase(np.arange(8))
        assert np.array_equal(out, vals)

    def test_misaligned_shift(self):
        aligned = SharedMemory(n_chunks=16)
        misaligned = SharedMemory(n_chunks=16, aligned=False)
        assert aligned.misalignment_shift == 0
        assert misaligned.misalignment_shift == CHUNKS_PER_ROW // 2


class TestPaperConstants:
    def test_32_banks_4_bytes(self):
        """Paper Section 3.3.8: 'Shared memory contains 32 discrete 4B banks'."""
        assert NUM_BANKS == 32
        assert BANK_WIDTH == 4
        assert CHUNKS_PER_ROW * 16 == NUM_BANKS * BANK_WIDTH  # 128 B row
