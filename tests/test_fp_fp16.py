"""Tests for FP16 quantization helpers (repro.fp.fp16)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.fp16 import (
    FP16_MAX,
    FP16_MIN_NORMAL,
    dynamic_range_report,
    fp16_overflow_mask,
    quantize_fp16,
    to_fp16,
)


class TestToFp16:
    def test_dtype(self):
        out = to_fp16(np.array([1.0, 2.0]))
        assert out.dtype == np.float16

    def test_exact_values_preserved(self):
        # Small integers and powers of two are exact in FP16.
        vals = np.array([0.0, 1.0, -2.0, 0.5, 1024.0, -0.25])
        assert np.array_equal(to_fp16(vals).astype(np.float64), vals)

    def test_overflow_to_inf(self):
        out = to_fp16(np.array([1e6, -1e6]))
        assert np.isinf(out[0]) and out[0] > 0
        assert np.isinf(out[1]) and out[1] < 0

    def test_fp16_max_is_finite(self):
        assert np.isfinite(to_fp16(np.array([FP16_MAX]))[0])

    def test_shape_preserved(self):
        assert to_fp16(np.zeros((3, 4, 5))).shape == (3, 4, 5)


class TestQuantize:
    def test_returns_float32(self):
        assert quantize_fp16(np.array([1.1])).dtype == np.float32

    def test_idempotent(self):
        x = np.linspace(-100, 100, 1001)
        q1 = quantize_fp16(x)
        q2 = quantize_fp16(q1)
        assert np.array_equal(q1, q2)

    @given(
        st.lists(
            st.floats(min_value=-60000, max_value=60000, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_relative_error_bound(self, vals):
        """Quantization error of normal-range values <= FP16 unit roundoff."""
        x = np.array(vals, dtype=np.float64)
        normal = np.abs(x) >= FP16_MIN_NORMAL
        q = quantize_fp16(x).astype(np.float64)
        u = 2.0**-11  # half-precision unit roundoff
        rel = np.abs(q[normal] - x[normal]) / np.abs(x[normal])
        assert np.all(rel <= u)


class TestOverflowMask:
    def test_basic(self):
        x = np.array([0.0, FP16_MAX, FP16_MAX * 1.01, -1e9])
        assert fp16_overflow_mask(x).tolist() == [False, False, True, True]


class TestDynamicRangeReport:
    def test_well_scaled_data_fits(self):
        rng = np.random.default_rng(0)
        rep = dynamic_range_report(rng.normal(0, 10, size=(100, 8)))
        assert rep.fits
        assert rep.n_overflow == 0
        assert rep.max_rel_error <= 2.0**-11
        assert rep.recommended_scale == 1.0

    def test_overflowing_data(self):
        rep = dynamic_range_report(np.array([1e5, 1.0]))
        assert not rep.fits
        assert rep.n_overflow == 1
        assert rep.recommended_scale < 1.0
        # Applying the recommended scale must eliminate overflow.
        rep2 = dynamic_range_report(np.array([1e5, 1.0]) * rep.recommended_scale)
        assert rep2.fits

    def test_subnormal_counted(self):
        rep = dynamic_range_report(np.array([1e-6, 1.0]))
        assert rep.n_subnormal == 1

    def test_empty(self):
        rep = dynamic_range_report(np.array([]))
        assert rep.fits and rep.max_abs == 0.0

    def test_all_zero(self):
        rep = dynamic_range_report(np.zeros(10))
        assert rep.fits and rep.recommended_scale == 1.0
