"""Chaos suite: every fault point driven to a typed error or a clean recovery.

The fault-injection harness (:mod:`repro.faults`) is only worth having if
each instrumented layer demonstrably survives its faults, so this module
pins the fault-tolerance contracts end to end:

* **Persistence** -- ``SIGKILL`` at any point inside ``save_index``
  leaves either the old index or the new one fully loadable (never a torn
  directory); corruption and truncation are caught by ``verify=`` levels
  *before* any payload is handed to a query engine, as typed
  :class:`~repro.index.persist.CorruptIndexError`.
* **Execution** -- a killed fork-pool child is retried inline with
  bit-identical results; a mid-stream source fault aborts the streaming
  executors without leaking spill chunks.
* **Serving** -- a full admission queue answers
  :class:`~repro.service.ServiceOverloaded` / HTTP 429 within 50 ms,
  ``stop(drain=True)`` fails queued waiters fast with
  :class:`~repro.service.ServiceShuttingDown` (never abandons them), stale
  requests die as :class:`~repro.service.DeadlineExceeded`, every HTTP
  failure mode is well-formed JSON, and the retrying client rides out
  transient 429s.

Faults are armed programmatically per test (an autouse fixture disarms
between tests) or via ``REPRO_FAULTS`` in subprocesses -- the same knob
the CI chaos leg uses.
"""

import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np
import pytest

import repro
from repro import faults
from repro.core import engine
from repro.core.api import build_index, open_index
from repro.core.engine import (
    norm_expansion_sq_dists,
    process_candidate_self_join,
    streaming_self_join,
)
from repro.core.results import PairAccumulator
from repro.core.selectivity import epsilon_for_selectivity
from repro.data.source import ArraySource
from repro.index.delta import MutableIndex, read_manifest
from repro.index.grid import GridIndex
from repro.index.persist import (
    HEADER_NAME,
    SAVING_SUFFIX,
    CorruptIndexError,
    load_index,
    read_header,
    verify_index,
)
from repro.service import (
    DeadlineExceeded,
    IndexCache,
    QueryService,
    ServiceClient,
    ServiceOverloaded,
    ServiceShuttingDown,
    ServiceUnavailable,
    make_server,
)

_SRC = str(Path(repro.__file__).resolve().parents[1])


@pytest.fixture(autouse=True)
def _clean_faults():
    """Every test starts and ends disarmed, with a reseeded fault RNG."""
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(scope="module")
def served_index(tmp_path_factory):
    """One persisted grid index shared by the service-layer tests."""
    rng = np.random.default_rng(7)
    data = rng.normal(size=(500, 12))
    eps = float(epsilon_for_selectivity(data, 8))
    path = tmp_path_factory.mktemp("served") / "idx"
    build_index(data, eps, path)
    return path, data, eps


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(faults.ENV_VAR, None)
    return env


# ----------------------------------------------------------------------
# Harness mechanics
# ----------------------------------------------------------------------


class TestHarness:
    def test_disarmed_by_default(self):
        assert faults.ARMED is False
        assert faults.active() == {}
        assert faults.check("persist.write") is None

    def test_arm_validates_inputs(self):
        with pytest.raises(ValueError):
            faults.arm("no.such.point", "error")
        with pytest.raises(ValueError):
            faults.arm("persist.write", "explode")
        with pytest.raises(ValueError):
            faults.arm("persist.write", "error", prob=1.5)

    def test_armed_gate_tracks_spec_lifecycle(self):
        assert faults.ARMED is False
        faults.arm("source.read", "delay", param=0.0)
        assert faults.ARMED is True
        faults.disarm("source.read")
        assert faults.ARMED is False

    def test_count_bounds_firing(self):
        faults.arm("source.read", "error", count=2)
        for _ in range(2):
            with pytest.raises(faults.FaultError):
                faults.check("source.read")
        assert faults.check("source.read") is None
        assert faults.active()["source.read"].fired == 2

    def test_after_skips_early_evaluations(self):
        faults.arm("source.read", "error", after=2)
        assert faults.check("source.read") is None
        assert faults.check("source.read") is None
        with pytest.raises(faults.FaultError):
            faults.check("source.read")

    def test_probability_is_seeded_and_roughly_honored(self):
        faults.arm("source.read", "error", prob=0.4, seed=7)
        fired = 0
        for _ in range(300):
            try:
                faults.check("source.read")
            except faults.FaultError:
                fired += 1
        assert 60 < fired < 180  # ~120 expected; wide deterministic band

    def test_corrupt_kind_returns_marker(self):
        faults.arm("persist.payload", "corrupt")
        assert faults.check("persist.payload") == "corrupt"

    def test_corrupt_file_flips_one_byte(self, tmp_path):
        p = tmp_path / "blob"
        payload = bytes(range(64))
        p.write_bytes(payload)
        faults.corrupt_file(p)
        after = p.read_bytes()
        assert len(after) == len(payload)
        assert sum(a != b for a, b in zip(payload, after)) == 1

    def test_env_parsing(self):
        specs = faults.configure_from_env(
            "persist.write:error:0.5, service.dispatch:delay:1.0:0.02"
        )
        assert {s.point for s in specs} == {"persist.write", "service.dispatch"}
        assert faults.active()["persist.write"].prob == 0.5
        assert faults.active()["service.dispatch"].param == 0.02
        with pytest.raises(ValueError):
            faults.configure_from_env("garbage")
        assert faults.configure_from_env("") == []

    def test_env_arms_at_import_in_subprocess(self):
        env = _subprocess_env()
        env[faults.ENV_VAR] = "worker.exec:error:0.25"
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro import faults; import json; "
                "print(json.dumps({p: [s.kind, s.prob] "
                "for p, s in faults.active().items()}))",
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert out.returncode == 0, out.stderr
        assert json.loads(out.stdout) == {"worker.exec": ["error", 0.25]}

    def test_malformed_env_fails_loudly_in_subprocess(self):
        env = _subprocess_env()
        env[faults.ENV_VAR] = "not-a-spec"
        out = subprocess.run(
            [sys.executable, "-c", "import repro.faults"],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert out.returncode != 0
        assert "ValueError" in out.stderr


# ----------------------------------------------------------------------
# Crash-safe persistence
# ----------------------------------------------------------------------

# Builds (deterministically, from the seed) and saves an index, with a
# kill fault armed somewhere inside save_index.  The print never runs.
_KILL_SAVE_SCRIPT = """
import sys
import numpy as np
from repro import faults
from repro.core.api import build_index
from repro.core.selectivity import epsilon_for_selectivity

point, after, path, seed = (
    sys.argv[1], int(sys.argv[2]), sys.argv[3], int(sys.argv[4])
)
rng = np.random.default_rng(seed)
data = rng.normal(size=(250, 8))
eps = float(epsilon_for_selectivity(data, 8))
faults.arm(point, "kill", after=after)
build_index(data, eps, path)
print("SURVIVED")
"""

#: Kill sites spanning the save: the first payload write, a mid-save
#: payload write, and the instant before the atomic commit.
_KILL_SITES = [("persist.payload", 0), ("persist.payload", 2), ("persist.write", 0)]


def _save_killed_at(point, after, path, seed):
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            _KILL_SAVE_SCRIPT,
            point,
            str(after),
            str(path),
            str(seed),
        ],
        env=_subprocess_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, (proc.returncode, proc.stderr)
    assert "SURVIVED" not in proc.stdout
    return proc


def _reference_build(path, seed):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(250, 8))
    eps = float(epsilon_for_selectivity(data, 8))
    build_index(data, eps, path)


class TestCrashSafePersistence:
    def test_kill_during_fresh_save_leaves_no_index(self, tmp_path):
        path = tmp_path / "fresh"
        for point, after in _KILL_SITES:
            _save_killed_at(point, after, path, seed=1)
            assert not path.exists()
        # The latest interrupted attempt left staging debris behind (each
        # save GCs its predecessors' debris on entry) ...
        stale = list(tmp_path.glob(f"fresh{SAVING_SUFFIX}*"))
        assert len(stale) == 1
        # ... which the next (clean) save garbage-collects on its way in.
        _reference_build(path, seed=1)
        loaded = load_index(path, verify="full")
        assert loaded.index.n_points == 250
        assert not list(tmp_path.glob(f"fresh{SAVING_SUFFIX}*"))

    def test_kill_during_replacement_keeps_old_generation(self, tmp_path):
        path = tmp_path / "repl"
        _reference_build(path, seed=1)
        before = read_header(path)
        for point, after in _KILL_SITES:
            _save_killed_at(point, after, path, seed=2)
            # The commit never happened: byte-identical header, payloads
            # that still pass full checksum verification.
            assert read_header(path) == before
            load_index(path, verify="full")
        # A clean replacement then commits the new generation and GCs
        # every stale staging dir and orphaned payload.
        _reference_build(path, seed=2)
        after_header = read_header(path)
        assert after_header != before
        load_index(path, verify="full")
        assert not list(tmp_path.glob(f"repl{SAVING_SUFFIX}*"))
        referenced = {e["file"] for e in after_header["arrays"].values()}
        if after_header.get("data_embedded"):
            referenced.add(after_header["data"])
        on_disk = {p.name for p in path.iterdir()} - {HEADER_NAME}
        assert on_disk == referenced

    @pytest.mark.parametrize("kind", ["grid", "mstree"])
    def test_corrupt_payload_caught_by_full_verify(self, tmp_path, kind):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(300, 8))
        eps = float(epsilon_for_selectivity(data, 8))
        path = tmp_path / kind
        build_index(data, eps, path, kind=kind)
        header = read_header(path)
        victim = path / next(iter(header["arrays"].values()))["file"]
        # Flip a byte of real array data (the npy payload tail), past the
        # npy format header: the cheap level passes, the checksum level
        # and the loader both refuse before any payload reaches a query.
        faults.corrupt_file(victim, offset=victim.stat().st_size - 16)
        load_index(path, verify="header")
        load_index(path, verify="off")
        with pytest.raises(CorruptIndexError):
            load_index(path, verify="full")
        with pytest.raises(CorruptIndexError):
            open_index(path, verify="full")

    @pytest.mark.parametrize("kind", ["grid", "mstree"])
    def test_truncated_payload_caught_by_header_verify(self, tmp_path, kind):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(300, 8))
        eps = float(epsilon_for_selectivity(data, 8))
        path = tmp_path / kind
        build_index(data, eps, path, kind=kind)
        header = read_header(path)
        victim = path / next(iter(header["arrays"].values()))["file"]
        with open(victim, "r+b") as fh:
            fh.truncate(victim.stat().st_size - 8)
        with pytest.raises(CorruptIndexError):
            load_index(path, verify="header")
        with pytest.raises(CorruptIndexError):
            load_index(path, verify="full")

    def test_header_corruption_is_typed(self, tmp_path):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(200, 6))
        eps = float(epsilon_for_selectivity(data, 8))
        path = tmp_path / "idx"
        build_index(data, eps, path)
        header_path = path / HEADER_NAME
        good = header_path.read_bytes()

        header_path.write_bytes(b"{ this is not json")
        with pytest.raises(CorruptIndexError):
            read_header(path)
        header_path.write_bytes(good[: len(good) // 2])  # torn write
        with pytest.raises(CorruptIndexError):
            read_header(path)
        # Wrong magic is an incompatibility, not corruption.
        junk = json.loads(good)
        junk["magic"] = "nope"
        header_path.write_bytes(json.dumps(junk).encode())
        with pytest.raises(ValueError):
            read_header(path)
        with pytest.raises(ValueError):
            read_header(tmp_path / "does-not-exist")

    def test_injected_payload_corruption_roundtrip(self, tmp_path):
        """The persist.payload corrupt fault is caught by verify='full'."""
        rng = np.random.default_rng(6)
        data = rng.normal(size=(200, 6))
        eps = float(epsilon_for_selectivity(data, 8))
        path = tmp_path / "idx"
        faults.arm("persist.payload", "corrupt", count=1)
        build_index(data, eps, path)
        faults.disarm()
        verify_index(path, level="header")  # the flip preserves sizes
        with pytest.raises(CorruptIndexError):
            load_index(path, verify="full")
        try:
            load_index(path, verify="header")
        except CorruptIndexError:
            pass  # byte landed in an npy format header: still typed


# ----------------------------------------------------------------------
# Executor failure recovery
# ----------------------------------------------------------------------


def _chaos_dataset(seed, n=600, d=8):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, d))
    eps = float(epsilon_for_selectivity(data, 10))
    return np.ascontiguousarray(data), eps


class TestExecutorRecovery:
    @pytest.mark.skipif(
        not engine._fork_available(), reason="fork start method unavailable"
    )
    def test_killed_fork_children_recover_bit_identical(self):
        data, eps = _chaos_dataset(11)
        idx = GridIndex(data, eps, n_dims=4)
        sq = (data * data).sum(axis=1)
        eps2 = eps * eps
        serial = process_candidate_self_join(
            idx.iter_cells(), data, sq, eps2, workers=0
        )
        before = engine.FORK_RECOVERIES
        faults.arm("worker.exec", "kill", prob=0.3, seed=123)
        chaotic = process_candidate_self_join(
            idx.iter_cells(), data, sq, eps2, workers=2, group_batch=8
        )
        faults.disarm()
        assert engine.FORK_RECOVERIES > before  # children actually died
        si, sj, sd = serial.arrays()
        ci, cj, cd = chaotic.arrays()
        np.testing.assert_array_equal(si, ci)
        np.testing.assert_array_equal(sj, cj)
        assert np.array_equal(sd.view(np.uint64), cd.view(np.uint64))

    @pytest.mark.skipif(
        not engine._fork_available(), reason="fork start method unavailable"
    )
    def test_worker_error_fault_propagates(self):
        data, eps = _chaos_dataset(12, n=300)
        idx = GridIndex(data, eps, n_dims=4)
        sq = (data * data).sum(axis=1)
        faults.arm("worker.exec", "error")
        with pytest.raises(faults.FaultError):
            process_candidate_self_join(
                idx.iter_cells(), data, sq, eps * eps, workers=2, group_batch=8
            )

    def test_source_read_fault_propagates_and_clears(self):
        data, _ = _chaos_dataset(13, n=200)
        src = ArraySource(data)
        ok = src.load_block(0, 50)
        faults.arm("source.read", "error")
        with pytest.raises(faults.FaultError):
            src.load_block(0, 50)
        faults.disarm()
        np.testing.assert_array_equal(src.load_block(0, 50), ok)

    def test_streaming_fault_cleans_up_spill_chunks(self, tmp_path):
        data, eps = _chaos_dataset(14, n=400)
        eps2 = eps * eps

        def prepare(block):
            return block, (block * block).sum(axis=1)

        def dists(row, col):
            return norm_expansion_sq_dists(row[1], col[1], row[0] @ col[0].T)

        spill_dir = tmp_path / "spill"
        acc = PairAccumulator(spill_threshold_bytes=2048, spill_dir=spill_dir)
        faults.arm("source.read", "error", after=12)  # fail mid-stream
        with pytest.raises(faults.FaultError):
            streaming_self_join(
                ArraySource(data), eps2, prepare, dists, row_block=40, acc=acc
            )
        assert not spill_dir.exists() or not any(spill_dir.iterdir())


# ----------------------------------------------------------------------
# Admission control, deadlines, graceful shutdown
# ----------------------------------------------------------------------


class TestAdmissionControl:
    def test_overload_rejects_within_50ms(self, served_index):
        path, data, eps = served_index
        q = data[:4]
        svc = QueryService(max_queue_depth=2, max_delay_s=0.001)
        faults.arm("service.dispatch", "delay", param=0.3)
        try:
            handles = [svc.submit(path, q, eps=eps)]
            time.sleep(0.08)  # dispatcher is asleep inside the first batch
            handles += [svc.submit(path, q, eps=eps) for _ in range(2)]
            t0 = time.monotonic()
            with pytest.raises(ServiceOverloaded) as excinfo:
                svc.submit(path, q, eps=eps)
            assert time.monotonic() - t0 < 0.05
            assert excinfo.value.retry_after > 0
            assert svc.stats()["requests_rejected"] == 1
            faults.disarm()
            for h in handles:  # admitted requests are all served
                assert h.result(timeout=10).n_left == 4
        finally:
            faults.disarm()
            svc.stop()

    def test_stop_drain_fails_queued_requests_fast(self, served_index):
        path, data, eps = served_index
        q = data[:4]
        svc = QueryService(max_queue_depth=8)
        faults.arm("service.dispatch", "delay", param=0.25)
        first = svc.submit(path, q, eps=eps)
        time.sleep(0.05)
        queued = [svc.submit(path, q, eps=eps) for _ in range(3)]
        stopper = threading.Thread(target=svc.stop)
        t0 = time.monotonic()
        stopper.start()
        time.sleep(0.02)
        # New submissions are refused while the stop is in progress.
        with pytest.raises(ServiceShuttingDown):
            svc.submit(path, q, eps=eps)
        stopper.join(timeout=10)
        assert not stopper.is_alive()
        # In-flight work finished; queued waiters got a typed error
        # promptly instead of blocking out their own timeouts.
        assert first.result(timeout=1).n_left == 4
        for h in queued:
            with pytest.raises(ServiceShuttingDown):
                h.result(timeout=1)
        assert time.monotonic() - t0 < 5.0
        # A later submit revives the stopped service.
        faults.disarm()
        res = svc.query(path, q, eps=eps, timeout=10)
        assert res.n_left == 4
        svc.stop()

    def test_stale_requests_fail_with_deadline_exceeded(self, served_index):
        path, data, eps = served_index
        q = data[:4]
        svc = QueryService()
        faults.arm("service.dispatch", "delay", param=0.2)
        try:
            first = svc.submit(path, q, eps=eps)
            time.sleep(0.05)
            late = svc.submit(path, q, eps=eps, deadline_s=0.01)
            with pytest.raises(DeadlineExceeded):
                late.result(timeout=5)
            assert svc.stats()["requests_expired"] >= 1
            faults.disarm()
            assert first.result(timeout=10).n_left == 4
        finally:
            faults.disarm()
            svc.stop()


# ----------------------------------------------------------------------
# HTTP surface + retrying client
# ----------------------------------------------------------------------


@contextmanager
def _serve(index_path, **kwargs):
    server = make_server({"default": index_path}, port=0, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.server_address[1]
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _raw_post(port, path, body, timeout=30.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(
            "POST", path, body=body, headers={"Content-Type": "application/json"}
        )
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), json.loads(resp.read())
    finally:
        conn.close()


class TestHttpFaults:
    def test_error_codes_are_wellformed_json(self, served_index):
        path, data, eps = served_index
        with _serve(path, max_body_bytes=4096) as port:
            with ServiceClient(port=port) as client:
                assert client.healthz()["status"] == "ok"
                status, body = client.request("GET", "/nope")
                assert status == 404 and "error" in body
            assert _raw_post(port, "/nope", b"{}")[0] == 404
            status, _, body = _raw_post(port, "/range", b"this is not json")
            assert status == 400 and "error" in body
            status, _, body = _raw_post(port, "/range", b'["not", "a", "dict"]')
            assert status == 400 and "object" in body["error"]
            status, _, body = _raw_post(
                port,
                "/range",
                json.dumps({"index": "ghost", "queries": data[:1].tolist()}).encode(),
            )
            assert status == 404 and body["indexes"] == ["default"]
            status, _, body = _raw_post(port, "/range", b" " * 8192)
            assert status == 413 and "4096" in body["error"]
            # An unexpected dispatcher explosion is a JSON 500, not a
            # dropped connection or an HTML stack trace.
            faults.arm("service.dispatch", "error", count=1)
            status, _, body = _raw_post(
                port,
                "/range",
                json.dumps({"queries": data[:2].tolist(), "eps": eps}).encode(),
            )
            assert status == 500 and "FaultError" in body["error"]
            faults.disarm()
            status, _, body = _raw_post(
                port,
                "/range",
                json.dumps({"queries": data[:2].tolist(), "eps": eps}).encode(),
            )
            assert status == 200 and body["n_queries"] == 2

    def test_overloaded_server_answers_429_within_50ms(self, served_index):
        path, data, eps = served_index
        payload = json.dumps({"queries": data[:2].tolist(), "eps": eps}).encode()
        with _serve(path, max_queue_depth=1) as port:
            faults.arm("service.dispatch", "delay", param=0.4)
            background = []
            results = []
            for _ in range(2):  # one in flight + one filling the queue
                t = threading.Thread(
                    target=lambda: results.append(_raw_post(port, "/range", payload))
                )
                t.start()
                background.append(t)
                time.sleep(0.05)
            t0 = time.monotonic()
            status, headers, body = _raw_post(port, "/range", payload, timeout=5)
            elapsed = time.monotonic() - t0
            faults.disarm()
            for t in background:
                t.join(timeout=30)
            assert status == 429
            assert elapsed < 0.05
            assert float(headers["Retry-After"]) > 0
            assert body["retry_after"] > 0
            assert [s for s, _, _ in results] == [200, 200]

    def test_client_retries_through_transient_429(self, served_index):
        path, data, eps = served_index
        payload = json.dumps({"queries": data[:2].tolist(), "eps": eps}).encode()
        with _serve(path, max_queue_depth=1) as port:
            faults.arm("service.dispatch", "delay", param=0.4, count=1)
            background = []
            for _ in range(2):
                t = threading.Thread(
                    target=lambda: _raw_post(port, "/range", payload)
                )
                t.start()
                background.append(t)
                time.sleep(0.05)
            client = ServiceClient(
                port=port, max_attempts=10, base_delay_s=0.05, seed=1
            )
            res = client.range_query(data[:2].tolist(), eps=eps)
            for t in background:
                t.join(timeout=30)
            assert res["n_queries"] == 2
            assert client.retries > 0  # it was actually turned away first

    def test_client_gives_up_with_typed_error(self):
        with socket.socket() as s:  # grab a port nothing listens on
            s.bind(("127.0.0.1", 0))
            port = s.getsockname()[1]
        client = ServiceClient(
            port=port, max_attempts=2, timeout=1.0, base_delay_s=0.01
        )
        with pytest.raises(ServiceUnavailable):
            client.healthz()
        assert client.retries >= 1


# ----------------------------------------------------------------------
# Cache staleness (satellite regression)
# ----------------------------------------------------------------------


class TestCacheStaleness:
    def test_rebuild_within_mtime_granularity_not_served_stale(self, tmp_path):
        """The digest-keyed cache sees a rebuild even at identical mtime."""
        path = tmp_path / "idx"
        _reference_build(path, seed=1)
        header_path = path / HEADER_NAME
        st = header_path.stat()
        cache = IndexCache(capacity=2)
        first = cache.get(path)
        assert cache.get(path) is first and cache.hits == 1
        _reference_build(path, seed=2)  # in-place replacement
        # Pin the header's timestamps back to the first generation's: an
        # mtime-keyed cache could not tell the generations apart.
        os.utime(header_path, (st.st_atime, st.st_mtime))
        second = cache.get(path)
        assert second is not first
        assert cache.misses == 2


# ----------------------------------------------------------------------
# Mutable store chaos (LSM delta layer: seal + compaction)
# ----------------------------------------------------------------------

# Opens an existing mutable store, applies deterministic mutations, then
# runs one seal or compaction with a kill fault armed inside it.  The
# deletes commit *before* arming, so they are durable in every outcome;
# the appended rows live in the volatile buffer until the sealed segment
# (or the compacted base) commits.  The print never runs.
_KILL_MUTABLE_SCRIPT = """
import sys
import numpy as np
from repro import faults
from repro.index.delta import MutableIndex

op, point, after, path = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), sys.argv[4]
)
rng = np.random.default_rng(77)
mut = MutableIndex(path)
mut.delete([0, 1, 2])
mut.append(rng.normal(size=(20, 6)))
if op == "compact":
    mut.seal()  # commit the segment cleanly; the kill targets compaction
faults.arm(point, "kill", after=after)
getattr(mut, op)()
print("SURVIVED")
"""

#: Kill sites spanning a seal or a compaction: payload writes inside the
#: inner ``save_index`` (first and mid-save), its directory commit, and
#: the ``state.json`` atomic replace -- the store-level commit point.
_MUTABLE_KILL_SITES = [
    ("persist.payload", 0),
    ("persist.payload", 2),
    ("persist.write", 0),
    ("persist.write", 1),
]


def _mutable_store(tmp_path, n=150, d=6, seed=71):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, d))
    eps = float(epsilon_for_selectivity(data, 8))
    root = tmp_path / "mut"
    MutableIndex.create(root, data, eps)
    return root, data, eps


def _mutation_killed_at(op, point, after, root):
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            _KILL_MUTABLE_SCRIPT,
            op,
            point,
            str(after),
            str(root),
        ],
        env=_subprocess_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, (proc.returncode, proc.stderr)
    assert "SURVIVED" not in proc.stdout
    return proc


class TestMutableStoreChaos:
    @pytest.mark.parametrize("point,after", _MUTABLE_KILL_SITES)
    def test_kill_during_seal_reloads_old_or_new(self, tmp_path, point, after):
        root, data, _eps = _mutable_store(tmp_path)
        _mutation_killed_at("seal", point, after, root)
        mut = MutableIndex(root, verify="full")
        old = np.arange(3, 150, dtype=np.int64)
        new = np.concatenate([old, np.arange(150, 170, dtype=np.int64)])
        got = mut.live_ids()
        want = old if got.size == old.size else new
        np.testing.assert_array_equal(got, want)
        # Deletes are durable in every outcome, and the reloaded store
        # still answers queries without surfacing a tombstoned row.
        res = mut.range_query(data[:5])
        assert not np.isin(res.pairs_j, [0, 1, 2]).any()

    @pytest.mark.parametrize("point,after", _MUTABLE_KILL_SITES)
    def test_kill_during_compaction_never_half_compacted(
        self, tmp_path, point, after
    ):
        root, data, eps = _mutable_store(tmp_path)
        _mutation_killed_at("compact", point, after, root)
        mut = MutableIndex(root, verify="full")
        # The live set was fully durable before the kill (the segment
        # sealed cleanly), so it is identical in the old and the new
        # generation -- only the layering may differ, and it is never
        # partial: one intact segment or a fully folded base.
        rng = np.random.default_rng(77)
        extra = rng.normal(size=(20, 6))
        live_ids = np.concatenate(
            [np.arange(3, 150, dtype=np.int64),
             np.arange(150, 170, dtype=np.int64)]
        )
        np.testing.assert_array_equal(mut.live_ids(), live_ids)
        assert mut.n_segments in (0, 1)
        # Whatever generation survived answers bit-identically to a
        # from-scratch rebuild over the live rows.
        from repro.service.query import QueryEngine

        live_rows = np.concatenate([data[3:], extra])
        ref = QueryEngine(GridIndex(live_rows, eps, n_dims=6), live_rows)
        qrng = np.random.default_rng(78)
        q = data[5:15] + qrng.uniform(-eps / 8, eps / 8, (10, data.shape[1]))
        got, want = mut.range_query(q), ref.range_query(q)
        order = np.lexsort((want.pairs_j, want.pairs_i))
        np.testing.assert_array_equal(got.pairs_i, want.pairs_i[order])
        np.testing.assert_array_equal(
            got.pairs_j, live_ids[want.pairs_j[order]]
        )
        np.testing.assert_array_equal(got.sq_dists, want.sq_dists[order])
        # Reopening GC'd everything the committed manifest does not
        # reference: no half-written generation is left to be served.
        m = read_manifest(root)
        dirs = {p.name for p in root.iterdir() if p.is_dir()}
        assert dirs - {"segments"} == {m["base"]}
        segs = (
            {p.name for p in (root / "segments").iterdir()}
            if (root / "segments").is_dir()
            else set()
        )
        assert segs == {Path(s["dir"]).name for s in m["segments"]}

    def test_corrupt_segment_payload_refused_by_full_verify(self, tmp_path):
        root, _data, _eps = _mutable_store(tmp_path)
        mut = MutableIndex(root)
        mut.append(np.random.default_rng(79).normal(size=(16, 6)))
        faults.arm("persist.payload", "corrupt", count=1)
        mut.seal()
        faults.disarm()
        with pytest.raises(CorruptIndexError):
            MutableIndex(root, verify="full")

    def test_corrupt_compacted_base_refused_by_full_verify(self, tmp_path):
        root, _data, _eps = _mutable_store(tmp_path)
        mut = MutableIndex(root)
        mut.delete([0, 1])
        mut.append(np.random.default_rng(80).normal(size=(12, 6)))
        mut.seal()
        faults.arm("persist.payload", "corrupt", count=1)
        # The flip lands in the freshly-built base: either compaction's
        # own reload refuses it before the commit, or the commit goes
        # through and the next full-verify open refuses it -- the
        # corrupt generation is never served silently.
        try:
            mut.compact()
        except CorruptIndexError:
            faults.disarm()
            reopened = MutableIndex(root, verify="full")
            assert reopened.n_segments == 1  # old generation, intact
        else:
            faults.disarm()
            with pytest.raises(CorruptIndexError):
                MutableIndex(root, verify="full")

    def test_corrupt_tombstone_payload_refused(self, tmp_path):
        root, _data, _eps = _mutable_store(tmp_path)
        mut = MutableIndex(root)
        faults.arm("persist.payload", "corrupt", count=1)
        mut.delete([0])  # commits a manifest with a tombstone side payload
        faults.disarm()
        with pytest.raises(CorruptIndexError):
            MutableIndex(root, verify="full")
