"""Tests for result containers and selectivity calibration (repro.core)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.results import NeighborResult, from_dense_mask
from repro.core.selectivity import (
    epsilon_for_selectivity,
    measured_selectivity,
    sampled_pairwise_distances,
)


def _result(n=10, pairs=((0, 1), (1, 0), (2, 3), (3, 2))):
    ii = np.array([p[0] for p in pairs], dtype=np.int64)
    jj = np.array([p[1] for p in pairs], dtype=np.int64)
    return NeighborResult(n_points=n, eps=1.0, pairs_i=ii, pairs_j=jj)


class TestNeighborResult:
    def test_selectivity_definition(self):
        """S = (|R| - |D|) / |D| with self pairs implicit in |R|."""
        res = _result()
        assert res.selectivity == 0.4
        assert res.total_result_size == 4 + 10

    def test_mismatched_arrays_raise(self):
        with pytest.raises(ValueError):
            NeighborResult(5, 1.0, np.zeros(3, np.int64), np.zeros(2, np.int64))

    def test_sq_dists_must_parallel(self):
        with pytest.raises(ValueError):
            NeighborResult(
                5, 1.0, np.zeros(2, np.int64), np.zeros(2, np.int64),
                sq_dists=np.zeros(3, np.float32),
            )

    def test_neighbor_counts(self):
        counts = _result().neighbor_counts()
        assert counts.tolist() == [1, 1, 1, 1, 0, 0, 0, 0, 0, 0]

    def test_neighbor_sets(self):
        sets = _result().neighbor_sets()
        assert sets[0] == {1} and sets[2] == {3} and sets[5] == set()

    def test_csr_matches_sets(self):
        res = _result(pairs=((0, 1), (0, 3), (1, 0), (3, 0), (1, 3), (3, 1)))
        indptr, indices = res.neighbors_csr()
        sets = res.neighbor_sets()
        for i in range(res.n_points):
            assert set(indices[indptr[i] : indptr[i + 1]].tolist()) == sets[i]

    def test_symmetric(self):
        assert _result().symmetric()
        assert not _result(pairs=((0, 1),)).symmetric()

    def test_sorted_copy(self):
        res = _result(pairs=((3, 2), (0, 1), (2, 3), (1, 0)))
        s = res.sorted_copy()
        assert s.pairs_i.tolist() == [0, 1, 2, 3]

    @given(st.integers(2, 30), st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_from_dense_mask_properties(self, n, seed):
        rng = np.random.default_rng(seed)
        mask = rng.random((n, n)) < 0.3
        mask |= mask.T  # symmetrize
        res = from_dense_mask(mask, eps=1.0)
        assert res.symmetric()
        assert np.all(res.pairs_i != res.pairs_j)
        off_diag = mask.copy()
        np.fill_diagonal(off_diag, False)
        assert res.pairs_i.size == off_diag.sum()

    def test_from_dense_mask_validation(self):
        with pytest.raises(ValueError):
            from_dense_mask(np.zeros((3, 4), dtype=bool), 1.0)


class TestSelectivityCalibration:
    def test_achieves_target_on_gaussian(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(3000, 16))
        for target in (16, 64):
            eps = epsilon_for_selectivity(data, target, sample=512)
            # Verify against exact neighbor counts.
            d2 = ((data[:500, None, :] - data[None, :, :]) ** 2).sum(axis=2)
            counts = (d2 <= eps * eps).sum(axis=1) - 1
            measured = counts.mean()
            assert 0.6 * target <= measured <= 1.6 * target

    def test_monotone_in_target(self):
        data = np.random.default_rng(1).normal(size=(1000, 8))
        e1 = epsilon_for_selectivity(data, 8)
        e2 = epsilon_for_selectivity(data, 64)
        assert e2 > e1

    def test_validation(self):
        data = np.zeros((100, 4))
        with pytest.raises(ValueError):
            epsilon_for_selectivity(data, 0)
        with pytest.raises(ValueError):
            epsilon_for_selectivity(data, 99)

    def test_measured_selectivity(self):
        assert measured_selectivity(640, 10) == 64.0
        assert measured_selectivity(0, 0) == 0.0

    def test_sampled_distances_shape(self):
        data = np.random.default_rng(2).normal(size=(200, 4))
        d = sampled_pairwise_distances(data, sample=50)
        assert d.shape == (50 * 199,)
        assert np.all(d >= 0)

    def test_sample_larger_than_n(self):
        data = np.random.default_rng(3).normal(size=(40, 4))
        d = sampled_pairwise_distances(data, sample=100)
        assert d.shape == (40 * 39,)
