"""Parallel execution subsystem: WorkerPlan, worker determinism, spill
concurrency, and the unified timing-path tile plans.

The engine's contract is that parallel execution may only change *how
fast* the answer is produced: every worker configuration -- thread tiles,
process-pool candidate groups, streaming overlap, spill-enabled
accumulators -- must be bit-identical to serial execution (pair set AND
distance bits), and every kernel's modeled tile schedule must equal the
one the functional path executes.
"""

import threading

import numpy as np
import pytest

from repro.core import api
from repro.core.engine import (
    TILE_CACHE_BUDGET_BYTES,
    TilePlan,
    WorkerPlan,
    symmetric_self_join,
    streaming_self_join,
)
from repro.core.results import PairAccumulator
from repro.core.selectivity import epsilon_for_selectivity
from repro.data.source import ArraySource
from repro.kernels.fasted import FastedKernel
from repro.kernels.gdsjoin import GdsJoinKernel
from repro.kernels.mistic import MisticKernel
from repro.kernels.reference import joins_bit_identical
from repro.kernels.tedjoin import TedJoinKernel


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(7)
    data = rng.normal(size=(600, 32))
    eps = float(epsilon_for_selectivity(data, 16))
    return data, eps


@pytest.fixture(scope="module")
def queries():
    return np.random.default_rng(8).normal(size=(250, 32))


# ----------------------------------------------------------------------
# WorkerPlan resolution
# ----------------------------------------------------------------------


class TestWorkerPlan:
    def test_serial_default(self):
        wp = WorkerPlan.resolve(0)
        assert wp.n_workers == 1 and wp.source == "serial"
        assert not wp.parallel
        assert WorkerPlan.resolve(None).n_workers == 1

    def test_explicit_counts(self):
        assert WorkerPlan.resolve(4).n_workers == 4
        assert WorkerPlan.resolve(4).source == "explicit"
        assert WorkerPlan.resolve(1).parallel is False
        assert WorkerPlan.resolve(2).parallel is True

    def test_resolve_is_idempotent(self):
        wp = WorkerPlan.resolve(3)
        assert WorkerPlan.resolve(wp) is wp

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        wp = WorkerPlan.resolve("auto")
        assert wp.n_workers == 3 and wp.source == "env"
        # The override only governs "auto": explicit counts win.
        assert WorkerPlan.resolve(5).n_workers == 5

    def test_env_override_junk_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            WorkerPlan.resolve("auto")

    def test_env_override_negative_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "-4")
        with pytest.raises(ValueError, match="positive"):
            WorkerPlan.resolve("auto")

    def test_auto_from_topology(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        wp = WorkerPlan.resolve("auto")
        assert wp.source == "auto"
        assert 1 <= wp.n_workers <= WorkerPlan.MAX_AUTO_WORKERS
        if wp.blas_threads is not None:
            assert wp.n_workers <= max(1, wp.cpu_count // wp.blas_threads)
        assert WorkerPlan.resolve(-1).source in ("auto", "env")

    def test_blas_pinning_is_read(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.setenv("OPENBLAS_NUM_THREADS", "1")
        wp = WorkerPlan.resolve("auto")
        assert wp.blas_threads == 1
        assert wp.n_workers == min(wp.cpu_count, WorkerPlan.MAX_AUTO_WORKERS)

    def test_bad_string_raises(self):
        with pytest.raises(ValueError, match="auto"):
            WorkerPlan.resolve("fast")

    def test_negative_counts_other_than_minus_one_raise(self):
        # -1 is "auto"; any other negative is a sign typo, not a plan.
        with pytest.raises(ValueError, match="workers must be"):
            WorkerPlan.resolve(-4)

    def test_tile_rows_fits_budget_and_quantum(self):
        wp = WorkerPlan.resolve(0)
        rows = wp.tile_rows(1 << 20, 64, d2_itemsize=4, work_itemsize=4)
        assert rows % 128 == 0
        assert rows * rows * 4 + 2 * rows * 64 * 4 <= TILE_CACHE_BUDGET_BYTES
        # Caps at n; never returns zero.
        assert wp.tile_rows(100, 64, d2_itemsize=4, work_itemsize=4) == 100
        assert wp.tile_rows(1, 4096, d2_itemsize=8, work_itemsize=8) == 1
        # FP64 tiles are smaller than FP32 tiles at the same budget.
        assert wp.tile_rows(1 << 20, 64, d2_itemsize=8, work_itemsize=8) < rows

    def test_as_dict_round_trip(self):
        d = WorkerPlan.resolve(2).as_dict()
        assert d["n_workers"] == 2 and d["source"] == "explicit"


# ----------------------------------------------------------------------
# Worker determinism: every kernel, every executor shape
# ----------------------------------------------------------------------


class TestWorkerDeterminism:
    @pytest.mark.parametrize("workers", [2, 4, "auto"])
    def test_fasted_threads(self, dataset, workers):
        data, eps = dataset
        serial = FastedKernel().self_join(data, eps)
        assert joins_bit_identical(
            serial, FastedKernel().self_join(data, eps, workers=workers)
        )

    @pytest.mark.parametrize("workers", [2, 4])
    def test_ted_brute_threads(self, dataset, workers):
        data, eps = dataset
        kern = TedJoinKernel(variant="brute")
        serial = kern.self_join(data, eps).result
        assert joins_bit_identical(
            serial, kern.self_join(data, eps, workers=workers).result
        )

    @pytest.mark.parametrize("workers", [2, 4])
    def test_ted_index_process_pool(self, dataset, workers):
        data, eps = dataset
        kern = TedJoinKernel(variant="index")
        serial = kern.self_join(data, eps)
        parallel = kern.self_join(data, eps, workers=workers)
        assert joins_bit_identical(serial.result, parallel.result)
        # The timing statistics ride along unchanged.
        assert serial.total_candidates == parallel.total_candidates

    @pytest.mark.parametrize("workers", [2, 4])
    def test_gds_process_pool(self, dataset, workers):
        data, eps = dataset
        serial = GdsJoinKernel().self_join(data, eps)
        parallel = GdsJoinKernel().self_join(data, eps, workers=workers)
        assert joins_bit_identical(serial.result, parallel.result)
        assert serial.total_candidates == parallel.total_candidates

    @pytest.mark.parametrize("workers", [2, 4])
    def test_mistic_process_pool(self, dataset, workers):
        data, eps = dataset
        serial = MisticKernel().self_join(data, eps)
        parallel = MisticKernel().self_join(data, eps, workers=workers)
        assert joins_bit_identical(serial.result, parallel.result)
        assert serial.total_candidates == parallel.total_candidates

    def test_gds_batched_process_pool_pair_set(self, dataset):
        # Batched + process pool carries the batched executor's contract:
        # pair-set equality (batch boundaries move with the partitioning).
        data, eps = dataset
        a = GdsJoinKernel().self_join(data, eps, batched=True).result
        b = GdsJoinKernel().self_join(data, eps, batched=True, workers=2).result
        sa = set(zip(a.pairs_i.tolist(), a.pairs_j.tolist()))
        sb = set(zip(b.pairs_i.tolist(), b.pairs_j.tolist()))
        assert sa == sb

    @pytest.mark.parametrize("workers", [0, 2, 4])
    def test_streaming_fasted(self, dataset, workers):
        data, eps = dataset
        serial = FastedKernel().self_join(data, eps, row_block=150)
        streamed, stats = FastedKernel().self_join_stream(
            ArraySource(data), eps, row_block=150, workers=workers
        )
        assert joins_bit_identical(serial, streamed)
        assert stats.tiles_evaluated == stats.plan.n_tiles

    def test_memory_budget_honored_with_workers(self, dataset):
        """Budget-derived plans fold the in-flight worker blocks into the
        residency accounting, so workers cannot break the budget."""
        data, eps = dataset
        budget = 64 << 10
        serial, s0 = api.self_join_stream(data, eps, memory_budget_bytes=budget)
        parallel, s4 = api.self_join_stream(
            data, eps, memory_budget_bytes=budget, workers=4
        )
        assert s0.peak_resident_bytes <= budget
        assert s4.peak_resident_bytes <= budget
        # The worker plan pays for its window with a smaller block edge.
        assert s4.plan.row_block < s0.plan.row_block
        assert np.array_equal(
            np.sort(serial.pairs_i), np.sort(parallel.pairs_i)
        )

    @pytest.mark.parametrize("workers", [0, 2])
    def test_streaming_ted_brute_with_spill(self, dataset, workers, tmp_path):
        data, eps = dataset
        kern = TedJoinKernel(variant="brute")
        serial = kern.self_join(data, eps, row_block=150).result
        acc = PairAccumulator(
            spill_threshold_bytes=4096, spill_dir=tmp_path / f"sp{workers}"
        )
        streamed, _ = kern.self_join_stream(
            ArraySource(data), eps, row_block=150, workers=workers, acc=acc
        )
        assert joins_bit_identical(serial, streamed.result)

    @pytest.mark.parametrize("workers", [2, "auto"])
    def test_two_source_all_methods(self, dataset, queries, workers):
        data, eps = dataset
        for method in api.METHODS:
            serial = api.join(queries, data, eps, method=method)
            parallel = api.join(queries, data, eps, method=method, workers=workers)
            assert joins_bit_identical(serial, parallel), method

    def test_two_source_streaming_with_spill(self, dataset, queries):
        data, eps = dataset
        base, _ = api.join_stream(queries, data, eps)
        streamed, _ = api.join_stream(
            queries, data, eps, workers=2, spill_threshold_bytes=4096,
        )
        assert joins_bit_identical(base, streamed)

    @pytest.mark.parametrize("method", list(api.METHODS))
    def test_api_self_join_workers(self, dataset, method):
        data, eps = dataset
        serial = api.self_join(data, eps, method=method)
        parallel = api.self_join(data, eps, method=method, workers=2)
        assert joins_bit_identical(serial, parallel)

    def test_store_distances_false_paths(self, dataset):
        data, eps = dataset
        a = GdsJoinKernel().self_join(data, eps, store_distances=False).result
        b = GdsJoinKernel().self_join(
            data, eps, store_distances=False, workers=2
        ).result
        assert np.array_equal(a.pairs_i, b.pairs_i)
        assert np.array_equal(a.pairs_j, b.pairs_j)
        assert b.sq_dists.size == 0


# ----------------------------------------------------------------------
# Spill concurrency (the PairAccumulator race regression)
# ----------------------------------------------------------------------


class TestSpillConcurrency:
    def test_concurrent_appends_never_lose_pairs(self, tmp_path):
        """Appends from pool threads racing the spill rotation.

        Before the accumulator grew its lock, two threads appending past
        the threshold could interleave the buffer reset and drop or
        duplicate pairs; with the lock the multiset of appended pairs is
        always preserved (order across threads is unspecified).
        """
        acc = PairAccumulator(
            spill_threshold_bytes=2048, spill_dir=tmp_path / "race"
        )
        n_threads, appends, width = 8, 120, 7

        def hammer(k: int) -> None:
            for t in range(appends):
                i = np.full(width, k, dtype=np.int64)
                j = np.arange(t, t + width, dtype=np.int64)
                acc.append(i, j, np.full(width, float(k), np.float32))

        threads = [
            threading.Thread(target=hammer, args=(k,)) for k in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert acc.n_spill_chunks > 0  # the rotation really happened
        i, j, d = acc.arrays()
        assert len(acc) == i.size == n_threads * appends * width
        for k in range(n_threads):
            mask = i == k
            assert mask.sum() == appends * width
            assert np.all(d[mask] == float(k))
        acc.cleanup()

    def test_join_with_workers_and_tiny_spill(self, dataset, tmp_path):
        """The satellite regression: workers=2 + a tiny spill threshold."""
        data, eps = dataset
        serial, _ = api.self_join_stream(data, eps)
        spilled, _ = api.self_join_stream(
            data, eps, workers=2,
            spill_threshold_bytes=2048, spill_dir=tmp_path / "sp",
        )
        assert joins_bit_identical(serial, spilled)
        # finalize() cleaned the chunks up behind itself.
        assert not list((tmp_path / "sp").glob("spill_*"))

    def test_self_join_stream_spill_threads_through(self, dataset, tmp_path):
        """api.self_join_stream now honors spill_threshold_bytes/spill_dir."""
        data, eps = dataset
        base, _ = api.self_join_stream(data, eps, method="ted-join-brute")
        spilled, _ = api.self_join_stream(
            data, eps, method="ted-join-brute",
            spill_threshold_bytes=2048, spill_dir=tmp_path / "ted",
        )
        assert joins_bit_identical(base, spilled)
        assert not list((tmp_path / "ted").glob("spill_*"))

    def test_self_join_stream_cleans_up_on_midstream_error(
        self, dataset, tmp_path
    ):
        data, eps = dataset

        class FailingSource(ArraySource):
            loads = 0

            def load_block(self, r0, r1):
                type(self).loads += 1
                if type(self).loads > 2:
                    raise RuntimeError("disk died")
                return super().load_block(r0, r1)

        spill_dir = tmp_path / "err"
        with pytest.raises(RuntimeError, match="disk died"):
            api.self_join_stream(
                FailingSource(data), eps,
                memory_budget_bytes=64 << 10,
                spill_threshold_bytes=512, spill_dir=spill_dir,
            )
        # Whatever chunks spilled before the failure were removed.
        assert not list(spill_dir.glob("spill_*"))


# ----------------------------------------------------------------------
# Unified timing-path tile plans
# ----------------------------------------------------------------------


class TestTimingPlanUnification:
    @pytest.mark.parametrize("n", [256, 700, 1000])
    def test_fasted_cost_equals_executed_plan(self, n):
        kern = FastedKernel()
        cost = kern.cost(n, 64)
        device_plan = TilePlan(
            n=n, row_block=kern.config.block_points, symmetric=False
        )
        assert cost.n_tiles == device_plan.n_tiles
        assert cost.plan is not None and cost.plan.n_tiles == cost.n_tiles
        assert kern.config.n_tiles(n) == kern.config.tile_plan(n).n_tiles

    def test_fasted_functional_executes_device_plan(self, dataset):
        """Run the functional path AT the device plan: same bits, and the
        executor evaluates exactly the modeled tile count -- using the
        kernel's own tile_plan(), as the docstrings advertise (n=600 is
        deliberately not a multiple of block_points)."""
        data, eps = dataset
        n = data.shape[0]
        kern = FastedKernel()
        device_plan = kern.config.tile_plan(n)
        assert kern.cost(n, data.shape[1]).n_tiles == device_plan.n_tiles
        base = kern.self_join(data, eps)
        dev = kern.self_join(data, eps, plan=device_plan)
        assert joins_bit_identical(base, dev)

    def test_engine_tile_count_matches_plan(self, dataset):
        data, eps = dataset
        n = data.shape[0]
        plan = TilePlan(n=n, row_block=128, symmetric=False)
        calls = 0
        s = (data * data).sum(axis=1)

        def tile(r0, r1, c0, c1):
            nonlocal calls
            calls += 1
            d2 = s[r0:r1, None] + s[None, c0:c1] - 2.0 * (
                data[r0:r1] @ data[c0:c1].T
            )
            return np.maximum(d2, 0.0)

        symmetric_self_join(n, float(eps) ** 2, tile, plan=plan)
        assert calls == plan.n_tiles

    @pytest.mark.parametrize("n", [160, 700])
    def test_ted_cost_equals_executed_plan(self, n):
        kern = TedJoinKernel(variant="brute")
        cost = kern.cost(n, 64)
        device_plan = TilePlan(n=n, row_block=8, symmetric=False)
        assert cost.n_tiles == device_plan.n_tiles
        assert cost.chunks_per_tile == -(-64 // 4)
        # Table-6 conflict degrees survive in the cost view.
        assert cost.bank_conflict_rate == pytest.approx(12 / 13)
        assert kern.cost(n, 256).bank_conflict_rate == pytest.approx(3 / 4)

    def test_ted_functional_executes_device_plan(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(157, 32))  # not a multiple of the WMMA tile
        eps = float(epsilon_for_selectivity(data, 8))
        kern = TedJoinKernel(variant="brute")
        base = kern.self_join(data, eps).result
        dev = kern.self_join(data, eps, plan=kern.tile_plan(157)).result
        assert joins_bit_identical(base, dev)

    def test_ted_cost_ooms_like_the_functional_path(self):
        kern = TedJoinKernel(modified=False)
        with pytest.raises(MemoryError):
            kern.cost(1000, 512)

    def test_candidate_kernels_cost_from_measured_stats(self, dataset):
        data, eps = dataset
        g = GdsJoinKernel().self_join(data, eps)
        cost = GdsJoinKernel().cost(
            data.shape[1], total_candidates=g.total_candidates, profile=g.profile
        )
        assert cost.n_tiles == -(-g.total_candidates // 32)
        m = MisticKernel().self_join(data, eps)
        mcost = MisticKernel().cost(
            data.shape[1], total_candidates=m.total_candidates, profile=m.profile
        )
        assert mcost.n_tiles == -(-m.total_candidates // 32)
        assert mcost.chunks_per_tile >= 1

    def test_fasted_timing_still_resolves(self):
        t = FastedKernel().timing(4096, 64)
        assert t.seconds > 0


# ----------------------------------------------------------------------
# Engine plan plumbing guards
# ----------------------------------------------------------------------


class TestPlanGuards:
    def test_symmetric_executor_rejects_mismatched_plan(self):
        with pytest.raises(ValueError, match="plan covers"):
            symmetric_self_join(
                100, 1.0, lambda *a: np.zeros((1, 1)),
                plan=TilePlan(n=50, row_block=10),
            )

    def test_streaming_rejects_device_plan(self, dataset):
        data, eps = dataset
        with pytest.raises(ValueError, match="symmetric"):
            streaming_self_join(
                ArraySource(data), eps ** 2, lambda b: b, lambda r, c: None,
                plan=TilePlan(n=data.shape[0], row_block=100, symmetric=False),
            )

    def test_full_grid_plan_counts(self):
        plan = TilePlan(n=1000, row_block=128, symmetric=False)
        assert plan.n_tiles == 64 == len(list(plan.tile_bounds()))
        sym = TilePlan(n=1000, row_block=128)
        assert sym.n_tiles == 36
        # Symmetric tile bounds match the legacy iterator exactly.
        from repro.core.engine import iter_symmetric_tiles

        assert list(sym.tile_bounds()) == list(iter_symmetric_tiles(1000, 128))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestCli:
    def test_workers_flag(self, capsys):
        from repro.cli import main

        main(["join", "--n", "400", "--d", "16", "--workers", "2"])
        out = capsys.readouterr().out
        assert "workers: 2 (explicit" in out

    def test_workers_auto(self, capsys):
        from repro.cli import main

        main(["join", "--n", "400", "--d", "16", "--workers", "auto", "--stream"])
        out = capsys.readouterr().out
        assert "workers:" in out and "cpu_count=" in out

    def test_workers_junk_rejected(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["join", "--workers", "many"])

    def test_workers_auto_bad_env_is_clean_cli_error(self, monkeypatch):
        # A malformed REPRO_WORKERS must surface as a CLI `error:`, not a
        # mid-join ValueError traceback.
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        from repro.cli import main

        with pytest.raises(SystemExit, match="error:"):
            main(["join", "--n", "200", "--d", "8", "--workers", "auto"])
