"""Async serving pipeline: front-end conformance, adaptive micro-batch
window, cross-k kNN coalescing, and client connection reuse.

The contract under test is interchangeability: the asyncio front end
(``make_server(..., frontend="async")``) must serve the exact same
routes, status codes, JSON error shapes, and bit-identical answer
payloads as the threaded front end, and the adaptive coalescing window
must never change *what* a request answers -- only how requests share
executor batches.
"""

import http.client
import json
import threading

import numpy as np
import pytest

from repro.core.api import build_index
from repro.core.selectivity import epsilon_for_selectivity
from repro.service import AdaptiveWindow, QueryService, ServiceClient
from repro.service.query import QueryEngine
from repro.service.server import _Pending, make_server


@pytest.fixture(scope="module")
def data_eps():
    rng = np.random.default_rng(7)
    centers = rng.normal(0, 5, size=(8, 16))
    data = centers[rng.integers(0, 8, 1200)] + rng.normal(
        0, 0.6, size=(1200, 16)
    )
    return np.ascontiguousarray(data), float(epsilon_for_selectivity(data, 24))


@pytest.fixture(scope="module")
def index_dir(data_eps, tmp_path_factory):
    data, eps = data_eps
    path = tmp_path_factory.mktemp("asvc") / "g"
    build_index(data, eps, path)
    return path


def _serve(index_dir, frontend, **kwargs):
    server = make_server(
        {"default": index_dir}, port=0, frontend=frontend, **kwargs
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _stop(server, thread):
    server.shutdown()
    server.server_close()
    thread.join(timeout=5.0)


# ----------------------------------------------------------------------
# AdaptiveWindow (pure controller, fake clock)
# ----------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t


class TestAdaptiveWindow:
    def test_negative_cap_raises(self):
        with pytest.raises(ValueError):
            AdaptiveWindow(-0.001)

    def test_zero_cap_is_always_immediate(self):
        w = AdaptiveWindow(0.0, clock=FakeClock())
        assert w.current() == 0.0
        assert w.observe(10, 50) == 0.0
        assert w.current() == 0.0

    def test_solo_batches_shrink_to_zero(self):
        clk = FakeClock()
        w = AdaptiveWindow(0.002, clock=clk)
        assert w.current() == pytest.approx(0.002)  # starts at the cap
        seen = []
        for _ in range(12):
            clk.t += 0.01
            seen.append(w.observe(1, 0))
        assert seen[0] == pytest.approx(0.001)  # halved
        assert seen[-1] == 0.0  # snapped to zero below cap/64
        assert w.current() == 0.0  # and the next batch pays nothing

    def test_pressure_widens_up_to_cap(self):
        clk = FakeClock()
        w = AdaptiveWindow(0.002, clock=clk)
        for _ in range(12):  # drive it to zero first
            clk.t += 0.01
            w.observe(1, 0)
        assert w.current() == 0.0
        first = w.observe(4, 0)  # coalesced batch: reopen the window
        assert first == pytest.approx(0.002 / 16)  # floor = cap/16
        prev, widened = first, [first]
        for _ in range(8):
            clk.t += 0.001
            prev = w.observe(4, 0)
            widened.append(prev)
        assert prev == pytest.approx(0.002)  # doubled up to the cap...
        assert max(widened) <= 0.002 + 1e-12  # ...and never past it

    def test_queue_depth_counts_as_pressure(self):
        clk = FakeClock()
        w = AdaptiveWindow(0.002, clock=clk)
        for _ in range(12):
            clk.t += 0.01
            w.observe(1, 0)
        assert w.observe(1, 3) > 0.0  # solo batch, but a backlog exists

    def test_idle_reset_zeroes_stale_window(self):
        clk = FakeClock()
        w = AdaptiveWindow(0.002, idle_reset_s=1.0, clock=clk)
        w.observe(8, 4)
        assert w.window_s > 0.0
        clk.t += 0.5
        assert w.current() > 0.0  # not idle yet
        clk.t += 10.0
        # The first request after a lull must not pay a window tuned
        # for a burst that ended seconds ago.
        assert w.current() == 0.0

    def test_service_exposes_controller_and_flag(self, index_dir):
        svc = QueryService(max_delay_s=0.004)
        assert svc.adaptive_window is True
        assert isinstance(svc.window, AdaptiveWindow)
        assert svc.window.cap_s == pytest.approx(0.004)
        pinned = QueryService(max_delay_s=0.004, adaptive_window=False)
        assert pinned.adaptive_window is False


# ----------------------------------------------------------------------
# Cross-k kNN coalescing
# ----------------------------------------------------------------------


class TestCrossKCoalescing:
    def test_dispatch_serves_max_k_and_splits_prefixes(
        self, data_eps, index_dir
    ):
        """One engine batch answers every k; each answer is bit-identical
        to the per-request serial call (top-k' is a prefix of top-k
        under the stable (distance, index) order)."""
        data, eps = data_eps
        engine = QueryEngine(index_dir)
        rng = np.random.default_rng(3)
        qs = [
            np.ascontiguousarray(
                data[rng.integers(0, len(data), nq)]
                + rng.normal(0, 0.05, size=(nq, data.shape[1]))
            )
            for nq in (3, 1, 4)
        ]
        ks = (1, 7, 3)
        svc = QueryService()
        try:
            batch = [
                _Pending(engine, q, None, "knn", k, None)
                for q, k in zip(qs, ks)
            ]
            svc._dispatch(batch)
            for pending, q, k in zip(batch, qs, ks):
                got = pending.result(timeout=5.0)
                want = engine.knn_query(q, k)
                assert got.k == k
                assert got.indices.shape == (q.shape[0], k)
                np.testing.assert_array_equal(got.indices, want.indices)
                assert np.array_equal(
                    got.sq_dists.view(np.uint32),
                    want.sq_dists.view(np.uint32),
                )
        finally:
            svc.stop()

    def test_live_coalesced_cross_k_matches_serial(self, data_eps, index_dir):
        data, eps = data_eps
        svc = QueryService(max_delay_s=0.25)
        try:
            engine = svc.engine_for(index_dir)  # warm the cache first
            rng = np.random.default_rng(4)
            qs = [
                np.ascontiguousarray(
                    data[rng.integers(0, len(data), 2)]
                    + rng.normal(0, 0.05, size=(2, data.shape[1]))
                )
                for _ in range(6)
            ]
            ks = (1, 2, 3, 4, 5, 8)
            svc.start()
            pendings = [
                svc.submit(engine, q, k=k) for q, k in zip(qs, ks)
            ]
            for pending, q, k in zip(pendings, qs, ks):
                got = pending.result(timeout=10.0)
                want = engine.knn_query(q, k)
                assert got.k == k
                np.testing.assert_array_equal(got.indices, want.indices)
                assert np.array_equal(
                    got.sq_dists.view(np.uint32),
                    want.sq_dists.view(np.uint32),
                )
            # Different-k requests landed in shared engine batches: the
            # coalesced counter moved (the 0.25 s window makes this
            # deterministic in practice -- submissions take microseconds).
            assert svc.stats()["requests_coalesced"] > 0
        finally:
            svc.stop()


# ----------------------------------------------------------------------
# Front-end conformance (threaded and async must be interchangeable)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("frontend", ["thread", "async"])
class TestFrontendConformance:
    def test_keep_alive_request_sequence(self, data_eps, index_dir, frontend):
        """One TCP connection serves a whole mixed sequence -- including
        error responses, which must not desync keep-alive framing."""
        data, eps = data_eps
        server, thread = _serve(index_dir, frontend)
        try:
            host, port = server.server_address[:2]
            engine = QueryEngine(index_dir)
            q = np.ascontiguousarray(data[:4] + 0.01)
            conn = http.client.HTTPConnection(host, port, timeout=30)

            def roundtrip(method, path, payload=None):
                body = None if payload is None else json.dumps(payload)
                hdrs = {} if body is None else {
                    "Content-Type": "application/json"
                }
                conn.request(method, path, body, hdrs)
                resp = conn.getresponse()
                raw = resp.read()
                ct = resp.getheader("Content-Type") or ""
                return resp.status, (
                    json.loads(raw) if "json" in ct else raw.decode()
                )

            status, health = roundtrip("GET", "/healthz")
            assert (status, health["status"]) == (200, "ok")
            status, got = roundtrip(
                "POST", "/range", {"queries": q.tolist()}
            )
            want = engine.range_query(q)
            sets = [set() for _ in range(q.shape[0])]
            for i, j in zip(want.pairs_i.tolist(), want.pairs_j.tolist()):
                sets[i].add(j)
            assert status == 200
            assert [set(x) for x in got["neighbors"]] == sets
            status, got = roundtrip(
                "POST", "/knn", {"queries": q.tolist(), "k": 3}
            )
            assert status == 200
            assert got["indices"] == engine.knn_query(q, 3).indices.tolist()
            # Error contracts, all on the SAME connection:
            status, got = roundtrip("POST", "/range", {"index": "nope"})
            assert status == 404 and "indexes" in got
            status, got = roundtrip("POST", "/nope", {})
            assert status == 404 and "unknown path" in got["error"]
            conn.request("POST", "/range", "[1, 2]",
                         {"Content-Type": "application/json"})
            resp = conn.getresponse()
            bad = json.loads(resp.read())
            assert resp.status == 400
            assert bad["error"] == "request body must be a JSON object"
            status, text = roundtrip("GET", "/metrics")
            assert status == 200
            assert "repro_http_requests_total" in text
            assert "repro_service_batch_window_seconds" in text
            status, stats = roundtrip("GET", "/stats")
            assert status == 200 and stats["requests_served"] >= 2
            conn.close()
        finally:
            _stop(server, thread)

    def test_oversized_body_is_413_and_closes(
        self, index_dir, frontend
    ):
        server, thread = _serve(index_dir, frontend, max_body_bytes=4096)
        try:
            host, port = server.server_address[:2]
            conn = http.client.HTTPConnection(host, port, timeout=30)
            conn.request(
                "POST", "/range", b"x",
                {"Content-Type": "application/json",
                 "Content-Length": str(1 << 20)},
            )
            resp = conn.getresponse()
            body = json.loads(resp.read())
            assert resp.status == 413
            assert "exceeds" in body["error"]
            # The unread body makes the stream unframeable: the server
            # must say so and actually hang up.
            assert (resp.getheader("Connection") or "").lower() == "close"
            conn.close()
        finally:
            _stop(server, thread)

    def test_self_test_passes(self, index_dir, frontend):
        from repro.service.server import run_self_test

        out = run_self_test(
            index_dir, n_clients=2, queries_per_client=4, frontend=frontend
        )
        assert out["frontend"] == frontend
        assert out["stats"]["requests_served"] >= 4


class TestFrontendEquivalence:
    def test_payloads_bitwise_equal_across_frontends(
        self, data_eps, index_dir
    ):
        """The two front ends must return byte-identical JSON bodies for
        the same queries (same engine, same formatting helpers)."""
        data, eps = data_eps
        q = np.ascontiguousarray(data[10:16] + 0.02)
        bodies = {}
        for frontend in ("thread", "async"):
            server, thread = _serve(index_dir, frontend)
            try:
                host, port = server.server_address[:2]
                conn = http.client.HTTPConnection(host, port, timeout=30)
                per = []
                for path, payload in (
                    ("/range", {"queries": q.tolist()}),
                    ("/knn", {"queries": q.tolist(), "k": 4}),
                ):
                    conn.request("POST", path, json.dumps(payload),
                                 {"Content-Type": "application/json"})
                    resp = conn.getresponse()
                    per.append((resp.status, resp.read()))
                conn.close()
                bodies[frontend] = per
            finally:
                _stop(server, thread)
        assert bodies["thread"] == bodies["async"]

    def test_unknown_frontend_rejected(self, index_dir):
        with pytest.raises(ValueError):
            make_server({"default": index_dir}, port=0, frontend="gevent")


# ----------------------------------------------------------------------
# Client connection reuse
# ----------------------------------------------------------------------


class TestClientConnectionReuse:
    def test_single_connection_across_requests(
        self, data_eps, index_dir, monkeypatch
    ):
        """N requests ride ONE TCP connection (the keep-alive server +
        client reuse regression: HTTP/1.0 responses silently forced a
        reconnect per request)."""
        data, eps = data_eps
        connects = []
        orig = http.client.HTTPConnection.connect

        def counting_connect(self):
            connects.append(1)
            return orig(self)

        monkeypatch.setattr(
            http.client.HTTPConnection, "connect", counting_connect
        )
        server, thread = _serve(index_dir, "thread")
        try:
            host, port = server.server_address[:2]
            with ServiceClient(host, port) as client:
                q = data[:2].tolist()
                for _ in range(4):
                    client.range_query(q)
                    client.knn_query(q, 2)
                client.healthz()
                client.stats()
            assert sum(connects) == 1
        finally:
            _stop(server, thread)

    def test_transparent_reconnect_after_server_restart(
        self, data_eps, index_dir
    ):
        """A keep-alive socket the server closed between requests gets
        one silent reconnect -- not an error, not a counted retry."""
        data, eps = data_eps
        server, thread = _serve(index_dir, "thread")
        host, port = server.server_address[:2]
        client = ServiceClient(host, port)
        try:
            client.range_query(data[:2].tolist())
            _stop(server, thread)  # server goes away; client holds a socket
            server, thread = _serve(index_dir, "thread")
            client.host, client.port = server.server_address[:2]
            # Stale-reuse detection kicks in: the request succeeds on a
            # fresh connection without burning a backoff retry.
            out = client.range_query(data[:2].tolist())
            assert out["n_queries"] == 2
            assert client.retries == 0
        finally:
            client.close()
            _stop(server, thread)


# ----------------------------------------------------------------------
# Asyncio load-generator driver
# ----------------------------------------------------------------------


class TestAsyncLoadgenDriver:
    def test_open_loop_against_async_frontend(self, index_dir):
        from repro.loadgen.generator import WorkloadConfig, run_against_server

        server, thread = _serve(index_dir, "async")
        try:
            host, port = server.server_address[:2]
            cfg = WorkloadConfig(
                mode="open", duration_s=0.5, target_rps=60.0,
                concurrency=32, batch_size=2, range_fraction=0.5, seed=5,
            )
            res = run_against_server(
                index_dir, host, port, cfg, driver="async"
            )
            s = res.summary()
            assert s["offered"] == 30  # the full schedule was issued
            assert s["ok"] == 30
            assert s["err_other"] == 0 and s["dropped"] == 0
            assert s["p99_ms"] is not None
        finally:
            _stop(server, thread)

    def test_async_driver_is_open_loop_only(self, index_dir):
        from repro.loadgen.generator import (
            QuerySampler,
            WorkloadConfig,
            run_load_async,
        )

        engine = QueryEngine(index_dir)
        cfg = WorkloadConfig(mode="closed", duration_s=0.1)
        sampler = QuerySampler(engine, cfg)
        with pytest.raises(ValueError):
            run_load_async(cfg, "127.0.0.1", 1, sampler)
