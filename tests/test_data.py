"""Tests for dataset generation (repro.data)."""

import numpy as np
import pytest

from repro.data.realworld import DATASETS, load_surrogate
from repro.data.synthetic import SYNTH_DIMS, SYNTH_SIZES, synth_dataset
from repro.fp.fp16 import dynamic_range_report


class TestSynthGrid:
    def test_sizes_match_table4(self):
        """|D| = 10^(3 + n/3): 1000 ... 1,000,000."""
        assert SYNTH_SIZES[0] == 1000
        assert SYNTH_SIZES[-1] == 1_000_000
        assert SYNTH_SIZES[3] == 10_000
        assert len(SYNTH_SIZES) == 10

    def test_dims_match_table4(self):
        assert SYNTH_DIMS == (64, 128, 256, 512, 1024, 2048, 4096)


class TestSynthDataset:
    def test_shape_and_dtype(self):
        data = synth_dataset(100, 32)
        assert data.shape == (100, 32)
        assert data.dtype == np.float32

    def test_deterministic(self):
        assert np.array_equal(synth_dataset(50, 8, seed=3), synth_dataset(50, 8, seed=3))

    def test_seeds_differ(self):
        assert not np.array_equal(
            synth_dataset(50, 8, seed=1), synth_dataset(50, 8, seed=2)
        )

    def test_fp16_safe_range(self):
        data = synth_dataset(1000, 16)
        assert dynamic_range_report(data).fits

    def test_clustered_mode(self):
        data = synth_dataset(500, 8, clustered=True)
        # Clustered data has higher kurtosis structure: inter-point distance
        # distribution should be multi-modal; at minimum, valid shape/range.
        assert data.shape == (500, 8)
        assert np.isfinite(data).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            synth_dataset(0, 8)
        with pytest.raises(ValueError):
            synth_dataset(8, 0)


class TestSurrogates:
    def test_registry_matches_table4(self):
        specs = {(s.paper_n, s.paper_d) for s in DATASETS.values()}
        assert (10_000_000, 128) in specs  # Sift10M
        assert (5_000_000, 384) in specs  # Tiny5M
        assert (60_000, 512) in specs  # Cifar60K
        assert (1_000_000, 960) in specs  # Gist1M

    def test_paper_eps_recorded(self):
        assert DATASETS["Sift10M"].paper_eps == (122.5, 136.5, 152.5)
        assert DATASETS["Gist1M"].paper_eps == (0.4736, 0.5292, 0.5937)

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_generation(self, name):
        data, spec = load_surrogate(name, n=500)
        assert data.shape == (500, spec.paper_d)
        assert np.isfinite(data).all()
        assert dynamic_range_report(data).fits

    def test_sift_is_integer_valued_0_255(self):
        """SIFT descriptors are uint8 histograms: integers in [0, 255]."""
        data, _ = load_surrogate("Sift10M", n=1000)
        assert np.array_equal(data, np.rint(data))
        assert data.min() >= 0 and data.max() <= 255

    def test_gist_like_small_positive(self):
        data, _ = load_surrogate("Gist1M", n=1000)
        assert data.min() >= 0
        assert data.max() <= 2.0

    def test_deterministic(self):
        a, _ = load_surrogate("Tiny5M", n=300, seed=5)
        b, _ = load_surrogate("Tiny5M", n=300, seed=5)
        assert np.array_equal(a, b)

    def test_clustered_structure(self):
        """Surrogates must have local structure (nearer than uniform)."""
        data, _ = load_surrogate("Cifar60K", n=2000)
        rng = np.random.default_rng(0)
        i = rng.integers(0, 2000, 200)
        j = rng.integers(0, 2000, 200)
        d2 = ((data[i] - data[j]) ** 2).sum(axis=1)
        # Clustered: same-cluster pairs are far closer than the typical
        # (cross-cluster) pair, so the distance distribution is bimodal.
        assert d2.min() < 0.3 * np.median(d2)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_surrogate("MNIST")
