"""Tests for the two-source (A x B) join subsystem and its out-of-core
companions: the rectangular streaming executor
(repro.core.engine.rect_join / streaming_join / RectTilePlan), the
disk-spilling PairAccumulator, the out-of-core grid/tree builds
(GridIndex.from_source / MultiSpaceTree.from_source) and the kernels'
source-backed joins.

Contracts pinned here:

* ``streaming_join`` is **bit-identical** to ``rect_join`` at the same
  tile plan (per-block preparation is row-local, per-tile GEMM shapes are
  unchanged) -- including from mmap/chunked sources larger than the
  memory budget, whose observed peak residency must stay under it.
* A spilling ``PairAccumulator`` yields exactly the arrays a non-spilling
  run yields, while its resident buffer stays bounded.
* ``GridIndex.from_source`` (streamed cell-key encoding + external
  counting sort) groups points exactly like the in-memory constructor, so
  the kernels' ``self_join_source`` results are bit-identical to their
  in-memory self-joins.
* Index-backed two-source joins produce the same pair set as the exact
  FP64 brute-force two-source join.
"""

import numpy as np
import pytest

from repro.core.api import join, join_stream, self_join
from repro.core.engine import (
    RectTilePlan,
    candidate_join,
    iter_rect_tiles,
    norm_expansion_sq_dists,
    rect_join,
    streaming_join,
)
from repro.core.results import JoinResult, PairAccumulator
from repro.core.selectivity import epsilon_for_selectivity
from repro.data.source import (
    ArraySource,
    MmapNpySource,
    as_source,
    write_chunked_npy,
)
from repro.index.grid import GridIndex
from repro.index.mstree import MultiSpaceTree
from repro.kernels.fasted import FastedKernel
from repro.kernels.gdsjoin import GdsJoinKernel
from repro.kernels.mistic import MisticKernel
from repro.kernels.reference import canon, joins_bit_identical
from repro.kernels.tedjoin import TedJoinKernel

_CENTER_SEED = 42


def _dataset(d, n=400, seed=0):
    rng = np.random.default_rng(_CENTER_SEED)
    centers = rng.normal(0, 4, size=(6, d))
    rng = np.random.default_rng(seed)
    return centers[rng.integers(0, 6, n)] + rng.normal(0, 0.5, size=(n, d))


def _pair(d, n_a=350, n_b=300, seed=0):
    """Two datasets drawn over the same cluster centers (so they join)."""
    return _dataset(d, n_a, seed), _dataset(d, n_b, seed + 1)


def _eps(a, b, target=12):
    return float(epsilon_for_selectivity(np.vstack((a, b)), target))


def assert_pair_sets_equal(x, y):
    xi, xj, _ = canon(x)
    yi, yj, _ = canon(y)
    np.testing.assert_array_equal(xi, yi)
    np.testing.assert_array_equal(xj, yj)


def _brute_fp64_pairs(a, b, eps):
    """Dense FP64 reference: the ground-truth pair set of A x B."""
    d2 = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
    ii, jj = np.nonzero(d2 <= eps * eps)
    return ii.astype(np.int64), jj.astype(np.int64)


# ----------------------------------------------------------------------
# RectTilePlan
# ----------------------------------------------------------------------


class TestRectTilePlan:
    def test_matches_in_memory_tiling(self):
        plan = RectTilePlan(n_rows=500, n_cols=700, row_block=128, col_block=96)
        from_plan = [
            (*plan.row_bounds(ri), *plan.col_bounds(cj))
            for ri, cj in plan.tiles()
        ]
        expect = list(iter_rect_tiles(500, 700, 128, 96))
        assert from_plan == expect
        assert plan.n_tiles == len(expect)
        assert plan.n_row_blocks == 4 and plan.n_col_blocks == 8

    def test_from_budget_respects_bound(self):
        plan = RectTilePlan.from_budget(10_000, 8_000, 64, 1 << 20)
        assert plan.peak_resident_bytes(64) <= 1 << 20
        assert plan.row_block >= 1 and plan.col_block >= 1

    def test_tiny_budget_still_progresses(self):
        plan = RectTilePlan.from_budget(50, 60, 4096, 1024)
        assert plan.row_block == 1 and plan.col_block == 1
        assert plan.n_tiles == 50 * 60

    def test_invalid(self):
        with pytest.raises(ValueError):
            RectTilePlan(n_rows=10, n_cols=10, row_block=0, col_block=4)
        with pytest.raises(ValueError):
            RectTilePlan.from_budget(10, 10, 8, 0)


# ----------------------------------------------------------------------
# Rectangular executor correctness
# ----------------------------------------------------------------------


class TestRectJoin:
    def test_matches_dense_reference(self):
        a, b = _pair(16, n_a=120, n_b=90, seed=3)
        eps = _eps(a, b, 8)
        sa = (a * a).sum(axis=1)
        sb = (b * b).sum(axis=1)

        def tile(r0, r1, c0, c1):
            return norm_expansion_sq_dists(
                sa[r0:r1], sb[c0:c1], a[r0:r1] @ b[c0:c1].T
            )

        acc = rect_join(a.shape[0], b.shape[0], eps * eps, tile, row_block=37)
        got = acc.finalize_join(a.shape[0], b.shape[0], eps)
        ii, jj = _brute_fp64_pairs(a, b, eps)
        gi, gj, _ = canon(got)
        np.testing.assert_array_equal(gi, ii)
        np.testing.assert_array_equal(gj, jj)

    def test_equal_indices_not_dropped(self):
        """(i, i) relates different points across sets -- must be kept."""
        a = np.zeros((3, 4))
        b = np.zeros((3, 4))

        def tile(r0, r1, c0, c1):
            return np.zeros((r1 - r0, c1 - c0))

        acc = rect_join(3, 3, 0.5, tile, row_block=2)
        res = acc.finalize_join(3, 3, 1.0)
        assert res.pairs_i.size == 9  # all pairs, diagonal included

    def test_join_result_properties(self):
        res = JoinResult(
            n_left=4, n_right=5, eps=1.0,
            pairs_i=np.array([0, 0, 2]), pairs_j=np.array([1, 2, 0]),
        )
        assert res.selectivity == pytest.approx(0.75)
        np.testing.assert_array_equal(res.match_counts(), [2, 0, 1, 0])


# ----------------------------------------------------------------------
# Two-source streaming bit-identity
# ----------------------------------------------------------------------


class TestStreamingJoinBitIdentity:
    def test_fasted_array_sources(self):
        a, b = _pair(48)
        eps = _eps(a, b)
        mem = FastedKernel().join(a, b, eps, row_block=100)
        got, stats = FastedKernel().join_stream(
            ArraySource(a), ArraySource(b), eps, row_block=100
        )
        assert joins_bit_identical(mem, got)
        assert stats.tiles_evaluated == stats.plan.n_tiles
        # Every stripe loads A's block once plus all of B's blocks.
        nbr, nbc = stats.plan.n_row_blocks, stats.plan.n_col_blocks
        assert stats.blocks_loaded == nbr * (1 + nbc)

    def test_fasted_mmap_larger_than_budget(self, tmp_path):
        """The headline contract: data > budget, bit-identical, bounded."""
        a, b = _pair(64, n_a=700, n_b=600, seed=5)
        path_a, path_b = tmp_path / "a.npy", tmp_path / "b.npy"
        np.save(path_a, a)
        np.save(path_b, b)
        src_a, src_b = MmapNpySource(path_a), MmapNpySource(path_b)
        budget = 128 * 1024
        assert src_a.nbytes + src_b.nbytes > budget
        plan = RectTilePlan.from_budget(a.shape[0], b.shape[0], 64, budget)
        eps = _eps(a, b)
        mem = FastedKernel().join(
            a, b, eps, row_block=plan.row_block, col_block=plan.col_block
        )
        got, stats = FastedKernel().join_stream(
            src_a, src_b, eps, memory_budget_bytes=budget
        )
        assert joins_bit_identical(mem, got)
        assert stats.peak_resident_bytes <= budget

    def test_ted_brute_chunked(self, tmp_path):
        a, b = _pair(32, seed=7)
        src_a = write_chunked_npy(tmp_path / "a", a, rows_per_chunk=64)
        src_b = write_chunked_npy(tmp_path / "b", b, rows_per_chunk=80)
        eps = _eps(a, b)
        mem = TedJoinKernel(variant="brute").join(a, b, eps, row_block=90)
        got, _ = TedJoinKernel(variant="brute").join_stream(
            src_a, src_b, eps, row_block=90
        )
        assert joins_bit_identical(mem, got)

    def test_prefetch_off_identical(self):
        a, b = _pair(24, seed=9)
        eps = _eps(a, b)
        x, _ = FastedKernel().join_stream(
            ArraySource(a), ArraySource(b), eps, row_block=70, prefetch=True
        )
        y, _ = FastedKernel().join_stream(
            ArraySource(a), ArraySource(b), eps, row_block=70, prefetch=False
        )
        np.testing.assert_array_equal(x.pairs_i, y.pairs_i)
        np.testing.assert_array_equal(x.pairs_j, y.pairs_j)
        assert np.array_equal(x.sq_dists.view(np.uint32), y.sq_dists.view(np.uint32))

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            FastedKernel().join_stream(
                ArraySource(_dataset(8, n=10)), ArraySource(_dataset(9, n=10)), 1.0
            )

    def test_independent_block_schedules(self):
        """Rectangular plans honor distinct row/col block sizes."""
        a, b = _pair(16, n_a=130, n_b=210, seed=11)
        eps = _eps(a, b)
        got, stats = FastedKernel().join_stream(
            ArraySource(a), ArraySource(b), eps, row_block=50, col_block=70
        )
        assert stats.plan.row_block == 50 and stats.plan.col_block == 70
        mem = FastedKernel().join(a, b, eps, row_block=50, col_block=70)
        assert joins_bit_identical(mem, got)


# ----------------------------------------------------------------------
# PairAccumulator disk spill
# ----------------------------------------------------------------------


class TestAccumulatorSpill:
    def _random_appends(self, acc, seed=0, rounds=30):
        rng = np.random.default_rng(seed)
        for _ in range(rounds):
            m = int(rng.integers(1, 400))
            i = rng.integers(0, 10_000, m)
            j = rng.integers(0, 10_000, m)
            d = rng.random(m).astype(np.float32)
            acc.append(i, j, d)

    def test_spill_transparent(self, tmp_path):
        plain = PairAccumulator()
        spill = PairAccumulator(
            spill_threshold_bytes=4096, spill_dir=tmp_path / "spill"
        )
        self._random_appends(plain)
        self._random_appends(spill)
        assert spill.n_spill_chunks > 0
        assert len(spill) == len(plain)
        # Resident buffer stays bounded while chunks land on disk.
        assert spill.nbytes < plain.nbytes
        pi, pj, pd = plain.arrays()
        si, sj, sd = spill.arrays()
        np.testing.assert_array_equal(pi, si)
        np.testing.assert_array_equal(pj, sj)
        assert np.array_equal(pd.view(np.uint32), sd.view(np.uint32))

    def test_iter_chunks_covers_everything(self, tmp_path):
        spill = PairAccumulator(
            spill_threshold_bytes=2048, spill_dir=tmp_path / "spill"
        )
        self._random_appends(spill, seed=1)
        total = sum(i.size for i, _j, _d in spill.iter_chunks())
        assert total == len(spill)

    def test_cleanup_removes_chunks(self, tmp_path):
        d = tmp_path / "spill"
        spill = PairAccumulator(spill_threshold_bytes=1024, spill_dir=d)
        self._random_appends(spill, seed=2, rounds=10)
        assert any(d.iterdir())
        spill.cleanup()
        assert not any(d.iterdir())

    def test_finalize_join_spilled(self, tmp_path):
        spill = PairAccumulator(
            spill_threshold_bytes=1024, spill_dir=tmp_path / "spill"
        )
        plain = PairAccumulator()
        self._random_appends(spill, seed=3, rounds=12)
        self._random_appends(plain, seed=3, rounds=12)
        a = spill.finalize_join(10_000, 10_000, 1.0)
        b = plain.finalize_join(10_000, 10_000, 1.0)
        assert joins_bit_identical(a, b)
        assert not any((tmp_path / "spill").iterdir())  # finalize cleans up

    def test_no_store_distances(self, tmp_path):
        spill = PairAccumulator(
            store_distances=False,
            spill_threshold_bytes=1024,
            spill_dir=tmp_path / "spill",
        )
        rng = np.random.default_rng(4)
        for _ in range(20):
            m = int(rng.integers(1, 200))
            spill.append(rng.integers(0, 100, m), rng.integers(0, 100, m))
        i, j, d = spill.arrays()
        assert i.size == len(spill) and d.size == 0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            PairAccumulator(spill_threshold_bytes=0)

    def test_streaming_join_with_spill_bit_identical(self, tmp_path):
        a, b = _pair(32, seed=13)
        eps = _eps(a, b)
        mem = FastedKernel().join(a, b, eps, row_block=80)
        acc = PairAccumulator(
            spill_threshold_bytes=16 * 1024, spill_dir=tmp_path / "spill"
        )
        got, _ = FastedKernel().join_stream(
            ArraySource(a), ArraySource(b), eps, row_block=80, acc=acc
        )
        assert joins_bit_identical(mem, got)


# ----------------------------------------------------------------------
# Out-of-core grid / tree builds
# ----------------------------------------------------------------------


class TestFromSourceIndexes:
    def test_grid_identical_grouping(self):
        data = _dataset(24, n=500, seed=15)
        eps = float(epsilon_for_selectivity(data, 10))
        mem = GridIndex(data, eps)
        src = GridIndex.from_source(ArraySource(data), eps, row_block=61)
        np.testing.assert_array_equal(mem.order, src.order)
        np.testing.assert_array_equal(mem._sort, src._sort)
        np.testing.assert_array_equal(mem._unique, src._unique)
        for (ma, ca), (mb, cb) in zip(mem.iter_cells(), src.iter_cells()):
            np.testing.assert_array_equal(ma, mb)
            np.testing.assert_array_equal(ca, cb)
        assert mem.stats() == src.stats()

    def test_grid_from_chunked_path(self, tmp_path):
        data = _dataset(16, n=300, seed=16)
        eps = float(epsilon_for_selectivity(data, 8))
        write_chunked_npy(tmp_path / "chunks", data, rows_per_chunk=47)
        mem = GridIndex(data, eps)
        src = GridIndex.from_source(tmp_path / "chunks", eps, row_block=53)
        np.testing.assert_array_equal(mem._sort, src._sort)

    def test_grid_build_accounts_stats(self):
        from repro.core.engine import StreamStats, TilePlan

        data = _dataset(16, n=200, seed=17)
        eps = float(epsilon_for_selectivity(data, 8))
        stats = StreamStats(plan=TilePlan(n=200, row_block=50))
        GridIndex.from_source(ArraySource(data), eps, row_block=50, stats=stats)
        assert stats.blocks_loaded > 0
        # One block resident at a time during the build passes.
        assert stats.peak_resident_bytes <= 50 * 16 * 8

    def test_tree_identical_levels(self):
        data = _dataset(16, n=400, seed=18)
        eps = float(epsilon_for_selectivity(data, 8))
        mem = MultiSpaceTree(data, eps)
        src = MultiSpaceTree.from_source(ArraySource(data), eps, row_block=77)
        assert [(l.kind, l.param) for l in mem.levels] == [
            (l.kind, l.param) for l in src.levels
        ]
        for lm, ls in zip(mem.levels, src.levels):
            np.testing.assert_array_equal(lm.bins, ls.bins)
        assert mem.construction_evaluations == src.construction_evaluations


# ----------------------------------------------------------------------
# Source-backed kernel self-joins (bit-identity with in-memory)
# ----------------------------------------------------------------------


class TestKernelSelfJoinSource:
    @pytest.fixture()
    def data_eps(self):
        data = _dataset(32, n=450, seed=19)
        return data, float(epsilon_for_selectivity(data, 10))

    def test_gds_join(self, data_eps, tmp_path):
        data, eps = data_eps
        src = write_chunked_npy(tmp_path / "chunks", data, rows_per_chunk=96)
        mem = GdsJoinKernel().self_join(data, eps)
        got, stats = GdsJoinKernel().self_join_source(src, eps, row_block=96)
        assert joins_bit_identical(mem.result, got.result)
        assert mem.total_candidates == got.total_candidates
        assert mem.n_indexed_dims == got.n_indexed_dims
        assert stats.blocks_loaded > 0

    def test_ted_index(self, data_eps):
        data, eps = data_eps
        mem = TedJoinKernel(variant="index").self_join(data, eps)
        got, _ = TedJoinKernel(variant="index").self_join_source(
            ArraySource(data), eps, row_block=128
        )
        assert joins_bit_identical(mem.result, got.result)
        assert mem.total_candidates == got.total_candidates

    def test_mistic(self, data_eps):
        data, eps = data_eps
        mem = MisticKernel().self_join(data, eps)
        got, _ = MisticKernel().self_join_source(
            ArraySource(data), eps, row_block=128
        )
        assert joins_bit_identical(mem.result, got.result)
        assert mem.construction_evaluations == got.construction_evaluations

    def test_memory_budget_sets_row_block(self, data_eps):
        data, eps = data_eps
        got, stats = GdsJoinKernel().self_join_source(
            ArraySource(data), eps, memory_budget_bytes=64 * 1024
        )
        assert stats.plan.peak_resident_bytes(data.shape[1]) <= 64 * 1024
        mem = GdsJoinKernel().self_join(data, eps)
        assert joins_bit_identical(mem.result, got.result)

    def test_wrong_variant_raises(self, data_eps):
        data, eps = data_eps
        with pytest.raises(ValueError):
            TedJoinKernel(variant="brute").self_join_source(
                ArraySource(data), eps
            )


class TestBatchedSourceExecutor:
    """Batched take() gathers through the padded-GEMM path: the source-
    backed batched executor must reproduce the in-memory batched join's
    pair set (the batched executor's own contract)."""

    @pytest.fixture()
    def data_eps(self):
        data = _dataset(24, n=600, seed=23)
        return data, float(epsilon_for_selectivity(data, 8))

    @staticmethod
    def _pair_sets_equal(a, b):
        from repro.kernels.reference import canon

        ca, cb = canon(a), canon(b)
        return np.array_equal(ca[0], cb[0]) and np.array_equal(ca[1], cb[1])

    def test_gds_batched_source(self, data_eps, tmp_path):
        data, eps = data_eps
        src = write_chunked_npy(tmp_path / "chunks", data, rows_per_chunk=128)
        mem = GdsJoinKernel().self_join(data, eps, batched=True)
        got, stats = GdsJoinKernel().self_join_source(src, eps, batched=True)
        assert self._pair_sets_equal(mem.result, got.result)
        assert mem.total_candidates == got.total_candidates
        assert stats.blocks_loaded > 0

    def test_ted_index_batched_source(self, data_eps):
        data, eps = data_eps
        mem = TedJoinKernel(variant="index").self_join(data, eps, batched=True)
        got, _ = TedJoinKernel(variant="index").self_join_source(
            ArraySource(data), eps, batched=True
        )
        # FP64: the batched executor agrees bitwise in practice, but the
        # contract (and this pin) is the pair set.
        assert self._pair_sets_equal(mem.result, got.result)

    def test_mistic_batched_source(self, data_eps):
        data, eps = data_eps
        mem = MisticKernel().self_join(data, eps, batched=True)
        got, _ = MisticKernel().self_join_source(
            ArraySource(data), eps, batched=True
        )
        assert self._pair_sets_equal(mem.result, got.result)

    def test_source_view_matches_unbatched(self, data_eps, tmp_path):
        """Source-backed batched == per-group source path, pair-set-wise."""
        data, eps = data_eps
        np.save(tmp_path / "d.npy", data)
        src = MmapNpySource(tmp_path / "d.npy")
        plain, _ = GdsJoinKernel().self_join_source(src, eps)
        batched, _ = GdsJoinKernel().self_join_source(src, eps, batched=True)
        assert self._pair_sets_equal(plain.result, batched.result)

    def test_batched_candidate_join_two_source(self, data_eps):
        """The external-query batched executor (batched_candidate_join)
        matches candidate_join on the same groups."""
        from repro.core.engine import (
            batched_candidate_join,
            candidate_join,
            norm_expansion_sq_dists,
        )
        from repro.index.grid import GridIndex

        data, eps = data_eps
        rng = np.random.default_rng(7)
        queries = data[rng.integers(0, data.shape[0], 200)] + rng.normal(
            0, eps / (4 * data.shape[1] ** 0.5), size=(200, data.shape[1])
        )
        index = GridIndex(data, eps)
        sa = (queries * queries).sum(axis=1)
        sb = (data * data).sum(axis=1)
        eps2 = float(eps) ** 2

        def dist(m, c):
            return norm_expansion_sq_dists(sa[m], sb[c], queries[m] @ data[c].T)

        plain = candidate_join(
            index.iter_join_groups(queries), dist, eps2
        ).finalize_join(200, data.shape[0], eps)
        batched = batched_candidate_join(
            index.iter_join_groups(queries), queries, sa, data, sb, eps2
        ).finalize_join(200, data.shape[0], eps)
        assert self._pair_sets_equal(plain, batched)


# ----------------------------------------------------------------------
# Two-source index-backed joins vs the exact brute reference
# ----------------------------------------------------------------------


class TestTwoSourceIndexJoins:
    @pytest.fixture()
    def ab_eps(self):
        a, b = _pair(24, n_a=300, n_b=260, seed=21)
        # Place eps in the middle of a wide gap of the A x B distance
        # distribution: the FP32 methods (mistic, gds-fp32) round d2 by
        # ~1e-4 at these magnitudes, so a boundary-adjacent eps could
        # legitimately flip a pair vs the FP64 reference.  Mid-gap, all
        # precisions agree on the pair set.
        d2 = np.sort(
            ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2).ravel()
        )
        lo = int(a.shape[0] * 8)  # ~8 matches per query point
        window = np.diff(d2[lo : lo + 2000])
        k = lo + int(np.argmax(window))
        eps = float(np.sqrt((d2[k] + d2[k + 1]) / 2.0))
        return a, b, eps

    def test_ted_index_pair_set(self, ab_eps):
        a, b, eps = ab_eps
        brute = TedJoinKernel(variant="brute").join(a, b, eps)
        idx = TedJoinKernel(variant="index").join(a, b, eps)
        assert joins_bit_identical(brute, idx)  # FP64: even distances match

    def test_gds_fp64_pair_set(self, ab_eps):
        a, b, eps = ab_eps
        brute = TedJoinKernel(variant="brute").join(a, b, eps)
        gds = GdsJoinKernel(precision="fp64").join(a, b, eps)
        assert_pair_sets_equal(brute, gds)

    def test_mistic_pair_set(self, ab_eps):
        a, b, eps = ab_eps
        brute = TedJoinKernel(variant="brute").join(a, b, eps)
        mistic = MisticKernel().join(a, b, eps)
        assert_pair_sets_equal(brute, mistic)

    def test_candidate_join_keeps_equal_indices(self):
        """The two-source group executor must not drop (i, i) pairs."""
        groups = [(np.array([0, 1]), np.array([0, 1]))]

        def dist(m, c):
            return np.zeros((m.size, c.size))

        acc = candidate_join(groups, dist, 0.5)
        assert len(acc) == 4


# ----------------------------------------------------------------------
# API-level two-source joins
# ----------------------------------------------------------------------


class TestApiJoin:
    def test_stream_flag_matches_in_memory(self):
        a, b = _pair(32, seed=23)
        eps = _eps(a, b)
        mem = join(a, b, eps)
        streamed = join(a, b, eps, stream=True)
        assert joins_bit_identical(mem, streamed)

    def test_from_paths_with_budget(self, tmp_path):
        a, b = _pair(32, n_a=320, n_b=280, seed=25)
        eps = _eps(a, b)
        path_a = tmp_path / "a.npy"
        np.save(path_a, a)
        src_b = write_chunked_npy(tmp_path / "b", b, rows_per_chunk=64)
        budget = 96 * 1024
        plan = RectTilePlan.from_budget(a.shape[0], b.shape[0], 32, budget)
        mem = FastedKernel().join(
            a, b, eps, row_block=plan.row_block, col_block=plan.col_block
        )
        got, stats = join_stream(
            path_a, src_b.directory, eps, memory_budget_bytes=budget
        )
        assert joins_bit_identical(mem, got)
        assert stats.peak_resident_bytes <= budget

    def test_memory_budget_implies_stream(self):
        a, b = _pair(24, seed=27)
        eps = _eps(a, b)
        got = join(a, b, eps, memory_budget_bytes=64 * 1024)
        mem = join(a, b, eps, stream=True, memory_budget_bytes=64 * 1024)
        assert joins_bit_identical(mem, got)
        with pytest.raises(ValueError):
            join(a, b, eps, stream=False, memory_budget_bytes=1 << 20)

    def test_all_methods_agree_on_pair_set(self):
        a, b = _pair(24, n_a=220, n_b=200, seed=29)
        eps = _eps(a, b, 8)
        truth = join(a, b, eps, method="ted-join-brute")
        for method in ("ted-join-index", "gds-join", "mistic"):
            assert_pair_sets_equal(truth, join(a, b, eps, method=method))

    def test_stream_rejected_for_index_methods(self):
        a, b = _pair(16, n_a=50, n_b=50)
        with pytest.raises(ValueError):
            join(a, b, 1.0, method="gds-join", stream=True)
        with pytest.raises(ValueError):
            join_stream(a, b, 1.0, method="mistic")

    def test_env_default(self, monkeypatch):
        a, b = _pair(24, seed=31)
        eps = _eps(a, b)
        mem = join(a, b, eps)
        monkeypatch.setenv("REPRO_STREAM", "1")
        streamed = join(a, b, eps)
        assert joins_bit_identical(mem, streamed)

    def test_join_vs_self_join_consistency(self):
        """join(data, data) must contain self_join(data) plus the diagonal."""
        data = _dataset(24, n=180, seed=33)
        eps = float(epsilon_for_selectivity(data, 8))
        sj = self_join(data, eps, method="ted-join-brute")
        jj = join(data, data, eps, method="ted-join-brute")
        # Two-source keeps the diagonal: n extra pairs, same off-diagonal set.
        assert jj.pairs_i.size == sj.pairs_i.size + data.shape[0]
        off = jj.pairs_i != jj.pairs_j
        got = JoinResult(
            n_left=data.shape[0], n_right=data.shape[0], eps=eps,
            pairs_i=jj.pairs_i[off], pairs_j=jj.pairs_j[off],
            sq_dists=jj.sq_dists[off],
        )
        assert_pair_sets_equal(sj, got)

    def test_spill_through_api(self, tmp_path):
        a, b = _pair(24, seed=35)
        eps = _eps(a, b)
        mem = join(a, b, eps, method="ted-join-brute")
        got, _ = join_stream(
            a, b, eps, method="ted-join-brute",
            spill_threshold_bytes=8 * 1024, spill_dir=tmp_path / "spill",
        )
        # Same tile plan (default row_block), so bit-identical through spill.
        assert joins_bit_identical(mem, got)


# ----------------------------------------------------------------------
# CLI two-source form
# ----------------------------------------------------------------------


class TestCliTwoSource:
    def _write_pair(self, tmp_path):
        a, b = _pair(16, n_a=200, n_b=150, seed=37)
        write_chunked_npy(tmp_path / "a", a, rows_per_chunk=64)
        write_chunked_npy(tmp_path / "b", b, rows_per_chunk=64)
        return tmp_path / "a", tmp_path / "b"

    def test_two_chunked_sources_stream(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_STREAM", "1")
        pa, pb = self._write_pair(tmp_path)
        assert main([
            "join", str(pa), str(pb), "--stream", "--memory-budget", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "datasets: A n=200, B n=150" in out
        assert "streaming:" in out and "peak resident blocks" in out

    def test_stream_index_method_rejected(self, tmp_path):
        from repro.cli import main

        pa, pb = self._write_pair(tmp_path)
        with pytest.raises(SystemExit):
            main(["join", str(pa), str(pb), "--method", "gds-join", "--stream"])

    def test_batched_two_source_rejected(self, tmp_path):
        from repro.cli import main

        pa, pb = self._write_pair(tmp_path)
        with pytest.raises(SystemExit):
            main(["join", str(pa), str(pb), "--method", "gds-join", "--batched"])

    def test_data_flag_conflicts_with_positional(self, tmp_path):
        from repro.cli import main

        pa, _pb = self._write_pair(tmp_path)
        with pytest.raises(SystemExit):
            main(["join", str(pa), "--data", str(pa)])


# ----------------------------------------------------------------------
# Source row gathers
# ----------------------------------------------------------------------


class TestSourceTake:
    @pytest.mark.parametrize("kind", ["array", "mmap", "chunked"])
    def test_gather_matches_fancy_index(self, kind, tmp_path):
        data = _dataset(8, n=120, seed=39)
        if kind == "array":
            src = ArraySource(data)
        elif kind == "mmap":
            np.save(tmp_path / "d.npy", data)
            src = MmapNpySource(tmp_path / "d.npy")
        else:
            src = write_chunked_npy(tmp_path / "chunks", data, rows_per_chunk=17)
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 120, 64)  # unsorted, with duplicates
        got = src.take(idx)
        np.testing.assert_array_equal(got, data[idx])
        assert got.dtype == np.float64

    def test_generic_run_gather(self):
        """The base-class contiguous-run fallback is exercised directly."""
        from repro.data.source import DatasetSource

        data = _dataset(8, n=60, seed=41)
        src = ArraySource(data)
        idx = np.array([5, 6, 7, 30, 2, 2, 59])
        got = DatasetSource.take(src, idx)
        np.testing.assert_array_equal(got, data[idx])

    def test_out_of_range(self):
        src = ArraySource(_dataset(8, n=10))
        with pytest.raises(IndexError):
            src.take(np.array([0, 10]))
