"""Tests for the L2 cache model and tile work queue (l2cache, workqueue)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.l2cache import L2Cache
from repro.gpusim.workqueue import (
    analytic_l2_hit_rate,
    ordered_tiles,
    row_major_order,
    simulate_l2_hit_rate,
    square_order,
)


class TestL2Cache:
    def test_cold_miss_then_hit(self):
        c = L2Cache(size_bytes=1 << 20)
        assert not c.access_line(0)
        assert c.access_line(0)
        assert c.stats.hits == 1 and c.stats.misses == 1
        assert c.stats.hit_rate == 0.5

    def test_lru_eviction(self):
        # 2 sets x 2 ways of 128 B lines = 512 B cache.
        c = L2Cache(size_bytes=512, associativity=2)
        assert c.n_sets == 2
        c.access_line(0)  # set 0
        c.access_line(2)  # set 0
        c.access_line(4)  # set 0 -> evicts line 0
        assert not c.access_line(0)  # miss: was evicted
        assert c.access_line(4)  # hit: most recent survives

    def test_associativity_isolates_sets(self):
        c = L2Cache(size_bytes=512, associativity=2)
        c.access_line(1)  # set 1
        c.access_line(0)
        c.access_line(2)
        c.access_line(4)  # set 0 churns
        assert c.access_line(1)  # set 1 untouched

    def test_access_bytes_spans_lines(self):
        c = L2Cache(size_bytes=1 << 20)
        hits, misses = c.access_bytes(0, 256)  # 2 lines
        assert (hits, misses) == (0, 2)
        hits, misses = c.access_bytes(100, 100)  # crosses line boundary
        assert hits == 2 and misses == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            L2Cache(size_bytes=0)

    def test_reset(self):
        c = L2Cache(size_bytes=1 << 20)
        c.access_line(0)
        c.reset_stats()
        assert c.stats.accesses == 0


class TestOrderings:
    @given(st.integers(1, 12), st.integers(1, 12), st.integers(1, 9))
    @settings(max_examples=100, deadline=None)
    def test_square_order_covers_all_tiles_once(self, np_, nq, shape):
        tiles = list(square_order(np_, nq, shape))
        assert len(tiles) == np_ * nq
        assert len(set(tiles)) == np_ * nq

    @given(st.integers(1, 12), st.integers(1, 12))
    @settings(max_examples=50, deadline=None)
    def test_row_major_covers_all_tiles_once(self, np_, nq):
        tiles = list(row_major_order(np_, nq))
        assert tiles == [(i, j) for i in range(np_) for j in range(nq)]

    def test_square_order_locality(self):
        """Within one 8x8 square, only 8 distinct P rows / Q cols appear."""
        tiles = list(square_order(32, 32, 8))
        window = tiles[:64]
        assert len({i for i, _ in window}) == 8
        assert len({j for _, j in window}) == 8

    def test_row_major_locality_is_poor(self):
        tiles = list(row_major_order(32, 32))
        window = tiles[:64]
        assert len({j for _, j in window}) == 32  # sweeps all Q columns

    def test_ordered_tiles_dispatch(self):
        assert list(ordered_tiles(4, 4, square=False)) == list(row_major_order(4, 4))
        assert list(ordered_tiles(4, 4, square=True, shape=2)) == list(
            square_order(4, 4, 2)
        )

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            list(square_order(4, 4, 0))


class TestHitRates:
    def test_simulated_square_beats_row_major_when_spilling(self):
        """The paper's Section 3.3.1 claim, measured on the cache model.

        Parameters chosen so one 8x8 dispatch square's working set
        (16 fragments) fits in L2 while a full tile row's (1 + 32
        fragments) does not -- the regime the square ordering targets.
        """
        kwargs = dict(
            n_points=4096, dims=64, l2_size_bytes=400_000, max_tiles=1024
        )
        sq = simulate_l2_hit_rate(square=True, **kwargs)
        rm = simulate_l2_hit_rate(square=False, **kwargs)
        assert sq > rm + 0.2

    def test_simulated_square_hit_rate_near_seven_eighths(self):
        rate = simulate_l2_hit_rate(
            n_points=2048, dims=128, l2_size_bytes=40_000_000, max_tiles=2000
        )
        assert 0.8 <= rate <= 0.95

    @given(
        st.integers(256, 100_000),
        st.sampled_from([64, 128, 512, 4096]),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_analytic_rate_in_unit_interval(self, n, d, square):
        h = analytic_l2_hit_rate(n, d, square=square)
        assert 0.0 <= h <= 1.0

    def test_analytic_square_beats_row_major_at_scale(self):
        sq = analytic_l2_hit_rate(100_000, 4096, square=True)
        rm = analytic_l2_hit_rate(100_000, 4096, square=False)
        assert sq > rm + 0.2

    def test_analytic_matches_paper_range(self):
        """Paper Table 6: FaSTED L2 hit rate 84-90% at |D|=1e5."""
        for d in (128, 256, 4096):
            h = analytic_l2_hit_rate(100_000, d, square=True)
            assert 0.82 <= h <= 0.92
