"""Cross-module integration tests: the full pipeline, end to end."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    epsilon_for_selectivity,
    overlap_accuracy,
    distance_error_stats,
    self_join,
)
from repro.core.scaling import fit_scaler
from repro.data.realworld import load_surrogate
from repro.fp.fp16 import FP16_MAX
from repro.kernels.fasted import FastedKernel
from repro.kernels.fragment_exact import block_tile_sq_dists


@pytest.fixture(scope="module")
def clustered():
    rng = np.random.default_rng(0)
    centers = rng.normal(0, 4, size=(10, 40))
    return centers[rng.integers(0, 10, 600)] + rng.normal(0, 0.4, size=(600, 40))


class TestPipeline:
    def test_calibrate_join_validate(self, clustered):
        eps = epsilon_for_selectivity(clustered, 32)
        res = self_join(clustered, eps)
        truth = self_join(clustered, eps, method="gds-join", precision="fp64")
        assert 20 <= res.selectivity <= 48
        assert overlap_accuracy(res, truth) > 0.99
        stats = distance_error_stats(res, truth)
        assert abs(stats.mean) < max(3 * stats.std, 1e-9)

    def test_fp16_error_analytic_bound(self, clustered):
        """Distance error bounded by first-order FP16 perturbation theory.

        Quantizing coordinates perturbs each by at most u*|x| (u = 2^-11);
        the distance perturbs by at most ||delta_p|| + ||delta_q|| plus the
        FP32 accumulation noise.
        """
        eps = epsilon_for_selectivity(clustered, 32)
        res = self_join(clustered, eps)
        truth = self_join(clustered, eps, method="ted-join-brute")
        stats = distance_error_stats(res, truth)
        u = 2.0**-11
        norms = np.sqrt((clustered**2).sum(axis=1))
        bound = 2 * u * norms.max() + 1e-3 * eps
        assert np.abs(stats.errors).max() <= 3 * bound

    def test_scaled_pipeline_equivalent(self, clustered):
        """Scaling + radius mapping returns the same pair set (same FP16
        relative precision regime on well-conditioned data)."""
        eps = epsilon_for_selectivity(clustered, 16)
        scaler = fit_scaler(clustered, center=False, target_fraction=0.001)
        res_raw = self_join(clustered, eps, store_distances=False)
        res_scaled = self_join(
            scaler.transform(clustered),
            scaler.transform_radius(eps),
            store_distances=False,
        )
        a = set(zip(res_raw.pairs_i.tolist(), res_raw.pairs_j.tolist()))
        b = set(zip(res_scaled.pairs_i.tolist(), res_scaled.pairs_j.tolist()))
        # Power-of-two-ish scale factors preserve FP16 rounding almost
        # everywhere; allow a whisker of boundary flips.
        assert len(a.symmetric_difference(b)) <= 0.01 * max(len(a), 1)


class TestCrossMethodAgreement:
    @given(st.integers(0, 10**6), st.sampled_from([8, 24, 72]))
    @settings(max_examples=8, deadline=None)
    def test_all_methods_same_pairs(self, seed, selectivity):
        rng = np.random.default_rng(seed)
        centers = rng.normal(0, 3, size=(6, 24))
        data = centers[rng.integers(0, 6, 300)] + rng.normal(0, 0.4, (300, 24))
        eps = epsilon_for_selectivity(data, selectivity, sample=200)
        truth = self_join(data, eps, method="ted-join-brute", store_distances=False)
        for method in ("fasted", "gds-join", "mistic", "ted-join-index"):
            res = self_join(data, eps, method=method, store_distances=False)
            assert overlap_accuracy(res, truth) > 0.98, method


class TestFragmentVsFastEquivalence:
    def test_tilewise_agreement_on_surrogate(self):
        """The simulated-hardware path and the fast path agree on real data."""
        data, _ = load_surrogate("Sift10M", n=32)
        scaled = data[:, :64] / 16.0  # one k-chunk, FP16-safe products
        d2_frag = block_tile_sq_dists(scaled[:16], scaled[16:32])
        k = FastedKernel()
        q = scaled
        s = k.precompute_norms(q, mode="rz")
        d2_fast = k.tile_sq_dists(q[:16], q[16:32], s[:16], s[16:32])
        assert np.allclose(d2_frag, d2_fast, rtol=1e-4, atol=1e-2)


class TestFp16SafetyOnSurrogates:
    @pytest.mark.parametrize("name", ["Sift10M", "Tiny5M", "Cifar60K", "Gist1M"])
    def test_no_overflow_anywhere_in_pipeline(self, name):
        data, _ = load_surrogate(name, n=400)
        assert np.abs(data).max() < FP16_MAX
        res = self_join(data, epsilon_for_selectivity(data, 8))
        assert np.isfinite(res.sq_dists).all()
