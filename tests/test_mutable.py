"""Mutable-index test tier: differential op sequences, concurrency, swap.

The core contract of :mod:`repro.index.delta` is *bit-identity under
mutation*: at any point in an append/delete/seal/compact history, every
query against the layered store must equal -- bitwise, including
distances and tie-breaks -- the same query against an index rebuilt from
scratch over the live rows.  The tests here enforce that contract three
ways:

* **Differential op sequences** -- a seeded generator interleaves
  append/delete/seal/compact/reopen ops against a ``MutableIndex`` and a
  brute-force model, asserting bit-identical range and kNN answers after
  *every* op (grid + mstree bases, mmap and in-RAM loads, 3 seeds x 200
  ops).
* **Concurrency hammer** -- writer threads appending/deleting through a
  ``QueryService`` while readers issue range/kNN; the final store equals
  the serialized op log's rebuild and the mutation counters are exact.
* **Generation swap** -- ``IndexCache`` keeps the live writer across
  self-commits but atomically swaps to a new generation when another
  handle rewrites the manifest.
"""

import threading
from pathlib import Path

import numpy as np
import pytest

from repro.index.delta import (
    DEFAULT_SEAL_THRESHOLD,
    MutableIndex,
    is_mutable_index,
    read_manifest,
)
from repro.index.grid import GridIndex
from repro.index.mstree import MultiSpaceTree
from repro.service import QueryEngine, QueryService
from repro.service.server import IndexCache, make_server


def _dataset(n, d, seed):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 2.5, size=(5, d))
    return centers[rng.integers(0, 5, n)] + rng.normal(0, 0.7, size=(n, d))


def _eps_for(data):
    from repro.core.selectivity import epsilon_for_selectivity

    return float(epsilon_for_selectivity(data, 8))


class _Model:
    """Brute-force mirror: global id -> row, with a live set."""

    def __init__(self, data):
        self.rows = {i: data[i].copy() for i in range(data.shape[0])}
        self.live = set(self.rows)
        self.next_id = data.shape[0]

    def append(self, rows):
        ids = list(range(self.next_id, self.next_id + rows.shape[0]))
        for i, gid in enumerate(ids):
            self.rows[gid] = rows[i].copy()
            self.live.add(gid)
        self.next_id += rows.shape[0]
        return ids

    def delete(self, ids):
        for gid in ids:
            self.live.remove(gid)

    def live_gids(self):
        return np.array(sorted(self.live), dtype=np.int64)

    def live_rows(self):
        return np.array([self.rows[g] for g in sorted(self.live)])


def _rebuilt(model, kind, eps, *, n_dims=6, seed=0):
    """A from-scratch engine over the live rows, in ascending-id order."""
    rows = model.live_rows()
    if kind == "grid":
        index = GridIndex(rows, eps, n_dims=n_dims)
    else:
        index = MultiSpaceTree(rows, eps, seed=seed)
    return QueryEngine(index, rows)


def _assert_bit_identical(mut, model, queries, k=5, *, atol=None):
    """Range + kNN answers must equal the rebuilt engine's, bitwise.

    ``atol`` relaxes only the *distance* comparison: with exact
    duplicate rows, BLAS per-element rounding depends on a candidate's
    column position inside the reference engine's GEMM, so a 0-distance
    pair can come back as a last-ulp residual (~1e-14) in one engine and
    exactly 0.0 in the other.  Neighbor sets and tie order stay exact.
    """
    gids = model.live_gids()
    ref = _rebuilt(model, mut.kind, mut.eps)

    def _dists_equal(got_d, want_d):
        if atol is None:
            np.testing.assert_array_equal(got_d, want_d)
        else:
            np.testing.assert_allclose(got_d, want_d, rtol=0, atol=atol)

    got = mut.range_query(queries)
    want = ref.range_query(queries)
    order = np.lexsort((want.pairs_j, want.pairs_i))
    np.testing.assert_array_equal(got.pairs_i, want.pairs_i[order])
    np.testing.assert_array_equal(got.pairs_j, gids[want.pairs_j[order]])
    _dists_equal(got.sq_dists, want.sq_dists[order])

    kk = min(k, gids.size)
    got_k = mut.knn_query(queries, k)
    want_k = ref.knn_query(queries, k)
    assert got_k.n_points == gids.size == want_k.n_points
    pad = want_k.indices < 0
    mapped = np.where(pad, -1, gids[np.clip(want_k.indices, 0, None)])
    np.testing.assert_array_equal(got_k.indices, mapped)
    finite = np.isfinite(want_k.sq_dists)
    _dists_equal(got_k.sq_dists[finite], want_k.sq_dists[finite])
    np.testing.assert_array_equal(
        np.isfinite(got_k.sq_dists), finite
    )
    assert np.all(got_k.indices[:, kk:] == -1)


def _run_op_sequence(tmp_path, *, kind, mmap, seed, n_ops=200, n0=150, d=7):
    data = _dataset(n0, d, seed)
    eps = _eps_for(data)
    root = tmp_path / f"mut-{kind}-{seed}"
    MutableIndex.create(root, data, eps, kind=kind, seal_threshold=40)
    mut = MutableIndex(root, mmap=mmap)
    model = _Model(data)
    rng = np.random.default_rng(seed + 1000)
    queries = data[rng.integers(0, n0, size=10)] + rng.normal(
        0, eps / 8, size=(10, d)
    )

    for step in range(n_ops):
        r = rng.random()
        if r < 0.40:
            rows = _dataset(int(rng.integers(1, 9)), d, seed * 7919 + step)
            ids = mut.append(rows)
            assert ids.tolist() == model.append(rows)
        elif r < 0.62 and len(model.live) > 8:
            take = rng.choice(
                model.live_gids(),
                size=int(rng.integers(1, 4)),
                replace=False,
            )
            assert mut.delete(take) == take.size
            model.delete(take.tolist())
        elif r < 0.70:
            mut.seal()
        elif r < 0.76:
            mut.compact()
            assert mut.n_segments == 0 and mut.n_tombstones == 0
        elif r < 0.80:
            # Reopen from disk: the unsealed buffer is volatile, so
            # seal first -- this also exercises manifest round-tripping.
            mut.seal()
            mut = MutableIndex(root, mmap=mmap)
        if step % 4 == 0 or r >= 0.62:
            assert mut.n_points == len(model.live)
            np.testing.assert_array_equal(mut.live_ids(), model.live_gids())
            _assert_bit_identical(mut, model, queries)
    _assert_bit_identical(mut, model, queries)
    mut.compact()
    _assert_bit_identical(mut, model, queries)
    # And once more through a cold reopen of the compacted store.
    _assert_bit_identical(MutableIndex(root, mmap=mmap), model, queries)


@pytest.mark.parametrize(
    "kind,mmap,seed",
    [("grid", True, 0), ("grid", False, 1), ("mstree", True, 2)],
)
def test_differential_op_sequence(tmp_path, kind, mmap, seed):
    _run_op_sequence(tmp_path, kind=kind, mmap=mmap, seed=seed)


def test_duplicate_rows_tie_break(tmp_path):
    """Appended exact duplicates must tie-break like the rebuilt engine
    (lower global id wins), in both range order and kNN indices."""
    data = _dataset(60, 5, 9)
    eps = _eps_for(data)
    root = tmp_path / "dup"
    MutableIndex.create(root, data, eps, seal_threshold=16)
    mut = MutableIndex(root)
    model = _Model(data)
    dup = data[:12].copy()
    assert mut.append(dup).tolist() == model.append(dup)
    mut.seal()
    ids = mut.append(dup[:5])
    model.append(dup[:5])
    queries = data[:8]
    _assert_bit_identical(mut, model, queries, k=7, atol=1e-12)
    mut.delete(ids[:2])
    model.delete(ids[:2].tolist())
    _assert_bit_identical(mut, model, queries, k=7, atol=1e-12)
    mut.compact()
    _assert_bit_identical(mut, model, queries, k=7, atol=1e-12)


def test_buffer_volatile_and_tombstones_durable(tmp_path):
    """Reopen semantics: unsealed appends vanish, deletes survive, and
    tombstones left dangling by a lost buffer are pruned."""
    data = _dataset(50, 5, 3)
    eps = _eps_for(data)
    root = tmp_path / "vol"
    MutableIndex.create(root, data, eps, seal_threshold=1000)
    mut = MutableIndex(root)
    ids = mut.append(_dataset(6, 5, 4))
    mut.delete([0, 1])
    mut.delete(ids[:2])  # tombstones over buffered (volatile) rows
    reopened = MutableIndex(root)
    assert reopened.n_points == 48  # buffer gone, base deletes durable
    assert reopened.n_tombstones == 2  # dangling buffer tombstones pruned
    np.testing.assert_array_equal(
        reopened.live_ids(), np.arange(2, 50, dtype=np.int64)
    )


def test_compact_empty_and_missing_ids(tmp_path):
    data = _dataset(20, 4, 5)
    root = tmp_path / "edge"
    MutableIndex.create(root, data, _eps_for(data))
    mut = MutableIndex(root)
    with pytest.raises(ValueError):
        mut.delete([999])
    assert mut.delete([999, 3], missing="ignore") == 1
    mut.delete(np.arange(20)[np.arange(20) != 3], missing="ignore")
    assert mut.n_points == 0
    with pytest.raises(ValueError):
        mut.compact()  # nothing live to rebuild from


def test_create_rejects_existing_and_empty(tmp_path):
    data = _dataset(10, 4, 6)
    root = tmp_path / "c"
    MutableIndex.create(root, data, _eps_for(data))
    with pytest.raises(ValueError):
        MutableIndex.create(root, data, 1.0)
    with pytest.raises(ValueError):
        MutableIndex.create(tmp_path / "c2", np.empty((0, 4)), 1.0)
    assert is_mutable_index(root)
    m = read_manifest(root)
    assert m["next_id"] == 10 and m["kind"] == "grid"


# ----------------------------------------------------------------------
# Concurrency hammer through the QueryService
# ----------------------------------------------------------------------


def test_concurrent_hammer_matches_serial_rebuild(tmp_path):
    """Writers appending/deleting + readers querying, concurrently; the
    final store must equal the rebuild of the merged op log, and the
    mutation counters must account for every op exactly."""
    d = 6
    data = _dataset(120, d, 11)
    eps = _eps_for(data)
    root = tmp_path / "hammer"
    MutableIndex.create(root, data, eps, seal_threshold=32)

    svc = QueryService()
    n_writers, ops_per_writer, n_readers = 4, 25, 3
    appended = [[] for _ in range(n_writers)]  # (gid, row) per writer
    deleted = [[] for _ in range(n_writers)]
    errors = []
    barrier = threading.Barrier(n_writers + n_readers)
    stop_readers = threading.Event()

    def writer(w):
        try:
            rng = np.random.default_rng(100 + w)
            barrier.wait()
            own = []
            for op in range(ops_per_writer):
                if own and rng.random() < 0.3:
                    gid = own.pop(int(rng.integers(0, len(own))))
                    assert svc.delete(root, [gid]) == 1
                    deleted[w].append(gid)
                else:
                    rows = rng.normal(0, 1.5, size=(int(rng.integers(1, 5)), d))
                    ids = svc.append(root, rows)
                    for i, gid in enumerate(ids):
                        appended[w].append((int(gid), rows[i].copy()))
                        own.append(int(gid))
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    def reader(ri):
        try:
            rng = np.random.default_rng(200 + ri)
            barrier.wait()
            while not stop_readers.is_set():
                q = data[rng.integers(0, data.shape[0], size=4)]
                if rng.random() < 0.5:
                    res = svc.query(root, q, eps=eps)
                    assert res.pairs_i.size == res.pairs_j.size
                else:
                    res = svc.query(root, q, k=3)
                    assert res.indices.shape == (4, 3)
        except BaseException as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(w,)) for w in range(n_writers)
    ] + [threading.Thread(target=reader, args=(ri,)) for ri in range(n_readers)]
    for t in threads:
        t.start()
    for t in threads[:n_writers]:
        t.join()
    stop_readers.set()
    for t in threads[n_writers:]:
        t.join()
    assert not errors, errors

    # Serialized-equivalent final state: initial + all appends - deletes.
    model = _Model(data)
    for w in range(n_writers):
        for gid, row in appended[w]:
            model.rows[gid] = row
            model.live.add(gid)
        model.next_id = max(model.next_id, max(
            (gid + 1 for gid, _ in appended[w]), default=0
        ))
    for w in range(n_writers):
        for gid in deleted[w]:
            model.live.remove(gid)

    engine = svc.engine_for(root)
    np.testing.assert_array_equal(engine.live_ids(), model.live_gids())
    # Jittered queries (exact data rows would sit at distance 0 from
    # their base row, where last-ulp GEMM cancellation is visible).
    qrng = np.random.default_rng(999)
    queries = data[:10] + qrng.uniform(-eps / 8, eps / 8, (10, d))
    _assert_bit_identical(engine, model, queries)

    # Mutation counters: exact, and torn-read-free (one snapshot).
    snap = svc.metrics.snapshot()
    total_rows = sum(len(a) for a in appended)
    total_deletes = sum(len(dl) for dl in deleted)
    assert snap["repro_mutable_rows_appended_total"] == total_rows
    assert snap["repro_mutable_tombstones_written_total"] == total_deletes
    assert snap["repro_mutable_deletes_total"] == total_deletes
    # Every op was one request: appends are whatever wasn't a delete.
    assert snap["repro_mutable_appends_total"] == (
        n_writers * ops_per_writer - total_deletes
    )

    out = svc.compact(root)
    assert out["n_live"] == len(model.live)
    assert snap["repro_mutable_compactions_total"] == 0
    assert svc.metrics.snapshot()["repro_mutable_compactions_total"] == 1
    _assert_bit_identical(svc.engine_for(root), model, queries)
    svc.stop()


# ----------------------------------------------------------------------
# IndexCache generation swap
# ----------------------------------------------------------------------


def test_cache_keeps_writer_across_self_commits(tmp_path):
    data = _dataset(40, 5, 21)
    root = tmp_path / "gen"
    MutableIndex.create(root, data, _eps_for(data), seal_threshold=8)
    cache = IndexCache(capacity=4)
    eng = cache.get(root)
    assert isinstance(eng, MutableIndex)
    eng.append(_dataset(10, 5, 22))  # crosses the threshold: seals+commits
    eng.delete([0])
    assert cache.get(root) is eng  # self-commits keep the live writer
    eng.compact()
    assert cache.get(root) is eng


def test_cache_swaps_on_external_rewrite(tmp_path):
    data = _dataset(40, 5, 23)
    root = tmp_path / "swap"
    MutableIndex.create(root, data, _eps_for(data), seal_threshold=8)
    cache = IndexCache(capacity=4)
    old = cache.get(root)
    # Another handle (think: another process) commits a new generation.
    other = MutableIndex(root)
    other.delete([0, 1, 2])
    other.compact()
    new = cache.get(root)
    assert new is not old
    assert new.n_points == 37
    # In-flight requests on the old generation still complete.
    res = old.range_query(data[:4])
    assert res.pairs_i.size >= 0


# ----------------------------------------------------------------------
# HTTP endpoints
# ----------------------------------------------------------------------


def test_http_mutation_endpoints(tmp_path):
    from repro.service.client import ServiceClient

    d = 5
    data = _dataset(80, d, 31)
    eps = _eps_for(data)
    mut_root = tmp_path / "m"
    MutableIndex.create(mut_root, data, eps, seal_threshold=16)
    from repro.core.api import build_index

    ro_root = build_index(data, eps, tmp_path / "ro")
    server = make_server(
        {"default": mut_root, "frozen": ro_root}, port=0
    )
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        with ServiceClient(host, port) as client:
            rows = _dataset(6, d, 32)
            ids = client.append(rows.tolist())
            assert ids == list(range(80, 86))
            assert client.delete(ids[:2]) == 2
            out = client.compact()
            assert out["compacted"] and out["n_live"] == 84
            got = client.range_query(data[:3].tolist())
            assert got["n_queries"] == 3
            # Mutating an immutable registration is a client error.
            status, body = client.request(
                "POST", "/append",
                {"index": "frozen", "rows": rows.tolist()},
            )
            assert status == 400
            status, _ = client.request(
                "POST", "/delete", {"index": "frozen", "ids": [1]}
            )
            assert status == 400
            status, _ = client.request(
                "POST", "/compact", {"index": "frozen"}
            )
            assert status == 400
            # Bad mutation payloads 400 too (never 500).
            status, _ = client.request(
                "POST", "/append", {"rows": [[1.0, 2.0]]}
            )
            assert status == 400
            status, _ = client.request("POST", "/delete", {"ids": [99999]})
            assert status == 400
    finally:
        server.shutdown()
        server.server_close()


def test_default_seal_threshold_sane():
    assert DEFAULT_SEAL_THRESHOLD >= 1
