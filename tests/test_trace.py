"""Tracing subsystem: ids, sampling, propagation, HTTP wiring, chaos.

The observability contracts, executable:

* **Ids and headers** -- fresh 64-bit hex ids, propagation-safe
  ``X-Request-Id`` sanitation, strict W3C ``traceparent`` parsing.
* **Retention policy** -- probabilistic sampling, always-on-error,
  always-over-threshold (the slow-query log), and the bounded ring.
* **Propagation** -- contextvars across threads, explicit ``activate``
  handoff, ``TraceHooks`` stage accumulation.
* **HTTP wiring** -- every response (success *and* failure) echoes
  ``X-Request-Id``; ``/trace/<id>`` returns the span tree; answers are
  bit-identical with tracing fully armed (the acceptance contract).
* **Chaos** -- injected dispatch faults surface as error spans carrying
  the fault, are retained at sample=0, and 429/500/503/504 responses
  still carry correlation ids.
"""

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro import faults
from repro import trace as trace_mod
from repro.core.api import build_index
from repro.core.selectivity import epsilon_for_selectivity
from repro.service import QueryService, make_server


@pytest.fixture(autouse=True)
def _clean_faults():
    """Every test starts and ends disarmed, with a reseeded fault RNG."""
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(scope="module")
def indexed(tmp_path_factory):
    """One persisted grid index shared by the HTTP-layer tests."""
    rng = np.random.default_rng(9)
    data = rng.normal(size=(600, 12))
    eps = float(epsilon_for_selectivity(data, 8))
    path = tmp_path_factory.mktemp("traced") / "idx"
    build_index(data, eps, path)
    return path, data, eps


def _queries(data, nq=8, seed=3):
    rng = np.random.default_rng(seed)
    return data[rng.integers(0, data.shape[0], size=nq)]


def _post(conn, path, payload, headers=None):
    hdrs = {"Content-Type": "application/json"}
    if headers:
        hdrs.update(headers)
    conn.request("POST", path, json.dumps(payload), hdrs)
    resp = conn.getresponse()
    body = resp.read()
    parsed = json.loads(body) if body else {}
    return resp.status, parsed, {k.lower(): v for k, v in resp.getheaders()}


def _get(conn, path, headers=None):
    conn.request("GET", path, headers=headers or {})
    resp = conn.getresponse()
    body = resp.read()
    parsed = json.loads(body) if body else {}
    return resp.status, parsed, {k.lower(): v for k, v in resp.getheaders()}


class _Server:
    """Start/stop wrapper around :func:`make_server` for tests."""

    def __init__(self, index_path, **kwargs):
        self.server = make_server(
            {"default": index_path}, port=0, **kwargs
        )
        self.host, self.port = self.server.server_address[:2]
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()

    def connect(self):
        return http.client.HTTPConnection(self.host, self.port, timeout=30)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=5)


# ----------------------------------------------------------------------
# Ids and inbound headers
# ----------------------------------------------------------------------


class TestIds:
    def test_new_id_is_64_bit_hex(self):
        ids = {trace_mod.new_id() for _ in range(64)}
        assert len(ids) == 64  # no collisions in a small draw
        for i in ids:
            assert len(i) == 16
            int(i, 16)  # parses as hex

    def test_sanitize_accepts_safe_ids(self):
        assert trace_mod.sanitize_request_id("req-42_a.b") == "req-42_a.b"
        assert trace_mod.sanitize_request_id("  abc  ") == "abc"

    @pytest.mark.parametrize("bad", [
        None, "", "   ", "has space", "semi;colon", "new\nline",
        "quote\"y", "x" * 500, "ünïcode",
    ])
    def test_sanitize_rejects_unsafe_ids(self, bad):
        assert trace_mod.sanitize_request_id(bad) is None

    def test_traceparent_roundtrip(self):
        hdr = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"
        assert trace_mod.parse_traceparent(hdr) == ("ab" * 16, "cd" * 8)

    @pytest.mark.parametrize("bad", [
        None,
        "",
        "01-" + "ab" * 16 + "-" + "cd" * 8 + "-01",  # unknown version
        "00-" + "00" * 16 + "-" + "cd" * 8 + "-01",  # all-zero trace
        "00-" + "ab" * 16 + "-" + "00" * 8 + "-01",  # all-zero parent
        "00-short-" + "cd" * 8 + "-01",
        "00-" + "ab" * 16 + "-" + "cd" * 8,          # missing flags
    ])
    def test_traceparent_rejects_malformed(self, bad):
        assert trace_mod.parse_traceparent(bad) is None


# ----------------------------------------------------------------------
# Retention policy + ring
# ----------------------------------------------------------------------


class TestRetention:
    def _one_trace(self, tracer, *, fail=False, name="root"):
        root = tracer.start_trace(name)
        with tracer.span("child", parent=root):
            pass
        if fail:
            root.record_error(RuntimeError("boom"))
        root.finish()
        return root

    def test_sample_zero_drops_ok_traces(self):
        tracer = trace_mod.Tracer(sample=0.0)
        root = self._one_trace(tracer)
        assert tracer.get_trace(root.trace_id) is None
        assert tracer.counters() == {
            "traces_started": 1, "traces_retained": 0,
            "traces_dropped": 1, "traces_active": 0,
        }

    def test_sample_one_retains_with_span_tree(self):
        tracer = trace_mod.Tracer(sample=1.0)
        root = self._one_trace(tracer)
        got = tracer.get_trace(root.trace_id)
        assert got is not None
        names = [s["name"] for s in got["spans"]]
        assert names == ["child", "root"]
        child, top = got["spans"]
        assert child["parent_id"] == top["span_id"]
        assert top["parent_id"] is None
        assert got["status"] == "ok"

    def test_error_always_retained_at_sample_zero(self):
        tracer = trace_mod.Tracer(sample=0.0, on_error=True)
        root = self._one_trace(tracer, fail=True)
        got = tracer.get_trace(root.trace_id)
        assert got is not None and got["status"] == "error"

    def test_on_error_false_drops_failures_too(self):
        tracer = trace_mod.Tracer(sample=0.0, on_error=False)
        root = self._one_trace(tracer, fail=True)
        assert tracer.get_trace(root.trace_id) is None

    def test_slow_threshold_retains_regardless_of_coin(self):
        tracer = trace_mod.Tracer(sample=0.0, slow_threshold_s=0.0)
        root = self._one_trace(tracer)  # any duration >= 0.0 is "slow"
        assert tracer.get_trace(root.trace_id) is not None

    def test_ring_is_bounded(self):
        tracer = trace_mod.Tracer(sample=1.0, ring_size=2)
        roots = [self._one_trace(tracer, name=f"r{i}") for i in range(5)]
        recent = tracer.recent()
        assert len(recent) == 2
        # Newest first, oldest evicted.
        assert [t["root"] for t in recent] == ["r4", "r3"]
        assert tracer.get_trace(roots[0].trace_id) is None

    def test_recent_omits_span_bodies(self):
        tracer = trace_mod.Tracer(sample=1.0)
        self._one_trace(tracer)
        (entry,) = tracer.recent()
        assert "spans" not in entry and entry["n_spans"] == 2

    def test_sampling_probability_is_seeded(self):
        tracer = trace_mod.Tracer(sample=0.5, seed=123)
        for i in range(200):
            self._one_trace(tracer, name=f"t{i}")
        kept = tracer.traces_retained
        assert 60 <= kept <= 140  # fair-ish coin
        again = trace_mod.Tracer(sample=0.5, seed=123)
        for i in range(200):
            self._one_trace(again, name=f"t{i}")
        assert again.traces_retained == kept  # same seed, same keeps

    def test_inbound_request_id_becomes_trace_id(self):
        tracer = trace_mod.Tracer(sample=1.0)
        root = tracer.start_trace("r", request_id="client-7")
        root.finish()
        assert root.trace_id == "client-7"
        assert tracer.get_trace("client-7") is not None

    def test_traceparent_supplies_id_and_remote_parent(self):
        tracer = trace_mod.Tracer(sample=1.0)
        hdr = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"
        root = tracer.start_trace("r", traceparent=hdr)
        assert root.trace_id == "ab" * 16
        assert root.parent_id == "cd" * 8


# ----------------------------------------------------------------------
# Context propagation + hooks
# ----------------------------------------------------------------------


class TestPropagation:
    def test_activate_carries_span_across_threads(self):
        tracer = trace_mod.Tracer(sample=1.0)
        root = tracer.start_trace("root")
        seen = {}

        def worker():
            with trace_mod.activate(root):
                seen["span"] = trace_mod.current_span()
                seen["rid"] = trace_mod.current_request_id()

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen["span"] is root
        assert seen["rid"] == root.trace_id
        assert trace_mod.current_span() is None  # never leaked here
        root.finish()

    def test_span_cm_nests_and_records_errors(self):
        tracer = trace_mod.Tracer(sample=1.0)
        root = tracer.start_trace("root")
        with trace_mod.activate(root):
            with pytest.raises(ValueError):
                with tracer.span("inner") as sp:
                    assert trace_mod.current_span() is sp
                    assert sp.parent_id == root.span_id
                    raise ValueError("nope")
        root.finish()
        got = tracer.get_trace(root.trace_id)
        inner = next(s for s in got["spans"] if s["name"] == "inner")
        assert inner["status"] == "error"
        assert "ValueError: nope" in inner["error"]

    def test_record_span_requires_a_parent(self):
        tracer = trace_mod.Tracer(sample=1.0)
        assert tracer.record_span("orphan", 0.01) is None
        root = tracer.start_trace("root")
        sp = tracer.record_span("timed", 0.25, parent=root,
                                attrs={"n": 3})
        assert sp.duration_s == 0.25 and sp.attrs["n"] == 3
        root.finish()
        names = [s["name"] for s in tracer.get_trace(root.trace_id)["spans"]]
        assert names == ["timed", "root"]

    def test_record_ambient_span_uses_active_context(self):
        tracer = trace_mod.Tracer(sample=1.0)
        assert trace_mod.record_ambient_span("noctx", 0.1) is None
        root = tracer.start_trace("root")
        with trace_mod.activate(root):
            sp = trace_mod.record_ambient_span("ambient", 0.1)
        assert sp is not None and sp.parent_id == root.span_id
        root.finish()

    def test_hooks_accumulate_and_scope(self):
        hooks = trace_mod.TraceHooks()
        assert trace_mod.current_hooks() is None
        with trace_mod.use_hooks(hooks):
            assert trace_mod.current_hooks() is hooks
            hooks.record("gemm", 0.5)
            hooks.record("gemm", 0.25)
            hooks.record("gather", 0.1)
        assert trace_mod.current_hooks() is None
        snap = hooks.snapshot()
        assert snap["gemm"] == pytest.approx(0.75)
        assert snap["gather"] == pytest.approx(0.1)

    def test_span_attr_and_event_bounds(self):
        tracer = trace_mod.Tracer(sample=1.0)
        root = tracer.start_trace("root")
        for i in range(trace_mod.MAX_ATTRS_PER_SPAN + 5):
            root.set_attr(f"a{i}", i)
        for i in range(trace_mod.MAX_EVENTS_PER_SPAN + 5):
            root.add_event("e", i=i)
        assert len(root.attrs) == trace_mod.MAX_ATTRS_PER_SPAN
        assert len(root.events) == trace_mod.MAX_EVENTS_PER_SPAN
        root.finish()
        assert tracer.get_trace(root.trace_id)["spans"][0]["dropped"] == 10


# ----------------------------------------------------------------------
# JSONL export + report rendering
# ----------------------------------------------------------------------


class TestJsonl:
    def test_export_roundtrip_and_report(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = trace_mod.Tracer(sample=1.0, jsonl_path=path)
        root = tracer.start_trace("POST range")
        with tracer.span("engine.dispatch", parent=root):
            time.sleep(0.001)
        root.finish()
        tracer.close()
        spans = trace_mod.read_jsonl(path)
        assert {s["name"] for s in spans} == {"POST range", "engine.dispatch"}
        report = trace_mod.render_report(spans)
        assert "POST range" in report and "engine.dispatch" in report
        assert root.trace_id in report

    def test_read_jsonl_rejects_schema_violations(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = {
            "trace_id": "t", "span_id": "s", "name": "n",
            "duration_s": 0.1, "status": "ok",
        }
        path.write_text(
            json.dumps(good) + "\n" + json.dumps({"name": "orphan"}) + "\n"
        )
        with pytest.raises(ValueError, match=r":2: span is missing"):
            trace_mod.read_jsonl(path)
        path.write_text("not json\n")
        with pytest.raises(ValueError, match=r":1:"):
            trace_mod.read_jsonl(path)

    def test_render_report_filters(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = trace_mod.Tracer(sample=1.0, jsonl_path=path)
        for name in ("first", "second", "third"):
            tracer.start_trace(name).finish()
        tracer.close()
        spans = trace_mod.read_jsonl(path)
        limited = trace_mod.render_report(spans, limit=1)
        assert "third" in limited and "first" not in limited
        assert "no traces" in trace_mod.render_report(
            spans, slow_ms=60_000.0
        )


# ----------------------------------------------------------------------
# HTTP wiring (both front ends)
# ----------------------------------------------------------------------


class TestHttpTracing:
    @pytest.mark.parametrize("frontend", ["thread", "async"])
    def test_request_id_echo_and_span_tree(self, indexed, frontend):
        path, data, eps = indexed
        q = _queries(data, nq=6)
        with _Server(path, frontend=frontend, trace_sample=1.0) as srv:
            conn = srv.connect()
            try:
                status, _body, hdrs = _post(
                    conn, "/range",
                    {"queries": q.tolist()},
                    headers={"X-Request-Id": "itest-1"},
                )
                assert status == 200
                assert hdrs["x-request-id"] == "itest-1"  # honored inbound
                status, got, _ = _get(conn, "/trace/itest-1")
                assert status == 200
                names = [s["name"] for s in got["spans"]]
                assert names[-1] == "POST range"
                for expected in ("queue.wait", "batch.assemble",
                                 "engine.dispatch", "batch.split"):
                    assert expected in names
                # Parent links all resolve within the trace.
                ids = {s["span_id"] for s in got["spans"]}
                for s in got["spans"][:-1]:
                    assert s["parent_id"] in ids
                # A response without an inbound id mints a fresh one.
                status, _body, hdrs = _post(
                    conn, "/knn", {"queries": q.tolist(), "k": 2}
                )
                assert status == 200
                assert trace_mod.sanitize_request_id(
                    hdrs["x-request-id"]
                ) is not None
                status, recent, _ = _get(conn, "/trace/recent")
                assert status == 200
                assert recent["traces_retained"] >= 2
                assert any(
                    t["trace_id"] == "itest-1" for t in recent["traces"]
                )
            finally:
                conn.close()

    def test_error_responses_carry_request_id(self, indexed):
        path, _data, _eps = indexed
        with _Server(path, trace_sample=0.0) as srv:
            conn = srv.connect()
            try:
                # 400 (malformed payload), 404 (unknown index/route).
                status, _b, hdrs = _post(conn, "/range", {"queries": "x"})
                assert status == 400 and "x-request-id" in hdrs
                status, _b, hdrs = _post(
                    conn, "/range", {"index": "nope", "queries": [[0.0]]}
                )
                assert status == 404 and "x-request-id" in hdrs
                status, _b, hdrs = _get(conn, "/trace/unknown-id")
                assert status == 404 and "x-request-id" in hdrs
            finally:
                conn.close()

    def test_answers_bit_identical_with_tracing_armed(self, indexed):
        """The acceptance contract: tracing on changes no output bit."""
        path, data, eps = indexed
        q = _queries(data, nq=32, seed=17)
        tracer = trace_mod.Tracer(sample=1.0, slow_threshold_s=0.0)
        with QueryService(tracer=tracer) as svc:
            engine = svc.cache.get(path)
            root = tracer.start_trace("bit-identity")
            with trace_mod.activate(root):
                traced_range = svc.query(path, q)
                traced_knn = svc.query(path, q, k=4)
            root.finish()
            # Direct engine calls run the hook-free branch.
            want_range = engine.range_query(q)
            want_knn = engine.knn_query(q, 4)
        order = np.lexsort((traced_range.pairs_j, traced_range.pairs_i))
        worder = np.lexsort((want_range.pairs_j, want_range.pairs_i))
        np.testing.assert_array_equal(
            traced_range.pairs_i[order], want_range.pairs_i[worder]
        )
        np.testing.assert_array_equal(
            traced_range.pairs_j[order], want_range.pairs_j[worder]
        )
        assert np.array_equal(
            traced_range.sq_dists[order].view(np.uint32),
            want_range.sq_dists[worder].view(np.uint32),
        )
        np.testing.assert_array_equal(
            traced_knn.indices, want_knn.indices
        )
        assert np.array_equal(
            traced_knn.sq_dists.view(np.uint32),
            want_knn.sq_dists.view(np.uint32),
        )
        # And the trace actually saw the engine work.
        got = tracer.get_trace(root.trace_id)
        assert got is not None

    def test_stage_histogram_populated(self, indexed):
        path, data, eps = indexed
        q = _queries(data, nq=6)
        with _Server(path, trace_sample=0.0) as srv:
            conn = srv.connect()
            try:
                assert _post(conn, "/range",
                             {"queries": q.tolist()})[0] == 200
                assert _post(conn, "/knn",
                             {"queries": q.tolist(), "k": 2})[0] == 200
                conn.request("GET", "/metrics")
                text = conn.getresponse().read().decode()
            finally:
                conn.close()
        for stage in ("adjacency", "gather", "gemm", "rz", "commit"):
            assert f'repro_stage_seconds_count{{stage="{stage}"}}' in text
        assert "repro_traces_started" in text
        assert "repro_spawn_shm_segments" in text


# ----------------------------------------------------------------------
# Chaos: injected faults surface in traces and keep correlation ids
# ----------------------------------------------------------------------


class TestChaos:
    def test_dispatch_fault_becomes_error_span(self, indexed):
        """An injected dispatch error is retained at sample=0 and the
        error span names the fault."""
        path, data, _eps = indexed
        q = _queries(data, nq=4)
        with _Server(path, trace_sample=0.0) as srv:
            conn = srv.connect()
            try:
                faults.arm("service.dispatch", "error", 1.0)
                status, body, hdrs = _post(
                    conn, "/range", {"queries": q.tolist()},
                    headers={"X-Request-Id": "chaos-1"},
                )
                faults.disarm()
                assert status == 500
                assert hdrs["x-request-id"] == "chaos-1"
                assert "FaultError" in body["error"]
                # on-error retention: the trace is in the ring despite
                # sample=0, and its dispatch span carries the fault.
                status, got, _ = _get(conn, "/trace/chaos-1")
                assert status == 200 and got["status"] == "error"
                dispatch = next(
                    s for s in got["spans"]
                    if s["name"] == "engine.dispatch"
                )
                assert dispatch["status"] == "error"
                assert "FaultError" in dispatch["error"]
            finally:
                conn.close()

    def test_worker_fault_recovery_keeps_traces_clean(self, indexed):
        """A worker.exec fault is absorbed by pool recovery: the request
        still succeeds and its trace closes ok."""
        path, data, _eps = indexed
        q = _queries(data, nq=4)
        tracer = trace_mod.Tracer(sample=1.0)
        with QueryService(tracer=tracer, workers=2) as svc:
            faults.arm("worker.exec", "error", 1.0, count=2)
            root = tracer.start_trace("worker-chaos")
            with trace_mod.activate(root):
                res = svc.query(path, q)
            root.finish()
            faults.disarm()
        assert res.n_left == q.shape[0]
        got = tracer.get_trace(root.trace_id)
        assert got is not None and got["status"] == "ok"

    def test_rejections_and_timeouts_echo_request_id(self, indexed):
        """429 (admission), 504 (deadline), 503 (draining) all carry
        ``X-Request-Id`` so failed requests stay correlatable."""
        path, data, _eps = indexed
        q = _queries(data, nq=2)
        svc = QueryService(
            max_queue_depth=1,
            default_deadline_s=0.05,
            tracer=trace_mod.Tracer(sample=0.0),
        )
        with _Server(path, service=svc) as srv:
            # One slow dispatch at a time: the first request holds the
            # dispatcher, the rest either overflow the depth-1 queue
            # (429) or outlive their 50 ms deadline waiting (504).
            faults.arm("service.dispatch", "delay", 1.0, param=0.25)
            statuses: list = [None] * 6
            headers: list = [None] * 6

            def fire(i):
                conn = srv.connect()
                try:
                    statuses[i], _b, headers[i] = _post(
                        conn, "/range", {"queries": q.tolist()}
                    )
                finally:
                    conn.close()

            threads = [
                threading.Thread(target=fire, args=(i,)) for i in range(6)
            ]
            for t in threads:
                t.start()
                time.sleep(0.01)  # stagger: admit-then-overflow
            for t in threads:
                t.join()
            faults.disarm()
            assert all(
                h is not None and "x-request-id" in h for h in headers
            )
            rejected = {s for s in statuses if s != 200}
            assert rejected and rejected <= {429, 504}
            # Draining: while a slow in-flight batch holds the stop()
            # drain open, a fresh request gets a 503 that still carries
            # a correlation id (submit after a *completed* stop would
            # just restart the loop).
            faults.arm("service.dispatch", "delay", 1.0, param=0.5)
            hold = threading.Thread(target=fire, args=(0,))
            hold.start()
            time.sleep(0.1)  # let the slow batch reach the dispatcher
            stopper = threading.Thread(target=svc.stop)
            stopper.start()
            time.sleep(0.1)  # let stop() flip the draining flag
            conn = srv.connect()
            try:
                status, _b, hdrs = _post(
                    conn, "/range", {"queries": q.tolist()}
                )
            finally:
                conn.close()
            hold.join()
            stopper.join()
            faults.disarm()
        assert status == 503 and "x-request-id" in hdrs
