"""Tests for the grid index and multi-space tree (repro.index)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.grid import GridIndex, variance_order
from repro.index.mstree import MultiSpaceTree


def _clustered(n=300, d=12, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 4, size=(6, d))
    return centers[rng.integers(0, 6, n)] + rng.normal(0, 0.3, size=(n, d))


def _true_neighbor_pairs(data, eps):
    d2 = ((data[:, None, :] - data[None, :, :]) ** 2).sum(axis=2)
    mask = d2 <= eps * eps
    np.fill_diagonal(mask, False)
    return set(zip(*np.nonzero(mask)))


class TestVarianceOrder:
    def test_orders_by_decreasing_variance(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(500, 4)) * np.array([1.0, 10.0, 0.1, 5.0])
        order = variance_order(data)
        assert order.tolist() == [1, 3, 0, 2]

    def test_permutation(self):
        data = np.random.default_rng(2).normal(size=(50, 7))
        assert sorted(variance_order(data).tolist()) == list(range(7))


class TestGridIndex:
    def test_candidates_cover_all_neighbors(self):
        """Index safety: every true neighbor pair is a candidate pair."""
        data = _clustered(seed=3)
        eps = 1.5
        index = GridIndex(data, eps, n_dims=4)
        cand_pairs = set()
        for members, candidates in index.iter_cells():
            for m in members:
                cand_pairs.update((int(m), int(c)) for c in candidates)
        for pair in _true_neighbor_pairs(data, eps):
            assert pair in cand_pairs

    @given(st.integers(0, 10**6), st.floats(0.3, 3.0), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_candidate_superset_property(self, seed, eps, r):
        data = _clustered(100, 8, seed)
        index = GridIndex(data, eps, n_dims=r)
        cand = {}
        for members, candidates in index.iter_cells():
            cset = set(candidates.tolist())
            for m in members:
                cand[int(m)] = cset
        for i, j in _true_neighbor_pairs(data, eps):
            assert j in cand[i]

    def test_cells_partition_points(self):
        data = _clustered(seed=4)
        index = GridIndex(data, 1.0)
        seen = []
        for members, _ in index.iter_cells():
            seen.extend(members.tolist())
        assert sorted(seen) == list(range(len(data)))

    def test_stats(self):
        data = _clustered(seed=5)
        index = GridIndex(data, 1.0, n_dims=3)
        stats = index.stats()
        assert stats.n_points == len(data)
        assert stats.n_indexed_dims == 3
        assert stats.total_candidates >= stats.n_points  # self is a candidate
        assert stats.mean_candidates >= 1.0

    def test_indexed_dims_capped_by_d(self):
        data = _clustered(50, 4, seed=6)
        assert GridIndex(data, 1.0, n_dims=10).r == 4

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            GridIndex(_clustered(10, 4, 7), 0.0)

    def test_large_eps_single_cell(self):
        data = _clustered(seed=8)
        index = GridIndex(data, 1e6)
        stats = index.stats()
        assert stats.total_candidates == len(data) ** 2

    def test_candidates_of_unoccupied_cell(self):
        """A query landing in an empty cell still sees occupied neighbors."""
        data = np.array([[0.5], [2.5]])
        index = GridIndex(data, 1.0, n_dims=1)
        # Cell (1,) is empty but adjacent to both occupied cells (0,), (2,).
        assert sorted(index.candidates_of_cell((1,)).tolist()) == [0, 1]
        # A far-away empty cell has no candidates.
        assert index.candidates_of_cell((100,)).size == 0

    def test_extreme_coordinate_spans(self):
        """int64-wrap-prone cell ranges must fall back, not drop pairs."""
        data = np.array([[-9.0e18], [-9.0e18 + 0.6], [9.0e18]])
        index = GridIndex(data, 1.0, n_dims=1)
        pairs = set()
        for members, candidates in index.iter_cells():
            for m in members:
                pairs.update((int(m), int(c)) for c in candidates)
        # Points 0 and 1 share a cell: both directions must be candidates.
        assert (0, 1) in pairs and (1, 0) in pairs

    def test_stats_after_queries_consistent(self):
        data = _clustered(seed=20)
        index = GridIndex(data, 1.0, n_dims=3)
        before = index.stats().total_candidates
        for key in index._cell_keys[:5]:
            index.candidates_of_cell(key)
        assert index.stats().total_candidates == before


class TestMultiSpaceTree:
    def test_candidate_mask_covers_neighbors(self):
        """Triangle-inequality + bin safety: no true neighbor is pruned."""
        data = _clustered(seed=9)
        eps = 1.5
        tree = MultiSpaceTree(data, eps, n_levels=4, n_candidates=10)
        truth = _true_neighbor_pairs(data, eps)
        for i, j in truth:
            assert tree.candidate_mask_for(i)[j], (i, j)

    @given(st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_neighbor_safety_property(self, seed):
        data = _clustered(80, 6, seed)
        eps = 1.2
        tree = MultiSpaceTree(data, eps, n_levels=3, n_candidates=8, seed=seed)
        for i, j in _true_neighbor_pairs(data, eps):
            assert tree.candidate_mask_for(i)[j]

    def test_self_always_candidate(self):
        data = _clustered(seed=10)
        tree = MultiSpaceTree(data, 1.0)
        for i in (0, 17, 99):
            assert tree.candidate_mask_for(i)[i]

    def test_more_levels_prune_more(self):
        data = _clustered(500, 16, seed=11)
        t2 = MultiSpaceTree(data, 0.8, n_levels=2, n_candidates=10)
        t6 = MultiSpaceTree(data, 0.8, n_levels=6, n_candidates=10)
        c2 = t2.candidate_counts(np.arange(50)).sum()
        c6 = t6.candidate_counts(np.arange(50)).sum()
        assert c6 <= c2

    def test_iter_groups_covers_all_points(self):
        data = _clustered(seed=12)
        tree = MultiSpaceTree(data, 1.0)
        members_seen = []
        for members, candidates in tree.iter_groups(group=64):
            members_seen.extend(members.tolist())
            # The block's candidate superset must include its own members.
            assert set(members.tolist()) <= set(candidates.tolist())
        assert sorted(members_seen) == list(range(len(data)))

    def test_total_candidates_sampling(self):
        data = _clustered(200, 8, seed=13)
        tree = MultiSpaceTree(data, 1.0)
        exact = int(tree.candidate_counts().sum())
        sampled = tree.total_candidates(sample_size=400)  # > n: exact path
        assert sampled == exact

    def test_construction_counts_evaluations(self):
        tree = MultiSpaceTree(_clustered(seed=14), 1.0, n_levels=3, n_candidates=10)
        assert tree.construction_evaluations == 3 * 10

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            MultiSpaceTree(_clustered(20, 4, 15), -1.0)
