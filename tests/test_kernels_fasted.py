"""Tests for the FaSTED kernel (repro.kernels.fasted, fragment_exact)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.mma import gemm_fp16_32
from repro.kernels.fasted import FastedConfig, FastedKernel, FastedOptimizations
from repro.kernels.fragment_exact import (
    block_tile_inner_products,
    block_tile_sq_dists,
)


def _data(n=300, d=48, seed=0, scale=1.0):
    return np.random.default_rng(seed).normal(0, scale, size=(n, d))


def _brute_fp64_pairs(data, eps):
    d2 = ((data[:, None, :] - data[None, :, :]) ** 2).sum(axis=2)
    mask = d2 <= eps * eps
    np.fill_diagonal(mask, False)
    return set(zip(*np.nonzero(mask)))


class TestConfig:
    def test_defaults_match_table2(self):
        cfg = FastedConfig()
        assert cfg.block_points == 128
        assert cfg.block_k == 64
        assert (cfg.warp_tile_m, cfg.warp_tile_n) == (64, 64)
        assert cfg.warps_per_block == 4
        assert cfg.dispatch_shape == 8
        assert cfg.blocks_per_sm == 2
        assert cfg.pipeline_depth == 2

    def test_padding(self):
        cfg = FastedConfig()
        assert cfg.padded_points(1) == 128
        assert cfg.padded_points(128) == 128
        assert cfg.padded_points(129) == 256
        assert cfg.padded_dims(65) == 128  # paper Section 4.2 zero-padding
        assert cfg.chunks_per_tile(65) == 2

    def test_tile_count(self):
        cfg = FastedConfig()
        assert cfg.n_tiles(256) == 4
        assert cfg.n_tiles(1000) == 64

    def test_total_flops_uses_padded_sizes(self):
        cfg = FastedConfig()
        assert cfg.total_flops(100, 60) == 2.0 * 128 * 128 * 64


class TestOptimizationFlags:
    def test_leave_one_out_has_eight_entries(self):
        loo = FastedOptimizations.leave_one_out()
        assert len(loo) == 8
        for name, opts in loo.items():
            assert getattr(opts, name) is False

    def test_async_disables_pipeline_too(self):
        """Paper footnote 9: sync copies cannot be pipelined."""
        opts = FastedOptimizations().disable("memcpy_async")
        assert not opts.memcpy_async and not opts.multistage_pipeline

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            FastedOptimizations().disable("turbo_mode")


class TestFunctionalSelfJoin:
    def test_matches_fp64_brute_force(self):
        data = _data(200, 32, seed=1)
        eps = 6.0
        res = FastedKernel().self_join(data, eps)
        got = set(zip(res.pairs_i.tolist(), res.pairs_j.tolist()))
        want = _brute_fp64_pairs(data, eps)
        # FP16 rounding may flip pairs within a narrow band of the radius.
        boundary = {
            (i, j)
            for (i, j) in got.symmetric_difference(want)
            if abs(np.sqrt(((data[i] - data[j]) ** 2).sum()) - eps) < 0.01
        }
        assert got.symmetric_difference(want) == boundary

    def test_result_symmetric(self):
        res = FastedKernel().self_join(_data(150, 16, 2), 5.0)
        pairs = set(zip(res.pairs_i.tolist(), res.pairs_j.tolist()))
        assert all((j, i) in pairs for (i, j) in pairs)

    def test_no_self_pairs(self):
        res = FastedKernel().self_join(_data(100, 8, 3), 100.0)
        assert np.all(res.pairs_i != res.pairs_j)

    def test_blocking_invariance(self):
        """Row-block size is a performance knob: results must not change."""
        data = _data(300, 24, 4)
        a = FastedKernel().self_join(data, 4.0, row_block=64).sorted_copy()
        b = FastedKernel().self_join(data, 4.0, row_block=999).sorted_copy()
        assert np.array_equal(a.pairs_i, b.pairs_i)
        assert np.array_equal(a.pairs_j, b.pairs_j)

    def test_store_distances_flag(self):
        data = _data(80, 8, 5)
        with_d = FastedKernel().self_join(data, 3.0, store_distances=True)
        without = FastedKernel().self_join(data, 3.0, store_distances=False)
        assert with_d.sq_dists.size == with_d.pairs_i.size
        assert without.sq_dists.size == 0

    @given(st.floats(0.5, 2.0), st.floats(1.01, 2.0), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_eps_monotonicity(self, eps, factor, seed):
        data = np.random.default_rng(seed).normal(size=(120, 12))
        small = FastedKernel().self_join(data, eps, store_distances=False)
        large = FastedKernel().self_join(data, eps * factor, store_distances=False)
        sp = set(zip(small.pairs_i.tolist(), small.pairs_j.tolist()))
        lp = set(zip(large.pairs_i.tolist(), large.pairs_j.tolist()))
        assert sp <= lp

    def test_zero_result(self):
        res = FastedKernel().self_join(_data(64, 8, 6), 1e-9)
        assert res.pairs_i.size == 0
        assert res.selectivity == 0.0


class TestMatchedRounding:
    def test_norm_modes(self):
        data = _data(50, 64, 7, scale=10)
        k = FastedKernel()
        near = k.precompute_norms(data, mode="nearest")
        rz = k.precompute_norms(data, mode="rz")
        assert np.all(rz.astype(np.float64) <= near.astype(np.float64) + 1e-3)
        with pytest.raises(ValueError):
            k.precompute_norms(data, mode="stochastic")

    def test_fast_path_is_unbiased(self):
        """Matched round-nearest norms + GEMM: no systematic distance bias."""
        data = _data(400, 96, 8)
        # Typical pairwise distance is sqrt(2 * 96) ~ 13.9; eps=14 keeps
        # roughly half the pairs, giving a large error sample.
        res = FastedKernel().self_join(data, 14.0)
        exact = np.sqrt(
            ((data[res.pairs_i] - data[res.pairs_j]) ** 2).sum(axis=1)
        )
        err = np.sqrt(res.sq_dists.astype(np.float64)) - exact
        # Bias well below the noise scale (paper Table 8's property).
        assert abs(err.mean()) < 0.2 * err.std() + 1e-9


class TestFragmentExactPath:
    def test_matches_fast_gemm(self):
        rng = np.random.default_rng(9)
        p = rng.normal(size=(32, 64))
        q = rng.normal(size=(16, 64))
        tile, txns = block_tile_inner_products(p, q)
        ref = gemm_fp16_32(p, q)
        assert np.allclose(tile, ref, rtol=1e-5, atol=1e-5)
        # Swizzled path: conflict-free, so transactions == phases.  P is
        # loaded once per (k-slice, row block) = 8 x4-ldmatrix (4 phases
        # each); Q is re-read per P row block = 16 x2-loads (2 phases each).
        assert txns == 8 * 4 + 16 * 2

    def test_row_major_same_values_more_transactions(self):
        rng = np.random.default_rng(10)
        p = rng.normal(size=(16, 64))
        q = rng.normal(size=(8, 64))
        t_sw, n_sw = block_tile_inner_products(p, q, swizzled=True)
        t_rm, n_rm = block_tile_inner_products(p, q, swizzled=False)
        assert np.array_equal(t_sw, t_rm)
        assert n_rm == 8 * n_sw  # 8-way conflicts on every phase

    def test_sq_dists_match_self_join(self):
        rng = np.random.default_rng(11)
        pts = rng.normal(size=(16, 64))
        d2 = block_tile_sq_dists(pts, pts)
        exact = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(d2, exact, atol=0.05)
        assert np.allclose(np.diag(d2), 0.0, atol=1e-3)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            block_tile_inner_products(np.zeros((15, 64)), np.zeros((8, 64)))
        with pytest.raises(ValueError):
            block_tile_inner_products(np.zeros((16, 60)), np.zeros((8, 60)))


class TestTimingInterface:
    def test_timing_reasonable(self):
        k = FastedKernel()
        t = k.timing(10_000, 256)
        assert t.seconds > 0
        assert t.tc_utilization < 1.0

    def test_tflops_increase_with_d(self):
        k = FastedKernel()
        vals = [k.derived_tflops(100_000, d) for d in (64, 256, 1024, 4096)]
        assert vals == sorted(vals)

    def test_tflops_increase_with_n_then_saturate(self):
        k = FastedKernel()
        small = k.derived_tflops(1_000, 4096)
        big = k.derived_tflops(100_000, 4096)
        assert big > small

    def test_every_ablation_hurts(self):
        base = FastedKernel().derived_tflops(100_000, 4096)
        for name, opts in FastedOptimizations.leave_one_out().items():
            k = FastedKernel(config=FastedConfig(opts=opts))
            assert k.derived_tflops(100_000, 4096) < base, name

    def test_response_time_components(self):
        rt = FastedKernel().response_time(10_000, 128, n_result_pairs=640_000)
        assert rt.h2d_s > 0 and rt.kernel_s > 0 and rt.d2h_s > 0
        assert rt.total_s >= rt.kernel_s
