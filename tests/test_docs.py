"""Documentation integrity: the docs layer must track the code.

Runs the same reference checker as the CI docs job
(``tools/check_docs.py``) over ``README.md`` and ``docs/*.md``, so a PR
that moves or deletes a referenced file fails tier-1 locally, and pins
the structural claims README makes (CLI command table, benchmark keys).
"""

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_docs_exist():
    assert (REPO_ROOT / "README.md").is_file()
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").is_file()
    assert (REPO_ROOT / "docs" / "BENCHMARKS.md").is_file()


def test_no_dangling_references():
    checker = _load_checker()
    errors = []
    for doc in checker.default_docs():
        errors.extend(checker.check_file(doc))
    assert not errors, "\n".join(errors)


def test_checker_catches_dangling(tmp_path):
    checker = _load_checker()
    bad = tmp_path / "bad.md"
    bad.write_text(
        "see `src/repro/does_not_exist.py` and [doc](missing/file.md)\n"
        "but `python -m repro fig8` and `np.matmul` are not paths\n"
    )
    errors = checker.check_file(bad)
    assert len(errors) == 2
    assert "does_not_exist" in errors[0]


def test_readme_lists_every_cli_command():
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.cli import build_parser
    finally:
        sys.path.pop(0)
    readme = (REPO_ROOT / "README.md").read_text()
    sub = next(
        a for a in build_parser()._actions
        if a.__class__.__name__ == "_SubParsersAction"
    )
    for command in sub.choices:
        assert f"python -m repro {command}" in readme, (
            f"README command table is missing `python -m repro {command}`"
        )


def test_readme_mentions_committed_bench_entries():
    """README's speedup table and BENCH_engine.json must not drift apart."""
    bench = json.loads((REPO_ROOT / "BENCH_engine.json").read_text())
    readme = (REPO_ROOT / "README.md").read_text()
    assert "rz_sum_squares" in readme and "rz_sum_squares" in bench
    for key in (
        "streaming", "candidate_batched", "two_source", "streaming_index",
        "workers", "query_service", "mutable",
    ):
        assert key in bench, f"BENCH_engine.json lost its `{key}` entry"
    assert bench["streaming"]["bit_identical"] is True
    assert bench["streaming"]["within_budget"] is True
    speedups = [
        k["speedup"] for k in bench["candidate_batched"]["kernels"].values()
    ]
    assert max(speedups) >= 1.3, "batched executor no longer lifts any kernel"


def test_workers_bench_entry():
    """The auto worker plan keeps its contracts: bit-identity everywhere,
    and a real (>1.3x) pairs/sec lift on at least one kernel."""
    bench = json.loads((REPO_ROOT / "BENCH_engine.json").read_text())
    entry = bench["workers"]
    assert entry["worker_plan"]["n_workers"] >= 1
    assert entry["worker_plan"]["source"] in ("auto", "env")
    for name, k in entry["kernels"].items():
        assert k["bit_identical"] is True, f"{name} lost worker bit-identity"
    assert max(k["speedup"] for k in entry["kernels"].values()) > 1.3, (
        "the auto worker plan no longer lifts any kernel"
    )


def test_two_source_bench_entries():
    """The two-source and source-backed-index entries keep their contracts."""
    bench = json.loads((REPO_ROOT / "BENCH_engine.json").read_text())
    two = bench["two_source"]
    assert two["bit_identical"] is True
    assert two["within_budget"] is True
    assert two["peak_resident_bytes"] <= two["memory_budget_bytes"]
    assert two["dataset_bytes"] > two["memory_budget_bytes"]  # really out-of-core
    idx = bench["streaming_index"]
    assert idx["bit_identical"] is True
    assert idx["build_blocks_loaded"] > 0


def test_query_service_bench_entry():
    """The serving entry keeps its contracts: bit-identity against the
    brute reference and the 5x cached-vs-rebuild serving floor."""
    bench = json.loads((REPO_ROOT / "BENCH_engine.json").read_text())
    entry = bench["query_service"]
    assert entry["bit_identical"] is True
    assert entry["n"] == 4096 and entry["d"] == 64
    assert entry["speedup"] >= 5.0, (
        "cached-index serving no longer clears the 5x floor over "
        "rebuild-per-request"
    )
    assert entry["cache"]["hits"] > 0


def test_mutable_bench_entry():
    """The mutable-store entry keeps its contracts: answers at full delta
    depth and after compaction are bitwise-pinned against a from-scratch
    rebuild, and compaction actually returns latency to the depth-0
    regime (within generous noise)."""
    bench = json.loads((REPO_ROOT / "BENCH_engine.json").read_text())
    entry = bench["mutable"]
    assert entry["bit_identical"] is True
    assert entry["n_base"] == 4096 and entry["d"] == 64
    depths = entry["latency_by_depth"]
    assert set(depths) == {"0", "1", "4", "16"}
    assert entry["compaction"]["segments_folded"] == 16
    assert entry["compaction"]["rows_per_sec"] > 0
    # Folding 16 segments back into one base must undo the per-layer
    # merge cost: post-compaction latency lands near the depth-0 regime,
    # far below the depth-16 one.
    assert (
        entry["post_compact_range_seconds"]
        < depths["16"]["range_seconds"] / 2
    )


def test_checker_resolves_nested_cli_commands():
    """`index build` must check against the nested parser's flags."""
    checker = _load_checker()
    commands = checker._load_cli_commands()
    assert "index build" in commands and "index info" in commands
    assert "--kind" in commands["index build"]
    nested = tuple({k.split()[0] for k in commands if " " in k})
    calls = list(checker.iter_cli_invocations(
        "run `python -m repro index build out --kind grid` then\n"
        "`python -m repro index info out`\n",
        nested,
    ))
    assert calls == [
        (1, "index build", ["--kind"]),
        (2, "index info", []),
    ]


def test_cli_two_source_help():
    """The join subcommand keeps its two-dataset positional form."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.cli import build_parser
    finally:
        sys.path.pop(0)
    sub = next(
        a for a in build_parser()._actions
        if a.__class__.__name__ == "_SubParsersAction"
    )
    join = sub.choices["join"]
    positionals = [a.dest for a in join._get_positional_actions()]
    assert positionals == ["data_a", "data_b"]
    help_text = join.format_help()
    assert "two-source join A x B" in " ".join(help_text.split())
    for flag in ("--stream", "--memory-budget", "--batched", "--method", "--workers"):
        assert flag in help_text


def test_readme_documents_two_source_cli():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "join A.npy B_chunks/ --stream --memory-budget" in readme


def test_checker_catches_cli_flag_drift():
    """check_docs must flag unknown flags and unknown commands."""
    checker = _load_checker()
    commands = checker._load_cli_commands()
    assert "--memory-budget" in commands["join"]
    calls = list(checker.iter_cli_invocations(
        "run `python -m repro join A B --stream --no-such-flag` and\n"
        "`python -m repro bogus` but skip `python -m repro <experiment>`\n"
    ))
    assert calls == [
        (1, "join", ["--stream", "--no-such-flag"]),
        (2, "bogus", []),
    ]
    errors = []
    for lineno, command, flags in calls:
        if command not in commands:
            errors.append(command)
        else:
            errors.extend(f for f in flags if f not in commands[command])
    assert errors == ["--no-such-flag", "bogus"]


def test_docs_cli_invocations_valid():
    """Every CLI call documented in README/docs exists with real flags."""
    checker = _load_checker()
    commands = checker._load_cli_commands()
    errors = []
    for doc in checker.default_docs():
        errors.extend(checker.check_cli_invocations(doc, commands))
    assert not errors, "\n".join(errors)
