"""Tests for the ldmatrix phase model (repro.gpusim.ldmatrix)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.ldmatrix import (
    PHASES_X4,
    count_transactions,
    load_p_fragment,
    load_q_fragment,
    phase_chunk_addresses,
)
from repro.gpusim.smem import SharedMemory
from repro.gpusim.swizzle import layout, store_phase_addresses


def _fill_smem(data: np.ndarray, swizzled: bool = True) -> SharedMemory:
    """Store a (rows, 64) FP16 block fragment the way cp.async phases do."""
    smem = SharedMemory(n_chunks=data.shape[0] * 8)
    lay = layout(swizzled)
    for p in range(data.shape[0]):
        smem.store_phase(store_phase_addresses(lay, p), data[p].reshape(8, 8))
    return smem


@pytest.fixture(scope="module")
def block_fragment():
    rng = np.random.default_rng(42)
    return rng.standard_normal((128, 64)).astype(np.float16)


class TestTransactionCounts:
    def test_swizzled_x4_is_four_transactions(self):
        assert count_transactions(layout(True), 0, 16, 0) == PHASES_X4

    def test_row_major_x4_is_32_transactions(self):
        # 4 phases x 8-way conflict each (paper Section 3.3.8).
        assert count_transactions(layout(False), 0, 16, 0) == PHASES_X4 * 8

    def test_phase_structure(self):
        phases = phase_chunk_addresses(layout(True), 0, 16, 0)
        assert len(phases) == 4
        assert all(p.shape == (8,) for p in phases)

    @given(st.integers(0, 6), st.integers(0, 3))
    @settings(max_examples=50, deadline=None)
    def test_any_fragment_position_conflict_free(self, row16, kslice):
        txns = count_transactions(layout(True), row16 * 16, 16, 2 * kslice)
        assert txns == PHASES_X4


class TestFunctionalLoads:
    def test_p_fragment_roundtrip(self, block_fragment):
        smem = _fill_smem(block_fragment)
        lay = layout(True)
        for base in (0, 16, 48, 112):
            for ks in range(4):
                frag = load_p_fragment(smem, lay, base, ks)
                expected = block_fragment[base : base + 16, 16 * ks : 16 * ks + 16]
                assert np.array_equal(frag, expected)

    def test_q_fragment_is_transposed(self, block_fragment):
        smem = _fill_smem(block_fragment)
        lay = layout(True)
        frag = load_q_fragment(smem, lay, 8, 1)
        expected = block_fragment[8:16, 16:32].T
        assert frag.shape == (16, 8)
        assert np.array_equal(frag, expected)

    def test_row_major_roundtrip_still_correct(self, block_fragment):
        """The unswizzled layout is slow (conflicts) but not wrong."""
        smem = _fill_smem(block_fragment, swizzled=False)
        frag = load_p_fragment(smem, layout(False), 32, 2)
        assert np.array_equal(frag, block_fragment[32:48, 32:48])

    def test_layout_mismatch_corrupts(self, block_fragment):
        """Reading with the wrong layout returns permuted data."""
        smem = _fill_smem(block_fragment, swizzled=True)
        frag = load_p_fragment(smem, layout(False), 16, 0)
        assert not np.array_equal(frag, block_fragment[16:32, :16])


class TestConflictAccounting:
    def test_swizzled_tile_zero_conflict_rate(self, block_fragment):
        smem = _fill_smem(block_fragment, swizzled=True)
        smem.reset_stats()
        lay = layout(True)
        for base in range(0, 128, 16):
            for ks in range(4):
                load_p_fragment(smem, lay, base, ks)
        assert smem.stats.conflict_rate == 0.0

    def test_row_major_tile_conflict_rate(self, block_fragment):
        smem = _fill_smem(block_fragment, swizzled=False)
        smem.reset_stats()
        lay = layout(False)
        for base in range(0, 128, 16):
            load_p_fragment(smem, lay, base, 0)
        # Every phase is an 8-way replay: rate = 1 - 1/8 (paper-scale).
        assert smem.stats.conflict_rate == pytest.approx(1 - 1 / 8)
