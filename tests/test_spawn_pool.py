"""Spawn-safe worker pool: start-method resolution + bit-identity.

The fork pool ships operand arrays to children for free (copy-on-write
page sharing); the spawn pool has to reconstruct them, which it does by
mapping named ``multiprocessing.shared_memory`` segments read-only in
each child.  These tests pin the contract that makes the flavor a pure
deployment knob: the spawn pool commits *bit-identical* results to the
serial executor and to the fork pool, recovers from killed children the
same way, and honors the ``REPRO_START_METHOD`` override.

(Container note: ``os.cpu_count()`` may be 1 here, so worker counts are
always explicit -- topology-derived counts would resolve to serial and
quietly skip the pool path.)
"""

import numpy as np
import pytest

from repro import faults
from repro.core import engine
from repro.core.engine import (
    WorkerPlan,
    process_candidate_self_join,
    resolve_start_method,
)
from repro.core.selectivity import epsilon_for_selectivity
from repro.index.grid import GridIndex


def _dataset(seed, n=600, d=8):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, d))
    eps = float(epsilon_for_selectivity(data, 10))
    return np.ascontiguousarray(data), eps


def _join(data, eps, **kwargs):
    idx = GridIndex(data, eps, n_dims=4)
    sq = (data * data).sum(axis=1)
    return process_candidate_self_join(
        idx.iter_cells(), data, sq, eps * eps, **kwargs
    )


def assert_same_bits(a, b):
    ai, aj, ad = a.arrays()
    bi, bj, bd = b.arrays()
    np.testing.assert_array_equal(ai, bi)
    np.testing.assert_array_equal(aj, bj)
    view = np.uint64 if ad.dtype == np.float64 else np.uint32
    assert ad.dtype == bd.dtype
    assert np.array_equal(ad.view(view), bd.view(view))


class TestResolveStartMethod:
    def test_explicit_values_pass_through(self, monkeypatch):
        monkeypatch.delenv("REPRO_START_METHOD", raising=False)
        assert resolve_start_method("spawn") == "spawn"
        if engine._fork_available():
            assert resolve_start_method("fork") == "fork"

    def test_auto_prefers_fork_when_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_START_METHOD", raising=False)
        want = "fork" if engine._fork_available() else "spawn"
        assert resolve_start_method("auto") == want
        assert resolve_start_method(None) == want

    def test_env_overrides_preference(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        # Even an explicit fork preference defers to the env override:
        # that is the knob CI uses to force a whole tier onto spawn.
        assert resolve_start_method("fork") == "spawn"
        plan = WorkerPlan.resolve(2)
        assert plan.resolved_start_method() == "spawn"
        assert plan.as_dict()["start_method"] == "spawn"

    def test_bad_values_raise(self, monkeypatch):
        monkeypatch.delenv("REPRO_START_METHOD", raising=False)
        with pytest.raises(ValueError):
            resolve_start_method("forkserver")
        monkeypatch.setenv("REPRO_START_METHOD", "bogus")
        with pytest.raises(ValueError):
            resolve_start_method("auto")

    def test_fork_unavailable_is_an_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_START_METHOD", raising=False)
        monkeypatch.setattr(engine, "_fork_available", lambda: False)
        assert resolve_start_method("auto") == "spawn"
        with pytest.raises(ValueError):
            resolve_start_method("fork")


class TestSpawnPoolBitIdentity:
    def test_spawn_identical_to_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_START_METHOD", raising=False)
        data, eps = _dataset(21)
        serial = _join(data, eps, workers=0)
        plan = WorkerPlan(2, 1, None, "explicit", start_method="spawn")
        spawned = _join(data, eps, workers=plan, group_batch=8)
        assert_same_bits(serial, spawned)

    @pytest.mark.skipif(
        not engine._fork_available(), reason="fork start method unavailable"
    )
    def test_spawn_identical_to_fork(self, monkeypatch):
        monkeypatch.delenv("REPRO_START_METHOD", raising=False)
        data, eps = _dataset(22)
        forked = _join(
            data, eps,
            workers=WorkerPlan(2, 1, None, "explicit", start_method="fork"),
            group_batch=8,
        )
        spawned = _join(
            data, eps,
            workers=WorkerPlan(2, 1, None, "explicit", start_method="spawn"),
            group_batch=8,
        )
        assert_same_bits(forked, spawned)

    def test_env_routes_pool_to_spawn(self, monkeypatch):
        # The CI spawn leg's exact shape: nothing in the code asks for
        # spawn, REPRO_START_METHOD flips the pool flavor wholesale.
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        data, eps = _dataset(23, n=400)
        serial = _join(data, eps, workers=0)
        pooled = _join(data, eps, workers=2, group_batch=8)
        assert_same_bits(serial, pooled)

    def test_spawn_two_source_join(self, monkeypatch):
        monkeypatch.delenv("REPRO_START_METHOD", raising=False)
        rng = np.random.default_rng(24)
        left = np.ascontiguousarray(rng.normal(size=(300, 8)))
        right = np.ascontiguousarray(rng.normal(size=(250, 8)))
        eps = float(epsilon_for_selectivity(left, 10))
        idx = GridIndex(left, eps, n_dims=4)
        groups = [
            (m, rng.integers(0, right.shape[0], size=max(c.size, 1)))
            for m, c in idx.iter_cells()
        ]
        sq_l = (left * left).sum(axis=1)
        sq_r = (right * right).sum(axis=1)
        kwargs = dict(
            work_right=right, sq_norms_right=sq_r, drop_self=False,
        )
        serial = process_candidate_self_join(
            iter(groups), left, sq_l, eps * eps, workers=0, **kwargs
        )
        spawned = process_candidate_self_join(
            iter(groups), left, sq_l, eps * eps,
            workers=WorkerPlan(2, 1, None, "explicit", start_method="spawn"),
            group_batch=4, **kwargs
        )
        assert_same_bits(serial, spawned)


class TestSpawnPoolRecovery:
    def test_killed_spawn_children_recover_bit_identical(self, monkeypatch):
        data, eps = _dataset(25)
        serial = _join(data, eps, workers=0)
        before = engine.FORK_RECOVERIES
        # Spawn children rebuild their interpreter and re-arm faults
        # from the environment at import -- programmatic faults.arm()
        # only reaches fork children, so the env var is the real knob.
        monkeypatch.setenv("REPRO_FAULTS", "worker.exec:kill:0.3")
        try:
            chaotic = _join(
                data, eps,
                workers=WorkerPlan(
                    2, 1, None, "explicit", start_method="spawn"
                ),
                group_batch=8,
            )
        finally:
            faults.disarm()
        assert engine.FORK_RECOVERIES > before  # children actually died
        assert_same_bits(serial, chaotic)
