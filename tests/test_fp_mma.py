"""Tests for fragment-level MMA simulation (repro.fp.mma)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.mma import (
    MMA_SHAPE_FP16,
    MMA_SHAPE_FP64,
    gemm_fp16_32,
    mma_m8n8k4_f64,
    mma_m16n8k16,
)


def _rand(shape, seed=0, scale=1.0):
    return np.random.default_rng(seed).normal(0, scale, size=shape)


class TestMmaFp16Shapes:
    def test_shape_constants(self):
        assert MMA_SHAPE_FP16 == (16, 8, 16)
        assert MMA_SHAPE_FP64 == (8, 8, 4)

    def test_bad_a_shape_raises(self):
        with pytest.raises(ValueError, match="A fragment"):
            mma_m16n8k16(np.zeros((8, 16)), np.zeros((16, 8)))

    def test_bad_b_shape_raises(self):
        with pytest.raises(ValueError, match="B fragment"):
            mma_m16n8k16(np.zeros((16, 16)), np.zeros((8, 8)))

    def test_output_shape_dtype(self):
        d = mma_m16n8k16(_rand((16, 16)), _rand((16, 8)))
        assert d.shape == (16, 8) and d.dtype == np.float32


class TestMmaFp16Numerics:
    def test_against_fp64_reference(self):
        a, b = _rand((16, 16), 1), _rand((16, 8), 2)
        d = mma_m16n8k16(a, b)
        ref = a.astype(np.float16).astype(np.float64) @ b.astype(np.float16).astype(
            np.float64
        )
        assert np.allclose(d, ref, rtol=1e-5, atol=1e-6)

    def test_accumulator_added(self):
        a, b = _rand((16, 16), 3), _rand((16, 8), 4)
        c = np.full((16, 8), 100.0, dtype=np.float32)
        d0 = mma_m16n8k16(a, b)
        d1 = mma_m16n8k16(a, b, c)
        assert np.allclose(d1 - d0, 100.0, atol=1e-3)

    def test_exact_vs_fast_path_close(self):
        a, b = _rand((16, 16), 5), _rand((16, 8), 6)
        exact = mma_m16n8k16(a, b, exact_rz=True)
        fast = mma_m16n8k16(a, b, exact_rz=False)
        # Differ only by accumulation-order rounding: a few FP32 ulps.
        assert np.allclose(exact, fast, rtol=1e-5, atol=1e-5)

    def test_rz_never_exceeds_exact_for_nonneg(self):
        rng = np.random.default_rng(7)
        a = rng.uniform(0, 2, (16, 16))
        b = rng.uniform(0, 2, (16, 8))
        d = mma_m16n8k16(a, b, exact_rz=True).astype(np.float64)
        ref = a.astype(np.float16).astype(np.float64) @ b.astype(np.float16).astype(
            np.float64
        )
        assert np.all(d <= ref + 1e-9)

    def test_identity_times_identity_prefix(self):
        a = np.eye(16, 16)
        b = np.zeros((16, 8))
        b[:8, :8] = np.eye(8)
        d = mma_m16n8k16(a, b)
        assert np.array_equal(d[:8], np.eye(8, dtype=np.float32))
        assert np.all(d[8:] == 0)


class TestMmaFp64:
    def test_exactness(self):
        a, b = _rand((8, 4), 8), _rand((4, 8), 9)
        c = _rand((8, 8), 10)
        assert np.array_equal(mma_m8n8k4_f64(a, b, c), a @ b + c)

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            mma_m8n8k4_f64(np.zeros((4, 8)), np.zeros((4, 8)))
        with pytest.raises(ValueError):
            mma_m8n8k4_f64(np.zeros((8, 4)), np.zeros((8, 4)))


class TestGemmFp16_32:
    def test_matches_quantized_matmul(self):
        a, b = _rand((20, 33), 11), _rand((15, 33), 12)
        out = gemm_fp16_32(a, b)
        ref = a.astype(np.float16).astype(np.float32) @ b.astype(np.float16).astype(
            np.float32
        ).T
        assert np.array_equal(out, ref)

    @given(
        st.integers(1, 24), st.integers(1, 24), st.integers(1, 48),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_shape_property(self, m, n, d, seed):
        rng = np.random.default_rng(seed)
        out = gemm_fp16_32(rng.normal(size=(m, d)), rng.normal(size=(n, d)))
        assert out.shape == (m, n) and out.dtype == np.float32

    def test_consistent_with_fragment_mma(self):
        """The fast GEMM path and fragment MMA agree to FP32 rounding."""
        a, b = _rand((16, 16), 13), _rand((8, 16), 14)
        fast = gemm_fp16_32(a, b)
        frag = mma_m16n8k16(a, b.T, exact_rz=False)
        assert np.allclose(fast, frag, rtol=1e-6, atol=1e-6)
