"""Tests for the out-of-core streaming executor and the batched candidate
executor (repro.core.engine.streaming_self_join / batched_candidate_self_join,
repro.data.source).

The streaming contract is *bit-identity with the in-memory engine at the
same tile plan*: per-block preparation is row-local and per-tile GEMM
shapes are unchanged, so streamed results must match the resident path
bitwise -- including when the dataset is served from a memory-mapped
``.npy`` (or a chunk directory) and is deliberately larger than the
configured memory budget.  The batched executor's contract is weaker by
design: the *pair set* matches the per-group path, while FP32 low-order
distance bits may differ (BLAS may reassociate for the padded shapes).
"""

import numpy as np
import pytest

from repro.core.api import self_join, self_join_stream
from repro.core.engine import (
    TilePlan,
    batched_candidate_self_join,
    candidate_self_join,
    iter_symmetric_tiles,
    norm_expansion_sq_dists,
    streaming_self_join,
)
from repro.core.selectivity import epsilon_for_selectivity
from repro.data.source import (
    ArraySource,
    ChunkedNpySource,
    MmapNpySource,
    as_source,
    write_chunked_npy,
)
from repro.data.synthetic import fine_grid_dataset
from repro.index.grid import GridIndex
from repro.kernels.fasted import FastedKernel
from repro.kernels.gdsjoin import GdsJoinKernel
from repro.kernels.mistic import MisticKernel
from repro.kernels.reference import canon, joins_bit_identical
from repro.kernels.tedjoin import TedJoinKernel


def _dataset(d, n=500, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 4, size=(6, d))
    return centers[rng.integers(0, 6, n)] + rng.normal(0, 0.5, size=(n, d))


def assert_pair_sets_equal(a, b):
    ai, aj, _ = canon(a)
    bi, bj, _ = canon(b)
    np.testing.assert_array_equal(ai, bi)
    np.testing.assert_array_equal(aj, bj)


# ----------------------------------------------------------------------
# TilePlan
# ----------------------------------------------------------------------


class TestTilePlan:
    def test_matches_in_memory_tiling(self):
        plan = TilePlan(n=1000, row_block=128)
        from_plan = [
            (
                *plan.block_bounds(ri),
                *plan.block_bounds(cj),
            )
            for ri, cj in plan.tiles()
        ]
        expect = [
            (r0, r1, c0, c1)
            for r0, r1, c0, c1 in iter_symmetric_tiles(1000, 128)
        ]
        assert [(a, b, c, d) for a, b, c, d in from_plan] == expect
        assert plan.n_tiles == len(expect)

    def test_from_budget_respects_bound(self):
        n, d, budget = 10_000, 64, 1 << 20
        plan = TilePlan.from_budget(n, d, budget)
        assert plan.peak_resident_bytes(d) <= budget
        assert plan.row_block >= 1

    def test_from_budget_tiny_budget_still_progresses(self):
        plan = TilePlan.from_budget(100, 4096, 1024)
        assert plan.row_block == 1  # floor: one row per block
        assert plan.n_blocks == 100

    def test_invalid(self):
        with pytest.raises(ValueError):
            TilePlan(n=10, row_block=0)
        with pytest.raises(ValueError):
            TilePlan.from_budget(10, 8, 0)


# ----------------------------------------------------------------------
# Dataset sources
# ----------------------------------------------------------------------


class TestSources:
    def test_array_source_blocks(self):
        data = _dataset(16, n=37)
        src = ArraySource(data)
        np.testing.assert_array_equal(src.load_block(5, 20), data[5:20])
        np.testing.assert_array_equal(src.materialize(), data)
        assert src.shape == data.shape
        with pytest.raises(IndexError):
            src.load_block(0, 38)

    def test_mmap_npy_source(self, tmp_path):
        data = _dataset(8, n=50).astype(np.float32)  # non-float64 on disk
        path = tmp_path / "data.npy"
        np.save(path, data)
        src = MmapNpySource(path)
        got = src.load_block(10, 30)
        assert got.dtype == np.float64 and got.flags.c_contiguous
        np.testing.assert_array_equal(got, data[10:30].astype(np.float64))

    def test_chunked_source_round_trip(self, tmp_path):
        data = _dataset(8, n=103)
        src = write_chunked_npy(tmp_path / "chunks", data, rows_per_chunk=10)
        assert src.n == 103 and src.dim == 8
        # A block spanning several chunk boundaries.
        np.testing.assert_array_equal(src.load_block(7, 95), data[7:95])
        np.testing.assert_array_equal(src.materialize(), data)

    def test_chunked_source_without_manifest(self, tmp_path):
        data = _dataset(8, n=45)
        d = tmp_path / "chunks"
        write_chunked_npy(d, data, rows_per_chunk=20)
        (d / "chunks.json").unlink()
        src = ChunkedNpySource(d)
        np.testing.assert_array_equal(src.materialize(), data)

    def test_as_source_dispatch(self, tmp_path):
        data = _dataset(8, n=20)
        assert isinstance(as_source(data), ArraySource)
        path = tmp_path / "d.npy"
        np.save(path, data)
        assert isinstance(as_source(str(path)), MmapNpySource)
        cdir = tmp_path / "chunks"
        write_chunked_npy(cdir, data, rows_per_chunk=7)
        assert isinstance(as_source(cdir), ChunkedNpySource)
        src = ArraySource(data)
        assert as_source(src) is src


# ----------------------------------------------------------------------
# Streaming bit-identity
# ----------------------------------------------------------------------


class TestStreamingBitIdentity:
    def test_fasted_array_source(self):
        data = _dataset(48)
        eps = epsilon_for_selectivity(data, 16)
        mem = FastedKernel().self_join(data, eps, row_block=128)
        got, stats = FastedKernel().self_join_stream(
            ArraySource(data), eps, row_block=128
        )
        assert joins_bit_identical(mem, got)
        assert stats.blocks_loaded == stats.plan.n_tiles  # each tile: 1 load

    def test_fasted_mmap_larger_than_budget(self, tmp_path):
        """The headline contract: dataset > budget, bit-identical, bounded."""
        data = _dataset(64, n=900, seed=1)
        path = tmp_path / "big.npy"
        np.save(path, data)
        source = MmapNpySource(path)
        budget = 128 * 1024
        assert source.nbytes > budget  # deliberately larger than the budget
        plan = TilePlan.from_budget(source.n, source.dim, budget)
        mem = FastedKernel().self_join(data, eps := epsilon_for_selectivity(data, 16), row_block=plan.row_block)
        got, stats = FastedKernel().self_join_stream(
            source, eps, memory_budget_bytes=budget
        )
        assert joins_bit_identical(mem, got)
        assert stats.peak_resident_bytes <= budget
        assert stats.plan.n_blocks > TilePlan.RESIDENT_BLOCKS

    def test_ted_brute_chunked_larger_than_budget(self, tmp_path):
        data = _dataset(32, n=700, seed=2)
        source = write_chunked_npy(tmp_path / "chunks", data, rows_per_chunk=64)
        budget = 128 * 1024
        assert source.nbytes > budget
        eps = epsilon_for_selectivity(data, 16)
        # FP64 tile geometry is bit-invariant across row_block (pinned by
        # tests/test_engine.py), so compare against the default path.
        mem = TedJoinKernel(variant="brute").self_join(data, eps).result
        got, stats = TedJoinKernel(variant="brute").self_join_stream(
            source, eps, memory_budget_bytes=budget
        )
        assert joins_bit_identical(mem, got.result)
        assert stats.peak_resident_bytes <= budget

    def test_prefetch_off_identical(self):
        data = _dataset(32, n=400, seed=3)
        eps = epsilon_for_selectivity(data, 12)
        a, _ = FastedKernel().self_join_stream(
            ArraySource(data), eps, row_block=100, prefetch=True
        )
        b, _ = FastedKernel().self_join_stream(
            ArraySource(data), eps, row_block=100, prefetch=False
        )
        # Same commit order, not just the same set.
        np.testing.assert_array_equal(a.pairs_i, b.pairs_i)
        np.testing.assert_array_equal(a.pairs_j, b.pairs_j)
        assert np.array_equal(a.sq_dists.view(np.uint32), b.sq_dists.view(np.uint32))

    def test_store_distances_off(self):
        data = _dataset(24, n=200, seed=4)
        eps = epsilon_for_selectivity(data, 8)
        got, _ = FastedKernel().self_join_stream(
            ArraySource(data), eps, row_block=64, store_distances=False
        )
        assert got.sq_dists.size == 0
        mem = FastedKernel().self_join(data, eps, row_block=64)
        assert_pair_sets_equal(mem, got)

    def test_streaming_engine_generic(self):
        """streaming_self_join with trivial numerics == symmetric result."""
        data = _dataset(16, n=150, seed=5).astype(np.float64)
        s = (data * data).sum(axis=1)
        eps2 = float(epsilon_for_selectivity(data, 8)) ** 2

        def prepare(block):
            return block, (block * block).sum(axis=1)

        def dists(row, col):
            return norm_expansion_sq_dists(row[1], col[1], row[0] @ col[0].T)

        acc, stats = streaming_self_join(
            ArraySource(data), eps2, prepare, dists, row_block=40
        )
        from repro.core.engine import symmetric_self_join

        def tile(r0, r1, c0, c1):
            return norm_expansion_sq_dists(
                s[r0:r1], s[c0:c1], data[r0:r1] @ data[c0:c1].T
            )

        ref = symmetric_self_join(150, eps2, tile, row_block=40)
        a = acc.finalize(150, 1.0)
        b = ref.finalize(150, 1.0)
        assert joins_bit_identical(a, b)
        assert stats.tiles_evaluated == stats.plan.n_tiles

    def test_ted_index_variant_refuses_streaming(self):
        with pytest.raises(ValueError):
            TedJoinKernel(variant="index").self_join_stream(
                ArraySource(_dataset(16, n=50)), 1.0
            )


# ----------------------------------------------------------------------
# API-level streaming
# ----------------------------------------------------------------------


class TestApiStreaming:
    def test_stream_flag_matches_in_memory(self):
        data = _dataset(32, n=300, seed=6)
        eps = float(epsilon_for_selectivity(data, 12))
        mem = self_join(data, eps)
        streamed = self_join(data, eps, stream=True)
        assert joins_bit_identical(mem, streamed)

    def test_stream_from_path(self, tmp_path):
        data = _dataset(32, n=300, seed=6)
        eps = float(epsilon_for_selectivity(data, 12))
        path = tmp_path / "d.npy"
        np.save(path, data)
        mem = self_join(data, eps, method="ted-join-brute")
        streamed = self_join(
            path, eps, method="ted-join-brute", stream=True,
            memory_budget_bytes=96 * 1024,
        )
        assert joins_bit_identical(mem, streamed)

    def test_materializes_source_for_index_methods(self, tmp_path):
        data = _dataset(24, n=250, seed=7)
        eps = float(epsilon_for_selectivity(data, 8))
        path = tmp_path / "d.npy"
        np.save(path, data)
        mem = self_join(data, eps, method="gds-join")
        via_path = self_join(str(path), eps, method="gds-join")
        assert joins_bit_identical(mem, via_path)

    def test_memory_budget_implies_stream(self, tmp_path):
        """An explicit budget must never be answered by materializing."""
        data = _dataset(32, n=300, seed=6)
        eps = float(epsilon_for_selectivity(data, 12))
        path = tmp_path / "d.npy"
        np.save(path, data)
        budget = 96 * 1024
        plan = TilePlan.from_budget(300, 32, budget)
        mem = FastedKernel().self_join(data, eps, row_block=plan.row_block)
        got = self_join(path, eps, memory_budget_bytes=budget)  # no stream=
        assert joins_bit_identical(mem, got)

    def test_self_join_stream_returns_stats(self):
        data = _dataset(24, n=220, seed=9)
        eps = float(epsilon_for_selectivity(data, 8))
        result, stats = self_join_stream(
            data, eps, method="ted-join-brute", memory_budget_bytes=64 * 1024
        )
        assert stats.peak_resident_bytes <= 64 * 1024
        assert joins_bit_identical(
            result, self_join(data, eps, method="ted-join-brute")
        )
        with pytest.raises(ValueError):
            self_join_stream(data, eps, method="mistic")

    def test_stream_rejected_for_index_methods(self):
        data = _dataset(16, n=60)
        with pytest.raises(ValueError):
            self_join(data, 1.0, method="gds-join", stream=True)
        with pytest.raises(ValueError):
            self_join(data, 1.0, method="gds-join", memory_budget_bytes=1 << 20)
        with pytest.raises(ValueError):
            # A budget cannot be honored by the materializing path.
            self_join(data, 1.0, stream=False, memory_budget_bytes=1 << 20)

    def test_batched_rejected_for_brute_methods(self):
        data = _dataset(16, n=60)
        with pytest.raises(ValueError):
            self_join(data, 1.0, method="fasted", batched=True)

    def test_env_default(self, monkeypatch):
        data = _dataset(24, n=200, seed=8)
        eps = float(epsilon_for_selectivity(data, 8))
        mem = self_join(data, eps)
        monkeypatch.setenv("REPRO_STREAM", "1")
        streamed = self_join(data, eps)
        assert joins_bit_identical(mem, streamed)
        # Index methods quietly keep materializing under the env default.
        idx = self_join(data, eps, method="gds-join")
        assert idx.n_points == 200


# ----------------------------------------------------------------------
# Batched candidate executor
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d", [32, 64])
class TestBatchedCandidateExecutor:
    def test_gds_join_pair_set(self, d):
        data = fine_grid_dataset(800, d, seed=d)
        eps = float(epsilon_for_selectivity(data, 8))
        plain = GdsJoinKernel().self_join(data, eps, batched=False).result
        batched = GdsJoinKernel().self_join(data, eps, batched=True).result
        assert_pair_sets_equal(plain, batched)
        ad, bd = canon(plain)[2], canon(batched)[2]
        # FP32 norm expansion: absolute error scales with the squared-norm
        # magnitude (~1e4 here), not the small distances, so the tolerance
        # is a few ulps of the norms -- same caveat as row_block changes.
        np.testing.assert_allclose(ad, bd, rtol=1e-3, atol=0.05)

    def test_ted_index_pair_set(self, d):
        data = fine_grid_dataset(700, d, seed=d + 1)
        eps = float(epsilon_for_selectivity(data, 8))
        plain = TedJoinKernel(variant="index").self_join(data, eps, batched=False)
        batched = TedJoinKernel(variant="index").self_join(data, eps, batched=True)
        assert_pair_sets_equal(plain.result, batched.result)
        # The 8x8-padded candidate tally must not depend on the executor.
        assert plain.total_candidates == batched.total_candidates

    def test_mistic_pair_set(self, d):
        data = fine_grid_dataset(600, d, seed=d + 2)
        eps = float(epsilon_for_selectivity(data, 8))
        plain = MisticKernel().self_join(data, eps, batched=False).result
        batched = MisticKernel().self_join(data, eps, batched=True).result
        assert_pair_sets_equal(plain, batched)


class TestBatchedEngine:
    def _setup(self, n=400, d=24, seed=9):
        data = fine_grid_dataset(n, d, seed=seed)
        eps = float(epsilon_for_selectivity(data, 8))
        index = GridIndex(data, eps)
        work = np.ascontiguousarray(data, dtype=np.float64)
        s = (work * work).sum(axis=1)
        return data, eps, index, work, s

    def test_matches_per_group_executor(self):
        data, eps, index, work, s = self._setup()
        eps2 = float(eps) ** 2

        def dist(members, cand):
            return norm_expansion_sq_dists(
                s[members], s[cand], work[members] @ work[cand].T
            )

        plain = candidate_self_join(index.iter_cells(), dist, eps2)
        batched = batched_candidate_self_join(
            index.iter_cells(order="size"), work, s, eps2
        )
        a = plain.finalize(data.shape[0], eps)
        b = batched.finalize(data.shape[0], eps)
        # FP64 norm expansion: even the distances agree bitwise here.
        assert joins_bit_identical(a, b)

    def test_forced_tiny_batches(self):
        """Pathological knobs (every group flushes alone) still correct."""
        data, eps, index, work, s = self._setup(n=250)
        eps2 = float(eps) ** 2
        batched = batched_candidate_self_join(
            index.iter_cells(), work, s, eps2, batch_elems=1, single_elems=1
        )

        def dist(members, cand):
            return norm_expansion_sq_dists(
                s[members], s[cand], work[members] @ work[cand].T
            )

        plain = candidate_self_join(index.iter_cells(), dist, eps2)
        assert joins_bit_identical(
            plain.finalize(250, eps), batched.finalize(250, eps)
        )

    def test_on_group_sees_every_group_in_order(self):
        data, eps, index, work, s = self._setup(n=300)
        seen = []
        batched_candidate_self_join(
            index.iter_cells(),
            work,
            s,
            -1.0,  # keep nothing
            on_group=lambda m, c: seen.append((m.size, c.size)),
        )
        expect = [
            (m.size, c.size) for m, c in index.iter_cells() if m.size and c.size
        ]
        assert seen == expect

    def test_size_order_same_pair_set(self):
        data, eps, index, work, s = self._setup(n=350, seed=11)
        eps2 = float(eps) ** 2
        lex = batched_candidate_self_join(index.iter_cells(), work, s, eps2)
        size = batched_candidate_self_join(
            index.iter_cells(order="size"), work, s, eps2
        )
        assert joins_bit_identical(
            lex.finalize(350, eps), size.finalize(350, eps)
        )
