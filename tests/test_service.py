"""Query-serving subsystem: persistence, query engine, cache, server.

The serving contracts, executable:

* **Persistence round-trips** -- save/load for both index types, loaded
  (mmap and in-RAM) indexes answering bit-identically to freshly built
  ones, version/magic rejection.
* **Query engine** -- ``range_query`` bit-identical to the dense
  brute-force reference at FP64 (on loaded-from-disk indexes -- the
  acceptance contract), pair-set at FP32/batched; ``knn_query`` exact
  against a brute argsort, including the expanding-reach path.
* **Serving layer** -- LRU cache accounting, micro-batch splitting, and
  the concurrent smoke: N threads hammering one cached index through
  the service and over HTTP must reproduce serial answers.
"""

import json
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.core.api import build_index, open_index, query
from repro.core.engine import batch_params_from_stats
from repro.core.selectivity import epsilon_for_selectivity
from repro.data.source import MmapNpySource, as_source
from repro.index.grid import GridIndex
from repro.index.mstree import MultiSpaceTree
from repro.index.persist import (
    FORMAT_VERSION,
    HEADER_NAME,
    load_index,
    read_header,
    save_index,
)
from repro.service import (
    IndexCache,
    KnnResult,
    QueryEngine,
    QueryService,
    brute_range_query,
    make_server,
    run_self_test,
)


def _dataset(n=1500, d=24, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 3.0, size=(6, d))
    data = centers[rng.integers(0, 6, n)] + rng.normal(0, 0.7, size=(n, d))
    eps = float(epsilon_for_selectivity(data, 16))
    return data, eps


def _queries(data, eps, nq=120, seed=3):
    rng = np.random.default_rng(seed)
    base = data[rng.integers(0, data.shape[0], size=nq)]
    scale = eps / (4.0 * data.shape[1] ** 0.5)
    return base + rng.normal(0, scale, size=base.shape)


def _canon_join(res):
    order = np.lexsort((res.pairs_j, res.pairs_i))
    sq = res.sq_dists[order] if res.sq_dists.size else res.sq_dists
    return res.pairs_i[order], res.pairs_j[order], sq


def assert_joins_bit_identical(a, b):
    ai, aj, ad = _canon_join(a)
    bi, bj, bd = _canon_join(b)
    np.testing.assert_array_equal(ai, bi)
    np.testing.assert_array_equal(aj, bj)
    assert np.array_equal(ad.view(np.uint32), bd.view(np.uint32))


def assert_pair_sets_equal(a, b):
    ai, aj, _ = _canon_join(a)
    bi, bj, _ = _canon_join(b)
    np.testing.assert_array_equal(ai, bi)
    np.testing.assert_array_equal(aj, bj)


def brute_knn(data, queries, k):
    """Exact top-k by (squared distance, index) in float64."""
    d2 = ((queries[:, None, :] - data[None, :, :]) ** 2).sum(axis=-1)
    order = np.argsort(d2, axis=1, kind="stable")[:, :k]
    return order


@pytest.fixture(scope="module")
def data_eps():
    return _dataset()


# ----------------------------------------------------------------------
# Persistence round-trips
# ----------------------------------------------------------------------


class TestPersistence:
    def test_grid_roundtrip_state(self, data_eps, tmp_path):
        data, eps = data_eps
        fresh = GridIndex(data, eps)
        save_index(fresh, tmp_path / "g", data=data)
        loaded = load_index(tmp_path / "g")
        assert loaded.kind == "grid"
        assert loaded.eps == eps
        idx = loaded.index
        np.testing.assert_array_equal(idx._sort, fresh._sort)
        np.testing.assert_array_equal(idx._unique, fresh._unique)
        np.testing.assert_array_equal(idx.order, fresh.order)
        for (ma, ca), (mb, cb) in zip(fresh.iter_cells(), idx.iter_cells()):
            np.testing.assert_array_equal(ma, mb)
            np.testing.assert_array_equal(ca, cb)

    def test_mstree_roundtrip_state(self, data_eps, tmp_path):
        data, eps = data_eps
        fresh = MultiSpaceTree(data, eps)
        save_index(fresh, tmp_path / "t", data=data)
        loaded = load_index(tmp_path / "t")
        assert loaded.kind == "mstree"
        assert len(loaded.index.levels) == len(fresh.levels)
        for la, lb in zip(fresh.levels, loaded.index.levels):
            assert la.kind == lb.kind and la.param == lb.param
            np.testing.assert_array_equal(la.bins, lb.bins)
            if la.pivot_point is not None:
                np.testing.assert_array_equal(la.pivot_point, lb.pivot_point)

    def test_loaded_query_bit_identical_to_fresh(self, data_eps, tmp_path):
        data, eps = data_eps
        q = _queries(data, eps)
        for kind, index in (
            ("grid", GridIndex(data, eps)),
            ("mstree", MultiSpaceTree(data, eps)),
        ):
            save_index(index, tmp_path / kind, data=data)
            fresh = QueryEngine(index, data).range_query(q)
            loaded = QueryEngine(tmp_path / kind).range_query(q)
            assert_joins_bit_identical(fresh, loaded)

    def test_mmap_vs_in_ram_equivalence(self, data_eps, tmp_path):
        data, eps = data_eps
        q = _queries(data, eps)
        save_index(GridIndex(data, eps), tmp_path / "g", data=data)
        mm = QueryEngine(load_index(tmp_path / "g", mmap=True))
        ram = QueryEngine(load_index(tmp_path / "g", mmap=False))
        assert_joins_bit_identical(mm.range_query(q), ram.range_query(q))
        km, kr = mm.knn_query(q, 4), ram.knn_query(q, 4)
        np.testing.assert_array_equal(km.indices, kr.indices)
        assert np.array_equal(
            km.sq_dists.view(np.uint32), kr.sq_dists.view(np.uint32)
        )

    def test_version_mismatch_rejected(self, data_eps, tmp_path):
        data, eps = data_eps
        path = save_index(GridIndex(data, eps), tmp_path / "g", data=data)
        header = json.loads((path / HEADER_NAME).read_text())
        header["version"] = FORMAT_VERSION + 1
        (path / HEADER_NAME).write_text(json.dumps(header))
        with pytest.raises(ValueError, match="version"):
            load_index(path)

    def test_bad_magic_and_missing_header_rejected(self, data_eps, tmp_path):
        data, eps = data_eps
        path = save_index(GridIndex(data, eps), tmp_path / "g", data=data)
        header = json.loads((path / HEADER_NAME).read_text())
        header["magic"] = "not-an-index"
        (path / HEADER_NAME).write_text(json.dumps(header))
        with pytest.raises(ValueError, match="magic"):
            read_header(path)
        with pytest.raises(ValueError, match="not a persisted index"):
            load_index(tmp_path)  # a directory without a header

    def test_saved_without_data_requires_data(self, data_eps, tmp_path):
        data, eps = data_eps
        save_index(GridIndex(data, eps), tmp_path / "g")
        loaded = load_index(tmp_path / "g")
        assert loaded.source is None
        with pytest.raises(ValueError, match="no dataset"):
            QueryEngine(loaded)
        q = _queries(data, eps, nq=40)
        res = QueryEngine(loaded, data).range_query(q)
        assert_joins_bit_identical(res, brute_range_query(data, q, eps))

    def test_data_path_reference(self, data_eps, tmp_path):
        data, eps = data_eps
        np.save(tmp_path / "ds.npy", data)
        save_index(
            GridIndex(data, eps), tmp_path / "g",
            data_path=tmp_path / "ds.npy",
        )
        loaded = load_index(tmp_path / "g")
        assert isinstance(loaded.source, MmapNpySource)
        assert loaded.source.n == data.shape[0]

    def test_resave_removes_stale_payloads(self, data_eps, tmp_path):
        """Replacing an index of a different shape leaves no dead .npy."""
        data, eps = data_eps
        save_index(MultiSpaceTree(data, eps), tmp_path / "g", data=data)
        save_index(GridIndex(data, eps), tmp_path / "g", data=data)
        names = {p.name for p in (tmp_path / "g").glob("*.npy")}
        assert not any(n.startswith("level_") for n in names)
        loaded = load_index(tmp_path / "g")
        assert loaded.kind == "grid"
        q = _queries(data, eps, nq=20)
        assert_joins_bit_identical(
            QueryEngine(loaded).range_query(q), brute_range_query(data, q, eps)
        )

    def test_streamed_data_embed(self, data_eps, tmp_path):
        """Embedding from a source streams through write_npy."""
        data, eps = data_eps
        np.save(tmp_path / "ds.npy", data)
        src = as_source(tmp_path / "ds.npy")
        save_index(GridIndex(data, eps), tmp_path / "g", data=src)
        loaded = load_index(tmp_path / "g")
        np.testing.assert_array_equal(loaded.source.materialize(), data)


# ----------------------------------------------------------------------
# Query engine
# ----------------------------------------------------------------------


class TestRangeQuery:
    @pytest.mark.parametrize("kind", ["grid", "mstree"])
    def test_loaded_bit_identical_to_brute(self, data_eps, tmp_path, kind):
        """The acceptance contract: range_query on a loaded-from-disk
        index == dense FP64 brute force, bitwise."""
        data, eps = data_eps
        q = _queries(data, eps)
        build_index(data, eps, tmp_path / kind, kind=kind)
        res = QueryEngine(tmp_path / kind).range_query(q)
        assert res.pairs_i.size > 0  # a vacuous comparison proves nothing
        assert_joins_bit_identical(res, brute_range_query(data, q, eps))

    def test_smaller_eps_and_validation(self, data_eps, tmp_path):
        data, eps = data_eps
        q = _queries(data, eps)
        build_index(data, eps, tmp_path / "g")
        eng = QueryEngine(tmp_path / "g")
        small = eps * 0.6
        assert_joins_bit_identical(
            eng.range_query(q, small), brute_range_query(data, q, small)
        )
        with pytest.raises(ValueError, match="exceeds the index cell width"):
            eng.range_query(q, eps * 1.5)
        with pytest.raises(ValueError, match="positive"):
            eng.range_query(q, -1.0)
        with pytest.raises(ValueError, match="dimensionality"):
            eng.range_query(q[:, :-1])

    def test_batched_pair_set(self, data_eps, tmp_path):
        data, eps = data_eps
        q = _queries(data, eps)
        build_index(data, eps, tmp_path / "g")
        eng = QueryEngine(tmp_path / "g")
        assert_pair_sets_equal(
            eng.range_query(q), eng.range_query(q, batched=True)
        )

    def test_fp32_pair_set(self, data_eps, tmp_path):
        data, eps = data_eps
        q = _queries(data, eps)
        build_index(data, eps, tmp_path / "g")
        eng32 = QueryEngine(tmp_path / "g", precision="fp32")
        ref = brute_range_query(data, q, eps, precision="fp32")
        assert_pair_sets_equal(eng32.range_query(q), ref)

    def test_workers_bit_identical(self, data_eps):
        data, eps = data_eps
        q = _queries(data, eps)
        eng = QueryEngine(GridIndex(data, eps), data)
        serial = eng.range_query(q, workers=0)
        parallel = eng.range_query(q, workers=2)
        assert_joins_bit_identical(serial, parallel)

    def test_mmap_source_matches_resident(self, data_eps, tmp_path):
        """Source-backed (gathered) evaluation == resident arrays."""
        data, eps = data_eps
        q = _queries(data, eps)
        np.save(tmp_path / "ds.npy", data)
        index = GridIndex(data, eps)
        resident = QueryEngine(index, data).range_query(q)
        gathered = QueryEngine(index, tmp_path / "ds.npy").range_query(q)
        assert_joins_bit_identical(resident, gathered)

    def test_single_point_query(self, data_eps):
        data, eps = data_eps
        eng = QueryEngine(GridIndex(data, eps), data)
        res = eng.range_query(data[7])  # (d,) accepted as one query
        assert res.n_left == 1
        assert 7 in set(res.pairs_j.tolist())  # its own row is a match


class TestKnnQuery:
    @pytest.mark.parametrize("kind", ["grid", "mstree"])
    def test_exact_vs_brute(self, data_eps, tmp_path, kind):
        data, eps = data_eps
        q = _queries(data, eps, nq=60)
        build_index(data, eps, tmp_path / kind, kind=kind)
        eng = QueryEngine(tmp_path / kind)
        for k in (1, 5):
            res = eng.knn_query(q, k)
            np.testing.assert_array_equal(res.indices, brute_knn(data, q, k))

    def test_far_queries_force_expansion(self, data_eps):
        """Queries far outside the data must still resolve (reach growth)."""
        data, eps = data_eps
        rng = np.random.default_rng(9)
        far = rng.normal(30.0, 1.0, size=(5, data.shape[1]))
        eng = QueryEngine(GridIndex(data, eps), data)
        res = eng.knn_query(far, 3)
        np.testing.assert_array_equal(res.indices, brute_knn(data, far, 3))

    def test_k_exceeding_n(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(7, 4))
        eng = QueryEngine(GridIndex(data, 1.0), data)
        res = eng.knn_query(data[:3], 10)
        assert res.indices.shape == (3, 10)
        assert np.all(res.indices[:, :7] >= 0)
        assert np.all(res.indices[:, 7:] == -1)
        assert np.all(np.isinf(res.sq_dists[:, 7:]))

    def test_self_is_nearest(self, data_eps):
        data, eps = data_eps
        eng = QueryEngine(GridIndex(data, eps), data)
        res = eng.knn_query(data[:20], 1)
        np.testing.assert_array_equal(res.indices[:, 0], np.arange(20))
        # The norm expansion can leave ~1 ulp of cancellation residue on
        # the self pair; "nearest" is what matters.
        assert np.all(res.sq_dists[:, 0] <= 1e-10)

    def test_invalid_k(self, data_eps):
        data, eps = data_eps
        eng = QueryEngine(GridIndex(data, eps), data)
        with pytest.raises(ValueError, match="k must be positive"):
            eng.knn_query(data[:2], 0)

    def test_initial_reach_scales_with_k(self, data_eps):
        data, eps = data_eps
        eng = QueryEngine(GridIndex(data, eps), data)
        assert eng._initial_reach(1) <= eng._initial_reach(500)

    def test_duplicate_points(self):
        """Duplicated rows must all surface before any farther point."""
        rng = np.random.default_rng(11)
        base = rng.normal(size=(40, 6))
        data = np.concatenate([base, base[:10]])  # rows 40..49 dup 0..9
        eng = QueryEngine(GridIndex(data, 1.0), data)
        res = eng.knn_query(base[:10], 2)
        for qi in range(10):
            got = set(res.indices[qi].tolist())
            assert got == {qi, qi + 40}
            assert np.all(res.sq_dists[qi] <= 1e-10)

    def test_all_identical_coordinates(self):
        """Degenerate dataset: every point in one cell at distance 0."""
        data = np.ones((12, 5)) * 3.25
        eng = QueryEngine(GridIndex(data, 1.0), data)
        res = eng.knn_query(data[:4], 5)
        assert res.indices.shape == (4, 5)
        assert np.all(res.indices >= 0)
        assert np.all(res.sq_dists <= 1e-10)
        # No index repeats within a row: ties broken by identity.
        for row in res.indices:
            assert len(set(row.tolist())) == 5

    def test_k1_single_cell_dataset(self):
        """k=1 on a dataset that collapses into a single grid cell."""
        rng = np.random.default_rng(7)
        data = rng.uniform(0.0, 0.01, size=(25, 3))
        eng = QueryEngine(GridIndex(data, 5.0), data)  # eps >> spread
        res = eng.knn_query(data, 1)
        np.testing.assert_array_equal(res.indices[:, 0], np.arange(25))

    @pytest.mark.parametrize("kind", ["grid", "mstree"])
    def test_k_equals_n_exact(self, data_eps, tmp_path, kind):
        """k == n returns the full stable distance ordering, no -1 pads."""
        rng = np.random.default_rng(13)
        data = rng.normal(size=(30, 8))
        build_index(data, 1.0, tmp_path / f"kn-{kind}", kind=kind)
        eng = QueryEngine(tmp_path / f"kn-{kind}")
        q = data[:6]
        res = eng.knn_query(q, 30)
        assert np.all(res.indices >= 0)
        np.testing.assert_array_equal(res.indices, brute_knn(data, q, 30))


# ----------------------------------------------------------------------
# Derived batch params (satellite: stats-moment autotuning)
# ----------------------------------------------------------------------


class TestBatchParams:
    def test_moments_populated(self, data_eps):
        data, eps = data_eps
        stats = GridIndex(data, eps).stats()
        assert stats.mean_members > 0
        assert stats.mean_group_candidates >= stats.mean_members
        assert stats.std_members >= 0

    def test_derived_and_override(self, data_eps):
        data, eps = data_eps
        stats = GridIndex(data, eps).stats()
        derived = batch_params_from_stats(stats)
        assert set(derived) == {
            "batch_elems", "max_batch_groups", "single_elems", "min_fill",
        }
        assert 0.15 <= derived["min_fill"] <= 0.5
        assert derived["single_elems"] >= 1 << 12
        forced = batch_params_from_stats(stats, min_fill=0.42, batch_elems=123)
        assert forced["min_fill"] == 0.42
        assert forced["batch_elems"] == 123
        assert forced["single_elems"] == derived["single_elems"]

    def test_homogeneous_groups_demand_tighter_fill(self):
        class S:  # duck-typed stats
            mean_members = 8.0
            std_members = 0.0
            mean_group_candidates = 24.0
            std_group_candidates = 0.0

        class D:
            mean_members = 8.0
            std_members = 24.0
            mean_group_candidates = 24.0
            std_group_candidates = 100.0

        assert (
            batch_params_from_stats(S())["min_fill"]
            > batch_params_from_stats(D())["min_fill"]
        )

    def test_mstree_stats_mirrors_grid_contract(self, data_eps):
        """MultiSpaceTree.stats() emits the same GridStats shape the
        grid does, so batch_params_from_stats works on both."""
        from repro.index.grid import GridStats

        data, eps = data_eps
        tree = MultiSpaceTree(data, eps, seed=0)
        stats = tree.stats(group=256)
        assert isinstance(stats, GridStats)
        assert stats.n_points == data.shape[0]
        # Every point belongs to exactly one group.
        members = [int(m.size) for m, _ in tree.iter_groups(group=256)]
        assert sum(members) == data.shape[0]
        assert stats.n_nonempty_cells == len(members)
        assert stats.mean_members == pytest.approx(np.mean(members))
        assert stats.std_members == pytest.approx(np.std(members))
        assert stats.mean_group_candidates >= stats.mean_members

    def test_mstree_stats_derive_same_knob_set_as_grid(self, data_eps):
        data, eps = data_eps
        from_tree = batch_params_from_stats(
            MultiSpaceTree(data, eps, seed=0).stats()
        )
        from_grid = batch_params_from_stats(GridIndex(data, eps).stats())
        assert set(from_tree) == set(from_grid)
        # Same clamps apply to both derivations.
        for knobs in (from_tree, from_grid):
            assert 0.15 <= knobs["min_fill"] <= 0.5
            assert knobs["single_elems"] >= 1 << 12
            assert 1 << 16 <= knobs["batch_elems"] <= 1 << 22

    def test_mistic_batched_uses_derived_knobs(self, data_eps):
        """The tree-backed kernel's batched path (now knob-derived) must
        stay pair-set-equal to the serial path."""
        from repro.kernels.mistic import MisticKernel

        data, eps = data_eps
        data = data[:400]
        a = MisticKernel().self_join(data, eps, batched=False).result
        b = MisticKernel().self_join(data, eps, batched=True).result
        assert_pair_sets_equal(a, b)

    def test_kernel_override_changes_nothing_functionally(self, data_eps):
        from repro.kernels.gdsjoin import GdsJoinKernel

        data, eps = data_eps
        a = GdsJoinKernel().self_join(data, eps, batched=True).result
        b = (
            GdsJoinKernel()
            .self_join(
                data, eps, batched=True,
                batch_params={"batch_elems": 1 << 14, "min_fill": 0.2},
            )
            .result
        )
        assert_pair_sets_equal(a, b)


# ----------------------------------------------------------------------
# Serving layer: cache, micro-batching, HTTP
# ----------------------------------------------------------------------


class TestIndexCache:
    def test_hits_misses_and_keying(self, data_eps, tmp_path):
        data, eps = data_eps
        build_index(data, eps, tmp_path / "a")
        cache = IndexCache(capacity=2)
        e1 = cache.get(tmp_path / "a")
        e2 = cache.get(tmp_path / "a")
        assert e1 is e2
        assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1

    def test_lru_eviction(self, tmp_path):
        cache = IndexCache(capacity=2)
        paths = []
        for i in range(3):
            data, eps = _dataset(n=200, d=8, seed=i)
            build_index(data, eps, tmp_path / f"i{i}")
            paths.append(tmp_path / f"i{i}")
        engines = [cache.get(p) for p in paths]
        assert len(cache) == 2 and cache.evictions == 1
        # i0 was evicted: a re-get is a miss producing a fresh engine.
        again = cache.get(paths[0])
        assert again is not engines[0]

    def test_rejects_non_index(self, tmp_path):
        cache = IndexCache()
        with pytest.raises(ValueError):
            cache.get(tmp_path)

    def test_rebuild_invalidates_cache(self, tmp_path):
        """Rebuilding at the same path must not serve the stale engine
        (the key carries the header content digest)."""
        data1, eps1 = _dataset(n=300, d=8, seed=1)
        build_index(data1, eps1, tmp_path / "g")
        cache = IndexCache()
        e1 = cache.get(tmp_path / "g")
        assert e1.n_points == 300
        data2, eps2 = _dataset(n=400, d=8, seed=2)
        build_index(data2, eps2, tmp_path / "g")
        e2 = cache.get(tmp_path / "g")
        assert e2 is not e1 and e2.n_points == 400
        q = _queries(data2, eps2, nq=20, seed=6)
        assert_joins_bit_identical(
            e2.range_query(q), brute_range_query(data2, q, eps2)
        )


class TestQueryService:
    def test_split_matches_serial(self, data_eps, tmp_path):
        data, eps = data_eps
        build_index(data, eps, tmp_path / "g")
        q = _queries(data, eps, nq=48)
        with QueryService() as svc:
            engine = svc.cache.get(tmp_path / "g")
            pending = [
                svc.submit(tmp_path / "g", q[i * 12 : (i + 1) * 12])
                for i in range(4)
            ]
            for i, p in enumerate(pending):
                got = p.result(timeout=30)
                serial = engine.range_query(q[i * 12 : (i + 1) * 12])
                assert_joins_bit_identical(got, serial)

    def test_concurrent_hammer_equals_serial(self, data_eps, tmp_path):
        """The serve smoke: N threads against one cached index."""
        data, eps = data_eps
        build_index(data, eps, tmp_path / "g")
        q = _queries(data, eps, nq=96, seed=11)
        n_threads = 8
        per = q.shape[0] // n_threads
        results: list = [None] * n_threads
        knns: list = [None] * n_threads
        with QueryService() as svc:
            engine = svc.cache.get(tmp_path / "g")

            def hammer(i: int) -> None:
                rows = q[i * per : (i + 1) * per]
                results[i] = svc.query(tmp_path / "g", rows)
                knns[i] = svc.query(tmp_path / "g", rows, k=3)

            threads = [
                threading.Thread(target=hammer, args=(i,))
                for i in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = svc.stats()
        assert stats["cache"]["misses"] == 1  # one load served everyone
        assert stats["requests_served"] == 2 * n_threads
        for i in range(n_threads):
            rows = q[i * per : (i + 1) * per]
            assert_joins_bit_identical(results[i], engine.range_query(rows))
            np.testing.assert_array_equal(
                knns[i].indices, engine.knn_query(rows, 3).indices
            )

    def test_submit_restarts_stopped_service(self, data_eps, tmp_path):
        data, eps = data_eps
        build_index(data, eps, tmp_path / "g")
        svc = QueryService()
        q = _queries(data, eps, nq=6)
        try:
            first = svc.query(tmp_path / "g", q)
            svc.stop()
            again = svc.query(tmp_path / "g", q)  # submit revives the loop
            assert_joins_bit_identical(first, again)
        finally:
            svc.stop()

    def test_error_propagates_to_waiter(self, data_eps, tmp_path):
        data, eps = data_eps
        build_index(data, eps, tmp_path / "g")
        with QueryService() as svc:
            pending = svc.submit(
                tmp_path / "g", _queries(data, eps, nq=4), eps=eps * 10
            )
            with pytest.raises(ValueError, match="exceeds the index"):
                pending.result(timeout=30)

    def test_bad_dimensionality_fails_its_own_submit(self, data_eps, tmp_path):
        """A malformed request must not poison the batch it would join."""
        data, eps = data_eps
        build_index(data, eps, tmp_path / "g")
        with QueryService() as svc:
            with pytest.raises(ValueError, match="queries must be"):
                svc.submit(tmp_path / "g", np.zeros((2, data.shape[1] + 1)))
            # Valid traffic is unaffected.
            res = svc.query(tmp_path / "g", _queries(data, eps, nq=4))
            assert res.n_left == 4


class TestHttpServer:
    def test_endpoints(self, data_eps, tmp_path):
        import http.client

        data, eps = data_eps
        build_index(data, eps, tmp_path / "g")
        server = make_server({"default": tmp_path / "g"}, port=0)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            conn = http.client.HTTPConnection(host, port, timeout=30)
            conn.request("GET", "/healthz")
            health = json.loads(conn.getresponse().read())
            assert health["status"] == "ok" and health["indexes"] == ["default"]
            q = _queries(data, eps, nq=6)
            conn.request(
                "POST", "/range",
                json.dumps({"queries": q.tolist()}),
                {"Content-Type": "application/json"},
            )
            got = json.loads(conn.getresponse().read())
            engine = server.service.cache.get(tmp_path / "g")
            want = engine.range_query(q)
            sets = [set() for _ in range(q.shape[0])]
            for i, j in zip(want.pairs_i.tolist(), want.pairs_j.tolist()):
                sets[i].add(j)
            assert [set(x) for x in got["neighbors"]] == sets
            conn.request(
                "POST", "/knn",
                json.dumps({"queries": q.tolist(), "k": 2}),
                {"Content-Type": "application/json"},
            )
            got_knn = json.loads(conn.getresponse().read())
            assert got_knn["indices"] == engine.knn_query(q, 2).indices.tolist()
            conn.request("POST", "/range", json.dumps({"index": "nope"}),
                         {"Content-Type": "application/json"})
            resp = conn.getresponse()
            resp.read()  # drain: keep-alive needs the body consumed
            assert resp.status == 404
            conn.request("GET", "/stats")
            assert json.loads(conn.getresponse().read())["requests_served"] >= 2
            conn.close()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_strict_json_and_stable_shape(self, tmp_path):
        """kNN padding must serialize as null (strict JSON, no Infinity)
        and empty range answers must keep the sq_dists key."""
        import http.client

        rng = np.random.default_rng(2)
        data = rng.normal(size=(3, 6))
        build_index(data, 1.0, tmp_path / "g")
        server = make_server({"default": tmp_path / "g"}, port=0)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            conn = http.client.HTTPConnection(host, port, timeout=30)
            conn.request(
                "POST", "/knn",
                json.dumps({"queries": data[:1].tolist(), "k": 5}),
                {"Content-Type": "application/json"},
            )
            raw = conn.getresponse().read().decode()
            assert "Infinity" not in raw  # strict parsers reject it
            got = json.loads(raw)
            assert got["sq_dists"][0][3:] == [None, None]
            far = (data[:1] + 100.0).tolist()
            conn.request(
                "POST", "/range", json.dumps({"queries": far}),
                {"Content-Type": "application/json"},
            )
            got = json.loads(conn.getresponse().read())
            assert got["neighbors"] == [[]]
            assert got["sq_dists"] == [[]]  # key survives empty answers
            conn.close()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_run_self_test(self, data_eps, tmp_path):
        data, eps = data_eps
        build_index(data, eps, tmp_path / "g")
        out = run_self_test(tmp_path / "g", n_clients=3, queries_per_client=4)
        assert out["clients"] == 3
        assert out["stats"]["requests_served"] >= 3

    def test_requires_registration(self):
        with pytest.raises(ValueError, match="at least one index"):
            make_server({}, port=0)


# ----------------------------------------------------------------------
# api-level entry points and CLI
# ----------------------------------------------------------------------


class TestApi:
    def test_open_index_cached_and_query(self, data_eps, tmp_path):
        data, eps = data_eps
        build_index(data, eps, tmp_path / "g")
        e1 = open_index(tmp_path / "g")
        e2 = open_index(tmp_path / "g")
        assert e1 is e2  # module-level LRU
        assert open_index(tmp_path / "g", cache=False) is not e1
        q = _queries(data, eps, nq=20)
        res = query(tmp_path / "g", q)
        assert_joins_bit_identical(res, brute_range_query(data, q, eps))
        knn = query(tmp_path / "g", q, k=2)
        assert isinstance(knn, KnnResult)
        with pytest.raises(ValueError, match="not both"):
            query(e1, q, eps=eps, k=2)

    def test_build_index_out_of_core(self, data_eps, tmp_path):
        """Paths build through from_source and embed by streamed copy."""
        data, eps = data_eps
        np.save(tmp_path / "ds.npy", data)
        build_index(tmp_path / "ds.npy", eps, tmp_path / "g")
        loaded = load_index(tmp_path / "g")
        fresh = GridIndex(data, eps)
        np.testing.assert_array_equal(loaded.index._sort, fresh._sort)
        q = _queries(data, eps, nq=30)
        assert_joins_bit_identical(
            QueryEngine(loaded).range_query(q), brute_range_query(data, q, eps)
        )

    def test_build_index_validates_kind(self, data_eps, tmp_path):
        data, eps = data_eps
        with pytest.raises(ValueError, match="kind"):
            build_index(data, eps, tmp_path / "g", kind="btree")

    def test_build_index_data_path_reference(self, data_eps, tmp_path):
        """data_path implies a reference; embed+reference together is a
        contradiction and must not silently copy."""
        data, eps = data_eps
        np.save(tmp_path / "ds.npy", data)
        build_index(data, eps, tmp_path / "g", data_path=tmp_path / "ds.npy")
        loaded = load_index(tmp_path / "g")
        assert loaded.header["data"] == str(tmp_path / "ds.npy")
        assert not loaded.header.get("data_embedded")
        assert not list((tmp_path / "g").glob("data-*.npy"))
        with pytest.raises(ValueError, match="one or the other"):
            build_index(
                data, eps, tmp_path / "g2",
                include_data=True, data_path=tmp_path / "ds.npy",
            )


class TestCli:
    def _run(self, *argv):
        from repro.cli import main

        assert main(list(argv)) == 0

    def test_index_build_info_query_serve(self, tmp_path, capsys):
        out_dir = str(tmp_path / "idx")
        self._run(
            "index", "build", out_dir, "--n", "600", "--d", "12",
            "--selectivity", "8",
        )
        assert "persisted" in capsys.readouterr().out
        self._run("index", "info", out_dir)
        assert "kind: grid" in capsys.readouterr().out
        self._run("query", out_dir, "--n-queries", "16")
        assert "range:" in capsys.readouterr().out
        self._run("query", out_dir, "--n-queries", "8", "--k", "2")
        assert "kNN" in capsys.readouterr().out
        self._run("serve", "--index", out_dir, "--self-test")
        assert "self-test OK" in capsys.readouterr().out

    def test_query_rejects_eps_and_k(self, tmp_path):
        out_dir = str(tmp_path / "idx")
        self._run("index", "build", out_dir, "--n", "300", "--d", "8")
        with pytest.raises(SystemExit):
            self._run("query", out_dir, "--eps", "0.5", "--k", "3")


# ----------------------------------------------------------------------
# Grid reach extension (the kNN probe widening)
# ----------------------------------------------------------------------


class TestGridReach:
    def test_reach_candidates_are_supersets(self, data_eps):
        data, eps = data_eps
        index = GridIndex(data, eps)
        cell = tuple(index._unique[len(index._unique) // 2])
        r1 = set(index.candidates_of_cell(cell).tolist())
        r2 = set(index.candidates_of_cell(cell, reach=2).tolist())
        r3 = set(index.candidates_of_cell(cell, reach=3).tolist())
        assert r1 <= r2 <= r3

    def test_reach_soundness(self, data_eps):
        """Every point within m*eps of a query must be a reach-m candidate."""
        data, eps = data_eps
        index = GridIndex(data, eps)
        rng = np.random.default_rng(4)
        proj = index.order[: index.r]
        for m in (2, 3):
            for qi in rng.integers(0, data.shape[0], size=10):
                qpt = data[int(qi)]
                cell = tuple(
                    np.floor(qpt[proj] / eps).astype(np.int64).tolist()
                )
                cands = set(index.candidates_of_cell(cell, reach=m).tolist())
                within = np.nonzero(
                    ((data - qpt) ** 2).sum(axis=1) <= (m * eps) ** 2
                )[0]
                assert set(within.tolist()) <= cands

    def test_reach_validation(self, data_eps):
        data, eps = data_eps
        index = GridIndex(data, eps)
        with pytest.raises(ValueError, match="reach"):
            index.candidates_of_cell((0,) * index.r, reach=0)
