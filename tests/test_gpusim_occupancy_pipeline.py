"""Tests for occupancy and pipeline models (occupancy, pipeline)."""

import pytest

from repro.gpusim.occupancy import (
    BlockResources,
    blocks_per_sm,
    fasted_block_resources,
)
from repro.gpusim.pipeline import (
    PipelineConfig,
    SINGLE_STAGE_EXPOSURE,
    STAGE_SYNC_CYCLES,
    SYNC_COPY_PENALTY,
    fill_cycles,
    iteration_cycles,
)
from repro.gpusim.spec import A100_PCIE


class TestFastedResources:
    def test_default_config_fits_two_blocks(self):
        """Paper Section 3.3.6: the configuration targets 2 blocks/SM."""
        res = fasted_block_resources()
        assert blocks_per_sm(A100_PCIE, res) == 2

    def test_smem_footprint(self):
        # 2 stages x 2 fragments x 128 points x 64 dims x 2 B = 128 KiB.
        res = fasted_block_resources()
        assert res.smem_bytes_per_block == 2 * 2 * 128 * 64 * 2

    def test_sync_copy_adds_register_pressure(self):
        sync = fasted_block_resources(async_copy=False)
        asn = fasted_block_resources(async_copy=True)
        assert sync.registers_per_thread > asn.registers_per_thread

    def test_single_stage_halves_smem(self):
        one = fasted_block_resources(pipeline_depth=1)
        two = fasted_block_resources(pipeline_depth=2)
        assert one.smem_bytes_per_block * 2 == two.smem_bytes_per_block


class TestBlocksPerSm:
    def test_oom_returns_zero(self):
        res = BlockResources(128, 32, A100_PCIE.smem_max_block_bytes + 1)
        assert blocks_per_sm(A100_PCIE, res) == 0

    def test_register_limited(self):
        res = BlockResources(1024, 64, 0)
        # 1024 threads x 64 regs = 65536 = the whole SM register file.
        assert blocks_per_sm(A100_PCIE, res) == 1

    def test_thread_limited(self):
        res = BlockResources(1024, 16, 0)
        assert blocks_per_sm(A100_PCIE, res) == 2  # 2048 threads / 1024

    def test_register_granularity_rounds_up(self):
        res = BlockResources(32, 1, 0)
        # 32 regs raw -> rounded to a 256-register warp granule.
        assert res.registers_per_block == 256


class TestPipeline:
    def test_two_stage_is_max_plus_sync(self):
        cfg = PipelineConfig(async_copy=True, depth=2)
        assert iteration_cycles(1000, 400, cfg) == 1000 + STAGE_SYNC_CYCLES
        assert iteration_cycles(400, 1000, cfg) == 1000 + STAGE_SYNC_CYCLES

    def test_single_stage_exposes_memory(self):
        cfg1 = PipelineConfig(async_copy=True, depth=1)
        cfg2 = PipelineConfig(async_copy=True, depth=2)
        assert iteration_cycles(1000, 400, cfg1) == pytest.approx(
            1000 + 400 * SINGLE_STAGE_EXPOSURE + STAGE_SYNC_CYCLES
        )
        assert iteration_cycles(1000, 400, cfg1) > iteration_cycles(1000, 400, cfg2)

    def test_sync_is_serial_and_penalized(self):
        cfg = PipelineConfig(async_copy=False, depth=1)
        assert iteration_cycles(1000, 400, cfg) == pytest.approx(
            1000 + 400 * SYNC_COPY_PENALTY + 2 * STAGE_SYNC_CYCLES
        )

    def test_regime_ordering(self):
        """async 2-stage <= async 1-stage <= sync, for any workload."""
        for c, m in [(100, 100), (2000, 500), (500, 2000)]:
            t2 = iteration_cycles(c, m, PipelineConfig(True, 2))
            t1 = iteration_cycles(c, m, PipelineConfig(True, 1))
            ts = iteration_cycles(c, m, PipelineConfig(False, 1))
            assert t2 <= t1 <= ts

    def test_fill_scales_with_depth(self):
        assert fill_cycles(100, PipelineConfig(True, 2)) == 200
        assert fill_cycles(100, PipelineConfig(True, 1)) == 100
        assert fill_cycles(100, PipelineConfig(False, 1)) == pytest.approx(
            100 * SYNC_COPY_PENALTY
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(depth=0)
        with pytest.raises(ValueError):
            iteration_cycles(-1, 0, PipelineConfig())
