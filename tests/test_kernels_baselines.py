"""Tests for TED-Join, GDS-Join, MiSTIC and the CUDA-core cost model."""

import numpy as np
import pytest

from repro.gpusim.spec import A100_PCIE
from repro.kernels.cudacore import (
    cuda_kernel_seconds,
    grid_build_seconds,
    short_circuit_profile,
)
from repro.kernels.gdsjoin import GdsJoinKernel
from repro.kernels.mistic import MisticKernel
from repro.kernels.tedjoin import TedJoinKernel, wmma_conflict_degree


def _clustered(n=400, d=32, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 5, size=(8, d))
    return centers[rng.integers(0, 8, n)] + rng.normal(0, 0.4, size=(n, d))


def _truth_pairs(data, eps):
    d2 = ((data[:, None, :] - data[None, :, :]) ** 2).sum(axis=2)
    mask = d2 <= eps * eps
    np.fill_diagonal(mask, False)
    return set(zip(*np.nonzero(mask)))


class TestTedJoinCapacity:
    def test_modified_supports_up_to_384(self):
        """Paper Section 4.1.2: the L1-carveout mod reaches d <= 384."""
        k = TedJoinKernel()
        assert k.supports(384)
        assert not k.supports(512)
        assert not k.supports(4096)  # Table 6's OOM column

    def test_unmodified_limit_128(self):
        """Paper: original TED-Join fails to compile for d > 128."""
        k = TedJoinKernel(modified=False)
        assert k.supports(128)
        assert not k.supports(192)

    def test_oom_raises(self):
        k = TedJoinKernel()
        with pytest.raises(MemoryError):
            k.self_join(np.zeros((64, 512)), 1.0)

    def test_occupancy_drops_with_d(self):
        k = TedJoinKernel()
        assert k.occupancy(64) > k.occupancy(384) >= 1
        assert k.occupancy(512) == 0


class TestTedJoinFunctional:
    def test_brute_is_fp64_exact(self):
        data = _clustered(seed=1)
        eps = 3.0
        res = TedJoinKernel(variant="brute").self_join(data, eps).result
        assert set(zip(res.pairs_i.tolist(), res.pairs_j.tolist())) == _truth_pairs(
            data, eps
        )

    def test_index_matches_brute(self):
        data = _clustered(seed=2)
        eps = 2.5
        brute = TedJoinKernel(variant="brute").self_join(data, eps).result
        index = TedJoinKernel(variant="index").self_join(data, eps).result
        bp = set(zip(brute.pairs_i.tolist(), brute.pairs_j.tolist()))
        ip = set(zip(index.pairs_i.tolist(), index.pairs_j.tolist()))
        assert bp == ip

    def test_index_counts_padded_tiles(self):
        data = _clustered(seed=3)
        out = TedJoinKernel(variant="index").self_join(data, 2.0)
        # 8x8 WMMA padding can only inflate the candidate work.
        assert out.total_candidates >= 0

    def test_invalid_variant(self):
        with pytest.raises(ValueError):
            TedJoinKernel(variant="hybrid")


class TestTedJoinTiming:
    def test_efficiency_anchored_at_paper_value(self):
        """Paper Section 4.4: 6.8% of FP64 peak at d=64."""
        k = TedJoinKernel()
        assert k.efficiency(64) == pytest.approx(0.068)
        assert k.derived_tflops(100_000, 64) == pytest.approx(
            0.068 * 19.5, rel=0.01
        )

    def test_efficiency_declines_with_d(self):
        k = TedJoinKernel()
        effs = [k.efficiency(d) for d in (64, 128, 256, 384)]
        assert effs == sorted(effs, reverse=True)

    def test_oom_efficiency_zero(self):
        assert TedJoinKernel().efficiency(4096) == 0.0
        assert TedJoinKernel().kernel_seconds(1e6, 4096) == float("inf")

    def test_conflict_degrees_match_table6(self):
        """92.3% at d=128 (13-way) and 75.0% at d=256 (4-way)."""
        assert 1 - 1 / wmma_conflict_degree(128) == pytest.approx(0.923, abs=0.001)
        assert 1 - 1 / wmma_conflict_degree(256) == pytest.approx(0.75)


class TestGdsJoin:
    def test_fp64_matches_truth_exactly(self):
        data = _clustered(seed=4)
        eps = 2.8
        out = GdsJoinKernel(precision="fp64").self_join(data, eps)
        got = set(zip(out.result.pairs_i.tolist(), out.result.pairs_j.tolist()))
        assert got == _truth_pairs(data, eps)

    def test_fp32_close_to_truth(self):
        data = _clustered(seed=5)
        eps = 2.8
        out = GdsJoinKernel(precision="fp32").self_join(data, eps)
        got = set(zip(out.result.pairs_i.tolist(), out.result.pairs_j.tolist()))
        truth = _truth_pairs(data, eps)
        sym = got.symmetric_difference(truth)
        assert len(sym) <= 0.01 * max(len(truth), 1)

    def test_candidates_at_least_results(self):
        data = _clustered(seed=6)
        out = GdsJoinKernel().self_join(data, 2.0)
        assert out.total_candidates >= out.result.pairs_i.size

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            GdsJoinKernel(precision="fp16")

    def test_response_time_grows_with_candidates(self):
        k = GdsJoinKernel()
        prof = short_circuit_profile(
            _clustered(seed=7), 2.0, (np.arange(32), np.arange(32)[::-1])
        )
        t1 = k.response_time(
            1000, 64, total_candidates=10**6, profile=prof, n_result_pairs=1000
        )
        t2 = k.response_time(
            1000, 64, total_candidates=10**8, profile=prof, n_result_pairs=1000
        )
        assert t2.total_s > t1.total_s


class TestMistic:
    def test_matches_truth(self):
        data = _clustered(seed=8)
        eps = 2.8
        out = MisticKernel().self_join(data, eps)
        got = set(zip(out.result.pairs_i.tolist(), out.result.pairs_j.tolist()))
        truth = _truth_pairs(data, eps)
        sym = got.symmetric_difference(truth)
        assert len(sym) <= 0.01 * max(len(truth), 1)

    def test_construction_evaluations_counted(self):
        # Needs d large enough that 19 coordinate candidates remain
        # available at every one of the 6 levels.
        data = _clustered(200, 40, seed=9)
        out = MisticKernel().self_join(data, 2.0, store_distances=False)
        # 6 levels x (19 coord + 19 metric) candidate partitions.
        assert out.construction_evaluations == 6 * 38

    def test_deterministic_given_seed(self):
        data = _clustered(seed=10)
        a = MisticKernel(seed=3).self_join(data, 2.0, store_distances=False)
        b = MisticKernel(seed=3).self_join(data, 2.0, store_distances=False)
        assert a.result.pairs_i.size == b.result.pairs_i.size
        assert a.total_candidates == b.total_candidates


class TestShortCircuitProfile:
    def test_all_neighbors_full_depth(self):
        data = np.zeros((64, 16))
        prof = short_circuit_profile(
            data, 1.0, (np.arange(32), np.arange(32, 64))
        )
        assert prof.mean_fraction == 1.0
        assert prof.warp_fraction == 1.0
        assert prof.neighbor_fraction == 1.0

    def test_far_pairs_abort_early(self):
        rng = np.random.default_rng(11)
        data = rng.normal(0, 10, size=(128, 64))
        prof = short_circuit_profile(
            data, 0.01, (np.arange(64), np.arange(64, 128))
        )
        assert prof.mean_fraction < 0.2
        assert prof.neighbor_fraction == 0.0

    def test_warp_fraction_at_least_mean(self):
        """The warp pays its worst lane: warp fraction >= pair mean."""
        rng = np.random.default_rng(12)
        data = rng.normal(size=(256, 32))
        ii = rng.integers(0, 256, 512)
        jj = rng.integers(0, 256, 512)
        prof = short_circuit_profile(data, 2.0, (ii, jj))
        assert prof.warp_fraction >= prof.mean_fraction

    def test_empty_candidates(self):
        prof = short_circuit_profile(
            np.zeros((4, 4)), 1.0, (np.empty(0, int), np.empty(0, int))
        )
        assert prof.mean_fraction == 1.0

    def test_kernel_seconds_scaling(self):
        prof = short_circuit_profile(
            np.zeros((64, 16)), 1.0, (np.arange(32), np.arange(32, 64))
        )
        t1 = cuda_kernel_seconds(A100_PCIE, 1e6, 64, prof, 0.1)
        t2 = cuda_kernel_seconds(A100_PCIE, 2e6, 64, prof, 0.1)
        assert t2 == pytest.approx(2 * t1)
        with pytest.raises(ValueError):
            cuda_kernel_seconds(A100_PCIE, 1e6, 64, prof, 0.0)

    def test_grid_build_positive(self):
        assert grid_build_seconds(A100_PCIE, 10_000, 6) > 0
