"""Tests for GPU specs, profiler rendering and the transfer-cost model."""

import pytest

from repro.gpusim.profiler import ProfileReport, format_table, oom_report, report_from_timing
from repro.gpusim.spec import A100_PCIE, A100_SXM, V100_SXM2
from repro.gpusim import units
from repro.kernels.base import (
    PAIR_BYTES,
    h2d_seconds,
    result_transfer_seconds,
)
from repro.kernels.fasted import FastedKernel


class TestUnits:
    def test_conversions(self):
        assert units.tb_per_s(1.5) == 1.5e12
        assert units.ghz(1.41) == 1.41e9
        assert units.tflops(312) == 3.12e14
        assert units.as_tflops(1.56e14) == 156.0
        assert units.bytes_per_cycle(1.41e9 * 10, 1.41e9) == 10.0


class TestSpecs:
    def test_a100_derived_rates(self):
        # 312 TFLOPS at 1.41 GHz over 108 SMs ~ 2049 FLOP/cycle/SM.
        per_sm = A100_PCIE.fp16_tc_flops_per_cycle_per_sm
        assert 2000 < per_sm < 2100
        assert A100_PCIE.dram_bytes_per_cycle == pytest.approx(1.5e12 / 1.41e9)

    def test_sxm_differs_only_where_expected(self):
        assert A100_SXM.power_budget_w == 400.0
        assert A100_SXM.sm_count == A100_PCIE.sm_count
        assert A100_SXM.fp16_tc_flops == A100_PCIE.fp16_tc_flops

    def test_v100_generation(self):
        assert V100_SXM2.fp16_tc_flops == 125e12
        assert V100_SXM2.sm_count == 80

    def test_with_power_budget(self):
        s = A100_PCIE.with_power_budget(300.0)
        assert s.power_budget_w == 300.0
        assert A100_PCIE.power_budget_w == 250.0  # frozen original


class TestProfilerRendering:
    def test_report_from_timing(self):
        t = FastedKernel().timing(50_000, 256)
        rep = report_from_timing("FaSTED d=256", t)
        assert rep.label == "FaSTED d=256"
        assert 0 <= rep.tc_pipe_utilization_pct <= 100
        assert len(rep.values()) == len(ProfileReport.ROWS) == 6

    def test_oom_report_renders_oom(self):
        rep = oom_report("TED d=4096")
        assert rep.oom
        assert set(rep.values()) == {"OOM"}

    def test_format_table_structure(self):
        t = FastedKernel().timing(50_000, 128)
        text = format_table(
            [report_from_timing("a", t), oom_report("b")], title="T6"
        )
        lines = text.splitlines()
        assert lines[0] == "T6"
        assert "Bank Conflicts (%)" in text
        assert "OOM" in text
        # header + separator + 6 metric rows
        assert len(lines) == 2 + 1 + 6


class TestTransferModel:
    def test_h2d_scales_with_bytes(self):
        a = h2d_seconds(A100_PCIE, 10_000, 128, 2)
        b = h2d_seconds(A100_PCIE, 20_000, 128, 2)
        assert b > a

    def test_result_transfer_batching(self):
        # A result set above one batch pays extra launch overheads.
        small_d2h, small_store = result_transfer_seconds(A100_PCIE, 10**6)
        big_d2h, big_store = result_transfer_seconds(
            A100_PCIE, 5 * 10**9, batch_bytes=10**9
        )
        assert big_d2h > small_d2h
        assert big_store > small_store
        # Store time is bytes / host bandwidth exactly.
        assert small_store == pytest.approx(10**6 * PAIR_BYTES / 12e9)

    def test_zero_pairs_still_has_launch_cost(self):
        d2h, store = result_transfer_seconds(A100_PCIE, 0)
        assert d2h > 0 and store == 0.0
