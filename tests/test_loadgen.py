"""Load generator + experiment runner: the workload contracts.

* **Determinism** -- request *content* is a pure function of the config
  seed (per-worker / per-request RNG streams), pinned by running the
  same workload twice on a fake clock and comparing request
  fingerprints byte for byte.
* **Loop disciplines** -- closed-loop quota/duration stop conditions,
  open-loop fixed arrival schedule with latency charged from the
  *scheduled* arrival (no coordinated omission) and far-behind arrivals
  shed as ``dropped``.
* **Status accounting** -- the target maps service outcomes onto the
  fixed status set; 429/504 under armed ``service.dispatch`` delay
  faults land in the right buckets and every issued request is counted
  exactly once.
* **Run table** -- factors x repetitions expand deterministically
  (sorted factor names, declared level order, repetitions innermost,
  ``seed = base + rep``), eagerly validated, and one flat summary row
  per run lands in the JSON/CSV report with the saturation knee.
"""

import json
import math
import threading

import numpy as np
import pytest

from repro import faults
from repro.core.api import build_index
from repro.core.selectivity import epsilon_for_selectivity
from repro.data.synthetic import synth_dataset
from repro.loadgen import (
    LoadResult,
    QuerySampler,
    WorkloadConfig,
    expand_run_table,
    load_config,
    run_experiment,
    run_load,
    saturation_knee,
)
from repro.loadgen.generator import (
    STATUSES,
    WORKLOAD_KEYS,
    InProcessTarget,
    _split_quota,
)
from repro.loadgen.runner import tomllib
from repro.service import QueryService
from repro.service.metrics import LogHistogram
from repro.service.query import QueryEngine
from repro.service.server import (
    DeadlineExceeded,
    ServiceOverloaded,
    ServiceShuttingDown,
)


@pytest.fixture(scope="module")
def index_path(tmp_path_factory):
    data = synth_dataset(600, 8, seed=0, clustered=True)
    eps = float(epsilon_for_selectivity(data, 16))
    path = tmp_path_factory.mktemp("loadgen-idx") / "index"
    build_index(data, eps, path, kind="grid")
    return path, data, eps


@pytest.fixture(scope="module")
def engine(index_path):
    path, _, _ = index_path
    return QueryEngine(path)


# ----------------------------------------------------------------------
# Test doubles: fake clock, fake target
# ----------------------------------------------------------------------


class FakeClock:
    """Thread-safe virtual clock; ``sleep`` advances it."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = float(t)
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self.t

    def sleep(self, dt: float) -> None:
        with self._lock:
            self.t += dt


class FakeTarget:
    """Records request fingerprints; optionally burns virtual time."""

    def __init__(self, log=None, clock=None, cost_s: float = 0.0,
                 status: str = "ok") -> None:
        self.log = log
        self.clock = clock
        self.cost_s = cost_s
        self.status = status

    def issue(self, kind, queries, eps, k, deadline_s) -> str:
        if self.log is not None:
            self.log.append(
                (kind, queries.tobytes(),
                 -1.0 if eps is None else float(eps),
                 -1 if k is None else int(k))
            )
        if self.clock is not None and self.cost_s:
            self.clock.sleep(self.cost_s)
        return self.status

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# WorkloadConfig validation
# ----------------------------------------------------------------------


class TestWorkloadConfig:
    def test_defaults_valid(self):
        cfg = WorkloadConfig()
        assert cfg.mode == "closed"
        assert cfg.max_requests is None

    def test_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            WorkloadConfig(mode="sideways")

    @pytest.mark.parametrize(
        "kw",
        [
            {"duration_s": 0.0},
            {"target_rps": 0.0},
            {"concurrency": 0},
            {"max_requests": 0},
            {"range_fraction": 1.5},
            {"batch_size": 0},
            {"k": 0},
            {"eps_scale": 0.0},
            {"eps_scale": 1.5},
            {"zipf_s": -0.1},
            {"think_time_s": -1.0},
        ],
    )
    def test_invalid_fields(self, kw):
        with pytest.raises(ValueError):
            WorkloadConfig(**kw)

    def test_workload_keys_match_fields(self):
        assert "target_rps" in WORKLOAD_KEYS
        assert "zipf_s" in WORKLOAD_KEYS
        assert "nonsense" not in WORKLOAD_KEYS


# ----------------------------------------------------------------------
# QuerySampler: mix, skew, determinism
# ----------------------------------------------------------------------


class TestQuerySampler:
    def test_request_shapes(self, engine):
        cfg = WorkloadConfig(batch_size=6, seed=1)
        sampler = QuerySampler(engine, cfg)
        kind, queries, eps, k = sampler.make_request(
            np.random.default_rng(0)
        )
        assert kind == "range"
        assert queries.shape == (6, engine.dim)
        assert eps == pytest.approx(float(engine.eps))
        assert k is None

    def test_mix_extremes_and_blend(self, engine):
        rng = np.random.default_rng(0)
        all_range = QuerySampler(engine, WorkloadConfig(range_fraction=1.0))
        assert all(
            all_range.make_request(rng)[0] == "range" for _ in range(20)
        )
        all_knn = QuerySampler(
            engine, WorkloadConfig(range_fraction=0.0, k=3)
        )
        kinds = [all_knn.make_request(rng)[0] for _ in range(20)]
        assert set(kinds) == {"knn"}
        _, _, eps, k = all_knn.make_request(rng)
        assert eps is None and k == 3
        mixed = QuerySampler(engine, WorkloadConfig(range_fraction=0.5))
        kinds = {mixed.make_request(rng)[0] for _ in range(50)}
        assert kinds == {"range", "knn"}

    def test_eps_scale(self, engine):
        half = QuerySampler(engine, WorkloadConfig(eps_scale=0.5))
        assert half.eps == pytest.approx(0.5 * float(engine.eps))

    def test_pool_deterministic_under_seed(self, engine):
        cfg = WorkloadConfig(seed=42)
        a = QuerySampler(engine, cfg).pool
        b = QuerySampler(engine, cfg).pool
        assert a.tobytes() == b.tobytes()
        c = QuerySampler(engine, WorkloadConfig(seed=43)).pool
        assert a.tobytes() != c.tobytes()

    def test_zipf_skew_concentrates_draws(self, engine):
        rng_u = np.random.default_rng(5)
        rng_z = np.random.default_rng(5)
        uniform = QuerySampler._draw_rows(
            engine, WorkloadConfig(zipf_s=0.0), rng_u, 512
        )
        skewed = QuerySampler._draw_rows(
            engine, WorkloadConfig(zipf_s=3.0), rng_z, 512
        )
        top_u = int(np.unique(uniform, return_counts=True)[1].max())
        top_z = int(np.unique(skewed, return_counts=True)[1].max())
        assert top_z > top_u  # hot rows hammered under skew
        assert skewed.min() >= 0 and skewed.max() < engine.n_points

    def test_tree_index_falls_back_to_uniform(self, index_path,
                                              tmp_path_factory):
        _, data, eps = index_path
        path = tmp_path_factory.mktemp("loadgen-tree") / "index"
        build_index(data, eps, path, kind="mstree")
        tree_engine = QueryEngine(path)
        sampler = QuerySampler(
            tree_engine, WorkloadConfig(zipf_s=2.0, batch_size=4)
        )
        kind, queries, _, _ = sampler.make_request(
            np.random.default_rng(0)
        )
        assert queries.shape == (4, tree_engine.dim)


# ----------------------------------------------------------------------
# Closed loop
# ----------------------------------------------------------------------


class TestClosedLoop:
    def test_split_quota(self):
        assert _split_quota(10, 4) == [3, 3, 2, 2]
        assert _split_quota(9, 3) == [3, 3, 3]
        assert _split_quota(None, 3) == [None, None, None]

    def test_quota_bounds_offered(self, engine):
        cfg = WorkloadConfig(
            mode="closed", concurrency=3, max_requests=30,
            duration_s=100.0, seed=7,
        )
        clock = FakeClock()
        res = run_load(
            cfg, lambda: FakeTarget(), QuerySampler(engine, cfg),
            clock=clock, sleep=clock.sleep,
        )
        assert res.offered == 30
        assert res.statuses == {"ok": 30}
        assert len(res.records) == 30

    def test_deterministic_under_seed_and_fake_clock(self, engine):
        cfg = WorkloadConfig(
            mode="closed", concurrency=3, max_requests=24,
            duration_s=100.0, range_fraction=0.5, seed=11,
        )

        def bout():
            log = []
            clock = FakeClock()
            run_load(
                cfg, lambda: FakeTarget(log=log),
                QuerySampler(engine, cfg),
                clock=clock, sleep=clock.sleep,
            )
            return sorted(log)

        assert bout() == bout()

    def test_duration_stops_loop(self, engine):
        cfg = WorkloadConfig(
            mode="closed", concurrency=1, duration_s=1.0, seed=0
        )
        clock = FakeClock()
        res = run_load(
            cfg,
            # 0.125 is exact in binary, so the virtual time hits 1.0
            # exactly after 8 issues and the loop stops.
            lambda: FakeTarget(clock=clock, cost_s=0.125),
            QuerySampler(engine, cfg),
            clock=clock, sleep=clock.sleep,
        )
        assert res.offered == 8  # t = 0, 0.125, ..., 0.875
        assert res.duration_s == pytest.approx(1.0)

    def test_think_time_paces_worker(self, engine):
        cfg = WorkloadConfig(
            mode="closed", concurrency=1, duration_s=1.0,
            think_time_s=0.25, seed=0,
        )
        clock = FakeClock()
        res = run_load(
            cfg, lambda: FakeTarget(), QuerySampler(engine, cfg),
            clock=clock, sleep=clock.sleep,
        )
        assert res.offered == 4  # t = 0, .25, .5, .75

    def test_record_limit_bounds_retention(self, engine):
        cfg = WorkloadConfig(
            mode="closed", concurrency=2, max_requests=40,
            duration_s=100.0, seed=0,
        )
        clock = FakeClock()
        res = run_load(
            cfg, lambda: FakeTarget(), QuerySampler(engine, cfg),
            clock=clock, sleep=clock.sleep, record_limit=10,
        )
        assert len(res.records) == 10  # capped
        assert res.offered == 40  # counting is not

    def test_worker_crash_propagates(self, engine):
        cfg = WorkloadConfig(
            mode="closed", concurrency=2, max_requests=4, seed=0
        )

        def broken_factory():
            raise RuntimeError("target exploded")

        with pytest.raises(RuntimeError, match="target exploded"):
            run_load(cfg, broken_factory, QuerySampler(engine, cfg))


# ----------------------------------------------------------------------
# Open loop
# ----------------------------------------------------------------------


class TestOpenLoop:
    def test_fixed_arrival_schedule(self, engine):
        cfg = WorkloadConfig(
            mode="open", target_rps=10.0, duration_s=1.0,
            concurrency=1, seed=0,
        )
        clock = FakeClock()
        res = run_load(
            cfg, lambda: FakeTarget(), QuerySampler(engine, cfg),
            clock=clock, sleep=clock.sleep,
        )
        assert res.offered == 10  # duration * rps
        assert res.statuses == {"ok": 10}
        # Arrivals at exactly i/rps on the virtual clock.
        offsets = sorted(r.t_offset_s for r in res.records)
        assert offsets == pytest.approx([i * 0.1 for i in range(10)])

    def test_latency_charged_from_scheduled_arrival(self, engine):
        cfg = WorkloadConfig(
            mode="open", target_rps=10.0, duration_s=0.5,
            concurrency=1, seed=0,
        )
        clock = FakeClock()
        res = run_load(
            cfg,
            lambda: FakeTarget(clock=clock, cost_s=0.05),
            QuerySampler(engine, cfg),
            clock=clock, sleep=clock.sleep,
        )
        assert res.offered == 5
        for rec in res.records:
            assert rec.latency_s == pytest.approx(0.05)

    def test_far_behind_arrivals_shed_as_dropped(self, engine):
        cfg = WorkloadConfig(
            mode="open", target_rps=10.0, duration_s=1.0,
            concurrency=1, seed=0,
        )
        clock = FakeClock()
        res = run_load(
            cfg,
            lambda: FakeTarget(clock=clock, cost_s=0.5),
            QuerySampler(engine, cfg),
            clock=clock, sleep=clock.sleep,
        )
        assert res.offered == 10
        assert res.statuses.get("dropped", 0) > 0
        assert sum(res.statuses.values()) == 10
        dropped = [r for r in res.records if r.status == "dropped"]
        assert all(r.latency_s == 0.0 for r in dropped)

    def test_max_requests_bounds_schedule(self, engine):
        cfg = WorkloadConfig(
            mode="open", target_rps=100.0, duration_s=5.0,
            concurrency=2, max_requests=7, seed=0,
        )
        clock = FakeClock()
        res = run_load(
            cfg, lambda: FakeTarget(), QuerySampler(engine, cfg),
            clock=clock, sleep=clock.sleep,
        )
        assert res.offered == 7

    def test_deterministic_content(self, engine):
        cfg = WorkloadConfig(
            mode="open", target_rps=50.0, duration_s=0.5,
            concurrency=3, range_fraction=0.5, seed=21,
        )

        def bout():
            log = []
            clock = FakeClock()
            run_load(
                cfg, lambda: FakeTarget(log=log),
                QuerySampler(engine, cfg),
                clock=clock, sleep=clock.sleep,
            )
            return sorted(log)

        a, b = bout(), bout()
        assert a == b
        assert len(a) == 25


# ----------------------------------------------------------------------
# Status accounting: target mapping + fault injection
# ----------------------------------------------------------------------


class _StubPending:
    def __init__(self, exc):
        self.exc = exc

    def result(self, timeout=None):
        if self.exc is not None:
            raise self.exc
        return object()


class _StubService:
    """Minimal QueryService look-alike for status-mapping tests."""

    def __init__(self, exc=None, submit_exc=None):
        self.exc = exc
        self.submit_exc = submit_exc

    def engine_for(self, index):
        return index

    def submit(self, engine, queries, eps=None, k=None, deadline_s=None):
        if self.submit_exc is not None:
            raise self.submit_exc
        return _StubPending(self.exc)


class TestStatusAccounting:
    @pytest.mark.parametrize(
        "exc,expected",
        [
            (None, "ok"),
            (DeadlineExceeded("late"), "504"),
            (ServiceShuttingDown("bye"), "503"),
            (ValueError("bad"), "error"),
        ],
    )
    def test_result_exception_mapping(self, exc, expected):
        target = InProcessTarget(_StubService(exc=exc), "idx")
        q = np.zeros((1, 2))
        assert target.issue("range", q, 1.0, None, None) == expected

    def test_submit_overload_maps_to_429(self):
        target = InProcessTarget(
            _StubService(submit_exc=ServiceOverloaded("full")), "idx"
        )
        assert target.issue("range", np.zeros((1, 2)), 1.0, None,
                            None) == "429"

    def test_deadline_expiry_counted_as_504_under_dispatch_delay(
        self, index_path
    ):
        """Armed service.dispatch delays make queued requests outlive a
        tight deadline; the generator must book them as 504, not error,
        and account for every issued request exactly once."""
        path, _, _ = index_path
        faults.reset()
        faults.arm("service.dispatch", "delay", 1.0, param=0.05)
        try:
            cfg = WorkloadConfig(
                mode="open", target_rps=400.0, duration_s=0.4,
                concurrency=8, deadline_s=0.005, seed=3,
            )
            svc = QueryService(max_delay_s=0.001)
            try:
                from repro.loadgen.generator import run_against_service

                res = run_against_service(path, cfg, service=svc)
            finally:
                svc.stop()
        finally:
            faults.reset()
        assert res.statuses.get("504", 0) > 0
        assert set(res.statuses) <= set(STATUSES)
        assert sum(res.statuses.values()) == res.offered

    def test_admission_rejections_counted_as_429(self, index_path):
        path, _, _ = index_path
        faults.reset()
        faults.arm("service.dispatch", "delay", 1.0, param=0.02)
        try:
            cfg = WorkloadConfig(
                mode="open", target_rps=800.0, duration_s=0.3,
                concurrency=12, seed=4,
            )
            svc = QueryService(max_queue_depth=1, max_delay_s=0.001)
            try:
                from repro.loadgen.generator import run_against_service

                res = run_against_service(path, cfg, service=svc)
            finally:
                svc.stop()
        finally:
            faults.reset()
        assert res.statuses.get("429", 0) > 0
        assert sum(res.statuses.values()) == res.offered


# ----------------------------------------------------------------------
# Summaries + knee detection
# ----------------------------------------------------------------------


def _result(statuses, offered, duration=1.0, latencies=()):
    hist = LogHistogram((0.001, 0.01, 0.1, 1.0))
    for v in latencies:
        hist.observe(v)
    return LoadResult(
        config=WorkloadConfig(mode="closed"),
        duration_s=duration,
        offered=offered,
        statuses=dict(statuses),
        latency=hist,
    )


class TestSummary:
    def test_row_schema(self):
        row = _result({"ok": 3}, 3, latencies=(0.005, 0.005, 0.05)).summary()
        assert set(row) == {
            "mode", "offered_rps", "concurrency", "batch_size",
            "range_fraction", "zipf_s", "duration_s", "offered", "ok",
            "err_429", "err_503", "err_504", "err_other", "dropped",
            "error_rate", "throughput_rps", "p50_ms", "p95_ms",
            "p99_ms", "max_ms", "mean_ms",
        }
        assert row["ok"] == 3
        # rank 1.5 of (5ms, 5ms, 50ms) interpolates 3/4 into (1, 10] ms.
        assert row["p50_ms"] == pytest.approx(7.75)
        assert row["error_rate"] == 0.0

    def test_empty_run_serializes_to_none(self):
        row = _result({}, 0).summary()
        assert row["p50_ms"] is None
        assert row["p99_ms"] is None
        assert row["max_ms"] is None
        assert row["error_rate"] == 1.0
        json.dumps(row)  # JSON-safe: no NaN leaks

    def test_error_breakdown(self):
        row = _result(
            {"ok": 2, "429": 3, "504": 1, "error": 1, "dropped": 2}, 9
        ).summary()
        assert row["err_429"] == 3
        assert row["err_504"] == 1
        assert row["err_other"] == 1
        assert row["dropped"] == 2
        assert row["error_rate"] == pytest.approx(1.0 - 2.0 / 9.0)


class TestSaturationKnee:
    def test_last_keeping_pace(self):
        rows = [
            {"offered_rps": 50.0, "throughput_rps": 50.0},
            {"offered_rps": 100.0, "throughput_rps": 97.0},
            {"offered_rps": 200.0, "throughput_rps": 120.0},
        ]
        assert saturation_knee(rows) == 100.0

    def test_none_when_lowest_rate_saturates(self):
        rows = [{"offered_rps": 50.0, "throughput_rps": 10.0}]
        assert saturation_knee(rows) is None

    def test_order_independent(self):
        rows = [
            {"offered_rps": 200.0, "throughput_rps": 199.0},
            {"offered_rps": 50.0, "throughput_rps": 50.0},
        ]
        assert saturation_knee(rows) == 200.0

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            saturation_knee([], tolerance=0.0)
        with pytest.raises(ValueError):
            saturation_knee([], tolerance=1.5)


# ----------------------------------------------------------------------
# Experiment runner: config, run table, execution
# ----------------------------------------------------------------------


class TestRunTable:
    def test_expansion_order_and_seeds(self):
        config = {
            "repetitions": 2,
            "base": {"mode": "open", "duration_s": 1.0, "seed": 100},
            "factors": {
                "target_rps": [50.0, 100.0],
                "batch_size": [4],
            },
        }
        runs = expand_run_table(config)
        assert len(runs) == 4  # 2 levels x 1 level x 2 reps
        assert [r["run_id"] for r in runs] == [0, 1, 2, 3]
        # Factor names sorted -> batch_size varies outside target_rps;
        # repetitions innermost.
        assert [r["rep"] for r in runs] == [0, 1, 0, 1]
        assert [r["factors"]["target_rps"] for r in runs] == [
            50.0, 50.0, 100.0, 100.0,
        ]
        assert [r["params"]["seed"] for r in runs] == [100, 101, 100, 101]

    def test_level_order_preserved(self):
        runs = expand_run_table(
            {"factors": {"concurrency": [4, 1, 2]}}
        )
        assert [r["factors"]["concurrency"] for r in runs] == [4, 1, 2]

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown workload keys"):
            expand_run_table({"base": {"warmup": 1}})
        with pytest.raises(ValueError, match="unknown workload keys"):
            expand_run_table({"factors": {"rps": [1]}})

    def test_empty_levels_and_bad_reps_rejected(self):
        with pytest.raises(ValueError, match="no levels"):
            expand_run_table({"factors": {"target_rps": []}})
        with pytest.raises(ValueError, match="repetitions"):
            expand_run_table({"repetitions": 0})

    def test_eager_validation_of_levels(self):
        with pytest.raises(ValueError, match="batch_size"):
            expand_run_table({"factors": {"batch_size": [8, 0]}})


class TestConfigLoading:
    def test_json_config(self, tmp_path):
        p = tmp_path / "exp.json"
        p.write_text(json.dumps({"name": "x", "repetitions": 2}))
        assert load_config(p)["repetitions"] == 2

    def test_toml_config(self, tmp_path):
        if tomllib is None:
            pytest.skip("stdlib tomllib unavailable")
        p = tmp_path / "exp.toml"
        p.write_text(
            'name = "x"\nrepetitions = 2\n\n[factors]\n'
            "target_rps = [50.0, 100.0]\n"
        )
        cfg = load_config(p)
        assert cfg["name"] == "x"
        assert cfg["factors"]["target_rps"] == [50.0, 100.0]


class TestRunExperiment:
    def test_rows_report_and_outputs(self, index_path, tmp_path):
        path, _, _ = index_path
        config = {
            "name": "smoke",
            "repetitions": 1,
            "base": {
                "mode": "closed", "duration_s": 0.2, "batch_size": 2,
                "seed": 5,
            },
            "factors": {"concurrency": [1, 2]},
        }
        out_json = tmp_path / "report.json"
        out_csv = tmp_path / "rows.csv"
        seen = []
        report = run_experiment(
            config, index=path, out_json=out_json, out_csv=out_csv,
            progress=seen.append,
        )
        assert report["n_runs"] == 2
        assert len(seen) == 2
        for row in report["rows"]:
            assert row["ok"] > 0
            assert row["err_other"] == 0
            assert {"run_id", "rep", "concurrency",
                    "throughput_rps", "p99_ms"} <= set(row)
        assert "saturation_knee_rps" not in report  # no rps factor
        loaded = json.loads(out_json.read_text())
        assert loaded["rows"] == report["rows"]
        header = out_csv.read_text().splitlines()[0].split(",")
        assert set(header) == set(report["rows"][0])

    def test_rps_sweep_reports_knee(self, index_path):
        path, _, _ = index_path
        config = {
            "name": "sweep",
            "base": {
                "mode": "open", "duration_s": 0.2, "concurrency": 4,
                "batch_size": 2, "seed": 1,
            },
            "factors": {"target_rps": [50.0, 100.0]},
        }
        report = run_experiment(config, index=path)
        assert "saturation_knee_rps" in report
        knee = report["saturation_knee_rps"]
        assert knee is None or knee in (50.0, 100.0)

    def test_reuses_supplied_service(self, index_path):
        path, _, _ = index_path
        svc = QueryService()
        try:
            config = {
                "base": {
                    "mode": "closed", "duration_s": 0.15,
                    "concurrency": 2, "batch_size": 2, "seed": 2,
                },
            }
            run_experiment(config, index=path, service=svc)
            stats = svc.stats()
            assert stats["requests_served"] > 0
            # Still alive: the runner must not stop a borrowed service.
            svc.query(path, QueryEngine(path).source.take(
                np.arange(2)), eps=QueryEngine(path).eps)
        finally:
            svc.stop()
