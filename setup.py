"""Setuptools shim.

This offline environment lacks the ``wheel`` package, so PEP-517 editable
installs (``pip install -e .``) cannot build the editable wheel.  This shim
lets ``python setup.py develop`` (or ``pip install -e . --no-build-isolation``
with the legacy path) install the package from ``src/`` without network
access.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
