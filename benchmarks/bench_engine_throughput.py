"""Join-engine throughput benchmark: the perf trajectory for future PRs.

Measures, at the standard working point (n=4096):

* ``rz_sum_squares`` at d=256 -- current implementation vs the seed
  (nextafter-per-chunk) implementation, with a bit-identity check.
* TED-Join-Brute self-join at d=64 -- engine (symmetric tiles) vs the seed
  full-matrix loop, with a bit-identity check.
* Pairs/sec of every kernel's self-join at d=64.
* The out-of-core streaming executor vs the in-memory engine at the same
  tile plan (bit-identity + peak-resident-vs-budget check, mmap-backed).
* The batched candidate executor vs per-group GEMMs on the fine-grid
  workload (``fine_grid_dataset``, small eps -> thousands of tiny cells).
* The two-source streaming executor (``streaming_join``) vs the in-memory
  rectangular executor at the same tile plan (bit-identity + budget).
* The source-backed index join (``GridIndex.from_source`` build + row
  gathers) vs the in-memory grid-indexed self-join (bit-identity).
* The topology-resolved worker plan (``workers="auto"``: WorkerPlan
  worker count + cache-fit tile edge) vs the former fixed serial
  configuration, per kernel, with a bit-identity check.
* The query-serving layer: cached persisted-index range queries
  (``repro.service``) vs rebuild-per-query, with the cached answers
  checked bitwise against the dense brute-force reference.
* The mutable store (``repro.index.delta``): range-query latency as the
  delta depth grows from 0 to 16 sealed segments, compaction throughput,
  and a bit-identity pin against a from-scratch rebuild at full depth
  and after compaction.

Writes ``BENCH_engine.json`` at the repository root (see
docs/BENCHMARKS.md for the workflow: extend this file, never replace it).
Run standalone:

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
"""

from __future__ import annotations

import json
import platform
import statistics
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.engine import RectTilePlan, TilePlan, WorkerPlan
from repro.core.selectivity import epsilon_for_selectivity
from repro.data.source import MmapNpySource, write_chunked_npy
from repro.data.synthetic import fine_grid_dataset
from repro.fp import native
from repro.fp.fp16 import to_fp16
from repro.fp.rounding import round_toward_zero_f32_reference, rz_sum_squares
from repro.kernels.fasted import FastedKernel
from repro.kernels.gdsjoin import GdsJoinKernel
from repro.kernels.mistic import MisticKernel
from repro.kernels.reference import (
    canon,
    joins_bit_identical,
    seed_ted_brute_join,
)
from repro.kernels.tedjoin import TedJoinKernel

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

N_POINTS = 4096
RZ_DIMS = 256
JOIN_DIMS = 64
SELECTIVITY = 64

#: Streaming benchmark: resident-block budget (well under the dataset).
STREAM_BUDGET_BYTES = 1 << 20

#: Batched-executor benchmark: small-eps selectivity target.
BATCHED_SELECTIVITY = 8


# ----------------------------------------------------------------------
# Seed implementations (pre-engine), kept verbatim as the baseline
# ----------------------------------------------------------------------


def seed_rz_sum_squares(points: np.ndarray, step: int = 4) -> np.ndarray:
    q = to_fp16(points).astype(np.float32).astype(np.float64)
    v = q * q
    acc = np.zeros(v.shape[:-1], dtype=np.float32)
    for start in range(0, v.shape[-1], step):
        chunk = v[..., start : start + step].sum(axis=-1)
        acc = round_toward_zero_f32_reference(acc.astype(np.float64) + chunk)
    return acc


# ----------------------------------------------------------------------


def median_seconds(fn, *, reps: int = 5, warmup: int = 1) -> float:
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def interleaved_medians(fn_a, fn_b, *, reps: int = 7) -> tuple[float, float]:
    """Median seconds of two competitors measured alternately.

    Interleaving keeps slow drift of the host (shared VM, thermal state)
    from landing entirely on one side of an A/B comparison.
    """
    fn_a()
    fn_b()
    times_a, times_b = [], []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn_a()
        times_a.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        times_b.append(time.perf_counter() - t0)
    return statistics.median(times_a), statistics.median(times_b)


def bench_rz(rng: np.random.Generator) -> dict:
    pts = rng.normal(size=(N_POINTS, RZ_DIMS))
    new = rz_sum_squares(pts)
    seed = seed_rz_sum_squares(pts)
    identical = bool(
        np.array_equal(new.view(np.uint32), seed.view(np.uint32))
    )
    t_seed = median_seconds(lambda: seed_rz_sum_squares(pts))
    t_new = median_seconds(lambda: rz_sum_squares(pts), reps=9)
    return {
        "n": N_POINTS,
        "d": RZ_DIMS,
        "seed_seconds": t_seed,
        "engine_seconds": t_new,
        "speedup": t_seed / t_new,
        "bit_identical": identical,
        "native_kernel": native.available(),
    }


def bench_ted_brute(data: np.ndarray, eps: float) -> dict:
    kern = TedJoinKernel(variant="brute")
    new = kern.self_join(data, eps).result
    seed = seed_ted_brute_join(data, eps)
    identical = joins_bit_identical(new, seed)
    t_seed = median_seconds(lambda: seed_ted_brute_join(data, eps), reps=5)
    t_new = median_seconds(lambda: kern.self_join(data, eps), reps=5)
    return {
        "n": N_POINTS,
        "d": JOIN_DIMS,
        "seed_seconds": t_seed,
        "engine_seconds": t_new,
        "speedup": t_seed / t_new,
        "bit_identical": identical,
        "result_pairs": int(new.pairs_i.size),
    }


def bench_kernels(data: np.ndarray, eps: float) -> dict:
    runs = {
        "fasted": lambda: FastedKernel().self_join(data, eps),
        "ted-join-brute": lambda: TedJoinKernel(variant="brute")
        .self_join(data, eps)
        .result,
        "ted-join-index": lambda: TedJoinKernel(variant="index")
        .self_join(data, eps)
        .result,
        "gds-join": lambda: GdsJoinKernel().self_join(data, eps).result,
        "mistic": lambda: MisticKernel().self_join(data, eps).result,
    }
    out = {}
    for name, fn in runs.items():
        pairs = int(fn().pairs_i.size)
        seconds = median_seconds(fn, reps=3)
        out[name] = {
            "seconds": seconds,
            "result_pairs": pairs,
            "pairs_per_sec": pairs / seconds if seconds else float("inf"),
        }
    return out


def bench_streaming(data: np.ndarray, eps: float) -> dict:
    """Out-of-core executor vs in-memory engine at the same tile plan.

    FaSTED numerics; the dataset is served from a memory-mapped ``.npy``
    and the tile plan derived from ``STREAM_BUDGET_BYTES`` (a fraction of
    the dataset), so the streamed peak-resident check is meaningful.  The
    in-memory run uses the same ``row_block`` -- the configuration where
    streaming is bit-identical (FP32 GEMMs reassociate across different
    tile shapes; see docs/ARCHITECTURE.md).
    """
    data = np.ascontiguousarray(data, dtype=np.float64)
    plan = TilePlan.from_budget(data.shape[0], data.shape[1], STREAM_BUDGET_BYTES)
    kern = FastedKernel()
    with tempfile.TemporaryDirectory() as td:
        path = Path(td) / "bench_stream.npy"
        np.save(path, data)
        source = MmapNpySource(path)
        mem = kern.self_join(data, eps, row_block=plan.row_block)
        streamed, stats = kern.self_join_stream(
            source, eps, memory_budget_bytes=STREAM_BUDGET_BYTES
        )
        identical = joins_bit_identical(mem, streamed)
        t_mem, t_stream = interleaved_medians(
            lambda: kern.self_join(data, eps, row_block=plan.row_block),
            lambda: kern.self_join_stream(
                source, eps, memory_budget_bytes=STREAM_BUDGET_BYTES
            ),
        )
    return {
        "n": data.shape[0],
        "d": data.shape[1],
        "kernel": "fasted",
        "memory_budget_bytes": STREAM_BUDGET_BYTES,
        "dataset_bytes": int(data.nbytes),
        "row_block": plan.row_block,
        "blocks_loaded": stats.blocks_loaded,
        "peak_resident_bytes": stats.peak_resident_bytes,
        "within_budget": bool(stats.peak_resident_bytes <= STREAM_BUDGET_BYTES),
        "in_memory_seconds": t_mem,
        "streaming_seconds": t_stream,
        "streaming_overhead": t_stream / t_mem,
        "bit_identical": identical,
        "result_pairs": int(streamed.pairs_i.size),
    }


def bench_two_source(rng: np.random.Generator, eps: float) -> dict:
    """Two-source streaming executor vs in-memory rect executor, same plan.

    FaSTED numerics; both datasets are served from memory-mapped ``.npy``
    files and the rectangular tile plan is derived from
    ``STREAM_BUDGET_BYTES`` (a fraction of either dataset), so the
    peak-resident check covers both sources.  The in-memory run uses the
    same block edges -- the configuration where streaming is bit-identical
    (same FP32 GEMM tile shapes; see docs/ARCHITECTURE.md).
    """
    a = rng.normal(size=(N_POINTS, JOIN_DIMS))
    b = rng.normal(size=(N_POINTS, JOIN_DIMS))
    plan = RectTilePlan.from_budget(
        a.shape[0], b.shape[0], JOIN_DIMS, STREAM_BUDGET_BYTES
    )
    kern = FastedKernel()
    with tempfile.TemporaryDirectory() as td:
        path_a, path_b = Path(td) / "a.npy", Path(td) / "b.npy"
        np.save(path_a, a)
        np.save(path_b, b)
        src_a, src_b = MmapNpySource(path_a), MmapNpySource(path_b)
        mem = kern.join(a, b, eps, row_block=plan.row_block, col_block=plan.col_block)
        streamed, stats = kern.join_stream(
            src_a, src_b, eps, memory_budget_bytes=STREAM_BUDGET_BYTES
        )
        identical = joins_bit_identical(mem, streamed)
        t_mem, t_stream = interleaved_medians(
            lambda: kern.join(
                a, b, eps, row_block=plan.row_block, col_block=plan.col_block
            ),
            lambda: kern.join_stream(
                src_a, src_b, eps, memory_budget_bytes=STREAM_BUDGET_BYTES
            ),
        )
    return {
        "n_a": a.shape[0],
        "n_b": b.shape[0],
        "d": JOIN_DIMS,
        "kernel": "fasted",
        "memory_budget_bytes": STREAM_BUDGET_BYTES,
        "dataset_bytes": int(a.nbytes + b.nbytes),
        "row_block": plan.row_block,
        "col_block": plan.col_block,
        "blocks_loaded": stats.blocks_loaded,
        "peak_resident_bytes": stats.peak_resident_bytes,
        "within_budget": bool(stats.peak_resident_bytes <= STREAM_BUDGET_BYTES),
        "in_memory_seconds": t_mem,
        "streaming_seconds": t_stream,
        "streaming_overhead": t_stream / t_mem,
        "bit_identical": identical,
        "result_pairs": int(streamed.pairs_i.size),
    }


def bench_streaming_index(data: np.ndarray, eps: float) -> dict:
    """Source-backed index join vs the in-memory grid-indexed self-join.

    GDS-Join builds its grid out of core (``GridIndex.from_source``:
    streamed cell-key encoding + external counting sort over the chunked
    source) and gathers candidate rows on demand, against the ordinary
    in-memory ``self_join`` -- bit-identical by construction; the overhead
    is the price of the streamed build passes and per-group gathers.
    """
    data = np.ascontiguousarray(data, dtype=np.float64)
    kern = GdsJoinKernel()
    row_block = 1024
    with tempfile.TemporaryDirectory() as td:
        source = write_chunked_npy(Path(td) / "chunks", data, rows_per_chunk=512)
        mem = kern.self_join(data, eps).result
        streamed, stats = kern.self_join_source(source, eps, row_block=row_block)
        identical = joins_bit_identical(mem, streamed.result)
        t_mem, t_stream = interleaved_medians(
            lambda: kern.self_join(data, eps),
            lambda: kern.self_join_source(source, eps, row_block=row_block),
            reps=3,
        )
    return {
        "n": data.shape[0],
        "d": data.shape[1],
        "kernel": "gds-join",
        "row_block": row_block,
        "build_blocks_loaded": stats.blocks_loaded,
        "peak_resident_bytes": stats.peak_resident_bytes,
        "in_memory_seconds": t_mem,
        "streaming_seconds": t_stream,
        "streaming_overhead": t_stream / t_mem,
        "bit_identical": identical,
        "result_pairs": int(streamed.result.pairs_i.size),
    }


def bench_candidate_batched() -> dict:
    """Batched vs per-group candidate executor at small eps.

    Runs the index-backed kernels on ``fine_grid_dataset`` -- anisotropic
    micro-clusters whose variance-ordered grid prefix shatters into
    thousands of tiny cells at small eps, the regime where per-group
    GEMMs degenerate to call overhead.
    """
    data = fine_grid_dataset(N_POINTS, JOIN_DIMS, seed=0)
    eps = float(epsilon_for_selectivity(data, BATCHED_SELECTIVITY))
    out: dict = {
        "n": N_POINTS,
        "d": JOIN_DIMS,
        "eps": eps,
        "target_selectivity": BATCHED_SELECTIVITY,
        "kernels": {},
    }
    runs = {
        "gds-join": lambda batched: GdsJoinKernel()
        .self_join(data, eps, batched=batched)
        .result,
        "ted-join-index": lambda batched: TedJoinKernel(variant="index")
        .self_join(data, eps, batched=batched)
        .result,
    }
    for name, fn in runs.items():
        plain = fn(False)
        batched = fn(True)
        ap, bp = canon(plain), canon(batched)
        pair_equal = bool(
            np.array_equal(ap[0], bp[0]) and np.array_equal(ap[1], bp[1])
        )
        t_plain, t_batched = interleaved_medians(
            lambda: fn(False), lambda: fn(True)
        )
        out["kernels"][name] = {
            "unbatched_seconds": t_plain,
            "batched_seconds": t_batched,
            "speedup": t_plain / t_batched,
            "pair_set_equal": pair_equal,
            "result_pairs": int(plain.pairs_i.size),
        }
    return out


def bench_workers(data: np.ndarray, eps: float) -> dict:
    """Auto worker plan vs the former fixed serial configuration.

    ``workers="auto"`` resolves a :class:`~repro.core.engine.WorkerPlan`
    from the host topology: a worker count (cores / BLAS pinning /
    ``REPRO_WORKERS``) *and* a cache-fit tile edge for kernels whose
    callers leave ``row_block`` unset.  The baseline is each kernel's
    former fixed engine configuration (the PR-1 ``row_block`` defaults,
    serial dispatch), so the entry records exactly what the topology plan
    buys on this host -- on a single-core runner the worker count
    degenerates to 1 and the gain is the cache-fit tile edge alone.
    ``bit_identical`` must hold: parallel dispatch commits in tile order
    and the tile edge never changes the pair set (observed bitwise-equal
    on the seed datasets; tests/test_workers.py pins it).
    """
    wp = WorkerPlan.resolve("auto")
    n, d = data.shape
    out: dict = {
        "n": n,
        "d": d,
        "worker_plan": wp.as_dict(),
        "kernels": {},
    }
    runs = {
        "fasted": {
            "serial": lambda: FastedKernel().self_join(
                data, eps, row_block=2048, workers=0
            ),
            "auto": lambda: FastedKernel().self_join(data, eps, workers="auto"),
            "serial_row_block": 2048,
            "auto_row_block": FastedKernel().auto_row_block(n, d, wp),
        },
        "ted-join-brute": {
            "serial": lambda: TedJoinKernel(variant="brute")
            .self_join(data, eps, row_block=1024, workers=0)
            .result,
            "auto": lambda: TedJoinKernel(variant="brute")
            .self_join(data, eps, workers="auto")
            .result,
            "serial_row_block": 1024,
            "auto_row_block": TedJoinKernel(variant="brute").auto_row_block(
                n, d, wp
            ),
        },
        "gds-join": {
            "serial": lambda: GdsJoinKernel().self_join(data, eps, workers=0).result,
            "auto": lambda: GdsJoinKernel()
            .self_join(data, eps, workers="auto")
            .result,
            "serial_row_block": None,  # candidate executor: no tile edge
            "auto_row_block": None,
        },
    }
    for name, cfg in runs.items():
        serial_res = cfg["serial"]()
        auto_res = cfg["auto"]()
        identical = joins_bit_identical(serial_res, auto_res)
        pairs = int(serial_res.pairs_i.size)
        t_serial, t_auto = interleaved_medians(cfg["serial"], cfg["auto"], reps=5)
        out["kernels"][name] = {
            "serial_seconds": t_serial,
            "auto_seconds": t_auto,
            "speedup": t_serial / t_auto,
            "serial_pairs_per_sec": pairs / t_serial,
            "auto_pairs_per_sec": pairs / t_auto,
            "serial_row_block": cfg["serial_row_block"],
            "auto_row_block": cfg["auto_row_block"],
            "bit_identical": identical,
            "result_pairs": pairs,
        }
    return out


def bench_query_service() -> dict:
    """Cached-index serving vs rebuild-per-request (the serving-layer win).

    Serving workload: clustered data (the regime grid indexes prune --
    ``synth_dataset(clustered=True)``), one small request (8 query
    points drawn near the data) answered over and over.  The **cold**
    side is what every pre-serving invocation pays per request: read the
    dataset from disk, rebuild the grid, set up the engine, answer.  The
    **cached** side persists the index once (``repro.index.persist``)
    and serves every request from the warm
    :class:`~repro.service.IndexCache` engine, whose hot-cell candidate
    LRU also skips repeat gathers.  Both sides run the identical FP64
    engine path, and ``bit_identical`` pins the cached,
    loaded-from-disk answers against the dense brute-force reference.
    """
    from repro.data.synthetic import synth_dataset
    from repro.index.grid import GridIndex
    from repro.index.persist import read_header, save_index
    from repro.service import (
        IndexCache,
        QueryEngine,
        brute_range_query,
        sample_queries,
    )

    data = synth_dataset(N_POINTS, JOIN_DIMS, seed=0, clustered=True)
    eps = float(epsilon_for_selectivity(data, SELECTIVITY))
    nq = 8
    queries = sample_queries(data, eps, nq, seed=7)

    with tempfile.TemporaryDirectory() as td:
        path = Path(td) / "index"
        save_index(GridIndex(data, eps), path, data=data)
        data_npy = path / read_header(path)["data"]  # generation-tagged

        def rebuild_and_query():
            resident = np.load(data_npy)
            return QueryEngine(GridIndex(resident, eps), resident).range_query(
                queries
            )

        # Serve at the fault-tolerance default: payload integrity is
        # stat-verified on every cache miss (verify="header").
        cache = IndexCache(verify="header")
        cache.get(path)  # the one-time load the serving layer amortizes

        def cached_query():
            return cache.get(path).range_query(queries)

        res = cached_query()
        identical = joins_bit_identical(res, brute_range_query(data, queries, eps))
        t_rebuild, t_cached = interleaved_medians(
            rebuild_and_query, cached_query
        )
        cache_stats = cache.stats()
    return {
        "n": data.shape[0],
        "d": data.shape[1],
        "eps": eps,
        "target_selectivity": SELECTIVITY,
        "queries_per_request": nq,
        "rebuild_seconds": t_rebuild,
        "cached_seconds": t_cached,
        "speedup": t_rebuild / t_cached,
        "queries_per_sec_cold": nq / t_rebuild,
        "queries_per_sec_cached": nq / t_cached,
        "bit_identical": identical,
        "result_pairs": int(res.pairs_i.size),
        "verify": "header",
        "cache": cache_stats,
    }


def bench_mutable() -> dict:
    """Query latency vs delta depth, and compaction throughput.

    A mutable store answers every query by merging its base with the
    live delta segments, so each sealed segment adds one more layer of
    per-query work.  The entry charts range-query latency at delta depth
    0/1/4/16 (segments of ``seg_rows`` appended rows, sealed manually so
    depth is exact), then folds all 16 segments into a new base
    generation and records the compaction's row throughput plus the
    post-compaction latency (which must return to the depth-0 regime of
    the grown store).  ``bit_identical`` pins the depth-16 *and*
    post-compaction answers against a :class:`~repro.service.QueryEngine`
    rebuilt from scratch over the live rows -- the differential contract
    tests/test_mutable.py enforces op-by-op.
    """
    from repro.data.synthetic import synth_dataset
    from repro.index.delta import MutableIndex
    from repro.index.grid import GridIndex
    from repro.service import QueryEngine, sample_queries

    n0, d, seg_rows = N_POINTS, JOIN_DIMS, 128
    data = synth_dataset(n0, d, seed=0, clustered=True)
    eps = float(epsilon_for_selectivity(data, SELECTIVITY))
    nq = 8
    queries = sample_queries(data, eps, nq, seed=7)
    rng = np.random.default_rng(1)
    measure_at = {0, 1, 4, 16}
    out: dict = {
        "n_base": n0,
        "d": d,
        "eps": eps,
        "target_selectivity": SELECTIVITY,
        "segment_rows": seg_rows,
        "queries_per_request": nq,
        "latency_by_depth": {},
    }
    appended: list = []
    with tempfile.TemporaryDirectory() as td:
        root = Path(td) / "mut"
        # Seal manually so the delta depth is exactly the loop count.
        MutableIndex.create(root, data, eps, seal_threshold=1 << 30)
        mut = MutableIndex(root)
        for depth in range(17):
            if depth in measure_at:
                t_range = median_seconds(
                    lambda: mut.range_query(queries), reps=5
                )
                out["latency_by_depth"][str(depth)] = {
                    "n_live": int(mut.n_points),
                    "range_seconds": t_range,
                }
            if depth < 16:
                rows = data[rng.integers(0, n0, seg_rows)] + rng.uniform(
                    -eps / 4, eps / 4, (seg_rows, d)
                )
                appended.append(rows)
                mut.append(rows)
                mut.seal()
        by_depth = out["latency_by_depth"]
        out["overhead_depth16_vs_0"] = (
            by_depth["16"]["range_seconds"] / by_depth["0"]["range_seconds"]
        )

        # Differential pin at full depth: no deletes, so global ids are
        # the rebuilt row positions and the answers must match bitwise.
        live_rows = np.concatenate([data] + appended)
        ref = QueryEngine(GridIndex(live_rows, eps), live_rows)
        want = ref.range_query(queries)
        # The mutable store canonicalizes to ascending (query, id); sort
        # the rebuilt engine's per-query candidate order the same way.
        order = np.lexsort((want.pairs_j, want.pairs_i))

        def _bits(a: np.ndarray) -> np.ndarray:
            return a.view(np.uint32 if a.dtype == np.float32 else np.uint64)

        def _matches(res) -> bool:
            return bool(
                np.array_equal(res.pairs_i, want.pairs_i[order])
                and np.array_equal(res.pairs_j, want.pairs_j[order])
                and np.array_equal(
                    _bits(res.sq_dists), _bits(want.sq_dists[order])
                )
            )

        got = mut.range_query(queries)
        identical = _matches(got)

        stats = mut.compact()
        out["compaction"] = {
            "segments_folded": stats["segments_folded"],
            "n_live": stats["n_live"],
            "duration_s": stats["duration_s"],
            "rows_per_sec": stats["n_live"] / stats["duration_s"],
        }
        out["post_compact_range_seconds"] = median_seconds(
            lambda: mut.range_query(queries), reps=5
        )
        identical = identical and _matches(mut.range_query(queries))
        out["bit_identical"] = identical
        out["result_pairs"] = int(got.pairs_i.size)
    return out


def main() -> dict:
    rng = np.random.default_rng(0)
    data = rng.normal(size=(N_POINTS, JOIN_DIMS))
    eps = float(epsilon_for_selectivity(data, SELECTIVITY))
    report = {
        "config": {
            "n": N_POINTS,
            "join_d": JOIN_DIMS,
            "rz_d": RZ_DIMS,
            "eps": eps,
            "target_selectivity": SELECTIVITY,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "native_rz_kernel": native.available(),
        },
        "rz_sum_squares": bench_rz(rng),
        "ted_join_brute": bench_ted_brute(data, eps),
        "kernel_pairs_per_sec": bench_kernels(data, eps),
        "streaming": bench_streaming(data, eps),
        "candidate_batched": bench_candidate_batched(),
        "two_source": bench_two_source(rng, eps),
        "streaming_index": bench_streaming_index(data, eps),
        "workers": bench_workers(data, eps),
        "query_service": bench_query_service(),
        "mutable": bench_mutable(),
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {OUT_PATH}")
    return report


if __name__ == "__main__":
    main()
