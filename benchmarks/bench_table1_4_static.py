"""Tables 1-4: configuration and dataset tables.

Tables 1-3 are static (MMA shapes by API, FaSTED's optimized parameters,
the implementation matrix) and are rendered directly from the package's
data structures so they cannot drift from the code.  Table 4 is
data-driven: per-surrogate epsilon values re-calibrated to the paper's
three selectivity targets, with the measured selectivity of the actual
join verifying the calibration.
"""

import pytest

from conftest import emit, fig10_sizes
from repro.analysis.tables import (
    format_table,
    implementation_matrix,
    implementation_table,
    mma_shape_table,
    optimized_parameters_table,
)
from repro.core.selectivity import epsilon_for_selectivity
from repro.data.realworld import DATASETS, load_surrogate
from repro.kernels.fasted import FastedKernel


def test_tables_1_2_3_static(benchmark):
    text = benchmark.pedantic(
        lambda: "\n\n".join(
            [mma_shape_table(), optimized_parameters_table(), implementation_table()]
        ),
        rounds=1,
        iterations=1,
    )
    emit("tables_1_2_3", text)
    rows = implementation_matrix()
    assert [r[0] for r in rows] == [
        "FaSTED", "TED-Join-Brute", "TED-Join-Index", "GDS-Join", "MiSTIC",
    ]
    # Exactly the brute/index split of paper Table 3.
    assert [(r[3], r[4]) for r in rows] == [
        (True, False), (True, False), (False, True), (False, True), (False, True),
    ]
    assert "16x8x16 (Used by FaSTED)" in text
    assert "128x128x64" in text


def test_table4_selectivity_calibration(benchmark):
    sizes = fig10_sizes()

    def run():
        rows = []
        checks = []
        for name, spec in DATASETS.items():
            data, _ = load_surrogate(name, n=sizes[name])
            eps_row = [name, sizes[name], spec.paper_d]
            for s_target in (64, 128, 256):
                eps = epsilon_for_selectivity(data, s_target)
                eps_row.append(f"{eps:.4g}")
                if s_target == 128:  # verify one level with a real join
                    res = FastedKernel().self_join(
                        data, eps, store_distances=False
                    )
                    checks.append((name, s_target, res.selectivity))
            rows.append(tuple(eps_row))
        return rows, checks

    rows, checks = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "table4_selectivity",
        format_table(
            ("Dataset", "|D| (surrogate)", "d", "eps(S=64)", "eps(S=128)", "eps(S=256)"),
            rows,
            title="Table 4: surrogate datasets with recalibrated epsilon "
            "(paper's originals are larger; see DESIGN.md)",
        ),
    )
    # Calibration verified by measurement: within 40% of the target
    # (sampling the distance distribution on a scaled-down surrogate).
    for name, target, measured in checks:
        assert 0.6 * target <= measured <= 1.4 * target, (name, measured)
    # Dimensionalities must match the paper exactly.
    assert {r[2] for r in rows} == {128, 384, 512, 960}
