"""Tables 7-8 + Figure 11: FP16-32 accuracy against the FP64 ground truth.

For every real-world surrogate and selectivity level, compares FaSTED's
result against GDS-Join running in FP64 (the paper's ground-truth
configuration): Eq.-3 overlap accuracy (Table 7), signed distance-error
mean/std (Table 8), and the error histogram for the worst dataset
(Figure 11).  Shape checks: overlap > 0.97 everywhere (paper: > 0.999 on
the real datasets; surrogate values are the same order), errors unbiased
(|mean| << std), and the integer-valued Sift surrogate *exact* -- FP16
stores small integers exactly, the reason the paper's Sift row is 1.0.
"""

import numpy as np
import pytest

from conftest import emit, fig10_sizes
from repro.analysis.experiments import run_real_dataset
from repro.analysis.tables import ascii_histogram, format_table

PAPER_TABLE7 = {
    "Sift10M": (1.0, 1.0, None),  # S_l = 256 OOM'd on the real dataset
    "Tiny5M": (0.99998, 0.99997, 0.99996),
    "Cifar60K": (0.99971, 0.99955, 0.99946),
    "Gist1M": (0.99999, 0.99998, 0.99997),
}

SELECTIVITIES = (64, 128, 256)


@pytest.fixture(scope="module")
def outcomes():
    sizes = fig10_sizes()
    return {
        name: run_real_dataset(
            name,
            selectivities=SELECTIVITIES,
            n=sizes[name],
            with_accuracy=True,
            with_error_stats=True,
        )
        for name in PAPER_TABLE7
    }


def test_table7_overlap_accuracy(benchmark, outcomes):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name, out in outcomes.items():
        for acc in out.accuracy:
            paper = PAPER_TABLE7[name][SELECTIVITIES.index(acc.selectivity)]
            rows.append(
                (
                    name,
                    acc.selectivity,
                    f"{acc.overlap:.5f}",
                    f"{paper:.5f}" if paper is not None else "OOM",
                )
            )
    emit(
        "table7_overlap",
        format_table(
            ("Dataset", "S", "Overlap (model)", "Overlap (paper)"),
            rows,
            title="Table 7: FaSTED vs FP64 GDS-Join overlap accuracy (Eq. 3)",
        ),
    )
    for name, out in outcomes.items():
        for acc in out.accuracy:
            assert acc.overlap > 0.97, (name, acc.selectivity, acc.overlap)
    # Integer-valued SIFT data is exact in FP16: perfect overlap.
    for acc in outcomes["Sift10M"].accuracy:
        assert acc.overlap == 1.0


def test_table8_distance_errors(benchmark, outcomes):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name, out in outcomes.items():
        acc = out.accuracy[0]  # S_s = 64, as in the paper's Table 8
        st = acc.error_stats
        rows.append((name, f"{st.mean:+.2e}", f"{st.std:.2e}", st.n_pairs))
    emit(
        "table8_errors",
        format_table(
            ("Dataset", "Mean error", "Std. dev.", "Pairs"),
            rows,
            title="Table 8: distance error vs FP64 at S_s=64 "
            "(paper: |mean| ~ 1e-7..1e-6, std ~ 1e-5..1e-4)",
        ),
    )
    for name, out in outcomes.items():
        st = out.accuracy[0].error_stats
        # Unbiased: |mean| well below the spread (paper's "no measurable
        # bias"); exact-zero Sift handled by the epsilon.
        assert abs(st.mean) <= 0.2 * st.std + 1e-12, name
        # Error magnitudes in the paper's regime (relative to eps scale).
        eps = out.eps_by_s[64]
        assert st.std / eps < 2e-3, name


def test_fig11_error_histogram(benchmark, outcomes):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Figure 11: symmetric, unimodal error distribution (Cifar60K)."""
    st = outcomes["Cifar60K"].accuracy[0].error_stats
    counts, edges = st.histogram(bins=41)
    emit(
        "fig11_error_hist",
        ascii_histogram(
            counts,
            edges,
            title="Figure 11: distance-error distribution, Cifar60K surrogate",
        ),
    )
    assert counts.sum() == st.n_pairs
    # Unimodal around zero: the central 20% of bins holds most of the mass.
    mid = len(counts) // 2
    central = counts[mid - 4 : mid + 5].sum()
    assert central > 0.5 * counts.sum()
    # Roughly symmetric tails.
    left, right = counts[:mid].sum(), counts[mid + 1 :].sum()
    denom = max(left + right, 1)
    assert abs(left - right) / denom < 0.35
