"""Figure 8: FaSTED derived TFLOPS vs dataset size and dimensionality.

Regenerates the full |D| x d heatmap of the paper (Synth datasets,
kernel-only derived TFLOPS) from the timing model and checks its shape:
throughput grows along both axes, saturates near 150 TFLOPS (~49% of the
312 TFLOPS FP16-32 peak, power-throttled), and the saturated corner
requires only |D| >= ~46k at d >= 2048 -- the paper's headline observation.
"""

import numpy as np

from conftest import emit
from repro.analysis.experiments import run_fig8
from repro.analysis.tables import format_heatmap
from repro.data.synthetic import SYNTH_DIMS, SYNTH_SIZES

#: Paper Figure 8 values for reference (rows = |D|, cols = d).
PAPER_FIG8 = np.array([
    [0, 1, 2, 3, 7, 10, 11],
    [2, 4, 8, 12, 20, 23, 28],
    [7, 13, 22, 39, 51, 60, 72],
    [12, 20, 40, 62, 91, 113, 126],
    [13, 25, 46, 76, 117, 139, 148],
    [15, 26, 47, 83, 132, 150, 150],
    [17, 30, 55, 91, 132, 148, 154],
    [18, 31, 57, 94, 133, 148, 154],
    [16, 29, 51, 89, 131, 149, 154],
    [17, 31, 57, 92, 130, 148, 153],
])


def test_fig8_heatmap(benchmark):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    text = format_heatmap(
        result.tflops,
        [f"{n:,}" for n in result.sizes],
        result.dims,
        title="Figure 8: FaSTED derived TFLOPS (rows: |D|, cols: d)",
        corner="|D| \\ d",
    )
    paper = format_heatmap(
        PAPER_FIG8,
        [f"{n:,}" for n in SYNTH_SIZES],
        SYNTH_DIMS,
        title="Paper Figure 8 (reported):",
        corner="|D| \\ d",
    )
    emit("fig8_throughput", text + "\n\n" + paper)

    t = result.tflops
    # Monotone-increasing along d at the largest |D| (paper's scalability).
    assert np.all(np.diff(t[-1]) >= -3.0)
    # Saturation corner near the paper's ~150 TFLOPS (49% of peak).
    assert 135 <= t[-1, -1] <= 170
    # Paper: |D| >= 46416 and d >= 2048 suffices for ~150 TFLOPS.
    i46k = SYNTH_SIZES.index(46416)
    assert t[i46k, SYNTH_DIMS.index(2048)] >= 130
    # Small/low-d corner is an order of magnitude below saturation.
    assert t[0, 0] < 15
    # Cell-wise agreement with the paper where throughput is substantial.
    mask = PAPER_FIG8 >= 20
    rel = np.abs(t[mask] - PAPER_FIG8[mask]) / PAPER_FIG8[mask]
    assert rel.mean() < 0.25, f"mean relative deviation {rel.mean():.2f}"
