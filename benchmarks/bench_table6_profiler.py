"""Table 6: Nsight-Compute-style profiler counters.

Profiles FaSTED and TED-Join-Brute on Synth |D|=1e5 at d in {128, 256,
4096} and regenerates the six counter rows of the paper's Table 6.
Shape checks encode the paper's analysis: FaSTED is bank-conflict-free
with rising tensor-pipe utilization and a throttled clock at d=4096;
TED-Join has massive WMMA conflicts, low utilization, and OOMs at d=4096.
"""

from conftest import emit
from repro.analysis.experiments import run_table6
from repro.gpusim.profiler import format_table as profiler_table

#: Paper Table 6 for side-by-side reference.
PAPER_TABLE6 = """\
Paper Table 6 (reported):
Metric                   FaSTED d=128/256/4096   TED-Join d=128/256/4096
DRAM Throughput (%)      1.98 / 3.54 / 16.0      0.04 / 0.04 / OOM
SMEM Throughput (%)      6.49 / 10.5 / 36.1      42.3 / 16.0 / OOM
Bank Conflicts (%)       0.00 / 0.00 / 0.00      92.3 / 75.0 / OOM
L2 Hit Rate (%)          89.8 / 89.6 / 84.4      98.9 / 98.9 / OOM
TC Pipe Util (%)         10.1 / 17.8 / 64.0      5.75 / 1.99 / OOM
Clock Speed (GHz)        1.37 / 1.40 / 1.12      1.40 / 1.41 / OOM"""


def test_table6_profiler_counters(benchmark):
    reports = benchmark.pedantic(run_table6, rounds=1, iterations=1)
    text = profiler_table(
        reports, title="Table 6: simulated profiler counters (Synth |D|=1e5)"
    )
    emit("table6_profiler", text + "\n\n" + PAPER_TABLE6)

    by_label = {r.label: r for r in reports}
    f128 = by_label["FaSTED d=128"]
    f4096 = by_label["FaSTED d=4096"]
    t128 = by_label["TED-Join d=128"]
    t256 = by_label["TED-Join d=256"]
    t4096 = by_label["TED-Join d=4096"]

    # FaSTED: conflict-free at every d; utilization rises with d.
    for d in (128, 256, 4096):
        assert by_label[f"FaSTED d={d}"].bank_conflict_pct == 0.0
    assert f4096.tc_pipe_utilization_pct > 4 * f128.tc_pipe_utilization_pct
    assert 50 <= f4096.tc_pipe_utilization_pct <= 70  # paper: 64%
    # Power throttling at d=4096 (paper: 1.40 -> 1.12 GHz).
    assert f4096.clock_ghz < f128.clock_ghz
    assert 1.05 <= f4096.clock_ghz <= 1.20
    # L2 hit rate high but degrading with d (paper: 89.8 -> 84.4).
    assert f128.l2_hit_rate_pct > f4096.l2_hit_rate_pct
    assert 82 <= f4096.l2_hit_rate_pct <= 92

    # TED-Join: WMMA bank conflicts match the paper's replay degrees.
    assert abs(t128.bank_conflict_pct - 92.3) < 0.5
    assert abs(t256.bank_conflict_pct - 75.0) < 0.5
    # Single-digit tensor utilization, declining with d.
    assert t128.tc_pipe_utilization_pct < 10
    assert t256.tc_pipe_utilization_pct < t128.tc_pipe_utilization_pct
    # DRAM utilization negligible (latency-bound, not bandwidth-bound).
    assert t128.dram_throughput_pct < 1.0
    # OOM at d=4096, rendered as the paper does.
    assert t4096.oom
    assert t4096.values()[0] == "OOM"
