"""Service load benchmark: latency/throughput envelope of the query server.

Drives the serving subsystem with the load generator
(:mod:`repro.loadgen`) at the standard working point (clustered n=4096,
d=64, selectivity 64) and records:

* **RPS sweep** (open loop) -- p50/p95/p99 latency, achieved
  throughput, and the full error breakdown (429/503/504/other/dropped)
  at each offered rate, factors x repetitions through
  :func:`repro.loadgen.runner.run_experiment`, plus the saturation knee.
* **Closed loop** -- sustained throughput at fixed concurrency.
* **HTTP observability check** -- a short run against a live ``serve``
  endpoint, then ``/metrics`` parsed as Prometheus text and
  cross-checked against ``/stats`` (two views of one registry: the
  counters must agree).
* **Front-end comparison** -- the threaded and asyncio HTTP front ends
  swept open-loop at matched offered rates over live servers: both
  saturation knees plus p99 paired per rate (the async front end must
  sustain >= the threaded knee with no p99 regression).
* **Tracing overhead** -- the same live server with tracing off vs
  fully armed (sample=1.0 + JSONL export + slow-query log), open-loop
  at the 100 RPS knee: p99 regression must stay within 5% and a traced
  response must be byte-identical to an untraced one.

Writes ``BENCH_service.json`` at the repository root (see
docs/BENCHMARKS.md: extend this file's key set, never replace entries
with incomparable ones).  Run standalone:

    PYTHONPATH=src python benchmarks/bench_service_load.py
"""

from __future__ import annotations

import json
import platform
import tempfile
import threading
from pathlib import Path

import numpy as np

from repro.core.api import build_index
from repro.core.selectivity import epsilon_for_selectivity
from repro.data.synthetic import synth_dataset
from repro.loadgen import run_experiment, run_load, saturation_knee
from repro.loadgen.generator import (
    HttpTarget,
    QuerySampler,
    WorkloadConfig,
    run_against_server,
)
from repro.service import (
    QueryEngine,
    ServiceClient,
    make_server,
    parse_prometheus_text,
)

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

N_POINTS = 4096
JOIN_DIMS = 64
SELECTIVITY = 64

#: Open-loop sweep: offered request rates (batched range queries / s).
SWEEP_RPS = [50.0, 100.0, 200.0, 400.0]
SWEEP_REPS = 2
SWEEP_DURATION_S = 1.5

#: Closed loop: fixed in-flight concurrency, offered load adapts.
CLOSED_CONCURRENCY = 4
CLOSED_DURATION_S = 3.0

#: Front-end comparison: both HTTP front ends swept open-loop at the
#: same offered rates over live servers, each with its natural driver
#: (worker threads for the threaded server, the asyncio driver for the
#: event-loop server).
FRONTEND_SWEEP_RPS = [50.0, 100.0, 200.0]
FRONTEND_DURATION_S = 2.0

#: Tracing overhead: open-loop at the saturation knee (nominally 100
#: RPS, clamped to the knee this host actually measured -- past the
#: knee the comparison would measure queueing blow-up, not tracing),
#: tracing off vs fully armed (sample=1.0 + JSONL export + slow-query
#: log).  Two reps per mode; the best (lowest-noise) p99 per mode is
#: compared.
TRACE_RPS = 100.0
TRACE_DURATION_S = 3.0
TRACE_REPS = 4
TRACE_P99_BOUND_PCT = 5.0


def build_bench_index(root: Path) -> tuple[Path, float]:
    data = synth_dataset(N_POINTS, JOIN_DIMS, seed=0, clustered=True)
    eps = float(epsilon_for_selectivity(data, SELECTIVITY))
    path = root / "index"
    build_index(data, eps, path, kind="grid")
    return path, eps


def bench_rps_sweep(index: Path) -> dict:
    """Open-loop RPS sweep through the experiment runner."""
    config = {
        "name": "bench-rps-sweep",
        "repetitions": SWEEP_REPS,
        "base": {
            "mode": "open",
            "duration_s": SWEEP_DURATION_S,
            "concurrency": 8,
            "batch_size": 8,
            "range_fraction": 0.75,
            "k": 5,
            "zipf_s": 1.1,
            "deadline_s": 2.0,
            "seed": 0,
        },
        "factors": {"target_rps": SWEEP_RPS},
    }
    report = run_experiment(config, index=index)
    return {
        "workload": config["base"],
        "swept_rps": SWEEP_RPS,
        "repetitions": SWEEP_REPS,
        "saturation_knee_rps": report["saturation_knee_rps"],
        "rows": report["rows"],
    }


def bench_closed_loop(index: Path) -> dict:
    """Sustained closed-loop throughput at fixed concurrency."""
    from repro.loadgen.generator import run_against_service

    config = WorkloadConfig(
        mode="closed",
        duration_s=CLOSED_DURATION_S,
        concurrency=CLOSED_CONCURRENCY,
        batch_size=8,
        range_fraction=0.75,
        k=5,
        zipf_s=1.1,
        seed=0,
    )
    result = run_against_service(index, config)
    return result.summary()


def bench_frontend_comparison(index: Path) -> dict:
    """Async vs threaded front end: knee + p99 at matched open-loop RPS.

    Each front end runs as a live server on an ephemeral port and is
    driven at the same offered rates; the report pairs the per-rate p99
    values and records both saturation knees.  The acceptance bar the
    CI-committed file documents: the async front end sustains at least
    the threaded knee with no p99 regression at matched load.
    """
    per_frontend: dict[str, dict] = {}
    for frontend, driver in (("thread", "thread"), ("async", "async")):
        server = make_server(
            {"default": index}, host="127.0.0.1", port=0, frontend=frontend
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[0], server.server_address[1]
            # Untimed warm-up: the first requests pay engine load + kNN
            # reach calibration + candidate-LRU fill; the comparison is
            # about the front ends, not who got the cold cache.
            engine = QueryEngine(index)
            warm = QuerySampler(
                engine,
                WorkloadConfig(mode="closed", duration_s=0.1, batch_size=8,
                               range_fraction=0.5, k=5, seed=1),
            )
            warm_rng = np.random.default_rng(1)
            with ServiceClient(host, port) as client:
                for _ in range(8):
                    kind, queries, eps_w, k_w = warm.make_request(warm_rng)
                    if kind == "range":
                        client.range_query(queries.tolist(), eps=eps_w)
                    else:
                        client.knn_query(queries.tolist(), k_w)
            rows = []
            for rps in FRONTEND_SWEEP_RPS:
                config = WorkloadConfig(
                    mode="open",
                    duration_s=FRONTEND_DURATION_S,
                    target_rps=rps,
                    concurrency=64,
                    batch_size=8,
                    range_fraction=0.75,
                    k=5,
                    zipf_s=1.1,
                    seed=0,
                )
                result = run_against_server(
                    index, host, port, config, driver=driver
                )
                rows.append({"target_rps": rps, **result.summary()})
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)
        per_frontend[frontend] = {
            "driver": driver,
            "rows": rows,
            "saturation_knee_rps": saturation_knee(rows),
        }
    matched = [
        {
            "target_rps": rps,
            "thread_p99_ms": per_frontend["thread"]["rows"][i]["p99_ms"],
            "async_p99_ms": per_frontend["async"]["rows"][i]["p99_ms"],
        }
        for i, rps in enumerate(FRONTEND_SWEEP_RPS)
    ]
    thread_knee = per_frontend["thread"]["saturation_knee_rps"]
    async_knee = per_frontend["async"]["saturation_knee_rps"]
    return {
        "swept_rps": FRONTEND_SWEEP_RPS,
        "duration_s": FRONTEND_DURATION_S,
        "thread": per_frontend["thread"],
        "async": per_frontend["async"],
        "p99_at_matched_rps": matched,
        "async_knee_not_below_thread": bool(
            (async_knee or 0.0) >= (thread_knee or 0.0)
        ),
    }


def bench_tracing_overhead(
    index: Path, trace_dir: Path, knee_rps: "float | None" = None
) -> dict:
    """Fully-armed tracing vs tracing off at the 100 RPS knee.

    Each mode runs as its own live server: ``untraced`` is the stock
    configuration (sampling 0, no export), ``traced`` retains every
    trace (``trace_sample=1.0``), appends spans to JSONL, and arms the
    slow-query log.  The acceptance bar the committed file documents:
    full tracing costs at most ``TRACE_P99_BOUND_PCT`` percent of p99,
    and a traced request's response bytes equal the untraced server's
    (tracing must not change a single output bit).
    """
    import http.client

    rate = min(TRACE_RPS, knee_rps) if knee_rps else TRACE_RPS
    probe = synth_dataset(8, JOIN_DIMS, seed=5, clustered=True)
    probe_payload = json.dumps(
        {"index": "default", "queries": probe.tolist(), "k": 5}
    )
    modes: dict[str, dict] = {}
    probe_bodies: dict[str, bytes] = {}
    for mode in ("untraced", "traced"):
        kwargs = {}
        if mode == "traced":
            kwargs = {
                "trace_sample": 1.0,
                "trace_log": trace_dir / "bench_traces.jsonl",
                "slow_ms": 50.0,
            }
        server = make_server(
            {"default": index}, host="127.0.0.1", port=0, **kwargs
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[0], server.server_address[1]
            # Untimed warm-up: engine load + reach calibration.
            with ServiceClient(host, port) as client:
                for _ in range(8):
                    client.knn_query(probe.tolist(), 5)
            rows = []
            for rep in range(TRACE_REPS):
                config = WorkloadConfig(
                    mode="open",
                    duration_s=TRACE_DURATION_S,
                    target_rps=rate,
                    concurrency=32,
                    batch_size=8,
                    range_fraction=0.75,
                    k=5,
                    zipf_s=1.1,
                    seed=rep,
                )
                result = run_against_server(index, host, port, config)
                rows.append(result.summary())
            conn = http.client.HTTPConnection(host, port, timeout=30)
            conn.request("POST", "/knn", probe_payload,
                         {"Content-Type": "application/json"})
            probe_bodies[mode] = conn.getresponse().read()
            conn.close()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)
        modes[mode] = {
            "rows": rows,
            "p99_ms": min(r["p99_ms"] for r in rows),
            "throughput_rps": max(r["throughput_rps"] for r in rows),
        }
    base_p99 = modes["untraced"]["p99_ms"]
    traced_p99 = modes["traced"]["p99_ms"]
    regression_pct = (traced_p99 - base_p99) / base_p99 * 100.0
    return {
        "target_rps": rate,
        "nominal_rps": TRACE_RPS,
        "knee_rps": knee_rps,
        "duration_s": TRACE_DURATION_S,
        "repetitions": TRACE_REPS,
        "untraced": modes["untraced"],
        "traced": modes["traced"],
        "p99_regression_pct": regression_pct,
        "p99_bound_pct": TRACE_P99_BOUND_PCT,
        "overhead_within_bound": bool(
            regression_pct <= TRACE_P99_BOUND_PCT
        ),
        "bit_identical": bool(
            probe_bodies["untraced"] == probe_bodies["traced"]
        ),
    }


def bench_http_observability(index: Path) -> dict:
    """Short HTTP run; /metrics must parse and agree with /stats."""
    server = make_server({"default": index}, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[0], server.server_address[1]
        engine = QueryEngine(index)
        config = WorkloadConfig(
            mode="closed", duration_s=1.5, concurrency=4, batch_size=4,
            range_fraction=0.5, k=5, seed=0,
        )
        sampler = QuerySampler(engine, config)
        result = run_load(
            config,
            lambda: HttpTarget(host, port, index="default"),
            sampler,
        )
        with ServiceClient(host, port) as client:
            stats = client.stats()
            families = parse_prometheus_text(client.metrics_text())

        def scalar(name: str) -> float:
            series = families.get(name, {})
            return sum(
                v for labels, v in series.items()
                if not any(k == "le" for k, _ in labels)
            )

        served_stats = float(stats["requests_served"])
        served_metrics = scalar("repro_service_requests_served_total")
        hits_stats = float(stats["cache"]["hits"])
        hits_metrics = scalar("repro_cache_hits_total")
        http_5xx = sum(
            v for labels, v in
            families.get("repro_http_requests_total", {}).items()
            if any(k == "status" and v2.startswith("5")
                   for k, v2 in labels)
        )
        return {
            "load": result.summary(),
            "metrics_families": len(families),
            "requests_served_stats": served_stats,
            "requests_served_metrics": served_metrics,
            "cache_hits_stats": hits_stats,
            "cache_hits_metrics": hits_metrics,
            "stats_metrics_agree": bool(
                served_stats == served_metrics and hits_stats == hits_metrics
            ),
            "http_5xx": http_5xx,
        }
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


def main() -> dict:
    with tempfile.TemporaryDirectory() as td:
        index, eps = build_bench_index(Path(td))
        sweep = bench_rps_sweep(index)
        closed = bench_closed_loop(index)
        http = bench_http_observability(index)
        frontends = bench_frontend_comparison(index)
        tracing = bench_tracing_overhead(
            index, Path(td),
            knee_rps=frontends["thread"]["saturation_knee_rps"],
        )
    report: dict = {}
    if OUT_PATH.exists():  # extend, never replace (docs/BENCHMARKS.md)
        report = json.loads(OUT_PATH.read_text())
    report["config"] = {
        "n": N_POINTS,
        "d": JOIN_DIMS,
        "eps": eps,
        "target_selectivity": SELECTIVITY,
        "index_kind": "grid",
        "numpy": np.__version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    report["rps_sweep"] = sweep
    report["closed_loop"] = closed
    report["http_observability"] = http
    report["frontend_comparison"] = frontends
    report["tracing_overhead"] = tracing
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {OUT_PATH}")
    return report


if __name__ == "__main__":
    main()
