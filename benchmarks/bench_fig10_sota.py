"""Figure 10: end-to-end comparison against the index-supported SOTA.

Runs the full Figure-10 workload on all four real-world surrogates at the
paper's three selectivity levels: functional joins provide the candidate
counts, result sizes and short-circuit profiles that the end-to-end
response-time models consume.  Speedups of FaSTED over each baseline are
printed next to the paper's (absolute times are not comparable -- the
surrogates are smaller -- but who-wins and the growth with selectivity
must reproduce).
"""

import pytest

from conftest import emit, fig10_sizes
from repro.analysis.experiments import run_real_dataset
from repro.analysis.tables import format_table

#: Paper Figure 10 speedups of FaSTED over (MiSTIC, GDS-Join, TED-Join-Index)
#: at S = 64 / 128 / 256. None = OOM (not shown in the paper's panels).
PAPER_SPEEDUPS = {
    "Sift10M": {"MiSTIC": (2.5, 2.8, 3.2), "GDS-Join": (3.9, 4.8, 6.0),
                "TED-Join-Index": (9.5, 11.0, 14.0)},
    "Tiny5M": {"MiSTIC": (2.5, 3.7, 5.3), "GDS-Join": (2.5, 3.1, 3.9),
               "TED-Join-Index": (33.0, 41.0, 51.0)},
    "Cifar60K": {"MiSTIC": (33.0, 56.0, 49.0), "GDS-Join": (16.0, 30.0, 24.0),
                 "TED-Join-Index": None},
    "Gist1M": {"MiSTIC": (14.0, 18.0, 24.0), "GDS-Join": (18.0, 23.0, 28.0),
               "TED-Join-Index": None},
}

SELECTIVITIES = (64, 128, 256)


@pytest.fixture(scope="module")
def outcomes():
    sizes = fig10_sizes()
    return {
        name: run_real_dataset(
            name, selectivities=SELECTIVITIES, n=sizes[name], with_accuracy=False
        )
        for name in PAPER_SPEEDUPS
    }


def test_fig10_sota_comparison(benchmark, outcomes):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # work in fixture
    rows = []
    for name, out in outcomes.items():
        for row in out.fig10_rows:
            entry = [f"{name} (n={out.n_points}, d={out.dims})", row.selectivity]
            for method in ("MiSTIC", "GDS-Join", "TED-Join-Index"):
                su = row.speedup_over(method)
                paper = PAPER_SPEEDUPS[name][method]
                p = (
                    f"{paper[SELECTIVITIES.index(row.selectivity)]:.1f}"
                    if paper
                    else "OOM"
                )
                entry.append(f"{su:.1f} (paper {p})" if su else f"OOM (paper {p})")
            rows.append(entry)
    emit(
        "fig10_sota",
        format_table(
            ("Dataset", "S", "vs MiSTIC", "vs GDS-Join", "vs TED-Join-Index"),
            rows,
            title="Figure 10: FaSTED speedup over index-supported SOTA "
            "(end-to-end, surrogate scale)",
        ),
    )

    growing = total_series = 0
    for name, out in outcomes.items():
        speeds = {m: [] for m in ("MiSTIC", "GDS-Join", "TED-Join-Index")}
        for row in out.fig10_rows:
            for m in speeds:
                speeds[m].append(row.speedup_over(m))
        # FaSTED wins against every supported baseline at every selectivity
        # -- the paper's headline result ("superior in all experimental
        # scenarios").
        for m, vals in speeds.items():
            if PAPER_SPEEDUPS[name][m] is None:
                assert all(v is None for v in vals), (name, m)
                continue
            assert all(v is not None and v > 1.0 for v in vals), (name, m, vals)
            total_series += 1
            growing += max(vals) > vals[0]
        # TED-Join-Index OOMs exactly where the paper says (d >= 512).
        if out.dims >= 512:
            assert PAPER_SPEEDUPS[name]["TED-Join-Index"] is None
    # Speedup grows with selectivity (paper observation (1)).  At surrogate
    # scale the trend is noisy (fixed transfer overheads weigh more), so we
    # require it for the majority of series rather than every one.
    assert growing >= total_series / 2, (growing, total_series)


def test_fasted_response_flat_in_selectivity(benchmark, outcomes):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Observation (1): FaSTED's kernel time is selectivity-independent."""
    for name, out in outcomes.items():
        kernels = [
            next(o for o in row.outcomes if o.name == "FaSTED").kernel_s
            for row in out.fig10_rows
        ]
        assert max(kernels) <= 1.01 * min(kernels), name
