"""Figure 9: brute-force tensor-core throughput vs dimensionality.

FaSTED (FP16-32) against TED-Join-Brute (FP64) on Synth |D|=1e5 across
d = 64..4096, with the two hardware peaks for context.  Shape checks:
FaSTED scales up with d toward ~49% of the FP16-32 peak; TED-Join-Brute
starts at 6.8% of the FP64 peak, declines with d, and OOMs where the paper
could no longer run it.
"""

from conftest import emit
from repro.analysis.experiments import run_fig9
from repro.analysis.tables import format_table

#: Paper Figure 9 FaSTED series (read off the plot / matching Fig 8 row).
PAPER_FASTED = {64: 17, 128: 31, 256: 57, 512: 94, 1024: 133, 2048: 150, 4096: 154}


def test_fig9_brute_force_throughput(benchmark):
    result = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    rows = []
    for d, f, t in zip(result.dims, result.fasted_tflops, result.tedjoin_tflops):
        rows.append(
            (
                d,
                f"{f:.1f}",
                f"{t:.2f}" if t is not None else "OOM",
                PAPER_FASTED[d],
            )
        )
    emit(
        "fig9_brute_tc",
        format_table(
            ("d", "FaSTED TFLOPS", "TED-Join-Brute TFLOPS", "Paper FaSTED"),
            rows,
            title=(
                "Figure 9: brute-force TC throughput vs d (Synth |D|=1e5)\n"
                f"peaks: FP16-32 = {result.fp16_peak:.0f} TFLOPS, "
                f"FP64 TC = {result.fp64_peak:.1f} TFLOPS"
            ),
        ),
    )

    fasted = dict(zip(result.dims, result.fasted_tflops))
    ted = dict(zip(result.dims, result.tedjoin_tflops))
    # FaSTED grows with d; within 20% of the paper at every point.
    vals = [fasted[d] for d in result.dims]
    assert vals == sorted(vals)
    for d, v in fasted.items():
        assert abs(v - PAPER_FASTED[d]) / PAPER_FASTED[d] < 0.20, d
    # FaSTED reaches ~49% of peak at d=4096 but never exceeds peak.
    assert 0.42 <= fasted[4096] / result.fp16_peak <= 0.55
    # TED-Join: 6.8% of FP64 peak at d=64, monotone decline, then OOM.
    assert ted[64] is not None
    assert abs(ted[64] / result.fp64_peak - 0.068) < 0.005
    supported = [t for t in result.tedjoin_tflops if t is not None]
    assert supported == sorted(supported, reverse=True)
    assert ted[4096] is None  # paper Table 6's OOM
    # The headline gap: FaSTED is orders of magnitude faster wherever both run.
    for d in result.dims:
        if ted[d] is not None:
            assert fasted[d] > 10 * ted[d]
