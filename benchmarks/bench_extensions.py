"""Extension experiments beyond the paper's evaluation.

Three studies the paper motivates but does not run:

* **SXM power budget** (Section 5): the paper argues its 154 TFLOPS is a
  lower bound imposed by the PCIe card's 250 W limit and that a 400 W SXM
  A100 would do better.  The simulator can simply swap the spec.
* **Input scaling** (Section 5 future work): conditioning data into the
  FP16 sweet spot via :mod:`repro.core.scaling` and measuring the accuracy
  gain.
* **Box #1 on other GPUs**: the reuse-requirement arithmetic that sized
  FaSTED's tiles, evaluated for the V100 to show the tile choice is
  A100-specific.
"""

import numpy as np

from conftest import emit
from repro.analysis.tables import format_table
from repro.core.accuracy import distance_error_stats, overlap_accuracy
from repro.core.scaling import fit_scaler
from repro.gpusim.boxone import reuse_requirements
from repro.gpusim.spec import A100_PCIE, A100_SXM, V100_SXM2
from repro.kernels.fasted import FastedKernel
from repro.kernels.gdsjoin import GdsJoinKernel


def test_sxm_power_budget_whatif(benchmark):
    """Conclusion's what-if: the 400 W part sustains a higher clock."""

    def run():
        rows = []
        for spec in (A100_PCIE, A100_SXM):
            k = FastedKernel(spec)
            t = k.timing(100_000, 4096)
            rows.append(
                (
                    spec.name,
                    f"{spec.power_budget_w:.0f}",
                    f"{t.clock_hz / 1e9:.2f}",
                    f"{t.derived_tflops(k.config.total_flops(100_000, 4096)):.1f}",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_sxm_whatif",
        format_table(
            ("GPU", "Power (W)", "Clock (GHz)", "TFLOPS"),
            rows,
            title="Extension: power-budget what-if (Synth |D|=1e5, d=4096)",
        ),
    )
    pcie_tf = float(rows[0][3])
    sxm_tf = float(rows[1][3])
    assert sxm_tf > pcie_tf * 1.1  # the paper's conjecture, quantified
    assert float(rows[1][2]) > float(rows[0][2])


def test_input_scaling_accuracy(benchmark):
    """Future work: FP16 preconditioning reduces quantization error."""
    rng = np.random.default_rng(0)
    # Adversarial-for-FP16 data: large common offset, small spread.
    centers = rng.normal(0, 2.0, size=(12, 64))
    data = 900.0 + centers[rng.integers(0, 12, 1500)] + rng.normal(
        0, 0.3, (1500, 64)
    )
    # Calibrate eps onto the distance distribution so the radius sits in a
    # region with real boundary density (otherwise no pair can flip).
    from repro.core.selectivity import epsilon_for_selectivity

    eps = epsilon_for_selectivity(data, 48)

    def run():
        truth = GdsJoinKernel(precision="fp64").self_join(data, eps).result
        raw = FastedKernel().self_join(data, eps)
        scaler = fit_scaler(data)
        scaled_res = FastedKernel().self_join(
            scaler.transform(data), scaler.transform_radius(eps)
        )
        ov_raw = overlap_accuracy(raw, truth)
        ov_scaled = overlap_accuracy(scaled_res, truth)
        err_raw = distance_error_stats(raw, truth).std
        return ov_raw, ov_scaled, err_raw

    ov_raw, ov_scaled, err_raw = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_scaling_accuracy",
        format_table(
            ("Configuration", "Overlap accuracy"),
            [("raw FP16 (offset 900)", f"{ov_raw:.5f}"),
             ("scaled/centred FP16", f"{ov_scaled:.5f}")],
            title="Extension: input-scaling accuracy study "
            "(paper Section 5 future work)",
        ),
    )
    # Scaling must help on offset-heavy data, materially.
    assert ov_scaled > ov_raw
    assert ov_scaled > 0.995
    assert err_raw > 0  # raw data does suffer measurable error


def test_boxone_across_gpus(benchmark):
    def run():
        rows = []
        for spec in (A100_PCIE, V100_SXM2):
            req = reuse_requirements(spec)
            rows.append(
                (
                    spec.name,
                    f"{req.required_l2_reuse:.0f}",
                    f"{req.required_smem_reuse:.0f}",
                    req.block_tile_reuse,
                    req.warp_tile_reuse,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_boxone",
        format_table(
            ("GPU", "L2 reuse req.", "SMEM reuse req.", "block tile", "warp tile"),
            rows,
            title="Extension: Box #1 reuse requirements across GPUs",
        ),
    )
    a100 = reuse_requirements(A100_PCIE)
    # The paper's numbers: ~98x (L2) and ~35x (SMEM).
    assert round(a100.required_l2_reuse) in range(95, 101)
    assert round(a100.required_smem_reuse) in range(33, 37)
    assert a100.block_tile_sufficient and a100.warp_tile_sufficient
    # V100's lower FP16 peak relaxes the shared-memory requirement (its
    # L2 is proportionally slower, so that requirement barely moves).
    v100 = reuse_requirements(V100_SXM2)
    assert v100.required_smem_reuse < a100.required_smem_reuse
