"""Table 5: leave-one-out sensitivity study of the eight optimizations.

Disables each Section-3.3 optimization in isolation on Synth |D|=1e5,
d=4096 and reports derived TFLOPS next to the paper's measurements.
Checks that every optimization matters, that the three the paper singles
out (warp tile, async copies, block tile) have the largest impact, and
that the modeled values track the measured ones.
"""

from conftest import emit
from repro.analysis.experiments import run_table5
from repro.analysis.tables import format_table


def test_table5_leave_one_out(benchmark):
    result = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    rows = [
        (r.disabled, f"{r.tflops:.1f}", f"{r.paper_tflops:.1f}")
        for r in result.rows
    ]
    rows.append(
        (
            "(all enabled)",
            f"{result.baseline_tflops:.1f}",
            f"{result.paper_baseline:.1f}",
        )
    )
    emit(
        "table5_ablation",
        format_table(
            ("Disabled Optimization", "Model TFLOPS", "Paper TFLOPS"),
            rows,
            title="Table 5: leave-one-out optimization study "
            "(Synth |D|=1e5, d=4096)",
        ),
    )

    by_name = {r.disabled: r.tflops for r in result.rows}
    base = result.baseline_tflops
    # Every ablation hurts.
    assert all(v < base for v in by_name.values())
    # The paper's three "exceptional impact" optimizations are the three
    # largest drops in the model too.
    worst3 = sorted(by_name, key=by_name.get)[:3]
    assert set(worst3) == {"warp_tile", "memcpy_async", "block_tile"}
    # Model tracks paper within 20% per row.
    for r in result.rows:
        assert abs(r.tflops - r.paper_tflops) / r.paper_tflops < 0.20, r.disabled
    assert abs(base - result.paper_baseline) / result.paper_baseline < 0.10
