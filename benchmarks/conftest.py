"""Shared benchmark utilities.

Every benchmark regenerates one table/figure of the paper (DESIGN.md
Section 4 maps them).  Rendered artifacts are printed and also written to
``results/`` so ``bench_output.txt`` plus ``results/*.txt`` form the full
reproduction record.  Set ``REPRO_FULL=1`` to run the data-driven
benchmarks at the larger default surrogate sizes.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Quick-mode surrogate sizes (minutes-scale full benchmark run).
QUICK_FIG10_SIZES = {
    "Sift10M": 4000,
    "Tiny5M": 3000,
    "Cifar60K": 3000,
    "Gist1M": 2000,
}


def full_mode() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


def fig10_sizes() -> dict[str, int]:
    if full_mode():
        from repro.analysis.experiments import DEFAULT_FIG10_SIZES

        return dict(DEFAULT_FIG10_SIZES)
    return dict(QUICK_FIG10_SIZES)


def emit(name: str, text: str) -> None:
    """Print a rendered artifact and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")
