# Query-serving container: one process, one event loop, one volume.
#
# The image holds the code only; indexes live on the /data volume so a
# rebuilt image never invalidates them.  Build an index with a one-off
# container (see docker-compose.yml) or on the host:
#
#   docker build -t repro-serve .
#   docker run --rm -v ./indexes:/data repro-serve \
#       python -m repro index build /data/index --n 20000 --d 64 --selectivity 64
#   docker run --rm -p 8787:8787 -v ./indexes:/data repro-serve

FROM python:3.11-slim

# gcc enables the optional native round-toward-zero kernel at first
# import; the NumPy fallback is bit-identical, so this is a fast path,
# not a requirement.
RUN apt-get update \
    && apt-get install -y --no-install-recommends gcc libc6-dev \
    && rm -rf /var/lib/apt/lists/*

RUN python -m pip install --no-cache-dir numpy

WORKDIR /app
COPY src/ src/
ENV PYTHONPATH=/app/src \
    PYTHONUNBUFFERED=1

VOLUME /data
EXPOSE 8787

# The server's own liveness route; the JSON body carries the registered
# index names, but liveness only needs the status code.
HEALTHCHECK --interval=10s --timeout=3s --start-period=20s --retries=3 \
    CMD ["python", "-c", "import urllib.request, sys; sys.exit(0 if urllib.request.urlopen('http://127.0.0.1:8787/healthz', timeout=2).status == 200 else 1)"]

CMD ["python", "-m", "repro", "serve", \
     "--index", "/data/index", \
     "--host", "0.0.0.0", "--port", "8787", \
     "--frontend", "async"]
