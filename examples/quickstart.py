#!/usr/bin/env python
"""Quickstart: a mixed-precision distance-similarity self-join.

Reproduces the core FaSTED workflow on synthetic data:

1. generate a dataset,
2. check it fits the FP16 dynamic range,
3. calibrate the search radius to a target selectivity (the paper's way of
   standardizing workloads),
4. run the FP16-32 self-join,
5. validate accuracy against the FP64 ground truth,
6. ask the simulator what this would cost on a real A100.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    epsilon_for_selectivity,
    overlap_accuracy,
    self_join,
)
from repro.fp.fp16 import dynamic_range_report
from repro.kernels.fasted import FastedKernel


def main() -> None:
    rng = np.random.default_rng(0)
    n, d = 4000, 128
    centers = rng.normal(0, 3.0, size=(16, d))
    data = centers[rng.integers(0, 16, n)] + rng.normal(0, 0.5, size=(n, d))
    print(f"dataset: {n} points, {d} dimensions")

    # 1. Is the data FP16-safe?
    report = dynamic_range_report(data)
    print(
        f"FP16 range check: fits={report.fits}, "
        f"max |x| = {report.max_abs:.2f}, "
        f"max relative quantization error = {report.max_rel_error:.2e}"
    )

    # 2. Calibrate eps so each point finds ~64 neighbors on average.
    eps = epsilon_for_selectivity(data, 64)
    print(f"calibrated eps = {eps:.4f} for target selectivity S = 64")

    # 3. FaSTED (FP16 storage, FP32 accumulation).
    result = self_join(data, eps)
    print(
        f"FaSTED: {result.pairs_i.size} pairs, "
        f"measured selectivity = {result.selectivity:.1f}"
    )

    # 4. FP64 ground truth (GDS-Join in FP64 mode, as in the paper).
    truth = self_join(data, eps, method="gds-join", precision="fp64")
    print(f"overlap accuracy vs FP64 (paper Eq. 3): {overlap_accuracy(result, truth):.6f}")

    # 5. What would this cost on the simulated A100?
    kernel = FastedKernel()
    timing = kernel.timing(n, d)
    flops = kernel.config.total_flops(n, d)
    rt = kernel.response_time(n, d, n_result_pairs=result.pairs_i.size)
    print(
        f"simulated A100: kernel {timing.kernel_seconds * 1e3:.2f} ms "
        f"({timing.derived_tflops(flops):.1f} derived TFLOPS, "
        f"clock {timing.clock_hz / 1e9:.2f} GHz), "
        f"end-to-end {rt.total_s * 1e3:.2f} ms"
    )


if __name__ == "__main__":
    main()
