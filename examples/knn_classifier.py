#!/usr/bin/env python
"""k-nearest-neighbor classification on mixed-precision distances.

The paper's introduction motivates FaSTED with the algorithms built on
Euclidean distance subroutines -- kNN among them.  This example builds a
kNN classifier whose distance computations run through the FaSTED
numerics (:func:`repro.pairwise_sq_dists` with ``precision="fp16-32"``)
and shows that classification accuracy is indistinguishable from FP64:
the label of the k-th neighbor is far more robust than the 4th decimal of
its distance.

Run:  python examples/knn_classifier.py
"""

import numpy as np

from repro import pairwise_sq_dists


def make_blobs(n_per_class: int, d: int, centers: np.ndarray, seed: int = 0):
    """Sample labeled points around shared class centers."""
    rng = np.random.default_rng(seed)
    n_classes = len(centers)
    xs, ys = [], []
    for c in range(n_classes):
        xs.append(centers[c] + rng.normal(0, 1.0, size=(n_per_class, d)))
        ys.append(np.full(n_per_class, c))
    x = np.concatenate(xs)
    y = np.concatenate(ys)
    perm = rng.permutation(len(x))
    return x[perm], y[perm]


def knn_predict(train_x, train_y, test_x, k: int, precision: str) -> np.ndarray:
    """Classify by majority vote among the k nearest training points."""
    d2 = pairwise_sq_dists(test_x, train_x, precision=precision)
    nearest = np.argpartition(d2, k, axis=1)[:, :k]
    votes = train_y[nearest]
    out = np.empty(len(test_x), dtype=train_y.dtype)
    for i, row in enumerate(votes):
        out[i] = np.bincount(row).argmax()
    return out


def main() -> None:
    d, n_classes, k = 96, 8, 15
    centers = np.random.default_rng(0).normal(0, 2.5, size=(n_classes, d))
    train_x, train_y = make_blobs(400, d, centers, seed=1)
    test_x, test_y = make_blobs(80, d, centers, seed=2)
    print(
        f"kNN (k={k}) on {len(train_x)} train / {len(test_x)} test points, "
        f"{d} dims, {n_classes} classes"
    )

    for precision in ("fp64", "fp32", "fp16-32"):
        pred = knn_predict(train_x, train_y, test_x, k, precision)
        acc = (pred == test_y).mean()
        print(f"  {precision:8s} accuracy = {acc:.4f}")

    # Agreement between mixed precision and FP64 on the predictions
    # themselves (stronger than matching aggregate accuracy).
    p64 = knn_predict(train_x, train_y, test_x, k, "fp64")
    p16 = knn_predict(train_x, train_y, test_x, k, "fp16-32")
    agree = (p64 == p16).mean()
    print(f"prediction agreement fp16-32 vs fp64: {agree:.4f}")
    assert agree > 0.98, "mixed precision changed kNN predictions materially"


if __name__ == "__main__":
    main()
