#!/usr/bin/env python
"""DBSCAN density clustering on a mixed-precision self-join.

Another of the paper's motivating applications (and the use case of Ji &
Wang's tensor-core DBSCAN, paper Section 2.4): DBSCAN's expensive step is
exactly the eps-neighborhood computation FaSTED provides.  This example
implements DBSCAN *on top of the public self-join API* -- the neighbor
lists from :func:`repro.self_join` feed a standard core-point expansion --
and checks that FP16-32 neighborhoods produce the same clustering as FP64.

Run:  python examples/dbscan_clustering.py
"""

from collections import deque

import numpy as np

from repro import NeighborResult, self_join


def dbscan_from_result(result: NeighborResult, min_pts: int) -> np.ndarray:
    """DBSCAN given a precomputed eps-neighborhood self-join.

    Returns labels: -1 = noise, otherwise a 0-based cluster id.  Neighbor
    counts include the point itself, matching the classic definition.
    """
    n = result.n_points
    indptr, indices = result.neighbors_csr()
    n_neighbors = np.diff(indptr) + 1  # + the point itself
    core = n_neighbors >= min_pts
    labels = np.full(n, -1, dtype=np.int64)
    cluster = 0
    for seed in range(n):
        if labels[seed] != -1 or not core[seed]:
            continue
        labels[seed] = cluster
        queue = deque([seed])
        while queue:
            p = queue.popleft()
            if not core[p]:
                continue
            for q in indices[indptr[p] : indptr[p + 1]]:
                if labels[q] == -1:
                    labels[q] = cluster
                    queue.append(q)
        cluster += 1
    return labels


def adjusted_agreement(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of point pairs on which two clusterings agree."""
    rng = np.random.default_rng(0)
    i = rng.integers(0, len(a), 20000)
    j = rng.integers(0, len(a), 20000)
    same_a = (a[i] == a[j]) & (a[i] >= 0)
    same_b = (b[i] == b[j]) & (b[i] >= 0)
    return float((same_a == same_b).mean())


def main() -> None:
    rng = np.random.default_rng(3)
    d = 64
    blobs = [
        rng.normal(0, 0.4, size=(600, d)) + rng.normal(0, 6, size=d)
        for _ in range(5)
    ]
    noise = rng.uniform(-12, 12, size=(150, d))
    data = np.concatenate(blobs + [noise])
    eps, min_pts = 0.4 * np.sqrt(2 * d), 8
    print(f"DBSCAN on {len(data)} points, {d} dims, eps={eps:.2f}, minPts={min_pts}")

    labels = {}
    for method, precision in (("fasted", None), ("gds-join", "fp64")):
        res = self_join(data, eps, method=method, precision=precision)
        labels[method] = dbscan_from_result(res, min_pts)
        n_clusters = labels[method].max() + 1
        n_noise = int((labels[method] == -1).sum())
        print(
            f"  {method:9s}: {n_clusters} clusters, {n_noise} noise points"
        )

    agree = adjusted_agreement(labels["fasted"], labels["gds-join"])
    print(f"pairwise clustering agreement (FP16-32 vs FP64): {agree:.5f}")
    assert labels["fasted"].max() == labels["gds-join"].max()
    assert agree > 0.999


if __name__ == "__main__":
    main()
