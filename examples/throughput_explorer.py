#!/usr/bin/env python
"""Throughput explorer: interrogate the A100 timing model.

Walks through the performance side of the reproduction: the Box #1 reuse
derivation that sized FaSTED's tiles, a miniature Figure-8 sweep, the
leave-one-out ablation, and the PCIe-vs-SXM power-budget what-if from the
paper's conclusion.  Everything here is the timing model -- no data is
generated -- so it runs in milliseconds at the paper's full scales.

Run:  python examples/throughput_explorer.py
"""

from repro.analysis.experiments import run_fig8, run_table5
from repro.analysis.tables import format_heatmap, format_table
from repro.gpusim.boxone import reuse_requirements
from repro.gpusim.spec import A100_PCIE, A100_SXM
from repro.kernels.fasted import FastedKernel


def main() -> None:
    # --- Box #1: why the tiles are the size they are -------------------
    req = reuse_requirements(A100_PCIE)
    print("Box #1 (A100 PCIe):")
    print(f"  elements/second at peak : {req.elements_per_second:.3g}")
    print(f"  required reuse vs L2    : {req.required_l2_reuse:.0f}x")
    print(f"  required reuse vs SMEM  : {req.required_smem_reuse:.0f}x")
    print(
        f"  achieved: block tile {req.block_tile_reuse}x "
        f"(sufficient={req.block_tile_sufficient}), "
        f"warp tile {req.warp_tile_reuse}x "
        f"(sufficient={req.warp_tile_sufficient})"
    )

    # --- A small Figure-8 sweep ----------------------------------------
    sizes = (10_000, 100_000, 1_000_000)
    dims = (128, 512, 2048, 4096)
    fig8 = run_fig8(sizes=sizes, dims=dims)
    print()
    print(
        format_heatmap(
            fig8.tflops,
            [f"{n:,}" for n in sizes],
            dims,
            title="Derived TFLOPS (timing model, paper-scale workloads):",
            corner="|D| \\ d",
            fmt="{:.0f}",
        )
    )

    # --- Table 5 ablation ----------------------------------------------
    t5 = run_table5()
    rows = [(r.disabled, f"{r.tflops:.1f}") for r in t5.rows]
    rows.append(("(all enabled)", f"{t5.baseline_tflops:.1f}"))
    print()
    print(format_table(("Disabled optimization", "TFLOPS"), rows))

    # --- The conclusion's SXM what-if -----------------------------------
    print()
    print("Power-budget what-if at |D|=1e5, d=4096:")
    for spec in (A100_PCIE, A100_SXM):
        k = FastedKernel(spec)
        t = k.timing(100_000, 4096)
        tf = t.derived_tflops(k.config.total_flops(100_000, 4096))
        print(
            f"  {spec.name:26s} {spec.power_budget_w:4.0f} W -> "
            f"{t.clock_hz / 1e9:.2f} GHz, {tf:6.1f} TFLOPS"
            f"{'  (throttled)' if t.throttled else ''}"
        )


if __name__ == "__main__":
    main()
