#!/usr/bin/env python
"""Similarity search on a real-world-style dataset: all five methods.

Runs the paper's Scenario 2 workload (index-supported distance-similarity
search) on the Sift10M surrogate: every implementation computes the same
self-join, the functional results are cross-validated, and the simulated
end-to-end response times are reported like a Figure-10 panel.

Run:  python examples/similarity_search_benchmark.py
"""

import time

from repro import epsilon_for_selectivity, overlap_accuracy
from repro.analysis.experiments import run_real_dataset
from repro.analysis.tables import format_table
from repro.core.api import self_join
from repro.data.realworld import load_surrogate


def main() -> None:
    data, spec = load_surrogate("Sift10M", n=4000)
    print(
        f"{spec.name} surrogate: {data.shape[0]} points "
        f"(paper: {spec.paper_n:,}), d={spec.paper_d}"
    )
    eps = epsilon_for_selectivity(data, 64)
    print(f"eps = {eps:.2f} (calibrated for S=64; paper used {spec.paper_eps[0]})")

    # Functional cross-validation of all five implementations.
    print("\nfunctional self-joins:")
    results = {}
    for method in ("fasted", "ted-join-brute", "ted-join-index", "gds-join", "mistic"):
        t0 = time.perf_counter()
        results[method] = self_join(data, eps, method=method)
        print(
            f"  {method:15s} S={results[method].selectivity:7.2f}  "
            f"({time.perf_counter() - t0:5.2f}s wall, NumPy)"
        )
    truth = results["ted-join-brute"]  # exact FP64
    for method, res in results.items():
        ov = overlap_accuracy(res, truth)
        flag = "exact" if ov == 1.0 else f"{ov:.6f}"
        print(f"  overlap vs FP64 brute force: {method:15s} {flag}")

    # Modeled end-to-end response times (a one-dataset Figure 10 panel).
    out = run_real_dataset(
        "Sift10M", n=4000, selectivities=(64,), with_accuracy=False
    )
    row = out.fig10_rows[0]
    rows = []
    for o in row.outcomes:
        su = row.speedup_over(o.name)
        rows.append(
            (
                o.name,
                f"{o.total_s * 1e3:.2f} ms" if o.total_s else "OOM",
                f"{su:.1f}x" if su else "-",
            )
        )
    print()
    print(
        format_table(
            ("Method", "Modeled end-to-end", "FaSTED speedup"),
            rows,
            title="Simulated A100 response times (S=64):",
        )
    )


if __name__ == "__main__":
    main()
