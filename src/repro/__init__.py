"""FaSTED reproduction: mixed-precision tensor-core Euclidean distances.

A Python reproduction of "Fast and Scalable Mixed Precision Euclidean
Distance Calculations Using GPU Tensor Cores" (Curless & Gowanlock,
ICPP 2025) on a simulated A100-class GPU.  See README.md for a tour and
docs/ARCHITECTURE.md for the system layering and the engine's execution
shapes (in-memory, out-of-core streaming, batched candidate GEMMs).

Quickstart::

    import numpy as np
    from repro import self_join, epsilon_for_selectivity

    data = np.random.default_rng(0).normal(size=(4000, 128))
    eps = epsilon_for_selectivity(data, 64)
    result = self_join(data, eps)          # FaSTED, FP16-32
    print(result.selectivity, result.total_result_size)
"""

from repro.core import (
    METHODS,
    STREAMABLE_METHODS,
    JoinResult,
    NeighborResult,
    build_index,
    distance_error_stats,
    epsilon_for_selectivity,
    join,
    join_stream,
    open_index,
    overlap_accuracy,
    pairwise_sq_dists,
    query,
    self_join,
    self_join_stream,
)
from repro.gpusim import A100_PCIE, A100_SXM, DEFAULT_SPEC, V100_SXM2, GpuSpec

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "METHODS",
    "STREAMABLE_METHODS",
    "self_join",
    "self_join_stream",
    "join",
    "join_stream",
    "build_index",
    "open_index",
    "query",
    "pairwise_sq_dists",
    "NeighborResult",
    "JoinResult",
    "epsilon_for_selectivity",
    "overlap_accuracy",
    "distance_error_stats",
    "GpuSpec",
    "A100_PCIE",
    "A100_SXM",
    "V100_SXM2",
    "DEFAULT_SPEC",
]
