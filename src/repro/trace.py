"""Zero-dependency request tracing: spans, context propagation, sampling.

The serving stack's metrics (:mod:`repro.service.metrics`) say *that*
p99 moved; this module says *where*.  A **trace** is the tree of timed
**spans** one request produces on its way through the stack -- HTTP
front end, admission queue, adaptive batch window, engine dispatch,
per-stage kernel work -- identified by a ``trace_id`` that doubles as
the request id echoed in every ``X-Request-Id`` response header.

Design points, all stdlib:

* **Spans** carry ids, parent links, a wall-clock start, a monotonic
  duration, typed attributes, and a *bounded* event list -- a span can
  never grow without limit no matter how chatty an instrumentation
  site is.
* **Context propagation** rides :mod:`contextvars`, so the "current
  span" follows both threads (each handler thread sees its own) and
  asyncio tasks (each task inherits its creator's context) without any
  explicit plumbing.  Crossing an *explicit* boundary -- the dispatcher
  thread picking a queued request back up -- uses :func:`activate`.
* **Sampling decides retention, not creation.**  Spans are always
  cheap to create (the per-stage histograms in ``/metrics`` need their
  timings regardless); when a root span finishes, the policy decides
  whether the completed trace is *kept*: probabilistically
  (``sample``), always on error (``on_error``), and always when the
  root ran longer than ``slow_threshold_s`` (the slow-query log).
* **Storage** is a lock-protected ring buffer of completed traces
  (``GET /trace/recent``, ``/trace/<id>``) plus an optional JSONL
  exporter -- one span per line, rendered offline by
  ``python -m repro trace report``.

The engine side of the contract is :class:`TraceHooks`: executors in
:mod:`repro.core.engine` fetch the ambient hooks object once per call
and accumulate per-stage seconds into it (no-op when absent), and the
process pools copy ``hooks.trace_id`` into worker task metadata so a
pool batch is attributable to the request that spawned it.
"""

from __future__ import annotations

import contextvars
import json
import os
import random
import re
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "STAGES",
    "Span",
    "TraceHooks",
    "Tracer",
    "activate",
    "record_ambient_span",
    "current_hooks",
    "current_request_id",
    "current_span",
    "new_id",
    "parse_traceparent",
    "read_jsonl",
    "render_report",
    "sanitize_request_id",
    "use_hooks",
]

#: The engine pipeline stages executors attribute time to.  A fixed
#: vocabulary: these become ``repro_stage_seconds{stage=...}`` label
#: values and per-stage load-report columns, so the set must stay
#: bounded and stable.
STAGES = ("adjacency", "gather", "gemm", "rz", "commit", "worker")

#: Inbound request ids are echoed into headers, logs, and metrics;
#: anything not matching this conservative shape is replaced with a
#: fresh id rather than propagated.
_ID_RE = re.compile(r"^[A-Za-z0-9._:-]{1,64}$")

#: Hard caps: a span keeps at most this many events/attributes, a trace
#: at most this many spans.  Over-limit additions are counted, not kept.
MAX_EVENTS_PER_SPAN = 32
MAX_ATTRS_PER_SPAN = 32
MAX_SPANS_PER_TRACE = 512


def new_id() -> str:
    """A fresh 64-bit hex id (trace and span ids share the format)."""
    return os.urandom(8).hex()


def sanitize_request_id(raw: str | None) -> str | None:
    """Return ``raw`` if it is safe to propagate as a trace id.

    Callers pass the inbound ``X-Request-Id`` header; a header that is
    absent, too long, or carries characters that would need escaping in
    logs/headers yields ``None`` (mint a fresh id instead).
    """
    if raw is None:
        return None
    raw = raw.strip()
    return raw if _ID_RE.match(raw) else None


def parse_traceparent(header: str | None) -> tuple[str, str] | None:
    """Parse a W3C ``traceparent`` header into ``(trace_id, parent_id)``.

    Only the ``00-<32 hex>-<16 hex>-<2 hex>`` shape is accepted; any
    other version or malformation returns ``None`` and the request gets
    a fresh trace (the spec's "restart the trace" fallback).
    """
    if header is None:
        return None
    parts = header.strip().split("-")
    if len(parts) != 4 or parts[0] != "00":
        return None
    trace_id, parent_id = parts[1].lower(), parts[2].lower()
    if not re.fullmatch(r"[0-9a-f]{32}", trace_id):
        return None
    if not re.fullmatch(r"[0-9a-f]{16}", parent_id):
        return None
    if trace_id == "0" * 32 or parent_id == "0" * 16:
        return None
    return trace_id, parent_id


# ----------------------------------------------------------------------
# Context propagation
# ----------------------------------------------------------------------

_current_span: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_current_span", default=None
)
_current_hooks: contextvars.ContextVar["TraceHooks | None"] = (
    contextvars.ContextVar("repro_trace_hooks", default=None)
)


def current_span() -> "Span | None":
    """The ambient span of this thread/task, or ``None``."""
    return _current_span.get()


def current_request_id() -> str | None:
    """The ambient trace id (== request id), or ``None``.

    This is what the structured-log formatter injects into every log
    record emitted while a request is in flight.
    """
    span = _current_span.get()
    return span.trace_id if span is not None else None


@contextmanager
def activate(span: "Span | None") -> Iterator["Span | None"]:
    """Make ``span`` the ambient span for the duration of the block.

    The explicit hand-off for crossing execution contexts the implicit
    :mod:`contextvars` inheritance cannot follow -- e.g. the dispatcher
    thread resuming work on a request that was queued by a handler
    thread.
    """
    token = _current_span.set(span)
    try:
        yield span
    finally:
        _current_span.reset(token)


def record_ambient_span(
    name: str,
    duration_s: float,
    attrs: "dict[str, Any] | None" = None,
) -> "Span | None":
    """Attach an already-measured interval to the ambient span, if any.

    The convenience for instrumentation sites that have no tracer
    reference of their own (e.g. the index cache timing a load): the
    parent span carries its tracer, so a child can be recorded through
    it.  No ambient span means no trace in flight -- returns ``None``.
    """
    parent = _current_span.get()
    if parent is None:
        return None
    return parent._tracer.record_span(
        name, duration_s, parent=parent, attrs=attrs
    )


def current_hooks() -> "TraceHooks | None":
    """The ambient engine profiling hooks, or ``None`` (the default)."""
    return _current_hooks.get()


@contextmanager
def use_hooks(hooks: "TraceHooks | None") -> Iterator["TraceHooks | None"]:
    """Install engine profiling hooks for the duration of the block."""
    token = _current_hooks.set(hooks)
    try:
        yield hooks
    finally:
        _current_hooks.reset(token)


class TraceHooks:
    """Per-stage time accumulator the engine executors feed.

    The seam between the service and the engine: the service creates
    one per engine dispatch (carrying the originating ``trace_id``),
    installs it with :func:`use_hooks`, and afterwards reads
    ``hooks.stages`` -- a ``{stage: seconds}`` dict over :data:`STAGES`
    -- into span attributes and the ``repro_stage_seconds`` histograms.
    Executors call :meth:`record` with whatever granularity is natural;
    repeated records for one stage accumulate.
    """

    __slots__ = ("trace_id", "stages", "_lock")

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = trace_id
        self.stages: dict[str, float] = {}
        # Tiled executors record from pool threads; a lock keeps the
        # accumulation lossless (perf_counter deltas are tiny relative
        # to the per-tile work being timed).
        self._lock = threading.Lock()

    def record(self, stage: str, seconds: float) -> None:
        with self._lock:
            self.stages[stage] = self.stages.get(stage, 0.0) + float(seconds)

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return dict(self.stages)

    def merge(self, other: "TraceHooks") -> None:
        for stage, seconds in other.snapshot().items():
            self.record(stage, seconds)


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------


class Span:
    """One timed operation inside a trace.

    Create via :meth:`Tracer.start_trace` / :meth:`Tracer.start_span` /
    the :meth:`Tracer.span` context manager -- never directly.  Spans
    time with :func:`time.perf_counter` (monotonic; wall-clock only
    stamps the start) and must be finished exactly once; finishing the
    *root* span completes the trace and runs the retention policy.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_s",
        "duration_s",
        "attrs",
        "events",
        "status",
        "error",
        "_tracer",
        "_t0",
        "_finished",
        "_dropped",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        name: str,
        *,
        parent_id: str | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = new_id()
        self.parent_id = parent_id
        self.name = str(name)
        self.start_s = time.time()
        self._t0 = time.perf_counter()
        self.duration_s: float | None = None
        self.attrs: dict[str, Any] = {}
        self.events: list[dict[str, Any]] = []
        self.status = "ok"
        self.error: str | None = None
        self._finished = False
        self._dropped = 0
        if attrs:
            for key, value in attrs.items():
                self.set_attr(key, value)

    def set_attr(self, key: str, value: Any) -> None:
        """Attach a typed attribute (str/int/float/bool; else ``str()``)."""
        if len(self.attrs) >= MAX_ATTRS_PER_SPAN and key not in self.attrs:
            self._dropped += 1
            return
        if not isinstance(value, (str, int, float, bool)) and value is not None:
            value = str(value)
        self.attrs[str(key)] = value

    def add_event(self, name: str, **attrs: Any) -> None:
        """Append a bounded, timestamped event to the span."""
        if len(self.events) >= MAX_EVENTS_PER_SPAN:
            self._dropped += 1
            return
        event: dict[str, Any] = {
            "name": str(name),
            "t_offset_s": time.perf_counter() - self._t0,
        }
        if attrs:
            event.update(
                {
                    str(k): (
                        v
                        if isinstance(v, (str, int, float, bool)) or v is None
                        else str(v)
                    )
                    for k, v in attrs.items()
                }
            )
        self.events.append(event)

    def record_error(self, exc: BaseException) -> None:
        """Mark the span failed; the message names the exception type
        (fault-injection errors therefore carry the injected fault)."""
        self.status = "error"
        self.error = f"{type(exc).__name__}: {exc}"

    def finish(self) -> None:
        """Close the span (idempotent) and hand it to the tracer."""
        if self._finished:
            return
        self._finished = True
        if self.duration_s is None:
            self.duration_s = time.perf_counter() - self._t0
        self._tracer._on_span_end(self)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "status": self.status,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.events:
            out["events"] = list(self.events)
        if self._dropped:
            out["dropped"] = self._dropped
        return out


class _TraceState:
    """Book-keeping for one in-flight trace (guarded by the tracer lock)."""

    __slots__ = ("root", "spans", "sampled", "error", "n_spans")

    def __init__(self, root: Span, sampled: bool) -> None:
        self.root = root
        self.spans: list[dict[str, Any]] = []
        self.sampled = sampled
        self.error = False
        self.n_spans = 0


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------


class Tracer:
    """Span factory + retention policy + completed-trace ring buffer.

    Parameters
    ----------
    sample:
        Probability a trace is retained absent any other reason
        (``0.0`` = only errors/slow traces survive, ``1.0`` = all).
    slow_threshold_s:
        Root spans at least this long are always retained (the slow
        query log); ``None`` disables the rule.
    on_error:
        Retain every trace whose spans recorded an error.
    ring_size:
        Completed traces kept in memory for ``/trace/recent``.
    jsonl_path:
        When set, every *retained* span is appended to this file as one
        JSON line (the ``trace report`` input format).
    seed:
        Seeds the sampling RNG (tests); ``None`` = entropy.
    """

    def __init__(
        self,
        *,
        sample: float = 1.0,
        slow_threshold_s: float | None = None,
        on_error: bool = True,
        ring_size: int = 256,
        jsonl_path: str | os.PathLike | None = None,
        seed: int | None = None,
    ) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1]; got {sample}")
        if slow_threshold_s is not None and slow_threshold_s < 0:
            raise ValueError("slow_threshold_s must be >= 0")
        if ring_size < 1:
            raise ValueError("ring_size must be >= 1")
        self.sample = float(sample)
        self.slow_threshold_s = (
            None if slow_threshold_s is None else float(slow_threshold_s)
        )
        self.on_error = bool(on_error)
        self.jsonl_path = (
            None if jsonl_path is None else os.fspath(jsonl_path)
        )
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        #: Guards the JSONL file handle only; exports are written off
        #: the main lock so file I/O never stalls span recording.
        self._io_lock = threading.Lock()
        self._ring: deque[dict[str, Any]] = deque(maxlen=int(ring_size))
        self._active: dict[str, _TraceState] = {}
        self._jsonl_file = None
        if self.jsonl_path is not None:
            self._jsonl_file = open(self.jsonl_path, "a", encoding="utf-8")
        #: Retention counters (exposed as service gauges).
        self.traces_started = 0
        self.traces_retained = 0
        self.traces_dropped = 0

    # -- span factories -------------------------------------------------

    def start_trace(
        self,
        name: str,
        *,
        request_id: str | None = None,
        traceparent: str | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> Span:
        """Open a root span, honoring inbound correlation headers.

        ``request_id`` (the ``X-Request-Id`` header) wins when it is
        propagation-safe; otherwise a ``traceparent`` header supplies
        the trace id and remote parent; otherwise a fresh id is minted.
        The sampling coin is flipped here so child spans of an
        unsampled trace can stay maximally cheap later if needed.
        """
        parent_id = None
        trace_id = sanitize_request_id(request_id)
        if trace_id is None:
            parsed = parse_traceparent(traceparent)
            if parsed is not None:
                trace_id, parent_id = parsed
            else:
                trace_id = new_id()
        span = Span(self, trace_id, name, parent_id=parent_id, attrs=attrs)
        sampled = self.sample > 0.0 and (
            self.sample >= 1.0 or self._rng.random() < self.sample
        )
        with self._lock:
            self.traces_started += 1
            # A colliding in-flight trace id (client reused a request
            # id) keeps the *first* registration; the later root still
            # times and reports, it just cannot own the ring entry.
            self._active.setdefault(trace_id, _TraceState(span, sampled))
        return span

    def start_span(
        self,
        name: str,
        *,
        parent: Span | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> Span:
        """Open a child of ``parent`` (default: the ambient span).

        Without any parent there is no trace to attach to; a detached
        root-less span is created under a fresh trace id but will only
        be retained if a matching root registers -- callers on the
        request path always have a parent.
        """
        if parent is None:
            parent = _current_span.get()
        if parent is None:
            return Span(self, new_id(), name, attrs=attrs)
        return Span(
            self,
            parent.trace_id,
            name,
            parent_id=parent.span_id,
            attrs=attrs,
        )

    @contextmanager
    def span(
        self,
        name: str,
        *,
        parent: Span | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> Iterator[Span]:
        """Context manager: open a child span, activate it, finish it.

        Exceptions mark the span failed and propagate.
        """
        sp = self.start_span(name, parent=parent, attrs=attrs)
        token = _current_span.set(sp)
        try:
            yield sp
        except BaseException as exc:
            sp.record_error(exc)
            raise
        finally:
            _current_span.reset(token)
            sp.finish()

    def record_span(
        self,
        name: str,
        duration_s: float,
        *,
        parent: Span | None = None,
        start_s: float | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> Span | None:
        """Report an already-measured interval as a completed span.

        For phases whose boundaries were observed with plain
        timestamps (queue wait measured between two threads, engine
        stage totals read off :class:`TraceHooks`) rather than wrapped
        in a context manager.  Returns ``None`` without a parent.
        """
        if parent is None:
            parent = _current_span.get()
        if parent is None:
            return None
        sp = Span(
            self,
            parent.trace_id,
            name,
            parent_id=parent.span_id,
            attrs=attrs,
        )
        if start_s is not None:
            sp.start_s = start_s
        sp.duration_s = max(0.0, float(duration_s))
        sp.finish()
        return sp

    # -- completion + retention -----------------------------------------

    def _on_span_end(self, span: Span) -> None:
        record = span.to_dict()  # serialize outside the lock
        export = None
        with self._lock:
            state = self._active.get(span.trace_id)
            if state is None:
                return  # detached span with no registered root
            if span.status == "error":
                state.error = True
            state.n_spans += 1
            if len(state.spans) < MAX_SPANS_PER_TRACE:
                state.spans.append(record)
            if span is not state.root:
                return
            del self._active[span.trace_id]
            retain = state.sampled
            reason = "sampled" if retain else ""
            if not retain and self.on_error and state.error:
                retain, reason = True, "error"
            if (
                not retain
                and self.slow_threshold_s is not None
                and (span.duration_s or 0.0) >= self.slow_threshold_s
            ):
                retain, reason = True, "slow"
            if not retain:
                self.traces_dropped += 1
                return
            self.traces_retained += 1
            trace = {
                "trace_id": span.trace_id,
                "root": span.name,
                "start_s": state.root.start_s,
                "duration_s": span.duration_s,
                "status": "error" if state.error else "ok",
                "retained": reason,
                "n_spans": state.n_spans,
                "spans": state.spans,
            }
            self._ring.append(trace)
            if self._jsonl_file is not None:
                export = state.spans
        if export is not None:
            # JSON encoding and the file write happen *off* the tracer
            # lock: a flush must never stall record_span callers (the
            # dispatcher records spans for whole batches -- blocking it
            # behind file I/O would tax every in-flight request).
            payload = "".join(
                json.dumps(rec, separators=(",", ":")) + "\n"
                for rec in export
            )
            with self._io_lock:
                if self._jsonl_file is not None:
                    self._jsonl_file.write(payload)
                    self._jsonl_file.flush()

    # -- queries ---------------------------------------------------------

    def get_trace(self, trace_id: str) -> dict[str, Any] | None:
        """The completed trace for ``trace_id``, or ``None``."""
        with self._lock:
            for trace in reversed(self._ring):
                if trace["trace_id"] == trace_id:
                    return trace
        return None

    def recent(self, limit: int = 50) -> list[dict[str, Any]]:
        """Summaries of the most recently retained traces, newest first."""
        limit = max(1, int(limit))
        with self._lock:
            traces = list(self._ring)[-limit:]
        return [
            {key: t[key] for key in t if key != "spans"}
            for t in reversed(traces)
        ]

    def counters(self) -> dict[str, int]:
        with self._lock:
            return {
                "traces_started": self.traces_started,
                "traces_retained": self.traces_retained,
                "traces_dropped": self.traces_dropped,
                "traces_active": len(self._active),
            }

    def close(self) -> None:
        """Flush and close the JSONL exporter (idempotent)."""
        with self._io_lock:
            if self._jsonl_file is not None:
                self._jsonl_file.close()
                self._jsonl_file = None


# ----------------------------------------------------------------------
# JSONL report rendering (the `trace report` CLI backend)
# ----------------------------------------------------------------------

_SPAN_REQUIRED_KEYS = ("trace_id", "span_id", "name", "duration_s", "status")


def read_jsonl(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Load and *validate* an exported span file.

    Every non-blank line must parse as a JSON object carrying the span
    schema's required keys with sane types; the first violation raises
    ``ValueError`` naming the line (so CI's schema check fails loudly,
    not by rendering garbage).
    """
    spans: list[dict[str, Any]] = []
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON ({exc})"
                ) from None
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{lineno}: span line is not an object")
            for key in _SPAN_REQUIRED_KEYS:
                if key not in record:
                    raise ValueError(
                        f"{path}:{lineno}: span is missing {key!r}"
                    )
            if not isinstance(record["duration_s"], (int, float)):
                raise ValueError(
                    f"{path}:{lineno}: duration_s must be a number"
                )
            if record["status"] not in ("ok", "error"):
                raise ValueError(
                    f"{path}:{lineno}: status must be 'ok' or 'error'"
                )
            spans.append(record)
    return spans


def render_report(
    spans: list[dict[str, Any]],
    *,
    limit: int | None = None,
    slow_ms: float | None = None,
) -> str:
    """Render exported spans as per-trace trees with self-times.

    Traces are grouped by id and ordered by start time; each span line
    shows total duration, **self time** (duration minus direct
    children), attributes, and error status.  ``slow_ms`` filters to
    traces whose root ran at least that long; ``limit`` keeps only the
    last N traces.
    """
    by_trace: dict[str, list[dict[str, Any]]] = {}
    for span in spans:
        by_trace.setdefault(span["trace_id"], []).append(span)

    def root_start(records: list[dict[str, Any]]) -> float:
        return min(float(r.get("start_s", 0.0)) for r in records)

    ordered = sorted(by_trace.values(), key=root_start)
    if slow_ms is not None:
        ordered = [
            records
            for records in ordered
            if any(
                r.get("parent_id") is None
                and float(r["duration_s"]) * 1e3 >= slow_ms
                for r in records
            )
        ]
    if limit is not None:
        ordered = ordered[-int(limit):]

    lines: list[str] = []
    for records in ordered:
        by_id = {r["span_id"]: r for r in records}
        children: dict[str | None, list[dict[str, Any]]] = {}
        for r in records:
            parent = r.get("parent_id")
            if parent not in by_id:
                parent = None  # orphan or remote parent: treat as root
            children.setdefault(parent, []).append(r)
        roots = children.get(None, [])
        trace_id = records[0]["trace_id"]
        status = (
            "error"
            if any(r["status"] == "error" for r in records)
            else "ok"
        )
        lines.append(
            f"trace {trace_id}  spans={len(records)}  status={status}"
        )

        def emit(record: dict[str, Any], depth: int) -> None:
            kids = sorted(
                children.get(record["span_id"], []),
                key=lambda r: float(r.get("start_s", 0.0)),
            )
            total = float(record["duration_s"])
            self_s = total - sum(float(k["duration_s"]) for k in kids)
            label = record["name"]
            extra = ""
            if record.get("attrs"):
                pairs = ", ".join(
                    f"{k}={v}" for k, v in sorted(record["attrs"].items())
                )
                extra = f"  [{pairs}]"
            err = ""
            if record["status"] == "error":
                err = f"  ERROR: {record.get('error', '?')}"
            lines.append(
                f"  {'  ' * depth}{label:<24} "
                f"total={total * 1e3:9.3f}ms  "
                f"self={max(0.0, self_s) * 1e3:9.3f}ms{extra}{err}"
            )
            for kid in kids:
                emit(kid, depth + 1)

        for root in sorted(roots, key=lambda r: float(r.get("start_s", 0.0))):
            emit(root, 0)
        lines.append("")
    if not ordered:
        lines.append("no traces")
    return "\n".join(lines).rstrip() + "\n"
