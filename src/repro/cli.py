"""Command-line interface: ``python -m repro <experiment>``.

Exposes the experiment drivers without writing any Python:

.. code-block:: console

    $ python -m repro fig8                 # throughput heatmap
    $ python -m repro table5               # leave-one-out ablation
    $ python -m repro fig9                 # FaSTED vs TED-Join-Brute
    $ python -m repro table6               # profiler counters
    $ python -m repro fig10 --dataset Sift10M --n 4000
    $ python -m repro accuracy --dataset Cifar60K --n 3000
    $ python -m repro join --n 20000 --d 64 --stream --memory-budget 4
    $ python -m repro join --method gds-join --batched --selectivity 8
    $ python -m repro join A.npy B_chunks/ --stream --memory-budget 4
    $ python -m repro join --n 20000 --workers auto
    $ python -m repro index build my_index --data data.npy --selectivity 64
    $ python -m repro index info my_index
    $ python -m repro query my_index --n-queries 256
    $ python -m repro serve --index my_index --port 8787

Model-driven experiments run instantly at the paper's full scales; the
data-driven ones accept ``--n`` to bound the surrogate size.  ``join``
runs one functional join end to end: with no positional datasets a
self-join on synthetic data (or ``--data``), with one positional a
self-join on that dataset, and with two positionals the **two-source**
join ``A x B`` (each a ``.npy`` file or chunk directory) -- optionally
out-of-core (``--stream`` / ``--memory-budget``, in MiB) or, for
self-joins on the index-backed methods, with the batched candidate
executor (``--batched``).  ``--workers N`` (or ``--workers auto``) runs
the join on the engine's worker pool -- bit-identical to serial for
every method (``--batched --workers`` keeps batching's pair-set
contract instead).

The query-serving layer (``repro.service``) is driven by three more
subcommands: ``index build`` persists a grid or multi-space-tree index
(plus an embedded dataset copy) to a directory, ``index info`` inspects
one, ``query`` answers batched range (``--eps``) or kNN (``--k``)
queries against it, and ``serve`` exposes cached indexes over
JSON-HTTP with micro-batched dispatch (``--self-test`` runs the
one-shot concurrent smoke CI uses).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.experiments import (
    run_fig8,
    run_fig9,
    run_real_dataset,
    run_table5,
    run_table6,
)
from repro.analysis.tables import format_heatmap, format_table
from repro.data.realworld import DATASETS
from repro.gpusim.profiler import format_table as profiler_table


def _cmd_fig8(_args) -> str:
    res = run_fig8()
    return format_heatmap(
        res.tflops,
        [f"{n:,}" for n in res.sizes],
        res.dims,
        title="Figure 8: FaSTED derived TFLOPS",
        corner="|D| \\ d",
    )


def _cmd_table5(_args) -> str:
    res = run_table5()
    rows = [(r.disabled, f"{r.tflops:.1f}", r.paper_tflops) for r in res.rows]
    rows.append(("(all enabled)", f"{res.baseline_tflops:.1f}", res.paper_baseline))
    return format_table(
        ("Disabled optimization", "Model TFLOPS", "Paper TFLOPS"),
        rows,
        title="Table 5: leave-one-out study",
    )


def _cmd_fig9(_args) -> str:
    res = run_fig9()
    rows = [
        (d, f"{f:.1f}", f"{t:.2f}" if t is not None else "OOM")
        for d, f, t in zip(res.dims, res.fasted_tflops, res.tedjoin_tflops)
    ]
    return format_table(
        ("d", "FaSTED", "TED-Join-Brute"),
        rows,
        title="Figure 9: brute-force TC TFLOPS vs d",
    )


def _cmd_table6(_args) -> str:
    return profiler_table(run_table6(), title="Table 6: profiler counters")


def _cmd_fig10(args) -> str:
    out = run_real_dataset(args.dataset, n=args.n, with_accuracy=False)
    rows = []
    for row in out.fig10_rows:
        for o in row.outcomes:
            su = row.speedup_over(o.name)
            rows.append(
                (
                    row.selectivity,
                    o.name,
                    f"{o.total_s * 1e3:.2f} ms" if o.total_s else "OOM",
                    f"{su:.1f}x" if su else "-",
                )
            )
    return format_table(
        ("S", "Method", "End-to-end", "FaSTED speedup"),
        rows,
        title=f"Figure 10 panel: {args.dataset} (n={out.n_points}, d={out.dims})",
    )


def _cmd_accuracy(args) -> str:
    out = run_real_dataset(
        args.dataset, n=args.n, with_accuracy=True, with_error_stats=True
    )
    rows = [
        (
            a.selectivity,
            f"{a.overlap:.5f}",
            f"{a.error_stats.mean:+.2e}",
            f"{a.error_stats.std:.2e}",
        )
        for a in out.accuracy
    ]
    return format_table(
        ("S", "Overlap", "Err mean", "Err std"),
        rows,
        title=f"Tables 7-8: {args.dataset} accuracy vs FP64",
    )


def _calibration_sample(source, target: int = 4096):
    """Rows for epsilon calibration, drawn from blocks spread across the
    dataset -- on-disk data is often written in cluster or sorted order,
    so a prefix would calibrate to one dense region's density."""
    import numpy as np

    if source.n <= target:
        return source.materialize()
    k = 8
    per = target // k
    starts = np.linspace(0, source.n - per, k).astype(np.int64)
    return np.concatenate(
        [source.load_block(int(s), int(s) + per) for s in starts]
    )


def _cmd_join(args) -> str:
    from repro.core.api import (
        STREAMABLE_METHODS,
        join,
        join_stream,
        self_join,
        self_join_stream,
    )
    from repro.data.source import as_source
    from repro.data.synthetic import synth_dataset

    if args.data is not None and args.data_a is not None:
        raise SystemExit("error: give datasets positionally OR via --data, not both")
    two_source = args.data_b is not None
    if two_source:
        source = as_source(args.data_a)
        source_b = as_source(args.data_b)
        if source.dim != source_b.dim:
            raise SystemExit(
                f"error: A and B dimensionalities disagree "
                f"({source.dim} != {source_b.dim})"
            )
    else:
        source_b = None
        if args.data_a is not None:
            source = as_source(args.data_a)
        elif args.data is not None:
            source = as_source(args.data)
        else:
            source = as_source(
                synth_dataset(args.n, args.d, seed=args.seed, clustered=True)
            )
    if args.memory_budget is not None and args.memory_budget <= 0:
        raise SystemExit("error: --memory-budget must be a positive number of MiB")
    budget = (
        int(args.memory_budget * (1 << 20)) if args.memory_budget else None
    )
    stream = bool(args.stream or budget)
    if stream and args.method not in STREAMABLE_METHODS:
        raise SystemExit(
            f"error: --stream/--memory-budget need one of {STREAMABLE_METHODS}; "
            f"{args.method} materializes here (its out-of-core mode is the "
            "kernel-level self_join_source)"
        )
    if args.batched and (two_source or args.method in STREAMABLE_METHODS):
        raise SystemExit(
            "error: --batched applies to index-backed self-joins "
            "(ted-join-index, gds-join, mistic)"
        )
    workers = args.workers
    wp = None
    if workers:
        # Resolve up front (covers "auto", whose REPRO_WORKERS override
        # is read here) so a bad request fails as a clean CLI error, not
        # a traceback mid-join; the resolved plan feeds the report line.
        from repro.core.engine import WorkerPlan

        try:
            wp = WorkerPlan.resolve(workers)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from exc
    # Calibrate against the set being searched: B for a two-source join
    # (the target is matches per A point in B's density), the dataset
    # itself for a self-join.
    eps, _calibrated = _resolve_eps(args, source_b if two_source else source)
    lines = [
        (
            f"datasets: A n={source.n}, B n={source_b.n}, d={source.dim} "
            f"({(source.nbytes + source_b.nbytes) / (1 << 20):.1f} MiB as float64)"
            if two_source
            else f"dataset: n={source.n} d={source.dim} "
            f"({source.nbytes / (1 << 20):.1f} MiB as float64)"
        ),
        f"method: {args.method}  eps={eps:.4f}"
        + (f"  (calibrated for S={args.selectivity})" if args.eps is None else ""),
    ]
    if wp is not None:
        lines.append(
            f"workers: {wp.n_workers} ({wp.source}; cpu_count={wp.cpu_count}, "
            f"blas_threads={wp.blas_threads if wp.blas_threads is not None else 'unknown'})"
        )
    t0 = time.perf_counter()
    if stream:
        if two_source:
            result, stats = join_stream(
                source, source_b, eps, method=args.method,
                memory_budget_bytes=budget, workers=workers,
            )
            plan = stats.plan
            geometry = (
                f"row_block={plan.row_block} col_block={plan.col_block} "
                f"({plan.n_row_blocks}x{plan.n_col_blocks} blocks, "
                f"{plan.n_tiles} tiles, {stats.blocks_loaded} block loads)"
            )
        else:
            result, stats = self_join_stream(
                source, eps, method=args.method, memory_budget_bytes=budget,
                workers=workers,
            )
            plan = stats.plan
            geometry = (
                f"row_block={plan.row_block} "
                f"({plan.n_blocks} blocks, {plan.n_tiles} tiles, "
                f"{stats.blocks_loaded} block loads)"
            )
        elapsed = time.perf_counter() - t0
        lines.append(f"streaming: {geometry}")
        lines.append(
            f"peak resident blocks: {stats.peak_resident_bytes / (1 << 20):.2f} MiB"
            + (
                f" (budget {budget / (1 << 20):.2f} MiB)"
                if budget is not None
                else ""
            )
        )
    else:
        # stream=False pins the in-memory path even under REPRO_STREAM=1;
        # the data is already materialized here, re-streaming it would be
        # pure (and unreported) extra work.
        if two_source:
            result = join(
                source.materialize(), source_b.materialize(), eps,
                method=args.method, stream=False, workers=workers,
            )
        else:
            result = self_join(
                source.materialize(), eps, method=args.method,
                batched=args.batched, stream=False, workers=workers,
            )
        elapsed = time.perf_counter() - t0
        if args.batched:
            lines.append("candidate executor: batched (padded batch GEMMs)")
    lines.append(
        f"result: {result.pairs_i.size} pairs "
        + (
            f"(mean matches/query {result.selectivity:.1f}) "
            if two_source
            else f"(selectivity {result.selectivity:.1f}) "
        )
        + f"in {elapsed:.3f} s "
        f"({result.pairs_i.size / max(elapsed, 1e-9):,.0f} pairs/s)"
    )
    return "\n".join(lines)


def _resolve_eps(args, source) -> tuple[float, bool]:
    """``(eps, calibrated)`` from ``--eps`` or ``--selectivity``.

    The one calibration path shared by ``join``, ``index build``, and
    anything else that targets a selectivity: ``epsilon_for_selectivity``
    targets S neighbors *within the data it is given*, so when
    calibrating on a subsample the quantile is rescaled to the full
    cardinality -- otherwise the realized selectivity would overshoot by
    ~``n / sample``.
    """
    from repro.core.selectivity import epsilon_for_selectivity

    if args.eps is not None:
        return float(args.eps), False
    cal = _calibration_sample(source)
    target = args.selectivity
    if cal.shape[0] < source.n:
        target = max(target * (cal.shape[0] - 1) / (source.n - 1), 1e-6)
    return float(epsilon_for_selectivity(cal, target)), True


def _cmd_index_build(args) -> str:
    from repro.core.api import build_index
    from repro.data.source import as_source
    from repro.data.synthetic import synth_dataset

    if args.data is not None:
        source = as_source(args.data)
    else:
        source = as_source(
            synth_dataset(args.n, args.d, seed=args.seed, clustered=True)
        )
    eps, calibrated = _resolve_eps(args, source)
    if args.mutable and args.no_data:
        raise SystemExit("error: --mutable stores embed their data; drop --no-data")
    t0 = time.perf_counter()
    path = build_index(
        source,
        eps,
        args.out,
        kind=args.kind,
        n_dims=args.n_dims,
        seed=args.seed,
        include_data=None if args.mutable else not args.no_data,
        mutable=args.mutable,
        seal_threshold=args.seal_threshold,
    )
    elapsed = time.perf_counter() - t0
    total_bytes = sum(
        p.stat().st_size for p in path.rglob("*") if p.is_file()
    )
    return "\n".join(
        [
            f"dataset: n={source.n} d={source.dim} "
            f"({source.nbytes / (1 << 20):.1f} MiB as float64)",
            f"index: kind={args.kind}  eps={eps:.4f}"
            + (f"  (calibrated for S={args.selectivity})" if calibrated else "")
            + ("  [mutable]" if args.mutable else ""),
            f"persisted: {path} ({total_bytes / (1 << 20):.2f} MiB"
            + (", dataset embedded)" if not args.no_data else ")")
            + f" in {elapsed:.3f} s",
        ]
    )


def _cmd_index_info(args) -> str:
    from repro.index.delta import is_mutable_index
    from repro.index.persist import load_index

    if is_mutable_index(args.path):
        return _index_info_mutable(args.path)
    loaded = load_index(args.path)
    lines = [
        f"index: {loaded.path}",
        f"kind: {loaded.kind}  format v{loaded.header['version']}",
        f"eps: {loaded.eps:.6g}",
    ]
    scalars = loaded.header["scalars"]
    if loaded.kind == "grid":
        lines.append(
            f"points: {scalars['n_points']}  dims: {scalars['n_dims_data']} "
            f"(indexed prefix r={scalars['r']})"
        )
        lines.append(f"occupied cells: {loaded.index._starts.size}")
    else:
        lines.append(f"points: {scalars['n_points']}  dims: {scalars['dims']}")
        kinds = [lvl.kind for lvl in loaded.index.levels]
        lines.append(
            f"levels: {len(kinds)} ({kinds.count('coord')} coord, "
            f"{kinds.count('metric')} metric)"
        )
    payload = sum(p.stat().st_size for p in loaded.path.iterdir())
    lines.append(
        "dataset: "
        + (
            f"{loaded.header['data']} (n={loaded.source.n})"
            if loaded.source is not None
            else "not stored"
        )
    )
    lines.append(f"on disk: {payload / (1 << 20):.2f} MiB")
    return "\n".join(lines)


def _index_info_mutable(path) -> str:
    from pathlib import Path

    from repro.index.delta import MutableIndex

    idx = MutableIndex(path)
    s = idx.stats()
    payload = sum(
        p.stat().st_size for p in Path(path).rglob("*") if p.is_file()
    )
    return "\n".join(
        [
            f"index: {idx.path} [mutable]",
            f"kind: {s['kind']}  eps: {s['eps']:.6g}  dim: {s['dim']}",
            f"live rows: {s['n_live']} of {s['n_rows']} "
            f"({s['n_tombstones']} tombstones)  next id: {s['next_id']}",
            f"delta: {s['n_segments']} sealed segments, "
            f"{s['buffered_rows']} buffered rows "
            f"(seal threshold {s['seal_threshold']})",
            f"base: {s['base']}",
            f"on disk: {payload / (1 << 20):.2f} MiB",
        ]
    )


def _cmd_index_append(args) -> str:
    from repro.index.delta import MutableIndex

    idx = MutableIndex(args.path)
    if args.data is not None:
        from repro.data.source import as_source

        rows = as_source(args.data).materialize()
    else:
        from repro.service import sample_queries

        rows = sample_queries(idx.source, idx.eps, args.n, seed=args.seed)
    t0 = time.perf_counter()
    ids = idx.append(rows)
    # The in-memory buffer is volatile; a CLI append must outlive the
    # process, so spill it to a sealed segment before exiting.
    idx.seal()
    elapsed = time.perf_counter() - t0
    s = idx.stats()
    return "\n".join(
        [
            f"appended {ids.size} rows (ids {ids[0]}..{ids[-1]}) "
            f"in {elapsed:.3f} s",
            f"store: {s['n_live']} live rows, {s['n_segments']} segments, "
            f"{s['buffered_rows']} buffered",
        ]
    )


def _cmd_index_delete(args) -> str:
    from repro.index.delta import MutableIndex

    try:
        ids = [int(t) for t in args.ids.split(",") if t.strip()]
    except ValueError:
        raise SystemExit(
            f"error: --ids must be comma-separated integers, got {args.ids!r}"
        )
    if not ids:
        raise SystemExit("error: --ids named no rows")
    idx = MutableIndex(args.path)
    n = idx.delete(ids, missing=args.missing)
    s = idx.stats()
    return (
        f"deleted {n} rows; {s['n_live']} live remain "
        f"({s['n_tombstones']} tombstones)"
    )


def _cmd_index_compact(args) -> str:
    from repro.index.delta import MutableIndex

    idx = MutableIndex(args.path)
    before = idx.stats()
    out = idx.compact()
    return "\n".join(
        [
            f"compacted {out['segments_folded']} segments + "
            f"{before['n_tombstones']} tombstones in "
            f"{out['duration_s']:.3f} s",
            f"new base generation: {out['n_live']} live rows",
        ]
    )


def _make_queries(engine, n_queries: int, seed: int):
    """Synthetic query points near the indexed data's density."""
    from repro.service import sample_queries

    return sample_queries(engine.source, engine.eps, n_queries, seed=seed)


def _cmd_query_remote(args) -> str:
    """``query --server``: route the queries over HTTP via the retrying
    client instead of opening the index in-process."""
    import numpy as np

    from repro.service.client import ServiceClient, ServiceUnavailable

    if args.queries is None:
        raise SystemExit(
            "error: --server needs --queries (synthetic queries are sampled "
            "from the local dataset, which a remote server does not expose)"
        )
    host, _, port = args.server.rpartition(":")
    if not port.isdigit():
        raise SystemExit(
            f"error: --server must be HOST:PORT, got {args.server!r}"
        )
    queries = np.load(args.queries)
    client = ServiceClient(host or "127.0.0.1", int(port), timeout=60.0)
    lines = []
    t0 = time.perf_counter()
    try:
        # The positional argument is the *remote* index name here.  A
        # single-index server (serve --index PATH registers "default")
        # serves whatever name the local path happens to be, so fall
        # back to the lone registered name instead of 404ing.
        name = args.index
        served = client.healthz().get("indexes", [])
        if name not in served and len(served) == 1:
            name = served[0]
        lines += [
            f"index: {name!r} on http://{host or '127.0.0.1'}:{port}",
            f"queries: {queries.shape[0]} from {args.queries}",
        ]
        if args.k is not None:
            res = client.knn_query(queries.tolist(), args.k, index=name)
            elapsed = time.perf_counter() - t0
            found = sum(1 for row in res["indices"] for i in row if i >= 0)
            lines.append(
                f"kNN: k={args.k} -> {found} neighbors in {elapsed:.3f} s"
            )
        else:
            res = client.range_query(
                queries.tolist(), index=name, eps=args.eps
            )
            elapsed = time.perf_counter() - t0
            pairs = sum(len(neigh) for neigh in res["neighbors"])
            lines.append(
                f"range: eps={res['eps']:.4f} -> {pairs} pairs in "
                f"{elapsed:.3f} s"
            )
    except (ServiceUnavailable, RuntimeError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    finally:
        client.close()
    if client.retries:
        lines.append(f"retries absorbed: {client.retries}")
    return "\n".join(lines)


def _cmd_query(args) -> str:
    from repro.core.api import open_index

    if args.eps is not None and args.k is not None:
        raise SystemExit("error: pass --eps (range query) or --k (kNN), not both")
    if args.server is not None:
        return _cmd_query_remote(args)
    workers = args.workers
    if workers:
        from repro.core.engine import WorkerPlan

        try:
            WorkerPlan.resolve(workers)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from exc
    try:
        engine = open_index(
            args.index, workers=workers, cache=False, verify=args.verify
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc
    if args.queries is not None:
        import numpy as np

        queries = np.load(args.queries)
    else:
        queries = _make_queries(engine, args.n_queries, args.seed)
    lines = [
        f"index: {args.index} (kind={engine.kind}, n={engine.n_points}, "
        f"d={engine.dim}, eps={engine.eps:.4f})",
        f"queries: {queries.shape[0]}"
        + ("" if args.queries is not None else f" synthetic (seed {args.seed})"),
    ]
    t0 = time.perf_counter()
    if args.k is not None:
        try:
            res = engine.knn_query(queries, args.k)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from exc
        elapsed = time.perf_counter() - t0
        found = int((res.indices >= 0).sum())
        lines.append(
            f"kNN: k={args.k} -> {found} neighbors in {elapsed:.3f} s "
            f"({queries.shape[0] / max(elapsed, 1e-9):,.0f} queries/s)"
        )
    else:
        try:
            res = engine.range_query(queries, args.eps, batched=args.batched)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from exc
        elapsed = time.perf_counter() - t0
        lines.append(
            f"range: eps={args.eps if args.eps is not None else engine.eps:.4f} "
            f"-> {res.pairs_i.size} pairs "
            f"(mean matches/query {res.selectivity:.1f}) in {elapsed:.3f} s "
            f"({queries.shape[0] / max(elapsed, 1e-9):,.0f} queries/s)"
        )
    return "\n".join(lines)


def _cmd_serve(args) -> str:
    from repro import log as _log
    from repro.service import make_server, run_self_test

    _log.setup()  # structured JSON logs on stderr for the serving path
    registry = {}
    for item in args.index:
        # NAME=PATH only when the prefix looks like a name (no '/'):
        # paths may legitimately contain '=' and must not be split.
        name, sep, rest = item.partition("=")
        if sep and name and "/" not in name:
            registry[name] = rest
        else:
            registry["default"] = item
    if args.self_test:
        first = next(iter(registry.values()))
        out = run_self_test(
            first,
            max_queue_depth=args.max_queue_depth,
            verify=args.verify,
            frontend=args.frontend,
            trace_sample=args.trace_sample,
            trace_log=args.trace_log,
            slow_ms=args.slow_ms,
        )
        stats = out["stats"]
        return (
            f"self-test OK ({out['frontend']} front end): "
            f"{out['clients']} concurrent clients x "
            f"{out['queries_per_client']} queries (range + kNN) matched the "
            f"serial engine\n"
            f"micro-batching: {stats['batches_dispatched']} engine batches "
            f"for {stats['requests_served']} requests "
            f"({stats['requests_coalesced']} coalesced, "
            f"{stats['requests_rejected']} rejected, "
            f"{out['client_retries']} client retries absorbed)\n"
            f"cache: {stats['cache']}"
        )
    try:
        server = make_server(
            registry, host=args.host, port=args.port, workers=args.workers,
            max_queue_depth=args.max_queue_depth, verify=args.verify,
            frontend=args.frontend, trace_sample=args.trace_sample,
            trace_log=args.trace_log, slow_ms=args.slow_ms,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc
    host, port = server.server_address[:2]
    print(
        f"serving {sorted(registry)} on http://{host}:{port} "
        f"[{args.frontend} front end] "
        "(POST /range | /knn, GET /healthz | /stats | /trace/recent; "
        f"trace sample {args.trace_sample:g}; Ctrl-C to stop)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
    return "server stopped"


def _cmd_loadtest(args) -> str:
    from repro import log as _log
    from repro.loadgen import load_config, run_experiment
    from repro.service.metrics import parse_prometheus_text

    _log.setup()  # structured JSON logs on stderr for the serving path
    if args.config is not None:
        try:
            config = load_config(args.config)
        except (OSError, ValueError, RuntimeError) as exc:
            raise SystemExit(f"error: {exc}") from exc
    else:
        base = {
            "mode": args.mode,
            "duration_s": args.duration,
            "concurrency": args.concurrency,
            "batch_size": args.batch_size,
            "range_fraction": args.range_fraction,
            "append_fraction": args.append_fraction,
            "delete_fraction": args.delete_fraction,
            "k": args.k,
            "zipf_s": args.zipf,
            "seed": args.seed,
        }
        if args.deadline is not None:
            base["deadline_s"] = args.deadline
        factors = {}
        if args.sweep is not None:
            base["mode"] = "open"
            try:
                factors["target_rps"] = [
                    float(x) for x in args.sweep.split(",") if x.strip()
                ]
            except ValueError as exc:
                raise SystemExit(
                    f"error: --sweep takes comma-separated rates: {exc}"
                ) from exc
        elif args.mode == "open":
            base["target_rps"] = args.rps
        config = {
            "name": "loadtest",
            "base": base,
            "factors": factors,
            "repetitions": args.repetitions,
        }

    server = None
    http_server = None
    http_thread = None
    client = None
    if args.server is not None and args.http:
        raise SystemExit("error: pass --server or --http, not both")
    if args.server is not None:
        host, _, port = args.server.rpartition(":")
        if not port.isdigit():
            raise SystemExit(
                f"error: --server must be HOST:PORT, got {args.server!r}"
            )
        server = (host or "127.0.0.1", int(port))
    elif args.http:
        # Spin up the real HTTP server on an ephemeral port and drive it
        # over the wire -- the CI smoke path: exercises admission
        # control, /metrics, and the JSON layer, not just the service.
        import threading

        from repro.service import ServiceClient, make_server

        try:
            http_server = make_server(
                {"default": args.index}, port=0, frontend=args.frontend,
                trace_sample=args.trace_sample, trace_log=args.trace_log,
                slow_ms=args.slow_ms,
            )
        except (ValueError, OSError) as exc:
            raise SystemExit(f"error: {exc}") from exc
        host, port = http_server.server_address[:2]
        server = (host, port)
        http_thread = threading.Thread(
            target=http_server.serve_forever, daemon=True
        )
        http_thread.start()
        client = ServiceClient(host, port)

    if args.driver == "async" and server is None:
        raise SystemExit(
            "error: --driver async drives a live HTTP endpoint; "
            "add --http or --server HOST:PORT"
        )
    lines = []
    try:
        try:
            report = run_experiment(
                config,
                index=args.index,
                server=server,
                driver=args.driver,
                out_json=args.out,
                out_csv=args.csv,
            )
        except (ValueError, OSError) as exc:
            raise SystemExit(f"error: {exc}") from exc
        lines.append(
            f"loadtest {report['name']!r}: {report['n_runs']} runs "
            f"(factors {report['factors'] or '{}'}"
            f" x {report['repetitions']} reps)"
        )
        header = (
            "run", "mode", "offered_rps", "ok", "429", "504", "err",
            "drop", "rps", "p50 ms", "p95 ms", "p99 ms",
        )
        lines.append("  ".join(f"{h:>11}" for h in header))
        for row in report["rows"]:
            def fmt(v, nd=1):
                return "-" if v is None else f"{v:.{nd}f}"

            lines.append("  ".join(
                f"{str(c):>11}" for c in (
                    row["run_id"], row["mode"], fmt(row["offered_rps"]),
                    row["ok"], row["err_429"], row["err_504"],
                    row["err_other"], row["dropped"],
                    fmt(row["throughput_rps"]), fmt(row["p50_ms"], 2),
                    fmt(row["p95_ms"], 2), fmt(row["p99_ms"], 2),
                )
            ))
        if report.get("saturation_knee_rps") is not None:
            lines.append(
                f"saturation knee: {report['saturation_knee_rps']:.0f} RPS "
                "(last offered rate with throughput >= 85% of offered)"
            )
        if args.out:
            lines.append(f"report written to {args.out}")
        if args.csv:
            lines.append(f"rows written to {args.csv}")

        problems = []
        if client is not None:
            # The smoke contract: /metrics parses, and the server
            # answered no 5xx (the generator's "error" bucket would
            # also catch them from the client side).
            try:
                samples = parse_prometheus_text(client.metrics_text())
            except (ValueError, RuntimeError, OSError) as exc:
                samples = None
                problems.append(f"/metrics failed to parse: {exc}")
            if samples is not None:
                totals = samples.get("repro_http_requests_total", {})
                n5xx = sum(
                    v for key, v in totals.items()
                    for lk, lv in key
                    if lk == "status" and lv.startswith("5")
                )
                lines.append(
                    f"/metrics: {len(samples)} series parsed, "
                    f"server 5xx responses: {int(n5xx)}"
                )
                if n5xx:
                    problems.append(f"server answered {int(n5xx)} 5xx")
            if args.trace_sample > 0:
                # Tracing smoke: the retained-trace ring must have
                # caught the bout when sampling is armed.
                try:
                    status, body, _ = client.request_once(
                        "GET", "/trace/recent"
                    )
                except (OSError, ValueError) as exc:
                    status, body = None, None
                    problems.append(f"/trace/recent failed: {exc}")
                if isinstance(body, dict) and status == 200:
                    n_traces = len(body.get("traces", []))
                    lines.append(
                        f"/trace/recent: {n_traces} retained traces "
                        f"({body.get('traces_started', 0)} started, "
                        f"{body.get('traces_dropped', 0)} dropped)"
                    )
                    if not n_traces:
                        problems.append(
                            "tracing armed but no traces retained"
                        )
                elif status is not None:
                    problems.append(f"/trace/recent returned HTTP {status}")
            if args.trace_log is not None:
                lines.append(f"trace spans exported to {args.trace_log}")
        for row in report["rows"]:
            if row["err_other"]:
                problems.append(
                    f"run {row['run_id']}: {row['err_other']} failed requests"
                )
            if row["ok"] and row["p99_ms"] is None:
                problems.append(f"run {row['run_id']}: p99 undefined")
        if args.assert_healthy and problems:
            raise SystemExit("error: unhealthy loadtest: " + "; ".join(problems))
    finally:
        if client is not None:
            client.close()
        if http_server is not None:
            http_server.shutdown()
            http_server.server_close()
        if http_thread is not None:
            http_thread.join(timeout=5.0)
    return "\n".join(lines)


def _cmd_trace_report(args) -> str:
    from repro import trace as trace_mod

    try:
        spans = trace_mod.read_jsonl(args.path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    return trace_mod.render_report(
        spans, limit=args.limit, slow_ms=args.slow_ms
    )


def _workers_arg(value: str):
    """``--workers`` accepts a count or the literal ``auto``."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--workers takes an integer or 'auto', got {value!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FaSTED reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("fig8", help="throughput heatmap").set_defaults(fn=_cmd_fig8)
    sub.add_parser("table5", help="ablation study").set_defaults(fn=_cmd_table5)
    sub.add_parser("fig9", help="FaSTED vs TED-Join-Brute").set_defaults(fn=_cmd_fig9)
    sub.add_parser("table6", help="profiler counters").set_defaults(fn=_cmd_table6)
    for name, fn, default_n in (("fig10", _cmd_fig10, 4000), ("accuracy", _cmd_accuracy, 3000)):
        p = sub.add_parser(name, help=f"{name} on a surrogate dataset")
        p.add_argument("--dataset", choices=sorted(DATASETS), default="Sift10M")
        p.add_argument("--n", type=int, default=default_n, help="surrogate size")
        p.set_defaults(fn=fn)
    j = sub.add_parser(
        "join",
        help="run one join: self-join, or two-source A x B "
        "(optionally streaming / batched)",
    )
    j.add_argument(
        "data_a", nargs="?", default=None, metavar="A",
        help="left dataset (.npy file or chunk directory); alone: self-join",
    )
    j.add_argument(
        "data_b", nargs="?", default=None, metavar="B",
        help="right dataset; given, the command runs the two-source join A x B",
    )
    j.add_argument(
        "--method",
        choices=("fasted", "ted-join-brute", "ted-join-index", "gds-join", "mistic"),
        default="fasted",
    )
    j.add_argument(
        "--data",
        default=None,
        help="legacy alias for the A positional "
        "(default: synthetic clustered data)",
    )
    j.add_argument("--n", type=int, default=8192, help="synthetic dataset size")
    j.add_argument("--d", type=int, default=64, help="synthetic dimensionality")
    j.add_argument("--seed", type=int, default=0)
    j.add_argument("--eps", type=float, default=None, help="search radius")
    j.add_argument(
        "--selectivity", type=int, default=64,
        help="target mean neighbors used to calibrate eps when --eps is absent",
    )
    j.add_argument(
        "--stream", action="store_true",
        help="run out-of-core (brute methods only; bit-identical)",
    )
    j.add_argument(
        "--memory-budget", type=float, default=None, metavar="MIB",
        help="resident-block budget in MiB (implies --stream)",
    )
    j.add_argument(
        "--batched", action="store_true",
        help="batched candidate executor (index-backed methods)",
    )
    j.add_argument(
        "--workers", type=_workers_arg, default=0, metavar="N",
        help="engine worker pool: a count, or 'auto' for the topology-"
        "derived WorkerPlan (default: serial; results are bit-identical)",
    )
    j.set_defaults(fn=_cmd_join)

    idx = sub.add_parser(
        "index",
        help="build or inspect persisted query indexes (the serving layer)",
    )
    idx_sub = idx.add_subparsers(dest="index_command", required=True)
    ib = idx_sub.add_parser(
        "build", help="build a grid/mstree index and persist it to a directory"
    )
    ib.add_argument("out", help="target index directory")
    ib.add_argument(
        "--data", default=None,
        help="dataset (.npy file or chunk directory; default: synthetic)",
    )
    ib.add_argument("--kind", choices=("grid", "mstree"), default="grid")
    ib.add_argument("--n", type=int, default=8192, help="synthetic dataset size")
    ib.add_argument("--d", type=int, default=64, help="synthetic dimensionality")
    ib.add_argument("--seed", type=int, default=0)
    ib.add_argument("--eps", type=float, default=None, help="grid cell width")
    ib.add_argument(
        "--selectivity", type=int, default=64,
        help="target mean neighbors used to calibrate eps when --eps is absent",
    )
    ib.add_argument(
        "--n-dims", type=int, default=6, help="indexed dimension count (grid)"
    )
    ib.add_argument(
        "--no-data", action="store_true",
        help="do not embed a dataset copy (queries must supply data=)",
    )
    ib.add_argument(
        "--mutable", action="store_true",
        help="build an LSM-style mutable store (append/delete/compact)",
    )
    ib.add_argument(
        "--seal-threshold", type=int, default=None, metavar="ROWS",
        help="mutable only: buffered appends spill to a sealed segment "
        "past this row count (default 4096)",
    )
    ib.set_defaults(fn=_cmd_index_build)
    ii = idx_sub.add_parser("info", help="summarize a persisted index")
    ii.add_argument("path", help="index directory")
    ii.set_defaults(fn=_cmd_index_info)
    ia = idx_sub.add_parser(
        "append", help="append rows to a mutable store (sealed durable)"
    )
    ia.add_argument("path", help="mutable index directory")
    ia.add_argument(
        "--data", default=None,
        help=".npy of rows to append (default: synthetic near the data)",
    )
    ia.add_argument(
        "--n", type=int, default=64, help="synthetic row count"
    )
    ia.add_argument("--seed", type=int, default=1)
    ia.set_defaults(fn=_cmd_index_append)
    idl = idx_sub.add_parser(
        "delete", help="tombstone rows of a mutable store by global id"
    )
    idl.add_argument("path", help="mutable index directory")
    idl.add_argument(
        "--ids", required=True, metavar="ID,ID,...",
        help="comma-separated global row ids to delete",
    )
    idl.add_argument(
        "--missing", choices=("error", "ignore"), default="error",
        help="unknown/already-dead ids: fail the command or skip them",
    )
    idl.set_defaults(fn=_cmd_index_delete)
    ic = idx_sub.add_parser(
        "compact",
        help="fold sealed segments + tombstones into a new base generation",
    )
    ic.add_argument("path", help="mutable index directory")
    ic.set_defaults(fn=_cmd_index_compact)

    qp = sub.add_parser(
        "query",
        help="batched range/kNN queries against a persisted index",
    )
    qp.add_argument("index", help="persisted index directory")
    qp.add_argument(
        "--queries", default=None,
        help=".npy of query points (default: synthetic near the data)",
    )
    qp.add_argument(
        "--n-queries", type=int, default=64, help="synthetic query count"
    )
    qp.add_argument("--seed", type=int, default=1)
    qp.add_argument(
        "--eps", type=float, default=None,
        help="range-query radius (default: the index eps; must not exceed it)",
    )
    qp.add_argument(
        "--k", type=int, default=None, help="run a kNN query instead of range"
    )
    qp.add_argument(
        "--batched", action="store_true",
        help="padded-batch-GEMM executor for the range query (pair-set contract)",
    )
    qp.add_argument(
        "--workers", type=_workers_arg, default=0, metavar="N",
        help="engine worker pool for range queries (resident datasets)",
    )
    qp.add_argument(
        "--verify", choices=("off", "header", "full"), default="header",
        help="integrity level applied when loading the index (default: "
        "header byte-size checks; full re-hashes every payload)",
    )
    qp.add_argument(
        "--server", default=None, metavar="HOST:PORT",
        help="query a running `serve` instance over HTTP (retrying client) "
        "instead of opening the index locally; requires --queries, and "
        "INDEX names a registered index, not a path",
    )
    qp.set_defaults(fn=_cmd_query)

    sv = sub.add_parser(
        "serve",
        help="JSON-over-HTTP query server with micro-batching + index cache",
    )
    sv.add_argument(
        "--index", action="append", required=True, metavar="[NAME=]PATH",
        help="persisted index to register (repeatable; default name 'default')",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8787)
    sv.add_argument(
        "--workers", type=_workers_arg, default=0, metavar="N",
        help="engine worker pool behind the dispatch loop",
    )
    sv.add_argument(
        "--self-test", action="store_true",
        help="one-shot smoke: serve on an ephemeral port, hammer it with "
        "concurrent retrying clients, verify against the serial engine, exit",
    )
    sv.add_argument(
        "--max-queue-depth", type=int, default=256, metavar="N",
        help="admission-control bound on queued requests; past it the "
        "server answers 429 + Retry-After immediately",
    )
    sv.add_argument(
        "--verify", choices=("off", "header", "full"), default="header",
        help="integrity level applied when the cache loads an index "
        "(default: header byte-size checks; full re-hashes every payload)",
    )
    sv.add_argument(
        "--frontend", choices=("thread", "async"), default="thread",
        help="HTTP front end: 'thread' (one thread per connection) or "
        "'async' (one event loop; waiting requests hold no thread). "
        "Identical routes, contracts, and bit-identical answers",
    )
    sv.add_argument(
        "--trace-sample", type=float, default=0.0, metavar="P",
        help="probability of retaining a request's span tree in the "
        "in-memory ring served by /trace/recent and /trace/<id> "
        "(error traces are always kept; 0 disables sampling)",
    )
    sv.add_argument(
        "--trace-log", default=None, metavar="PATH",
        help="append every retained trace's spans to this JSONL file "
        "(render offline with `python -m repro trace report PATH`)",
    )
    sv.add_argument(
        "--slow-ms", type=float, default=None, metavar="MS",
        help="slow-query log: always retain traces whose root span ran "
        "at least this long, regardless of the sampling coin",
    )
    sv.set_defaults(fn=_cmd_serve)

    lt = sub.add_parser(
        "loadtest",
        help="load-test the query service: open/closed-loop generator, "
        "factors x repetitions run table, latency percentiles",
    )
    lt.add_argument("index", help="persisted index directory")
    lt.add_argument(
        "--config", default=None, metavar="PATH",
        help="TOML/JSON experiment config (base + factors + repetitions); "
        "overrides the quick flags below",
    )
    lt.add_argument(
        "--mode", choices=("closed", "open"), default="closed",
        help="closed: fixed concurrency; open: fixed arrival rate",
    )
    lt.add_argument(
        "--rps", type=float, default=100.0,
        help="open-loop target arrival rate (requests/s)",
    )
    lt.add_argument(
        "--sweep", default=None, metavar="R1,R2,...",
        help="comma-separated open-loop RPS levels to sweep (implies "
        "--mode open; enables saturation-knee detection)",
    )
    lt.add_argument(
        "--duration", type=float, default=5.0, metavar="S",
        help="seconds per run",
    )
    lt.add_argument(
        "--concurrency", type=int, default=4, metavar="N",
        help="closed-loop workers / open-loop in-flight cap",
    )
    lt.add_argument(
        "--batch-size", type=int, default=8, metavar="Q",
        help="query rows per request",
    )
    lt.add_argument(
        "--range-fraction", type=float, default=1.0, metavar="F",
        help="share of read requests going to range (the rest are kNN)",
    )
    lt.add_argument(
        "--append-fraction", type=float, default=0.0, metavar="F",
        help="share of requests appending rows (mutable index only)",
    )
    lt.add_argument(
        "--delete-fraction", type=float, default=0.0, metavar="F",
        help="share of requests deleting own appended rows (mutable only)",
    )
    lt.add_argument("--k", type=int, default=5, help="kNN neighbor count")
    lt.add_argument(
        "--zipf", type=float, default=0.0, metavar="S",
        help="Zipf skew over grid-cell popularity (0 = uniform)",
    )
    lt.add_argument(
        "--deadline", type=float, default=None, metavar="S",
        help="per-request deadline in seconds (in-process mode)",
    )
    lt.add_argument("--seed", type=int, default=0)
    lt.add_argument(
        "--repetitions", type=int, default=1, metavar="R",
        help="repetitions per factor cell (seed advances per rep)",
    )
    lt.add_argument(
        "--server", default=None, metavar="HOST:PORT",
        help="drive a running `serve` instance instead of an in-process "
        "service (the index path still builds the local query pool)",
    )
    lt.add_argument(
        "--http", action="store_true",
        help="spin up the HTTP server on an ephemeral port and drive it "
        "over the wire; checks /metrics parses and no 5xx afterwards",
    )
    lt.add_argument(
        "--frontend", choices=("thread", "async"), default="thread",
        help="HTTP front end for the --http server (see `serve --frontend`)",
    )
    lt.add_argument(
        "--driver", choices=("thread", "async"), default="thread",
        help="load-generator engine for HTTP runs: 'thread' (one worker "
        "thread per in-flight request) or 'async' (open-loop coroutines; "
        "hundreds in flight from one thread)",
    )
    lt.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the full JSON report here",
    )
    lt.add_argument(
        "--csv", default=None, metavar="PATH",
        help="write the flat run-table rows as CSV here",
    )
    lt.add_argument(
        "--trace-sample", type=float, default=0.0, metavar="P",
        help="trace sampling probability for the --http server; also "
        "checks /trace/recent retained at least one trace afterwards",
    )
    lt.add_argument(
        "--trace-log", default=None, metavar="PATH",
        help="JSONL span export for the --http server (see serve)",
    )
    lt.add_argument(
        "--slow-ms", type=float, default=None, metavar="MS",
        help="slow-query retention threshold for the --http server",
    )
    lt.add_argument(
        "--assert-healthy", action="store_true",
        help="exit non-zero on failed requests, undefined p99, unparsable "
        "/metrics, or any server 5xx (the CI smoke contract)",
    )
    lt.set_defaults(fn=_cmd_loadtest)

    tr = sub.add_parser(
        "trace",
        help="inspect span exports from `serve --trace-log`",
    )
    tr_sub = tr.add_subparsers(dest="trace_cmd", required=True)
    trr = tr_sub.add_parser(
        "report",
        help="validate a span JSONL file and render per-trace trees "
        "with total/self times",
    )
    trr.add_argument("path", help="JSONL file written by --trace-log")
    trr.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="render only the last N traces",
    )
    trr.add_argument(
        "--slow-ms", type=float, default=None, metavar="MS",
        help="render only traces whose root span ran at least this long",
    )
    trr.set_defaults(fn=_cmd_trace_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    print(args.fn(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
