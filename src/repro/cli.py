"""Command-line interface: ``python -m repro <experiment>``.

Exposes the experiment drivers without writing any Python:

.. code-block:: console

    $ python -m repro fig8                 # throughput heatmap
    $ python -m repro table5               # leave-one-out ablation
    $ python -m repro fig9                 # FaSTED vs TED-Join-Brute
    $ python -m repro table6               # profiler counters
    $ python -m repro fig10 --dataset Sift10M --n 4000
    $ python -m repro accuracy --dataset Cifar60K --n 3000

Model-driven experiments run instantly at the paper's full scales; the
data-driven ones accept ``--n`` to bound the surrogate size.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.experiments import (
    run_fig8,
    run_fig9,
    run_real_dataset,
    run_table5,
    run_table6,
)
from repro.analysis.tables import format_heatmap, format_table
from repro.data.realworld import DATASETS
from repro.gpusim.profiler import format_table as profiler_table


def _cmd_fig8(_args) -> str:
    res = run_fig8()
    return format_heatmap(
        res.tflops,
        [f"{n:,}" for n in res.sizes],
        res.dims,
        title="Figure 8: FaSTED derived TFLOPS",
        corner="|D| \\ d",
    )


def _cmd_table5(_args) -> str:
    res = run_table5()
    rows = [(r.disabled, f"{r.tflops:.1f}", r.paper_tflops) for r in res.rows]
    rows.append(("(all enabled)", f"{res.baseline_tflops:.1f}", res.paper_baseline))
    return format_table(
        ("Disabled optimization", "Model TFLOPS", "Paper TFLOPS"),
        rows,
        title="Table 5: leave-one-out study",
    )


def _cmd_fig9(_args) -> str:
    res = run_fig9()
    rows = [
        (d, f"{f:.1f}", f"{t:.2f}" if t is not None else "OOM")
        for d, f, t in zip(res.dims, res.fasted_tflops, res.tedjoin_tflops)
    ]
    return format_table(
        ("d", "FaSTED", "TED-Join-Brute"),
        rows,
        title="Figure 9: brute-force TC TFLOPS vs d",
    )


def _cmd_table6(_args) -> str:
    return profiler_table(run_table6(), title="Table 6: profiler counters")


def _cmd_fig10(args) -> str:
    out = run_real_dataset(args.dataset, n=args.n, with_accuracy=False)
    rows = []
    for row in out.fig10_rows:
        for o in row.outcomes:
            su = row.speedup_over(o.name)
            rows.append(
                (
                    row.selectivity,
                    o.name,
                    f"{o.total_s * 1e3:.2f} ms" if o.total_s else "OOM",
                    f"{su:.1f}x" if su else "-",
                )
            )
    return format_table(
        ("S", "Method", "End-to-end", "FaSTED speedup"),
        rows,
        title=f"Figure 10 panel: {args.dataset} (n={out.n_points}, d={out.dims})",
    )


def _cmd_accuracy(args) -> str:
    out = run_real_dataset(
        args.dataset, n=args.n, with_accuracy=True, with_error_stats=True
    )
    rows = [
        (
            a.selectivity,
            f"{a.overlap:.5f}",
            f"{a.error_stats.mean:+.2e}",
            f"{a.error_stats.std:.2e}",
        )
        for a in out.accuracy
    ]
    return format_table(
        ("S", "Overlap", "Err mean", "Err std"),
        rows,
        title=f"Tables 7-8: {args.dataset} accuracy vs FP64",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FaSTED reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("fig8", help="throughput heatmap").set_defaults(fn=_cmd_fig8)
    sub.add_parser("table5", help="ablation study").set_defaults(fn=_cmd_table5)
    sub.add_parser("fig9", help="FaSTED vs TED-Join-Brute").set_defaults(fn=_cmd_fig9)
    sub.add_parser("table6", help="profiler counters").set_defaults(fn=_cmd_table6)
    for name, fn, default_n in (("fig10", _cmd_fig10, 4000), ("accuracy", _cmd_accuracy, 3000)):
        p = sub.add_parser(name, help=f"{name} on a surrogate dataset")
        p.add_argument("--dataset", choices=sorted(DATASETS), default="Sift10M")
        p.add_argument("--n", type=int, default=default_n, help="surrogate size")
        p.set_defaults(fn=fn)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    print(args.fn(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
