"""PTX register-fragment layouts for tensor-core MMA instructions.

The ``mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32`` instruction
(paper Listing 2) distributes its operand matrices across the 32 threads of
a warp in a fixed pattern defined by the PTX ISA.  FaSTED's correctness
depends on ``ldmatrix`` delivering data in exactly this pattern, so we model
the layouts explicitly and test that scatter followed by gather is the
identity.

Thread indexing follows the PTX convention: ``group = lane // 4`` selects a
row (or column for B), ``tid = lane % 4`` selects a pair of adjacent
elements.

The module also records the WMMA-API-visible shapes of paper Table 1, used
to document why FaSTED needs PTX (the 16x8x16 shape is PTX-only).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Lanes per warp.
WARP_SIZE = 32


@dataclass(frozen=True)
class MmaShape:
    """An (m, n, k) MMA tile shape and which APIs expose it (paper Table 1)."""

    m: int
    n: int
    k: int
    wmma_api: bool
    ptx_mma: bool

    @property
    def label(self) -> str:
        return f"{self.m}x{self.n}x{self.k}"


#: Paper Table 1: FP16-32 matrix shapes by API.
SUPPORTED_SHAPES: tuple[MmaShape, ...] = (
    MmaShape(16, 16, 16, wmma_api=True, ptx_mma=False),
    MmaShape(32, 8, 16, wmma_api=True, ptx_mma=False),
    MmaShape(8, 32, 16, wmma_api=True, ptx_mma=False),
    MmaShape(8, 8, 4, wmma_api=False, ptx_mma=True),
    MmaShape(16, 8, 8, wmma_api=False, ptx_mma=True),
    MmaShape(16, 8, 16, wmma_api=False, ptx_mma=True),
)

#: The shape FaSTED uses (PTX-only).
FASTED_SHAPE = SUPPORTED_SHAPES[-1]


def a_fragment_owner(row: np.ndarray, col: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Owner of element ``A[row, col]`` of a 16x16 FP16 A fragment.

    Returns ``(lane, register_halfword)`` where ``register_halfword`` indexes
    the 8 halfwords (4 x 32-bit registers) each lane holds.

    Layout per the PTX ISA for ``m16n8k16`` row-major A: lane group
    ``row % 8`` rows pair with ``row + 8``; halfwords 0-1 cover columns
    ``2*tid, 2*tid+1`` of the low k-half, 4-5 the high k-half, 2-3 and 6-7
    the ``row + 8`` copies.
    """
    row = np.asarray(row)
    col = np.asarray(col)
    lane = (row % 8) * 4 + (col % 8) // 2
    half = (col % 2) + 2 * (row // 8) + 4 * (col // 8)
    return lane, half


def b_fragment_owner(row: np.ndarray, col: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Owner of element ``B[row, col]`` of a 16x8 (k x n) FP16 B fragment.

    Returns ``(lane, register_halfword)`` with 4 halfwords (2 registers) per
    lane; column-major ("col") operand per Listing 2.  Lane ``4*col + t``
    holds rows ``2t, 2t+1`` (halfwords 0-1) and ``2t+8, 2t+9`` (halfwords
    2-3) of column ``col``.
    """
    row = np.asarray(row)
    col = np.asarray(col)
    lane = col * 4 + (row % 8) // 2
    half = (row % 2) + 2 * (row // 8)
    return lane, half


def c_fragment_owner(row: np.ndarray, col: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Owner of element ``C[row, col]`` of a 16x8 FP32 accumulator fragment.

    Returns ``(lane, register)`` with 4 FP32 registers per lane: registers
    0-1 hold columns ``2*tid, 2*tid+1`` of row ``group``, registers 2-3 the
    same columns of row ``group + 8``.
    """
    row = np.asarray(row)
    col = np.asarray(col)
    lane = (row % 8) * 4 + col // 2
    reg = (col % 2) + 2 * (row // 8)
    return lane, reg


def scatter_a(matrix: np.ndarray) -> np.ndarray:
    """Distribute a 16x16 FP16 matrix into per-lane registers.

    Returns a ``(32, 8)`` float16 array: ``out[lane, half]``.
    """
    if matrix.shape != (16, 16):
        raise ValueError(f"A fragment is 16x16, got {matrix.shape}")
    out = np.zeros((WARP_SIZE, 8), dtype=np.float16)
    rows, cols = np.meshgrid(np.arange(16), np.arange(16), indexing="ij")
    lane, half = a_fragment_owner(rows, cols)
    out[lane, half] = matrix.astype(np.float16)
    return out


def gather_a(regs: np.ndarray) -> np.ndarray:
    """Reassemble the 16x16 matrix from per-lane A registers."""
    if regs.shape != (WARP_SIZE, 8):
        raise ValueError(f"A registers are (32, 8), got {regs.shape}")
    rows, cols = np.meshgrid(np.arange(16), np.arange(16), indexing="ij")
    lane, half = a_fragment_owner(rows, cols)
    return regs[lane, half]


def scatter_b(matrix: np.ndarray) -> np.ndarray:
    """Distribute a 16x8 FP16 B matrix into per-lane registers (32, 4)."""
    if matrix.shape != (16, 8):
        raise ValueError(f"B fragment is 16x8, got {matrix.shape}")
    out = np.zeros((WARP_SIZE, 4), dtype=np.float16)
    rows, cols = np.meshgrid(np.arange(16), np.arange(8), indexing="ij")
    lane, half = b_fragment_owner(rows, cols)
    out[lane, half] = matrix.astype(np.float16)
    return out


def gather_b(regs: np.ndarray) -> np.ndarray:
    """Reassemble the 16x8 B matrix from per-lane registers."""
    if regs.shape != (WARP_SIZE, 4):
        raise ValueError(f"B registers are (32, 4), got {regs.shape}")
    rows, cols = np.meshgrid(np.arange(16), np.arange(8), indexing="ij")
    lane, half = b_fragment_owner(rows, cols)
    return regs[lane, half]


def scatter_c(matrix: np.ndarray) -> np.ndarray:
    """Distribute a 16x8 FP32 accumulator into per-lane registers (32, 4)."""
    if matrix.shape != (16, 8):
        raise ValueError(f"C fragment is 16x8, got {matrix.shape}")
    out = np.zeros((WARP_SIZE, 4), dtype=np.float32)
    rows, cols = np.meshgrid(np.arange(16), np.arange(8), indexing="ij")
    lane, reg = c_fragment_owner(rows, cols)
    out[lane, reg] = matrix.astype(np.float32)
    return out


def gather_c(regs: np.ndarray) -> np.ndarray:
    """Reassemble the 16x8 accumulator from per-lane C registers."""
    if regs.shape != (WARP_SIZE, 4):
        raise ValueError(f"C registers are (32, 4), got {regs.shape}")
    rows, cols = np.meshgrid(np.arange(16), np.arange(8), indexing="ij")
    lane, reg = c_fragment_owner(rows, cols)
    return regs[lane, reg]
