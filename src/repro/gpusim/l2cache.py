"""Set-associative LRU model of the A100's 40 MB L2 cache.

The paper's Section 3.3.1 optimization (block-tile work-queue ordering)
exists purely to raise the L2 hit rate of global-memory reads: with a 100%
hit rate, the effective read bandwidth rises from 1.5 TB/s (DRAM) to
6.4 TB/s (Box #1).  We model the cache at 128-byte-line granularity and
replay the read stream of concurrently executing block tiles under a given
dispatch order to measure the hit rate that feeds the timing model.

The model is deliberately simple -- physical address hashing, sectoring and
the A100's two-partition L2 are ignored -- because the quantity of interest
is the *relative* locality of tile orderings, which set-associative LRU
captures.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

#: Cache line size in bytes (A100 L2).
LINE_BYTES = 128


@dataclass
class CacheStats:
    """Hit/miss accounting."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from the cache (Table 6's "L2 Hit Rate")."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class L2Cache:
    """Set-associative LRU cache over line addresses.

    Parameters
    ----------
    size_bytes:
        Total capacity.
    associativity:
        Ways per set (A100 L2 is 16-way).
    line_bytes:
        Line size; addresses are divided by this before indexing.
    """

    def __init__(
        self,
        size_bytes: int,
        associativity: int = 16,
        line_bytes: int = LINE_BYTES,
    ) -> None:
        if size_bytes <= 0 or associativity <= 0:
            raise ValueError("size and associativity must be positive")
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.n_sets = max(1, size_bytes // (line_bytes * associativity))
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.stats = CacheStats()

    def access_line(self, line_addr: int) -> bool:
        """Touch one line; returns True on hit."""
        s = self._sets[line_addr % self.n_sets]
        if line_addr in s:
            s.move_to_end(line_addr)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        s[line_addr] = None
        if len(s) > self.associativity:
            s.popitem(last=False)
        return False

    def access_bytes(self, byte_addr: int, n_bytes: int) -> tuple[int, int]:
        """Touch every line of a byte range; returns (hits, misses)."""
        first = byte_addr // self.line_bytes
        last = (byte_addr + max(n_bytes, 1) - 1) // self.line_bytes
        hits = 0
        for line in range(first, last + 1):
            hits += self.access_line(line)
        total = last - first + 1
        return hits, total - hits

    def access_lines(self, line_addrs: np.ndarray) -> int:
        """Touch a vector of line addresses; returns the number of hits."""
        return sum(self.access_line(int(a)) for a in np.asarray(line_addrs).ravel())

    def reset_stats(self) -> None:
        self.stats = CacheStats()
