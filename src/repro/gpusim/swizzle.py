"""XOR swizzling of shared-memory addresses (paper Eq. 2, Figures 5-6).

FaSTED stores a block fragment (128 points x 64 dimensions of FP16 data) in
shared memory.  Data arrives from global memory in row-major order -- point
``i`` contributes eight 8-dimension chunks ``s = 0..7`` -- and is stored at
the *swizzled* chunk address

    A_dest = 8 * i + (s XOR (i mod 8))                          (Eq. 2)

(0-based form of the paper's ``8 (i-1) + s XOR ((i-1) mod 8)``).  Because
XOR with a constant permutes ``0..7``, each point's row still occupies its
own 8 chunks, but the chunk -> bank-group assignment rotates per row, which
simultaneously:

* keeps global->shared stores conflict-free (each store phase writes 8
  chunks of 8 *different* points at the *same* slice, hitting 8 distinct
  groups), and
* makes every ``ldmatrix`` phase (8 threads reading the same slice column of
  8 consecutive points) hit 8 distinct groups as well.

The plain row-major layout satisfies the first property but fails the second
with 8-way conflicts -- exactly the contrast of paper Figures 5-7.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.gpusim.smem import CHUNKS_PER_ROW

#: A layout maps (point_row, slice_index) -> chunk address in shared memory.
LayoutFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def swizzled_chunk_addr(
    point_row: np.ndarray | int, slice_idx: np.ndarray | int
) -> np.ndarray:
    """Swizzled shared-memory chunk address of Eq. 2 (0-based).

    Parameters
    ----------
    point_row:
        Row index of the point within the block fragment (0-based).
    slice_idx:
        8-dimension slice index within the point's 64-dimension k-slice
        (0..7).

    Returns
    -------
    numpy.ndarray
        Chunk address(es) in units of 16 bytes.
    """
    i = np.asarray(point_row)
    s = np.asarray(slice_idx)
    return CHUNKS_PER_ROW * i + (s ^ (i % CHUNKS_PER_ROW))


def row_major_chunk_addr(
    point_row: np.ndarray | int, slice_idx: np.ndarray | int
) -> np.ndarray:
    """Unswizzled (naive row-major) chunk address, used by the ablation."""
    i = np.asarray(point_row)
    s = np.asarray(slice_idx)
    return CHUNKS_PER_ROW * i + s


def unswizzle_chunk_addr(chunk_addr: np.ndarray | int) -> tuple[np.ndarray, np.ndarray]:
    """Invert :func:`swizzled_chunk_addr`: chunk address -> (row, slice).

    XOR with ``i mod 8`` is an involution given the row, and the row is
    recoverable from the address alone (``addr // 8``), so the swizzle is a
    bijection on every row -- the property hypothesis tests verify.
    """
    addr = np.asarray(chunk_addr)
    i = addr // CHUNKS_PER_ROW
    s = (addr % CHUNKS_PER_ROW) ^ (i % CHUNKS_PER_ROW)
    return i, s


def layout(swizzled: bool) -> LayoutFn:
    """Return the layout function for a configuration flag."""
    return swizzled_chunk_addr if swizzled else row_major_chunk_addr


def store_phase_addresses(layout_fn: LayoutFn, point_row: int) -> np.ndarray:
    """Chunk addresses written by one global->shared store phase.

    Mirrors paper Figure 5: 8 threads cooperatively store the eight
    8-dimension slices of *one* point's 64-dimension k-slice (thread ``t``
    holds slice ``t``).  Because the slices of a single row always occupy 8
    distinct bank groups -- swizzled or not -- stores are conflict-free in
    both layouts, which is why the paper notes swizzling "is not required"
    for stores and exists for the ``ldmatrix`` *loads*.
    """
    slices = np.arange(CHUNKS_PER_ROW, dtype=np.int64)
    rows = np.full(slices.shape, point_row, dtype=np.int64)
    return layout_fn(rows, slices)


def load_phase_addresses(
    layout_fn: LayoutFn, first_row: int, slice_idx: int
) -> np.ndarray:
    """Chunk addresses read by one ``ldmatrix`` phase.

    Mirrors paper Figure 7a: 8 threads read the *same* 8-dimension slice of
    8 consecutive points (rows ``first_row .. first_row+7``).  Row-major
    placement puts all eight in one bank group (8-way conflict); the swizzle
    spreads them across all eight groups.
    """
    rows = first_row + np.arange(CHUNKS_PER_ROW, dtype=np.int64)
    slices = np.full(rows.shape, slice_idx, dtype=np.int64)
    return layout_fn(rows, slices)
