"""The ``ldmatrix`` shared-memory -> register instruction (paper Listing 1).

``ldmatrix.sync.aligned.x4.m8n8.shared.b16`` loads four 8x8 FP16 submatrices
from shared memory into a warp's registers in **four phases**; each phase is
one 128-byte transaction in which 8 threads each read one 16-byte chunk
(paper Figure 7a).  A phase completes in a single transaction only when the
eight chunks hit eight distinct bank groups -- the property the XOR swizzle
guarantees and the row-major layout violates (8-way conflict).

Two services are provided:

* :func:`phase_chunk_addresses` / :func:`count_transactions` -- the address
  stream of each phase under a given layout, used by the timing model to
  derive the shared-memory conflict multiplier analytically.
* :func:`load_p_fragment` / :func:`load_q_fragment` -- functional loads that
  pull actual FP16 values out of a :class:`repro.gpusim.smem.SharedMemory`
  and return the 16x16 (or 16x8) matrix an MMA consumes, while the memory
  object accounts transactions.  Tests verify the round trip
  global -> swizzled smem -> ldmatrix equals the original data.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.smem import CHUNKS_PER_ROW, SharedMemory
from repro.gpusim.swizzle import LayoutFn, load_phase_addresses

#: Phases per ldmatrix.x4 instruction.
PHASES_X4 = 4

#: Threads cooperating in one phase (one 128 B transaction).
THREADS_PER_PHASE = 8


def phase_chunk_addresses(
    layout_fn: LayoutFn, base_row: int, n_rows: int, slice_offset: int
) -> list[np.ndarray]:
    """Chunk addresses of each ldmatrix phase for an ``n_rows`` x 16 tile.

    A 16x16 A fragment (``n_rows=16``) issues 4 phases: rows 0-7 slice
    ``slice_offset``, rows 8-15 slice ``slice_offset``, rows 0-7 slice
    ``slice_offset+1``, rows 8-15 slice ``slice_offset+1`` (paper Figure 7a
    with dimensions 1-8 / 9-16).  A 16x8 B fragment uses the ``x2`` variant
    (2 phases) but the per-phase pattern is identical.

    Parameters
    ----------
    layout_fn:
        Swizzled or row-major layout.
    base_row:
        First point row of the fragment within the block fragment.
    n_rows:
        16 for an A (``x4``) load, 8 for a ``x2`` load.
    slice_offset:
        Index of the first 8-dimension slice covered by this fragment's
        16-dimension k-slice.

    Returns
    -------
    list of numpy.ndarray
        One address vector (8 chunk addresses) per phase.
    """
    phases = []
    for s in range(2):  # two 8-dim slices make the 16-dim k-slice
        for r in range(0, n_rows, THREADS_PER_PHASE):
            phases.append(
                load_phase_addresses(layout_fn, base_row + r, slice_offset + s)
            )
    return phases


def count_transactions(layout_fn: LayoutFn, base_row: int, n_rows: int, slice_offset: int) -> int:
    """Total serialized transactions for one ldmatrix under ``layout_fn``."""
    from repro.gpusim.smem import conflict_degree

    return sum(
        conflict_degree(addrs)
        for addrs in phase_chunk_addresses(layout_fn, base_row, n_rows, slice_offset)
    )


def _load_rows(
    smem: SharedMemory,
    layout_fn: LayoutFn,
    base_row: int,
    n_rows: int,
    slice_offset: int,
) -> np.ndarray:
    """Load an ``n_rows x 16`` FP16 tile via ldmatrix phases."""
    out = np.zeros((n_rows, 16), dtype=np.float16)
    for s in range(2):
        for r in range(0, n_rows, THREADS_PER_PHASE):
            addrs = load_phase_addresses(layout_fn, base_row + r, slice_offset + s)
            values, _ = smem.load_phase(addrs)
            out[r : r + THREADS_PER_PHASE, 8 * s : 8 * s + 8] = values
    return out


def load_p_fragment(
    smem: SharedMemory, layout_fn: LayoutFn, base_row: int, kslice: int
) -> np.ndarray:
    """Load a 16x16 P register fragment (points x dims) from shared memory.

    Parameters
    ----------
    smem:
        Shared memory holding a block fragment stored with ``layout_fn``.
    layout_fn:
        The layout used at store time (must match to read back correctly).
    base_row:
        First of the 16 point rows.
    kslice:
        Which 16-dimension k-slice (0..3 within a 64-dim block fragment).
    """
    return _load_rows(smem, layout_fn, base_row, 16, 2 * kslice)


def load_q_fragment(
    smem: SharedMemory, layout_fn: LayoutFn, base_row: int, kslice: int
) -> np.ndarray:
    """Load a 16x8 Q register fragment (dims x query points), transposed.

    The Q block fragment is stored point-major like P; the ldmatrix
    ``.trans`` variant delivers it transposed into registers, so the result
    is the ``(16, 8)`` k x n operand of :func:`repro.fp.mma.mma_m16n8k16`.
    """
    rows = _load_rows(smem, layout_fn, base_row, 8, 2 * kslice)
    return rows.T.copy()
