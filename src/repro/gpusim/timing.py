"""Kernel timing assembly: resource demands -> seconds and derived TFLOPS.

This is the simulator's roofline-with-structure core.  A kernel is
described as a grid of identical *tiles*; each tile runs ``chunks_per_tile``
steady-state iterations (one per k-chunk) plus a prologue (pipeline fill)
and an epilogue (distance recombination, filtering, result writes).  Each
iteration of one block demands:

* tensor-core cycles (at the per-block share of the SM's tensor throughput),
* shared-memory load cycles (``ldmatrix`` traffic, inflated by the bank
  conflict multiplier when the swizzle is disabled),
* instruction-issue cycles,
* global-memory bytes (split between DRAM and L2 by the hit rate), and
* shared-memory store bytes (the async-copy landing traffic).

Compute-side cycles scale with the core clock; memory-side service rates do
not, so throttling the clock changes the balance -- the model resolves the
operating point (clock, power, iteration time) by fixed-point iteration
with :mod:`repro.gpusim.power`, then applies the boost-ramp correction for
very short kernels and wave quantization for grids that do not fill the
GPU.  Utilization counters matching Nsight's definitions fall out of the
same arithmetic and feed :mod:`repro.gpusim.profiler`.

All cycle figures in a :class:`ResourceDemand` are *boost-clock* cycles for
*one block*; the resolver rescales them internally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim import pipeline as pipeline_mod
from repro.gpusim.pipeline import PipelineConfig
from repro.gpusim.power import ramped_average_clock, throttled_clock
from repro.gpusim.spec import GpuSpec


@dataclass(frozen=True)
class ResourceDemand:
    """Per-k-chunk, per-block resource demand (boost-clock cycles / bytes)."""

    tc_cycles: float
    smem_load_cycles: float
    issue_cycles: float
    gmem_bytes: float
    smem_store_bytes: float


@dataclass(frozen=True)
class KernelCost:
    """Whole-kernel cost description handed to :func:`resolve_timing`.

    ``n_tiles`` is no longer free-floating: the kernels derive it (and
    ``plan`` records the derivation) from the same
    :class:`repro.core.engine.TilePlan` geometry their functional
    executors run -- ``TilePlan(symmetric=False)``, the device schedule
    that dispatches every block tile of the full grid -- so modeled and
    executed tile counts cannot drift apart (tests/test_workers.py runs
    the functional path at the device plan and asserts the equality).
    """

    n_tiles: int
    chunks_per_tile: int
    demand: ResourceDemand
    epilogue_cycles: float
    pipeline: PipelineConfig
    grid_blocks: int
    blocks_per_sm: int
    l2_hit_rate: float
    fixed_overhead_s: float = 0.0
    bank_conflict_rate: float = 0.0
    #: The tile schedule ``n_tiles`` was derived from (a
    #: :class:`repro.core.engine.TilePlan`; None for hand-assembled costs).
    plan: object | None = None


@dataclass(frozen=True)
class KernelTiming:
    """Resolved timing and the profiler-visible counters."""

    seconds: float
    kernel_seconds: float
    clock_hz: float
    power_w: float
    throttled: bool
    tc_utilization: float
    dram_utilization: float
    smem_utilization: float
    l2_hit_rate: float
    bank_conflict_rate: float
    iteration_cycles: float
    tile_cycles: float

    def derived_tflops(self, total_flops: float) -> float:
        """Paper's "derived TFLOPS": total operations / measured time."""
        if self.seconds <= 0:
            return 0.0
        return total_flops / self.seconds / 1e12


def _memory_cycles(
    spec: GpuSpec,
    demand: ResourceDemand,
    l2_hit: float,
    active_blocks: int,
    clock_ratio: float,
) -> tuple[float, float, float]:
    """(memory path cycles, dram cycles, smem store cycles) at current clock.

    Bandwidth shares are GPU-wide rates divided across active blocks; in
    units of *current-clock* cycles the per-cycle share grows as the clock
    drops (bytes per second is clock-invariant).
    """
    blocks = max(active_blocks, 1)
    clock = spec.boost_clock_hz * clock_ratio
    dram_share = spec.dram_bandwidth / clock / blocks
    l2_share = spec.l2_bandwidth / clock / blocks
    smem_share = spec.smem_bandwidth / clock / spec.sm_count
    per_sm_blocks = max(1, blocks // spec.sm_count) if blocks >= spec.sm_count else 1
    smem_share_pb = smem_share / per_sm_blocks

    dram_cycles = demand.gmem_bytes * (1.0 - l2_hit) / dram_share
    l2_cycles = demand.gmem_bytes / l2_share
    store_cycles = demand.smem_store_bytes / smem_share_pb
    return max(dram_cycles, l2_cycles) + store_cycles, dram_cycles, store_cycles


def _compute_cycles(demand: ResourceDemand) -> float:
    """Compute-path cycles (clock-scaled; constant in cycle units)."""
    return demand.tc_cycles + demand.smem_load_cycles + demand.issue_cycles


def resolve_timing(
    spec: GpuSpec,
    cost: KernelCost,
    *,
    power_iterations: int = 4,
) -> KernelTiming:
    """Resolve the kernel's operating point and total runtime.

    The fixed point couples three quantities: iteration time determines
    utilization; utilization determines the throttled clock; the clock
    rebalances compute (cycle-fixed) against memory (time-fixed) and thus
    iteration time.  A handful of damped iterations converges.
    """
    active_blocks = min(
        cost.grid_blocks,
        spec.sm_count * max(cost.blocks_per_sm, 1),
        max(cost.n_tiles, 1),
    )
    tiles_per_block = -(-cost.n_tiles // max(active_blocks, 1))

    clock_ratio = 1.0
    tc_util = 0.0
    dram_util = 0.0
    iter_cycles = 0.0
    tile_cycles = 1.0
    power = None
    for _ in range(max(power_iterations, 1)):
        mem_cycles, dram_cycles, _store = _memory_cycles(
            spec, cost.demand, cost.l2_hit_rate, active_blocks, clock_ratio
        )
        compute = _compute_cycles(cost.demand)
        iter_cycles = pipeline_mod.iteration_cycles(compute, mem_cycles, cost.pipeline)
        fill = pipeline_mod.fill_cycles(mem_cycles, cost.pipeline)
        tile_cycles = fill + cost.chunks_per_tile * iter_cycles + cost.epilogue_cycles
        tc_util = cost.chunks_per_tile * cost.demand.tc_cycles / tile_cycles
        dram_util = cost.chunks_per_tile * dram_cycles / tile_cycles
        # DRAM utilization counter is GPU-wide: per-block share already
        # divides by active blocks, so the per-block cycle fraction is the
        # aggregate utilization.
        power = throttled_clock(spec, tc_util, dram_util)
        new_ratio = power.clock_hz / spec.boost_clock_hz
        clock_ratio = 0.5 * clock_ratio + 0.5 * new_ratio

    clock = spec.boost_clock_hz * clock_ratio
    kernel_cycles = tiles_per_block * tile_cycles
    kernel_seconds = kernel_cycles / clock

    # Short kernels never reach the boosted clock: apply the ramp average
    # and re-time once.
    avg_clock = ramped_average_clock(clock, kernel_seconds)
    if avg_clock < clock:
        kernel_seconds = kernel_cycles / avg_clock
        clock = avg_clock

    mem_cycles, _, store_cycles = _memory_cycles(
        spec, cost.demand, cost.l2_hit_rate, active_blocks, clock_ratio
    )
    smem_cycles_total = (
        cost.demand.smem_load_cycles + store_cycles
    ) * cost.chunks_per_tile
    smem_util = min(1.0, smem_cycles_total / tile_cycles)

    return KernelTiming(
        seconds=kernel_seconds + cost.fixed_overhead_s,
        kernel_seconds=kernel_seconds,
        clock_hz=clock,
        power_w=power.power_w if power else 0.0,
        throttled=power.throttled if power else False,
        tc_utilization=min(1.0, tc_util),
        dram_utilization=min(1.0, dram_util),
        smem_utilization=smem_util,
        l2_hit_rate=cost.l2_hit_rate,
        bank_conflict_rate=cost.bank_conflict_rate,
        iteration_cycles=iter_cycles,
        tile_cycles=tile_cycles,
    )
