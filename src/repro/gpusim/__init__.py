"""A behavioral and timing simulator of an A100-class tensor-core GPU.

This is the substrate substituting for the paper's physical hardware (see
DESIGN.md Section 2).  It has two faces:

* **Functional** -- shared memory with real bank-conflict accounting
  (:mod:`~repro.gpusim.smem`), the Eq.-2 XOR swizzle
  (:mod:`~repro.gpusim.swizzle`), ``ldmatrix`` phase semantics
  (:mod:`~repro.gpusim.ldmatrix`), PTX register-fragment layouts
  (:mod:`~repro.gpusim.fragments`) and an LRU L2 model
  (:mod:`~repro.gpusim.l2cache`).  These move real FP16 data and are what
  the correctness tests exercise.
* **Timing** -- a calibrated analytic model
  (:mod:`~repro.gpusim.timing`, :mod:`~repro.gpusim.pipeline`,
  :mod:`~repro.gpusim.occupancy`, :mod:`~repro.gpusim.power`,
  :mod:`~repro.gpusim.workqueue`) that converts instruction/traffic counts
  into kernel seconds, derived TFLOPS, and Nsight-style counters
  (:mod:`~repro.gpusim.profiler`).
"""

from repro.gpusim.spec import A100_PCIE, A100_SXM, DEFAULT_SPEC, V100_SXM2, GpuSpec

__all__ = [
    "A100_PCIE",
    "A100_SXM",
    "DEFAULT_SPEC",
    "V100_SXM2",
    "GpuSpec",
]
