"""Unit helpers for the GPU simulator.

All internal bookkeeping uses base SI units (bytes, seconds, Hz, FLOP/s).
These helpers keep magnitudes readable at call sites and centralize the
conversion factors so datasheet numbers are entered exactly once.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12

GHZ = 10**9

TFLOPS = 10**12


def tb_per_s(x: float) -> float:
    """Convert TB/s to B/s."""
    return x * TB


def ghz(x: float) -> float:
    """Convert GHz to Hz."""
    return x * GHZ


def tflops(x: float) -> float:
    """Convert TFLOP/s to FLOP/s."""
    return x * TFLOPS


def as_tflops(flops_per_s: float) -> float:
    """Convert FLOP/s to TFLOP/s for reporting."""
    return flops_per_s / TFLOPS


def bytes_per_cycle(bandwidth_b_per_s: float, clock_hz: float) -> float:
    """Bandwidth expressed as bytes per clock cycle."""
    return bandwidth_b_per_s / clock_hz
