"""GPU hardware specifications used by the simulator.

The numbers for the A100 follow the values the paper itself works with
(Section 1, Box #1 and Section 4.1.1): 312 TFLOPS FP16-32 tensor-core peak,
19.5 TFLOPS FP64 tensor-core / FP32 CUDA-core peak, 1.5 TB/s global-memory
bandwidth, 6.4 TB/s L2 bandwidth, 17.9 TB/s aggregate shared-memory
bandwidth, 108 SMs with 192 KB unified L1/shared storage, and a 250 W power
budget on the PCIe model (400 W on SXM).

Everything downstream (Box #1 reuse arithmetic, the timing model, the power
throttle) reads these fields instead of hard-coding constants, which is what
makes the "what if we had an SXM A100" experiment from the paper's
conclusion a one-line change.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.gpusim import units


@dataclass(frozen=True)
class GpuSpec:
    """Datasheet description of a tensor-core GPU.

    Attributes
    ----------
    name:
        Human-readable model name.
    sm_count:
        Number of streaming multiprocessors.
    tensor_cores_per_sm:
        Tensor cores per SM (equals the number of warp schedulers on A100).
    warp_schedulers_per_sm:
        Warp schedulers per SM; FaSTED runs one warp tile per scheduler.
    boost_clock_hz:
        Maximum boost clock in Hz; the power model may throttle below this.
    fp16_tc_flops:
        Peak FP16-multiply / FP32-accumulate tensor-core throughput (FLOP/s).
    fp64_tc_flops:
        Peak FP64 tensor-core throughput (FLOP/s).
    fp32_cuda_flops:
        Peak FP32 CUDA-core throughput (FLOP/s).
    dram_bandwidth:
        Global-memory bandwidth (B/s).
    l2_bandwidth:
        L2-cache bandwidth (B/s).
    l2_size_bytes:
        L2 capacity in bytes.
    smem_bandwidth:
        Aggregate shared-memory bandwidth across the GPU (B/s).
    smem_per_sm_bytes:
        Unified L1/shared storage per SM (bytes).
    smem_max_block_bytes:
        Maximum shared memory configurable for kernel use per SM.
    registers_per_sm:
        32-bit registers per SM.
    max_threads_per_sm:
        Thread-residency limit per SM.
    max_blocks_per_sm:
        Hardware block-residency limit per SM.
    power_budget_w:
        Board power limit in watts; exceeding it throttles the clock.
    pcie_bandwidth:
        Host<->device transfer bandwidth (B/s), used by end-to-end models.
    """

    name: str
    sm_count: int
    tensor_cores_per_sm: int
    warp_schedulers_per_sm: int
    boost_clock_hz: float
    fp16_tc_flops: float
    fp64_tc_flops: float
    fp32_cuda_flops: float
    dram_bandwidth: float
    l2_bandwidth: float
    l2_size_bytes: int
    smem_bandwidth: float
    smem_per_sm_bytes: int
    smem_max_block_bytes: int
    registers_per_sm: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    power_budget_w: float
    pcie_bandwidth: float

    # ---- Derived quantities -------------------------------------------------

    @property
    def fp16_tc_flops_per_cycle(self) -> float:
        """GPU-wide FP16-32 FLOP per cycle at any clock."""
        return self.fp16_tc_flops / self.boost_clock_hz

    @property
    def fp16_tc_flops_per_cycle_per_sm(self) -> float:
        """Per-SM FP16-32 FLOP per cycle."""
        return self.fp16_tc_flops_per_cycle / self.sm_count

    @property
    def fp64_tc_flops_per_cycle_per_sm(self) -> float:
        """Per-SM FP64 tensor-core FLOP per cycle."""
        return self.fp64_tc_flops / self.boost_clock_hz / self.sm_count

    @property
    def dram_bytes_per_cycle(self) -> float:
        """GPU-wide DRAM bytes per cycle at boost clock."""
        return self.dram_bandwidth / self.boost_clock_hz

    @property
    def l2_bytes_per_cycle(self) -> float:
        """GPU-wide L2 bytes per cycle at boost clock."""
        return self.l2_bandwidth / self.boost_clock_hz

    @property
    def smem_bytes_per_cycle_per_sm(self) -> float:
        """Per-SM shared-memory bytes per cycle at boost clock."""
        return self.smem_bandwidth / self.boost_clock_hz / self.sm_count

    def with_power_budget(self, watts: float) -> "GpuSpec":
        """Return a copy with a different board power limit."""
        return replace(self, power_budget_w=watts)


#: The evaluation platform of the paper: A100 PCIe, 40 GiB, 250 W.
A100_PCIE = GpuSpec(
    name="NVIDIA A100 PCIe 40GB",
    sm_count=108,
    tensor_cores_per_sm=4,
    warp_schedulers_per_sm=4,
    boost_clock_hz=units.ghz(1.41),
    fp16_tc_flops=units.tflops(312.0),
    fp64_tc_flops=units.tflops(19.5),
    fp32_cuda_flops=units.tflops(19.5),
    dram_bandwidth=units.tb_per_s(1.5),
    l2_bandwidth=units.tb_per_s(6.4),
    l2_size_bytes=40 * units.MB,
    smem_bandwidth=units.tb_per_s(17.9),
    smem_per_sm_bytes=192 * units.KIB,
    smem_max_block_bytes=164 * units.KIB,
    registers_per_sm=65536,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    power_budget_w=250.0,
    pcie_bandwidth=25 * units.GB,
)

#: The SXM variant the conclusion speculates about: 400 W power budget.
A100_SXM = replace(
    A100_PCIE,
    name="NVIDIA A100 SXM4 40GB",
    power_budget_w=400.0,
    dram_bandwidth=units.tb_per_s(1.555),
)

#: Volta-generation reference (no cp.async, smaller SMEM) for what-if runs.
V100_SXM2 = GpuSpec(
    name="NVIDIA V100 SXM2 32GB",
    sm_count=80,
    tensor_cores_per_sm=8,
    warp_schedulers_per_sm=4,
    boost_clock_hz=units.ghz(1.53),
    fp16_tc_flops=units.tflops(125.0),
    fp64_tc_flops=units.tflops(7.8),
    fp32_cuda_flops=units.tflops(15.7),
    dram_bandwidth=units.tb_per_s(0.9),
    l2_bandwidth=units.tb_per_s(2.5),
    l2_size_bytes=6 * units.MB,
    smem_bandwidth=units.tb_per_s(13.5),
    smem_per_sm_bytes=128 * units.KIB,
    smem_max_block_bytes=96 * units.KIB,
    registers_per_sm=65536,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    power_budget_w=300.0,
    pcie_bandwidth=16 * units.GB,
)

DEFAULT_SPEC = A100_PCIE
