"""Box #1: data-reuse prerequisites for peak throughput (paper Section 3.2).

The paper sizes its tiles from first principles: at 312 TFLOPS, FP16-32
tensor cores consume one 2-byte element per FLOP-pair, so each element read
from global memory (through a 100%-hit L2 at 6.4 TB/s) must be reused ~98
times and each element read from shared memory (17.9 TB/s) ~35 times.  The
chosen tiles deliver exactly that: a 128x128 block tile reuses every staged
element 128 times (>98), and a 64x64 warp tile reuses each P fragment 4
times and each Q fragment 8 times from registers while the k-slice in
shared memory serves 64+64 rows (>35 on average).

This module reproduces the arithmetic generically over a
:class:`~repro.gpusim.spec.GpuSpec` so the same derivation answers the
conclusion's what-if questions (SXM power budget, V100 generation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.spec import DEFAULT_SPEC, GpuSpec


@dataclass(frozen=True)
class ReuseRequirements:
    """Required and achieved data-reuse factors for a tile configuration."""

    elements_per_second: float
    required_l2_reuse: float
    required_smem_reuse: float
    block_tile_reuse: int
    warp_tile_p_reuse: int
    warp_tile_q_reuse: int

    @property
    def block_tile_sufficient(self) -> bool:
        """Paper Section 3.3.2: block-tile reuse must exceed the L2 bound."""
        return self.block_tile_reuse >= self.required_l2_reuse

    @property
    def warp_tile_reuse(self) -> int:
        """Effective SMEM reuse: MACs fed per shared-memory element read.

        A staged k-slice element is read once per consuming warp and then
        multiplied against every opposing fragment held in registers --
        ``p_reuse * q_reuse`` MACs per read for the 64x64 warp tile (= 32).
        """
        return self.warp_tile_p_reuse * self.warp_tile_q_reuse

    @property
    def warp_tile_sufficient(self) -> bool:
        """Paper Section 3.3.7: fragment reuse vs the SMEM bound.

        The 64x64 warp tile achieves 32x reuse against Box #1's ~35x --
        the published 17.9 TB/s shared-memory figure is a base-clock
        number; at the boost clock the ``ldmatrix`` path moves
        128 B/cycle/SM (~19.5 TB/s), for which 32x is exactly sufficient.
        We therefore accept a 10% slack against the published bound.
        """
        return self.warp_tile_reuse >= 0.9 * self.required_smem_reuse


def reuse_requirements(
    spec: GpuSpec = DEFAULT_SPEC,
    *,
    elem_bytes: int = 2,
    block_points: int = 128,
    warp_tile_m: int = 64,
    warp_tile_n: int = 64,
    mma_m: int = 16,
    mma_n: int = 8,
    l2_hit_rate: float = 1.0,
) -> ReuseRequirements:
    """Reproduce Box #1 for an arbitrary GPU and tile configuration.

    Parameters
    ----------
    spec:
        GPU datasheet values.
    elem_bytes:
        Element width (2 for FP16).
    block_points:
        Block-tile edge; each staged element is reused ``block_points``
        times (every P row meets every Q column).
    warp_tile_m, warp_tile_n, mma_m, mma_n:
        Warp-tile geometry; P fragments are reused ``warp_n / mma_n`` times
        and Q fragments ``warp_m / mma_m`` times (paper: 8 and 4).
    l2_hit_rate:
        Effective read bandwidth interpolates between DRAM and L2.
    """
    # 2 FLOP per 2 elements processed: elements/s equals FLOP/s.
    elements_per_second = spec.fp16_tc_flops
    read_bw = (
        l2_hit_rate * spec.l2_bandwidth + (1.0 - l2_hit_rate) * spec.dram_bandwidth
    )
    required_l2 = elements_per_second * elem_bytes / read_bw
    required_smem = elements_per_second * elem_bytes / spec.smem_bandwidth
    return ReuseRequirements(
        elements_per_second=elements_per_second,
        required_l2_reuse=required_l2,
        required_smem_reuse=required_smem,
        block_tile_reuse=block_points,
        warp_tile_p_reuse=warp_tile_n // mma_n,
        warp_tile_q_reuse=warp_tile_m // mma_m,
    )
