"""Block residency (occupancy) arithmetic (paper Section 3.3.6).

FaSTED deliberately sizes its block tile, k-slice width and pipeline depth
to leave *exactly* enough shared memory and registers for two blocks to
reside on each SM simultaneously -- one block's tensor-core work hides the
other's memory stalls.  This module computes how many blocks fit, given the
per-block resource footprint, using the standard CUDA occupancy rules
(minimum over the shared-memory, register, thread and block limits).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.spec import GpuSpec


@dataclass(frozen=True)
class BlockResources:
    """Per-block resource footprint of a kernel.

    Attributes
    ----------
    threads_per_block:
        Thread count (FaSTED: 4 warps = 128 threads).
    registers_per_thread:
        32-bit registers per thread, including accumulator fragments.
    smem_bytes_per_block:
        Static + dynamic shared memory per block.
    """

    threads_per_block: int
    registers_per_thread: int
    smem_bytes_per_block: int

    @property
    def registers_per_block(self) -> int:
        # Hardware allocates registers in warp-granular chunks of 256.
        per_warp = self.registers_per_thread * 32
        granule = 256
        rounded = -(-per_warp // granule) * granule
        return rounded * (self.threads_per_block // 32)


def blocks_per_sm(spec: GpuSpec, res: BlockResources) -> int:
    """Number of blocks of this footprint that fit on one SM.

    Returns 0 when a single block cannot launch (e.g. TED-Join's shared
    memory demand beyond the configurable limit -- the paper's "OOM" case).
    """
    if res.smem_bytes_per_block > spec.smem_max_block_bytes:
        return 0
    if res.registers_per_block > spec.registers_per_sm:
        return 0
    by_smem = (
        spec.smem_max_block_bytes // res.smem_bytes_per_block
        if res.smem_bytes_per_block
        else spec.max_blocks_per_sm
    )
    by_regs = (
        spec.registers_per_sm // res.registers_per_block
        if res.registers_per_block
        else spec.max_blocks_per_sm
    )
    by_threads = spec.max_threads_per_sm // res.threads_per_block
    return max(0, min(by_smem, by_regs, by_threads, spec.max_blocks_per_sm))


def fasted_block_resources(
    *,
    block_points: int = 128,
    block_k: int = 64,
    pipeline_depth: int = 2,
    warps_per_block: int = 4,
    warp_tile_m: int = 64,
    warp_tile_n: int = 64,
    async_copy: bool = True,
) -> BlockResources:
    """Resource footprint of a FaSTED block (paper Table 2 defaults).

    Shared memory: ``pipeline_depth`` stages of two block fragments
    (``block_points x block_k`` FP16 each).  Registers: per-thread share of
    the warp-tile FP32 accumulators (``warp_m x warp_n / 32``) plus operand
    fragments and addressing temporaries; synchronous copies stage data
    through registers, adding pressure (part of why the paper's
    ``memcpy_async`` matters).
    """
    stage_bytes = 2 * block_points * block_k * 2  # P^bf + Q^bf, FP16
    smem = pipeline_depth * stage_bytes
    acc_regs = (warp_tile_m * warp_tile_n) // 32  # FP32 accumulators/thread
    operand_regs = 4 + 2 + 16  # A/B fragments + addressing/loop temporaries
    staging = 0 if async_copy else 24  # sync-copy staging registers
    regs = acc_regs + operand_regs + staging
    return BlockResources(
        threads_per_block=32 * warps_per_block,
        registers_per_thread=regs,
        smem_bytes_per_block=smem,
    )
