"""Board-power and clock-throttle model (paper Sections 4.4 and 5).

The paper discovered that FaSTED's sustained FP16-32 throughput is limited
by the PCIe A100's 250 W power budget: at |D|=1e5, d=4096 the profiler
shows 64% tensor-pipe utilization but the clock is throttled from 1.41 GHz
to 1.12 GHz, capping derived throughput near 154 TFLOPS (49% of peak).  The
conclusion argues a 400 W SXM part would do better -- an experiment our
simulator can actually run.

Model: board power is a static floor plus dynamic components proportional
to tensor-pipe and DRAM utilization, all scaling with the cube of the clock
ratio (voltage tracks frequency).  The governor picks the largest clock
whose predicted power fits the budget:

    P(r) = P_static + r^3 * (base + a_tc * u_tc + a_mem * u_mem)
    r    = min(1, cbrt((budget - P_static) / (base + a_tc*u_tc + a_mem*u_mem)))

Constants are calibrated against Table 6 (clock 1.40/1.37/1.12 GHz at
tensor utilizations ~2%/10%/64%).  Additionally, very short kernels run
before the clock has ramped to boost at all; :func:`ramped_average_clock`
models the boost ramp so microsecond-scale kernels (the small-|D| rows of
Figure 8) see a lower effective clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.spec import GpuSpec

#: Static (leakage + fans + HBM refresh) power in watts.
P_STATIC_W = 40.0

#: Dynamic power at boost clock independent of our utilization counters.
P_BASE_W = 190.0

#: Dynamic power at boost clock per unit tensor-pipe utilization.
P_TC_W = 320.0

#: Dynamic power at boost clock per unit DRAM utilization.
P_MEM_W = 150.0

#: Clock the GPU idles at before a kernel burst ramps it up (Hz).
IDLE_CLOCK_HZ = 585e6

#: Time constant of the boost ramp (seconds).
BOOST_RAMP_S = 1.5e-3


@dataclass(frozen=True)
class PowerState:
    """Resolved clock/power operating point for a kernel."""

    clock_hz: float
    power_w: float
    throttled: bool

    @property
    def clock_ghz(self) -> float:
        return self.clock_hz / 1e9


def throttled_clock(spec: GpuSpec, tc_util: float, mem_util: float) -> PowerState:
    """Steady-state clock under the power budget for given utilizations.

    Parameters
    ----------
    spec:
        GPU model (provides boost clock and power budget).
    tc_util:
        Tensor-pipe utilization in [0, 1] (fraction of cycles a tensor core
        has work), the quantity Nsight calls "Pipe Tensor Cycles Active".
    mem_util:
        DRAM bandwidth utilization in [0, 1].
    """
    tc_util = min(max(tc_util, 0.0), 1.0)
    mem_util = min(max(mem_util, 0.0), 1.0)
    dyn_at_boost = P_BASE_W + P_TC_W * tc_util + P_MEM_W * mem_util
    headroom = spec.power_budget_w - P_STATIC_W
    if headroom <= 0:
        raise ValueError("power budget below static floor")
    ratio = min(1.0, (headroom / dyn_at_boost) ** (1.0 / 3.0))
    clock = spec.boost_clock_hz * ratio
    power = P_STATIC_W + ratio**3 * dyn_at_boost
    return PowerState(clock_hz=clock, power_w=power, throttled=ratio < 0.999)


def ramped_average_clock(target_hz: float, kernel_seconds: float) -> float:
    """Average clock over a kernel that starts at idle and boosts.

    The clock rises exponentially from :data:`IDLE_CLOCK_HZ` toward
    ``target_hz`` with time constant :data:`BOOST_RAMP_S`; the average over
    ``kernel_seconds`` is the effective rate short kernels experience.
    Kernels much longer than the ramp see ``target_hz`` unchanged.
    """
    import math

    if kernel_seconds <= 0:
        return IDLE_CLOCK_HZ
    t = kernel_seconds / BOOST_RAMP_S
    # mean of target - (target-idle) * exp(-x) over x in [0, t]
    mean_gap = (1.0 - math.exp(-t)) / t
    return target_hz - (target_hz - IDLE_CLOCK_HZ) * mean_gap
