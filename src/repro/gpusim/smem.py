"""Shared-memory bank model with conflict accounting.

An SM's shared memory is organized as 32 banks of 4-byte words; a warp-wide
access completes in one transaction only if every bank is touched by at most
one distinct address.  FaSTED's entire swizzling scheme (paper Section 3.3.8)
exists to make both the global->shared stores and the ``ldmatrix`` loads
conflict-free, while TED-Join's WMMA access pattern suffers >= 75% replay
rates (paper Table 6).

This module provides:

* address -> bank arithmetic (:func:`bank_of_byte`, :func:`bank_group_of_chunk`),
* conflict-degree computation for arbitrary per-thread address vectors
  (:func:`conflict_degree`),
* a functional :class:`SharedMemory` that actually stores FP16 values so the
  swizzled layout can be validated end to end (store from "global" order,
  load via ``ldmatrix`` phases, recover the original fragment), while
  counting the transactions and replays every access generates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Number of shared-memory banks on every CUDA-capable GPU since Kepler.
NUM_BANKS = 32

#: Width of one bank word in bytes.
BANK_WIDTH = 4

#: FaSTED moves data in 16-byte (8 x FP16) chunks; one chunk spans 4 banks.
CHUNK_BYTES = 16

#: Number of 16-byte chunks per 128-byte shared-memory row.
CHUNKS_PER_ROW = 8


def bank_of_byte(byte_addr: int | np.ndarray) -> int | np.ndarray:
    """Bank index (0..31) serving a byte address."""
    return (np.asarray(byte_addr) // BANK_WIDTH) % NUM_BANKS


def bank_group_of_chunk(chunk_addr: int | np.ndarray) -> int | np.ndarray:
    """Bank *group* (0..7) of a 16-byte chunk address.

    A 16-byte access touches 4 consecutive banks; the 32 banks therefore form
    8 groups of 4, and two 16-byte accesses conflict iff they land in the
    same group at different addresses.  Chunk addresses are in units of
    :data:`CHUNK_BYTES`.
    """
    return np.asarray(chunk_addr) % CHUNKS_PER_ROW


def conflict_degree(chunk_addrs: np.ndarray) -> int:
    """Worst-case replay count for one phase of 16-byte accesses.

    Parameters
    ----------
    chunk_addrs:
        1-D array of chunk addresses (units of 16 B) accessed simultaneously
        by the threads of one transaction phase (8 threads for ``ldmatrix``).

    Returns
    -------
    int
        The number of serialized transactions required: 1 when conflict-free,
        up to ``len(chunk_addrs)`` for a fully conflicting access.  Identical
        addresses broadcast and do not conflict.
    """
    addrs = np.asarray(chunk_addrs)
    if addrs.size == 0:
        return 1
    groups = bank_group_of_chunk(addrs)
    worst = 1
    for g in np.unique(groups):
        distinct = np.unique(addrs[groups == g]).size
        worst = max(worst, int(distinct))
    return worst


@dataclass
class SmemStats:
    """Transaction accounting for one :class:`SharedMemory` instance."""

    store_phases: int = 0
    store_transactions: int = 0
    load_phases: int = 0
    load_transactions: int = 0

    @property
    def store_conflict_rate(self) -> float:
        """Fraction of store transactions that were conflict replays."""
        if self.store_transactions == 0:
            return 0.0
        return 1.0 - self.store_phases / self.store_transactions

    @property
    def load_conflict_rate(self) -> float:
        """Fraction of load transactions that were conflict replays."""
        if self.load_transactions == 0:
            return 0.0
        return 1.0 - self.load_phases / self.load_transactions

    @property
    def conflict_rate(self) -> float:
        """Overall replay fraction, the quantity Table 6 reports."""
        phases = self.store_phases + self.load_phases
        txns = self.store_transactions + self.load_transactions
        if txns == 0:
            return 0.0
        return 1.0 - phases / txns


@dataclass
class SharedMemory:
    """A functional, bank-aware shared-memory array of FP16 chunks.

    Storage is modeled at chunk (16 B / 8 halfword) granularity because that
    is the unit FaSTED's data path moves: global loads, swizzled stores, and
    ``ldmatrix`` phases all operate on 16-byte slices.

    Parameters
    ----------
    n_chunks:
        Capacity in 16-byte chunks.
    aligned:
        When False, models a 64-byte-misaligned allocation (the situation
        paper Section 3.3.9 fixes with ``__align__(128)``): every chunk's
        effective bank group is shifted by half a row, which breaks the
        swizzle's conflict-freedom guarantee for half of the phases.
    """

    n_chunks: int
    aligned: bool = True
    stats: SmemStats = field(default_factory=SmemStats)

    def __post_init__(self) -> None:
        self._data = np.zeros((self.n_chunks, CHUNK_BYTES // 2), dtype=np.float16)

    @property
    def misalignment_shift(self) -> int:
        """Bank-group shift introduced by a misaligned allocation."""
        return 0 if self.aligned else CHUNKS_PER_ROW // 2

    def _effective_addrs(self, chunk_addrs: np.ndarray) -> np.ndarray:
        return np.asarray(chunk_addrs) + self.misalignment_shift

    def store_phase(self, chunk_addrs: np.ndarray, values: np.ndarray) -> int:
        """Store one phase of 16-byte chunks; returns transactions used.

        Parameters
        ----------
        chunk_addrs:
            ``(t,)`` chunk addresses, one per storing thread.
        values:
            ``(t, 8)`` FP16 values, 8 halfwords per chunk.
        """
        chunk_addrs = np.asarray(chunk_addrs)
        values = np.asarray(values, dtype=np.float16)
        degree = conflict_degree(self._effective_addrs(chunk_addrs))
        self._data[chunk_addrs] = values
        self.stats.store_phases += 1
        self.stats.store_transactions += degree
        return degree

    def load_phase(self, chunk_addrs: np.ndarray) -> tuple[np.ndarray, int]:
        """Load one phase of 16-byte chunks; returns (values, transactions)."""
        chunk_addrs = np.asarray(chunk_addrs)
        degree = conflict_degree(self._effective_addrs(chunk_addrs))
        self.stats.load_phases += 1
        self.stats.load_transactions += degree
        return self._data[chunk_addrs].copy(), degree

    def reset_stats(self) -> None:
        """Zero the transaction counters (storage contents are kept)."""
        self.stats = SmemStats()
