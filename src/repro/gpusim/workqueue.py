"""Block-tile work queue and dispatch orderings (paper Section 3.3.1, Fig 4).

A FaSTED grid runs a fixed number of blocks (2 per SM); each block pops tile
coordinates from a global queue until the distance matrix is exhausted.  The
*order* tiles are handed out controls which point rows/columns the
concurrently executing blocks read, and therefore the L2 hit rate:

* ``row_major`` -- naive ordering; concurrent tiles share P rows but their Q
  columns sweep the whole dataset, thrashing L2 once the dataset exceeds it.
* ``square`` -- the paper's ordering: tiles are dispatched in small
  ``shape x shape`` squares (8x8 by default, Table 2), so 64 consecutive
  tiles touch only 8 P-fragments and 8 Q-fragments, giving ~8x reuse of
  every global read.

:func:`simulate_l2_hit_rate` replays a window of the dispatch stream against
:class:`repro.gpusim.l2cache.L2Cache` to measure the hit rate, and
:func:`analytic_l2_hit_rate` provides the closed-form estimate used by the
timing model at scales where replay would be wasteful.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.gpusim.l2cache import L2Cache


def row_major_order(n_tiles_p: int, n_tiles_q: int) -> Iterator[tuple[int, int]]:
    """Yield tile coordinates row by row."""
    for i in range(n_tiles_p):
        for j in range(n_tiles_q):
            yield (i, j)


def square_order(
    n_tiles_p: int, n_tiles_q: int, shape: int = 8
) -> Iterator[tuple[int, int]]:
    """Yield tile coordinates in ``shape x shape`` squares (paper Figure 4).

    Squares themselves are visited row-major; ragged edges are handled by
    clipping the square to the tile grid.
    """
    if shape <= 0:
        raise ValueError("dispatch shape must be positive")
    for bi in range(0, n_tiles_p, shape):
        for bj in range(0, n_tiles_q, shape):
            for i in range(bi, min(bi + shape, n_tiles_p)):
                for j in range(bj, min(bj + shape, n_tiles_q)):
                    yield (i, j)


def ordered_tiles(
    n_tiles_p: int,
    n_tiles_q: int,
    *,
    square: bool = True,
    shape: int = 8,
) -> Iterator[tuple[int, int]]:
    """Dispatch order selected by the Block Tile Ordering optimization flag."""
    if square:
        return square_order(n_tiles_p, n_tiles_q, shape)
    return row_major_order(n_tiles_p, n_tiles_q)


def simulate_l2_hit_rate(
    n_points: int,
    dims: int,
    *,
    tile_points: int = 128,
    square: bool = True,
    shape: int = 8,
    l2_size_bytes: int = 40 * 10**6,
    elem_bytes: int = 2,
    concurrent_blocks: int = 216,
    max_tiles: int = 20000,
) -> float:
    """Replay the tile read stream through the L2 model; return hit rate.

    Each tile reads ``tile_points`` P rows and ``tile_points`` Q rows, each
    row being ``dims * elem_bytes`` bytes of coordinate data.  Concurrency is
    approximated by interleaving the stream in rounds of
    ``concurrent_blocks`` tiles, which is how the hardware's queue feeds SMs.

    ``max_tiles`` caps the replay length; the dispatch stream is periodic in
    its locality structure, so a prefix is representative.
    """
    n_tiles = -(-n_points // tile_points)
    cache = L2Cache(l2_size_bytes)
    row_bytes = dims * elem_bytes
    lines_per_row = max(1, row_bytes // cache.line_bytes)
    q_base_line = 10**9  # place Q far from P so streams do not alias

    count = 0
    for ti, tj in ordered_tiles(n_tiles, n_tiles, square=square, shape=shape):
        for p in range(tile_points):
            row = ti * tile_points + p
            if row >= n_points:
                break
            base = row * lines_per_row
            for ln in range(lines_per_row):
                cache.access_line(base + ln)
        for q in range(tile_points):
            row = tj * tile_points + q
            if row >= n_points:
                break
            base = q_base_line + row * lines_per_row
            for ln in range(lines_per_row):
                cache.access_line(base + ln)
        count += 1
        if count >= max_tiles:
            break
    return cache.stats.hit_rate


def analytic_l2_hit_rate(
    n_points: int,
    dims: int,
    *,
    tile_points: int = 128,
    square: bool = True,
    shape: int = 8,
    l2_size_bytes: int = 40 * 10**6,
    elem_bytes: int = 2,
) -> float:
    """Closed-form L2 hit-rate estimate used by the timing model.

    Square dispatch: within an ``s x s`` square of tiles, each of the ``s``
    P-fragments and ``s`` Q-fragments is read ``s`` times; the first read of
    each misses (compulsory) and the rest hit provided the square's working
    set (``2 s`` fragments) fits in L2 -- it always does (2*8*128 points x a
    few KB).  Hit rate ~= 1 - 1/s, degraded slightly when the *dataset's*
    k-slice working set of concurrently active squares exceeds L2 (the
    d=4096 effect in Table 6 where the hit rate drops to 84.4%).

    Row-major dispatch: P rows are reused along the row of tiles, but all Q
    data is streamed; once the dataset exceeds L2 the Q stream always
    misses, bounding the hit rate near 0.5.
    """
    n_tiles = max(1, -(-n_points // tile_points))
    fragment_bytes = tile_points * dims * elem_bytes
    dataset_bytes = n_points * dims * elem_bytes

    if square:
        s = min(shape, n_tiles)
        base = 1.0 - 1.0 / s
        # Working set of one dispatch round: the squares being executed by
        # all concurrent blocks. When it spills L2, reuse within a square
        # partially misses. Smooth degradation factor:
        concurrent_squares = max(1, 216 // (s * s))
        working = 2 * s * fragment_bytes * concurrent_squares
        pressure = min(1.0, l2_size_bytes / max(working, 1))
        # Compulsory misses of the whole sweep add ~dataset/L2 sensitivity.
        spill = min(0.12, max(0.0, 0.06 * np.log10(max(working / l2_size_bytes, 1.0)) + 0.06 * (1 - pressure)))
        return float(np.clip(base - spill, 0.0, 1.0))

    # Row-major: P row fragment hits after first touch; Q stream hits only
    # while the dataset still fits in L2.
    if dataset_bytes <= l2_size_bytes * 0.5:
        return float(np.clip(1.0 - 1.0 / n_tiles, 0.0, 1.0))
    p_fraction = 0.5  # half the traffic is P (reused), half is Q (streamed)
    # The Q streams of 216 concurrent blocks also partially evict each
    # other's P fragments, so P reuse is imperfect once the dataset spills.
    p_hit = min(1.0 - 1.0 / n_tiles, 0.85)
    q_hit = max(0.0, 0.1 * l2_size_bytes / dataset_bytes)
    return float(np.clip(p_fraction * p_hit + (1 - p_fraction) * q_hit, 0.0, 1.0))
