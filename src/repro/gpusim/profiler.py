"""Nsight-Compute-style profiler report (paper Table 6).

The simulator's timing resolver already computes every counter Table 6
reports; this module packages them in the same units and layout so the
benchmark harness can print a table directly comparable to the paper:

=====================================  =======================
Metric                                 Source
=====================================  =======================
DRAM Throughput (%)                    timing.dram_utilization
SMEM Throughput (%)                    timing.smem_utilization
Bank Conflicts (%)                     ldmatrix transaction model
L2 Hit Rate (%)                        work-queue cache model
TC Pipe Utilization (%)                timing.tc_utilization
Clock Speed (GHz)                      power model
=====================================  =======================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.timing import KernelTiming


@dataclass(frozen=True)
class ProfileReport:
    """One profiled kernel configuration (one column of Table 6)."""

    label: str
    dram_throughput_pct: float
    smem_throughput_pct: float
    bank_conflict_pct: float
    l2_hit_rate_pct: float
    tc_pipe_utilization_pct: float
    clock_ghz: float
    oom: bool = False

    ROWS = (
        "DRAM Throughput (%)",
        "SMEM Throughput (%)",
        "Bank Conflicts (%)",
        "L2 Hit Rate (%)",
        "TC Pipe Utilization (%)",
        "Clock Speed (GHz)",
    )

    def values(self) -> tuple[str, ...]:
        """Row values formatted like the paper ("OOM" for failed configs)."""
        if self.oom:
            return tuple("OOM" for _ in self.ROWS)
        return (
            f"{self.dram_throughput_pct:.2f}",
            f"{self.smem_throughput_pct:.1f}",
            f"{self.bank_conflict_pct:.1f}",
            f"{self.l2_hit_rate_pct:.1f}",
            f"{self.tc_pipe_utilization_pct:.1f}",
            f"{self.clock_ghz:.2f}",
        )


def report_from_timing(label: str, timing: KernelTiming) -> ProfileReport:
    """Convert a resolved :class:`KernelTiming` into a profiler report."""
    return ProfileReport(
        label=label,
        dram_throughput_pct=100.0 * timing.dram_utilization,
        smem_throughput_pct=100.0 * timing.smem_utilization,
        bank_conflict_pct=100.0 * timing.bank_conflict_rate,
        l2_hit_rate_pct=100.0 * timing.l2_hit_rate,
        tc_pipe_utilization_pct=100.0 * timing.tc_utilization,
        clock_ghz=timing.clock_hz / 1e9,
    )


def oom_report(label: str) -> ProfileReport:
    """Report for a configuration that exceeds shared memory (paper "OOM")."""
    return ProfileReport(
        label=label,
        dram_throughput_pct=0.0,
        smem_throughput_pct=0.0,
        bank_conflict_pct=0.0,
        l2_hit_rate_pct=0.0,
        tc_pipe_utilization_pct=0.0,
        clock_ghz=0.0,
        oom=True,
    )


def format_table(reports: list[ProfileReport], title: str = "") -> str:
    """Render reports side by side as an ASCII table (Table 6 layout)."""
    header = ["Metric"] + [r.label for r in reports]
    rows = [header]
    for i, name in enumerate(ProfileReport.ROWS):
        rows.append([name] + [r.values()[i] for r in reports])
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    for j, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row))
        )
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
