"""Global->shared copy pipeline model (paper Sections 3.3.4-3.3.5).

Three data-path regimes are modeled for the per-k-chunk iteration of a
block tile:

* **Asynchronous, multi-stage** (the FaSTED default): ``cuda::memcpy_async``
  into a ``pipeline_depth``-deep ring of shared-memory stages; the copy of
  chunk ``i+1`` overlaps the tensor-core consumption of chunk ``i``, so the
  iteration costs ``max(compute, memory)`` plus a small stage-commit
  synchronization.
* **Asynchronous, single-stage**: copies still bypass L1/registers, but with
  a single buffer the next chunk's copy can only be issued after compute on
  the current chunk finishes; a fraction of the memory time is exposed.
* **Synchronous**: data moves global -> L2 -> L1 -> registers -> shared;
  no overlap is possible (the libcudacxx pipeline cannot wrap synchronous
  copies -- paper footnote 9) and each byte crosses the register file,
  costing extra issue bandwidth and latency.

The numbers produced are *cycles at the current clock* for one iteration of
one block; the caller supplies component costs from the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PipelineConfig:
    """Data-path configuration of a kernel's copy pipeline."""

    async_copy: bool = True
    depth: int = 2

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("pipeline depth must be >= 1")


#: Fraction of the memory time left exposed with a single-stage async buffer.
SINGLE_STAGE_EXPOSURE = 0.055

#: Multiplier on memory time for the synchronous (L1 + register file) path.
SYNC_COPY_PENALTY = 4.2

#: Cycles for the pipeline commit/wait + block-wide barrier per iteration.
STAGE_SYNC_CYCLES = 96.0


def iteration_cycles(
    compute_cycles: float,
    memory_cycles: float,
    config: PipelineConfig,
) -> float:
    """Cycles for one steady-state k-chunk iteration of one block.

    Parameters
    ----------
    compute_cycles:
        Tensor-core + shared-memory-load + issue time for one chunk.
    memory_cycles:
        Global-memory/L2 service time for one chunk's block fragments.
    config:
        Data-path regime.
    """
    if compute_cycles < 0 or memory_cycles < 0:
        raise ValueError("cycle counts must be non-negative")
    if config.async_copy and config.depth >= 2:
        return max(compute_cycles, memory_cycles) + STAGE_SYNC_CYCLES
    if config.async_copy:
        exposed = memory_cycles * SINGLE_STAGE_EXPOSURE
        return max(compute_cycles, memory_cycles) + exposed + STAGE_SYNC_CYCLES
    # Synchronous copies: serial, penalized, and barrier-heavy.
    return compute_cycles + memory_cycles * SYNC_COPY_PENALTY + 2 * STAGE_SYNC_CYCLES


def fill_cycles(memory_cycles: float, config: PipelineConfig) -> float:
    """Pipeline warm-up cost paid once per block tile (prologue).

    The first ``depth`` chunks must land in shared memory before the first
    MMA can issue; with asynchronous copies the stages fill back-to-back.
    """
    stages = config.depth if config.async_copy else 1
    penalty = 1.0 if config.async_copy else SYNC_COPY_PENALTY
    return stages * memory_cycles * penalty
