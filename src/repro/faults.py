"""Fault-injection harness: named fault points with armable failures.

Production systems earn trust by *injecting* failures deliberately and
measuring that they degrade predictably -- the discipline the muBench-style
replication studies apply to service topologies, applied here to our own
stack.  This module is the arming panel: the persistence, source, executor
and service layers each expose a **named fault point**, and tests (or the
``REPRO_FAULTS`` environment variable) arm those points with a failure
kind and probability.  ``tests/test_faults.py`` is the chaos suite that
drives every scenario to a typed error or a bit-identical recovery.

Fault points
------------
==================  ====================================================
``persist.write``   ``save_index``, immediately before the atomic commit
``persist.payload`` ``save_index``, once per payload file written
``source.read``     every ``DatasetSource`` block load / row gather
``worker.exec``     fork-pool candidate worker, per batch (child only)
``service.dispatch``  ``QueryService`` dispatcher, per engine batch
==================  ====================================================

Failure kinds
-------------
* ``error`` -- raise :class:`FaultError` at the point.
* ``corrupt`` -- the point's *site* corrupts its payload (e.g. a byte is
  flipped in the file just written); only data-carrying points honor it.
* ``delay`` -- sleep ``param`` seconds (default 0.01) at the point.
* ``kill`` -- ``SIGKILL`` the process that evaluates the point.  Sites
  that *recover* from killed children (the fork pool's inline retry)
  skip their fault point on the recovery path, so arming
  ``worker.exec:kill`` kills fork children without shooting the parent
  that re-executes the batch.

Arming
------
Programmatic (tests): :func:`arm` / :func:`disarm` / :func:`reset`.
Environmental: set
``REPRO_FAULTS=point:kind:prob[:param][,point:kind:prob[:param]...]``
before the process starts -- parsed at import time, so CLI subcommands,
spawned servers, and forked workers all inherit the arming.

Overhead
--------
Disarmed, the harness costs instrumented sites **one module-attribute
read**: every site is written ``if faults.ARMED: faults.check(...)`` and
:data:`ARMED` is False unless at least one fault is armed.  No locks, no
dict lookups, no RNG draws on the disarmed path.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from dataclasses import dataclass

#: Fast gate read by instrumented sites; True iff any fault is armed.
ARMED = False

#: The instrumentable sites (arming an unknown point is a typo, not a
#: request, and raises).
FAULT_POINTS = (
    "persist.write",
    "persist.payload",
    "source.read",
    "worker.exec",
    "service.dispatch",
)

#: The failure kinds :func:`arm` understands.
FAULT_KINDS = ("error", "corrupt", "delay", "kill")

#: Environment variable consulted at import time (and by
#: :func:`configure_from_env`).
ENV_VAR = "REPRO_FAULTS"


class FaultError(RuntimeError):
    """The typed error an ``error``-kind fault raises at its point."""


@dataclass
class FaultSpec:
    """One armed fault: where, what, how often.

    ``param`` is kind-specific: the sleep seconds for ``delay`` (default
    0.01); unused otherwise.  ``after`` skips the first N evaluations of
    the point (fire mid-run: the Nth payload write, the Nth block load),
    ``count`` bounds how many times the fault fires (None: unlimited);
    ``seen`` / ``fired`` count evaluations and firings.
    """

    point: str
    kind: str
    prob: float = 1.0
    param: float | None = None
    after: int = 0
    count: int | None = None
    seen: int = 0
    fired: int = 0


_specs: dict[str, FaultSpec] = {}
_rng = random.Random()
_lock = threading.Lock()


def _refresh_gate() -> None:
    global ARMED
    ARMED = bool(_specs)


def arm(
    point: str,
    kind: str,
    prob: float = 1.0,
    *,
    param: float | None = None,
    after: int = 0,
    count: int | None = None,
    seed: int | None = None,
) -> FaultSpec:
    """Arm one fault point (replacing any previous arming of it)."""
    if point not in FAULT_POINTS:
        raise ValueError(f"unknown fault point {point!r} (know {FAULT_POINTS})")
    if kind not in FAULT_KINDS:
        raise ValueError(f"unknown fault kind {kind!r} (know {FAULT_KINDS})")
    if not (0.0 <= prob <= 1.0):
        raise ValueError(f"prob must be in [0, 1], got {prob}")
    spec = FaultSpec(
        point=point, kind=kind, prob=float(prob), param=param,
        after=int(after), count=count,
    )
    with _lock:
        if seed is not None:
            _rng.seed(seed)
        _specs[point] = spec
        _refresh_gate()
    return spec


def disarm(point: str | None = None) -> None:
    """Disarm one point (or, with None, every point)."""
    with _lock:
        if point is None:
            _specs.clear()
        else:
            _specs.pop(point, None)
        _refresh_gate()


def reset(*, seed: int = 0) -> None:
    """Disarm everything and reseed -- the chaos suite's clean slate."""
    with _lock:
        _specs.clear()
        _rng.seed(seed)
        _refresh_gate()


def active() -> dict[str, FaultSpec]:
    """Snapshot of the currently armed specs (keyed by point)."""
    with _lock:
        return dict(_specs)


def configure_from_env(value: str | None = None) -> list[FaultSpec]:
    """Arm from ``REPRO_FAULTS`` (or an explicit spec string).

    Format: comma-separated ``point:kind:prob[:param]`` entries, e.g.
    ``service.dispatch:delay:0.5:0.02,worker.exec:kill:0.25``.  An empty
    / unset variable arms nothing.  Raises :class:`ValueError` on a
    malformed entry -- a typo'd chaos run must fail loudly, not run
    silently fault-free.
    """
    if value is None:
        value = os.environ.get(ENV_VAR, "")
    specs = []
    for entry in value.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) not in (2, 3, 4):
            raise ValueError(
                f"bad {ENV_VAR} entry {entry!r} "
                "(want point:kind[:prob[:param]])"
            )
        point, kind = parts[0], parts[1]
        prob = float(parts[2]) if len(parts) > 2 else 1.0
        param = float(parts[3]) if len(parts) > 3 else None
        specs.append(arm(point, kind, prob, param=param))
    return specs


def check(point: str) -> str | None:
    """Evaluate a fault point; called by instrumented sites when armed.

    Handles ``error`` (raises :class:`FaultError`), ``delay`` (sleeps)
    and ``kill`` (``SIGKILL``\\ s the process) internally.  Returns
    ``"corrupt"`` when the site should corrupt its own payload, None when
    nothing fires.  Sites gate the call on :data:`ARMED` so the disarmed
    path stays one attribute read.
    """
    with _lock:
        spec = _specs.get(point)
        if spec is None:
            return None
        spec.seen += 1
        if spec.seen <= spec.after:
            return None
        if spec.count is not None and spec.fired >= spec.count:
            return None
        if spec.prob < 1.0 and _rng.random() >= spec.prob:
            return None
        spec.fired += 1
        kind = spec.kind
        param = spec.param
    if kind == "error":
        raise FaultError(f"injected fault at {point}")
    if kind == "delay":
        time.sleep(param if param is not None else 0.01)
        return None
    if kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    return "corrupt" if kind == "corrupt" else None


def corrupt_file(path, *, offset: int | None = None) -> None:
    """Flip one byte of ``path`` in place (the ``corrupt`` kind's tool).

    Offset defaults to the middle of the file -- past any self-describing
    format header, inside the payload bytes a checksum must cover.
    """
    size = os.path.getsize(path)
    if size == 0:
        return
    if offset is None:
        offset = size // 2
    offset = min(max(int(offset), 0), size - 1)
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))


# Environment arming happens at import so every entry point -- CLI
# subcommands, spawned serve processes, fork children (which inherit the
# parent's armed state anyway) -- honors REPRO_FAULTS without plumbing.
if os.environ.get(ENV_VAR, "").strip():
    configure_from_env()


__all__ = [
    "ARMED",
    "FAULT_POINTS",
    "FAULT_KINDS",
    "ENV_VAR",
    "FaultError",
    "FaultSpec",
    "arm",
    "disarm",
    "reset",
    "active",
    "configure_from_env",
    "check",
    "corrupt_file",
]
