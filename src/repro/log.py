"""Structured JSON logging with request-id injection.

The service path logs machine-parseable lines instead of ad-hoc stderr
writes: one JSON object per line with a timestamp, level, logger name,
message, and -- whenever a request is in flight on the emitting
thread/task -- the ``request_id`` pulled from the ambient trace span
(:func:`repro.trace.current_request_id`).  A log line and the trace it
belongs to therefore correlate without any explicit plumbing at the
call sites.

Usage::

    from repro import log
    logger = log.get_logger("repro.service")   # plain stdlib Logger
    logger.info("server listening", extra={"port": port})

:func:`setup` installs the JSON handler on the ``"repro"`` root once
(idempotent); until then records propagate to whatever logging config
the host application chose -- importing this module never hijacks the
global logging tree.  Extra fields pass through ``extra=`` and land as
top-level JSON keys (stdlib-reserved attribute names excluded).
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, TextIO

from repro import trace as _trace

__all__ = ["JsonFormatter", "get_logger", "setup"]

#: LogRecord attributes that are stdlib plumbing, not user payload.
_RESERVED = frozenset(
    (
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "message", "module",
        "msecs", "msg", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "taskName", "thread", "threadName",
    )
)


class JsonFormatter(logging.Formatter):
    """One JSON object per record; injects the ambient request id."""

    def format(self, record: logging.LogRecord) -> str:
        entry: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        request_id = _trace.current_request_id()
        if request_id is not None:
            entry["request_id"] = request_id
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_") or key in entry:
                continue
            entry[key] = (
                value
                if isinstance(value, (str, int, float, bool)) or value is None
                else str(value)
            )
        if record.exc_info:
            entry["exc"] = self.formatException(record.exc_info)
        return json.dumps(entry, separators=(",", ":"), default=str)


def get_logger(name: str = "repro") -> logging.Logger:
    """The stdlib logger for ``name`` (conventionally ``repro.*``)."""
    return logging.getLogger(name)


def setup(
    level: int | str = logging.INFO, stream: TextIO | None = None
) -> logging.Logger:
    """Attach the JSON handler to the ``repro`` logger tree (idempotent).

    Returns the ``repro`` root logger.  Repeated calls adjust the level
    but never stack a second handler; ``propagate`` is switched off so
    service lines are emitted exactly once regardless of the host's
    root-logger configuration.
    """
    logger = logging.getLogger("repro")
    if isinstance(level, str):
        level = getattr(logging, level.upper())
    handler = next(
        (
            h
            for h in logger.handlers
            if isinstance(h.formatter, JsonFormatter)
        ),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler(
            stream if stream is not None else sys.stderr
        )
        handler.setFormatter(JsonFormatter())
        logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger
