"""MiSTIC-style multi-space partitioning (Donnelly & Gowanlock 2024).

MiSTIC combines **coordinate-based** partitioning (grid cells over selected
dimensions) with **metric-based** partitioning (rings of width ``eps``
around pivot points; the triangle inequality prunes any candidate whose
ring index differs by more than one) and constructs the index
*incrementally*: at every level it evaluates a pool of candidate partitions
(the paper uses 38) on a sample and keeps the one that minimizes the
expected candidate count.

Our reproduction keeps that decision structure: each level chooses between
one coordinate split (per remaining high-variance dimension) and one metric
split (per random pivot), scored by the sum of squared partition
populations (proportional to expected candidate pairs).  Queries intersect
the level-wise neighbor ranges, so the candidate set is never larger than a
pure grid over the same dimensions -- the property that makes MiSTIC beat
GDS-Join in the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.index.grid import (
    _SOURCE_ROW_BLOCK,
    GridStats,
    _iter_source_blocks,
    variance_order,
    variance_order_from_source,
)


@dataclass(frozen=True)
class _Level:
    """One partitioning level: either a coordinate or a metric split."""

    kind: str  # "coord" | "metric"
    param: int  # dimension index (coord) or pivot row (metric)
    bins: np.ndarray  # per-point ring/cell index at this level
    #: Pivot coordinates for metric levels (needed to bin *external* query
    #: points for two-source joins); None for coordinate levels.
    pivot_point: np.ndarray | None = None


def _score(bins: np.ndarray) -> float:
    """Expected candidate-pair proxy: sum over bins of (n_b * window_b).

    For eps-width bins a query must inspect its own bin and both neighbor
    bins, so the candidate count of a point in bin ``b`` is
    ``n_{b-1} + n_b + n_{b+1}``; summing over points gives the total.
    """
    counts = np.bincount(bins - bins.min())
    padded = np.concatenate(([0], counts, [0]))
    window = padded[:-2] + padded[1:-1] + padded[2:]
    return float(np.dot(counts, window))


class MultiSpaceTree:
    """Incrementally-constructed multi-space index.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset.
    eps:
        Search radius; bins/rings have width ``eps``.
    n_levels:
        Partitioning levels (paper configuration: 6).
    n_candidates:
        Candidate partitions evaluated per level (paper: 38), split between
        coordinate dimensions and metric pivots.
    seed:
        RNG seed for pivot selection.
    """

    def __init__(
        self,
        data: np.ndarray,
        eps: float,
        n_levels: int = 6,
        n_candidates: int = 38,
        seed: int = 0,
    ) -> None:
        data = np.asarray(data, dtype=np.float64)
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.eps = float(eps)
        self.n_points, self.dims = data.shape
        rng = np.random.default_rng(seed)
        order = variance_order(data)
        self.levels: list[_Level] = []
        used_dims: set[int] = set()
        n_coord = max(1, n_candidates // 2)
        n_metric = max(1, n_candidates - n_coord)
        self.construction_evaluations = 0
        for _ in range(n_levels):
            best: _Level | None = None
            best_score = np.inf
            # Coordinate candidates: next unused high-variance dimensions.
            coord_dims = [d for d in order if int(d) not in used_dims][:n_coord]
            for dim in coord_dims:
                bins = np.floor(data[:, dim] / self.eps).astype(np.int64)
                s = _score(bins)
                self.construction_evaluations += 1
                if s < best_score:
                    best, best_score = _Level("coord", int(dim), bins), s
            # Metric candidates: rings around random pivots.
            for pivot in rng.integers(0, self.n_points, size=n_metric):
                dist = np.sqrt(((data - data[pivot]) ** 2).sum(axis=1))
                bins = np.floor(dist / self.eps).astype(np.int64)
                s = _score(bins)
                self.construction_evaluations += 1
                if s < best_score:
                    best, best_score = (
                        _Level("metric", int(pivot), bins, data[pivot].copy()),
                        s,
                    )
            assert best is not None
            self.levels.append(best)
            if best.kind == "coord":
                used_dims.add(best.param)

    @classmethod
    def from_source(
        cls,
        source,
        eps: float,
        n_levels: int = 6,
        n_candidates: int = 38,
        seed: int = 0,
        *,
        row_block: int = _SOURCE_ROW_BLOCK,
        stats=None,
    ) -> "MultiSpaceTree":
        """Out-of-core tree build: every candidate evaluation streams blocks.

        Equivalent to ``MultiSpaceTree(source.materialize(), eps, ...)``
        without ever holding the ``(n, d)`` dataset: per-candidate bin
        arrays are computed block by block (coordinate bins are a
        single-column floor-divide; metric bins need only the pivot row,
        gathered with ``source.take``), so resident state is the ``O(n)``
        bin arrays plus one block.  Bins are row-local, so they -- and
        hence the chosen levels -- are bit-exactly the in-memory build's
        (modulo the streamed-variance ordering note on
        :func:`repro.index.grid.variance_order_from_source`).  The many
        streamed passes *are* MiSTIC's incremental-construction cost.
        """
        from repro.data.source import as_source

        source = as_source(source)
        if eps <= 0:
            raise ValueError("eps must be positive")
        obj = cls.__new__(cls)
        obj.eps = float(eps)
        obj.n_points, obj.dims = int(source.n), int(source.dim)
        rng = np.random.default_rng(seed)
        order = variance_order_from_source(source, row_block=row_block, stats=stats)
        obj.levels = []
        used_dims: set[int] = set()
        n_coord = max(1, n_candidates // 2)
        n_metric = max(1, n_candidates - n_coord)
        obj.construction_evaluations = 0

        def coord_bins(dim: int) -> np.ndarray:
            bins = np.empty(obj.n_points, dtype=np.int64)
            for r0, r1, block in _iter_source_blocks(source, row_block, stats):
                bins[r0:r1] = np.floor(block[:, dim] / obj.eps).astype(np.int64)
            return bins

        def metric_bins(pivot_point: np.ndarray) -> np.ndarray:
            bins = np.empty(obj.n_points, dtype=np.int64)
            for r0, r1, block in _iter_source_blocks(source, row_block, stats):
                dist = np.sqrt(((block - pivot_point) ** 2).sum(axis=1))
                bins[r0:r1] = np.floor(dist / obj.eps).astype(np.int64)
            return bins

        for _ in range(n_levels):
            best: _Level | None = None
            best_score = np.inf
            coord_dims = [d for d in order if int(d) not in used_dims][:n_coord]
            for dim in coord_dims:
                bins = coord_bins(int(dim))
                s = _score(bins)
                obj.construction_evaluations += 1
                if s < best_score:
                    best, best_score = _Level("coord", int(dim), bins), s
            for pivot in rng.integers(0, obj.n_points, size=n_metric):
                pivot_point = source.take(np.array([pivot]))[0]
                bins = metric_bins(pivot_point)
                s = _score(bins)
                obj.construction_evaluations += 1
                if s < best_score:
                    best, best_score = (
                        _Level("metric", int(pivot), bins, pivot_point),
                        s,
                    )
            assert best is not None
            obj.levels.append(best)
            if best.kind == "coord":
                used_dims.add(best.param)
        return obj

    # ------------------------------------------------------------------

    def candidate_mask_for(self, idx: int) -> np.ndarray:
        """Boolean mask of candidates of point ``idx`` (level intersection).

        A point ``q`` survives as a candidate of ``p`` iff at *every* level
        its bin index is within +-1 of ``p``'s -- the eps-width bin property
        for coordinate levels, the triangle inequality for metric levels.
        """
        mask = np.ones(self.n_points, dtype=bool)
        for level in self.levels:
            mask &= np.abs(level.bins - level.bins[idx]) <= 1
        return mask

    def candidate_counts(self, sample: np.ndarray | None = None) -> np.ndarray:
        """Candidate-set sizes for all points (or a sample of points)."""
        idxs = np.arange(self.n_points) if sample is None else np.asarray(sample)
        return np.array([int(self.candidate_mask_for(int(i)).sum()) for i in idxs])

    def total_candidates(self, sample_size: int = 512, seed: int = 1) -> int:
        """Estimated total candidate count over all points.

        Exact for small datasets; sampled (with scaling) above
        ``sample_size`` to keep index statistics cheap.
        """
        if self.n_points <= sample_size:
            return int(self.candidate_counts().sum())
        rng = np.random.default_rng(seed)
        sample = rng.choice(self.n_points, size=sample_size, replace=False)
        mean = float(self.candidate_counts(sample).mean())
        return int(mean * self.n_points)

    def iter_groups(self, group: int = 1024):
        """Yield ``(members, candidates)`` for blocks of points.

        Members are processed in natural order; each block's candidate set
        is the union of its members' masks -- mirroring how the GPU kernel
        assigns points to warps and loads the union working set.
        """
        for start in range(0, self.n_points, group):
            members = np.arange(start, min(start + group, self.n_points))
            # Union of per-member candidate masks, computed vectorized: a
            # point is a candidate of the block if at every level its bin
            # lies within [min_b - 1, max_b + 1] of the block's bins. This
            # is a superset of the exact union but much cheaper; the exact
            # per-pair filter happens in the join's distance computation.
            block_mask = np.ones(self.n_points, dtype=bool)
            for level in self.levels:
                b = level.bins[members]
                block_mask &= (level.bins >= b.min() - 1) & (level.bins <= b.max() + 1)
            yield members, np.nonzero(block_mask)[0]

    def stats(self, group: int = 1024) -> GridStats:
        """Group-shape moments, mirroring :meth:`GridIndex.stats`.

        The tree's unit of work is the :meth:`iter_groups` block (the
        grid's is the cell), so the moments are over per-group member
        counts and candidate-set sizes: ``n_nonempty_cells`` counts
        groups, ``n_indexed_dims`` counts partitioning levels, and
        ``total_candidates`` is the sum over points of their group's
        candidate-set size -- the same duck-typed contract
        :func:`repro.core.engine.batch_params_from_stats` consumes, so
        tree-backed batched executors get measured knobs instead of the
        static defaults.  Returned as a :class:`GridStats` (same fields,
        same semantics per unit of work).
        """
        member_counts: list[int] = []
        cand_sizes: list[int] = []
        total = 0
        for members, candidates in self.iter_groups(group=group):
            member_counts.append(int(members.size))
            cand_sizes.append(int(candidates.size))
            total += int(members.size) * int(candidates.size)
        if member_counts:
            mc = np.asarray(member_counts, dtype=np.float64)
            cs = np.asarray(cand_sizes, dtype=np.float64)
            mean_m, std_m = float(mc.mean()), float(mc.std())
            mean_c, std_c = float(cs.mean()), float(cs.std())
        else:
            mean_m = std_m = mean_c = std_c = 0.0
        return GridStats(
            n_points=self.n_points,
            n_indexed_dims=len(self.levels),
            n_nonempty_cells=len(member_counts),
            total_candidates=total,
            mean_members=mean_m,
            std_members=std_m,
            mean_group_candidates=mean_c,
            std_group_candidates=std_c,
        )

    def query_bins(self, queries: np.ndarray) -> list[np.ndarray]:
        """Per-level bin indices of *external* query points.

        Coordinate levels floor-divide the level's dimension; metric
        levels ring the stored pivot point.  The same +-1 window property
        holds for external points: a query's neighbors in the indexed set
        lie within one bin at every level (eps-width bins; triangle
        inequality for rings).
        """
        queries = np.ascontiguousarray(np.asarray(queries, dtype=np.float64))
        bins = []
        for level in self.levels:
            if level.kind == "coord":
                qb = np.floor(queries[:, level.param] / self.eps).astype(np.int64)
            else:
                dist = np.sqrt(((queries - level.pivot_point) ** 2).sum(axis=1))
                qb = np.floor(dist / self.eps).astype(np.int64)
            bins.append(qb)
        return bins

    def iter_join_groups(
        self,
        queries,
        group: int = 1024,
        *,
        row_block: int = _SOURCE_ROW_BLOCK,
        reach: int = 1,
    ):
        """Yield ``(query_members, candidates)`` for an external query set.

        The two-source counterpart of :meth:`iter_groups`: this tree
        indexes the right set B; ``queries`` is the left set A (ndarray,
        source, or path).  Query blocks are binned per level
        (:meth:`query_bins`, computed in streamed row blocks) and each
        block's candidates are the B points inside the block's +-1 bin
        window at every level -- a superset of the exact union, with the
        exact filter happening in the join's distance computation.
        ``reach=m`` widens the window to ``+-m`` bins, sound for query
        radii up to ``m * eps`` (eps-width bins for coordinate levels; the
        triangle inequality bounds ring-index drift by ``m`` for metric
        levels) -- the expanding search the query-serving kNN uses.
        """
        from repro.data.source import as_source

        src = as_source(queries)
        if int(src.dim) != int(self.dims):
            raise ValueError(
                f"query dimensionality {src.dim} != indexed {self.dims}"
            )
        nq = int(src.n)
        qbins = [np.empty(nq, dtype=np.int64) for _ in self.levels]
        for r0 in range(0, nq, row_block):
            r1 = min(r0 + row_block, nq)
            for dst, qb in zip(qbins, self.query_bins(src.load_block(r0, r1))):
                dst[r0:r1] = qb
        if reach < 1:
            raise ValueError("reach must be >= 1")
        for start in range(0, nq, group):
            members = np.arange(start, min(start + group, nq))
            block_mask = np.ones(self.n_points, dtype=bool)
            for level, qb in zip(self.levels, qbins):
                b = qb[members]
                block_mask &= (level.bins >= b.min() - reach) & (
                    level.bins <= b.max() + reach
                )
            yield members, np.nonzero(block_mask)[0]
