"""Indexing structures used by the index-supported baselines.

* :mod:`repro.index.grid` -- the epsilon-width grid over a prefix of
  (variance-ordered) dimensions used by GDS-Join and TED-Join-Index.
* :mod:`repro.index.mstree` -- MiSTIC's multi-space partitioning: the same
  coordinate grid tightened by metric (pivot ring) pruning.

Both indexes are *functional*: they produce real candidate sets on real
data, which both the functional baseline joins and the timing models
consume (candidate counts are the dominant term of an index-supported
method's response time).
"""

from repro.index.grid import GridIndex
from repro.index.mstree import MultiSpaceTree

__all__ = ["GridIndex", "MultiSpaceTree"]
