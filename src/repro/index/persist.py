"""Versioned on-disk persistence for the query indexes.

The batch engine rebuilds its :class:`~repro.index.grid.GridIndex` /
:class:`~repro.index.mstree.MultiSpaceTree` from the dataset on every
invocation -- fine for one join, hopeless for a serving workload where the
same index answers thousands of queries.  This module gives both index
types a build-once / query-many lifecycle:

* :func:`save_index` writes an index as a **directory**: one JSON header
  (``header.json`` -- magic, format version, index kind, scalars) plus one
  ``.npy`` payload per index array.  The arrays saved are exactly the
  grouped state the constructors install, so nothing is recomputed on
  load.  A dataset can ride along -- embedded as ``data.npy`` (streamed
  through :meth:`~repro.data.source.DatasetSource.write_npy`, never
  materialized) or referenced by path -- because answering distance
  queries needs the points themselves, not just the grouping.

* :func:`load_index` memory-maps the payloads (``mmap=True``, the
  default): the OS pages index arrays and dataset rows in on demand, so a
  loaded index starts answering queries without re-reading either into
  RAM.  ``mmap=False`` loads everything resident instead -- bit-identical
  results either way (tests/test_service.py pins mmap vs in-RAM and
  loaded vs freshly built).

* **Versioning**: the header's ``magic`` / ``version`` are checked before
  anything else is touched; unknown versions (and non-index directories)
  are rejected with :class:`ValueError` rather than misinterpreted --
  the format can evolve without old readers silently corrupting results.

Bit-identity argument: the saved arrays *are* the index state (the stable
sort permutation, cell extents, cell coordinates; per-level bins and
pivots for the tree).  Loading installs them verbatim, so candidate
iteration -- and therefore every query routed through the engine's
candidate executors -- is exactly what the freshly built index yields.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.source import DatasetSource, as_source
from repro.index.grid import GridIndex
from repro.index.mstree import MultiSpaceTree, _Level

#: Directory-format identification; bump ``FORMAT_VERSION`` on layout
#: changes (readers reject versions they do not understand).
MAGIC = "repro-index"
FORMAT_VERSION = 1

#: Header file name inside an index directory.
HEADER_NAME = "header.json"

#: Embedded-dataset file name inside an index directory.
DATA_NAME = "data.npy"


@dataclass
class LoadedIndex:
    """A persisted index restored from disk, plus its dataset binding.

    ``index`` is a ready-to-query :class:`GridIndex` or
    :class:`MultiSpaceTree`; ``source`` is the dataset it was built over
    (embedded copy or referenced path) as a block/gather-addressable
    :class:`~repro.data.source.DatasetSource`, or None when the index was
    saved without one (the caller must then supply the data to the query
    engine itself).
    """

    index: "GridIndex | MultiSpaceTree"
    kind: str  # "grid" | "mstree"
    eps: float
    path: Path
    source: DatasetSource | None
    header: dict


def _save_arrays(directory: Path, arrays: dict[str, np.ndarray]) -> dict:
    """Write payload arrays, returning the header's name -> file map.

    Existing payload files are unlinked first so a re-save writes fresh
    inodes: live memory maps of a previously loaded index keep reading
    the old (still-valid) data instead of seeing bytes change -- or fault
    -- under them.
    """
    payload = {}
    for name, arr in arrays.items():
        fname = f"{name}.npy"
        (directory / fname).unlink(missing_ok=True)
        np.save(directory / fname, np.ascontiguousarray(arr))
        payload[name] = fname
    return payload


def save_index(
    index: "GridIndex | MultiSpaceTree",
    path: str | Path,
    *,
    data=None,
    data_path: str | Path | None = None,
) -> Path:
    """Persist an index (and optionally its dataset) to a directory.

    Parameters
    ----------
    index:
        A built :class:`GridIndex` or :class:`MultiSpaceTree`.
    path:
        Target directory (created; an existing index there is replaced).
    data:
        Dataset to **embed** as ``data.npy`` -- an ndarray, a
        :class:`~repro.data.source.DatasetSource`, or a path coercible by
        :func:`~repro.data.source.as_source`.  Sources are streamed in
        row blocks, never materialized.
    data_path:
        Dataset to **reference** by path instead of copying (stored
        verbatim; relative paths resolve against the index directory at
        load time).  Mutually exclusive with ``data``.
    """
    if data is not None and data_path is not None:
        raise ValueError("pass data (embed) or data_path (reference), not both")
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    stale = path / HEADER_NAME
    if stale.exists():
        stale.unlink()  # never leave a header describing replaced payloads

    header: dict = {"magic": MAGIC, "version": FORMAT_VERSION}
    if isinstance(index, GridIndex):
        header["kind"] = "grid"
        header["scalars"] = {
            "eps": float(index.eps),
            "n_points": int(index.n_points),
            "n_dims_data": int(index.n_dims_data),
            "r": int(index.r),
        }
        header["arrays"] = _save_arrays(
            path,
            {
                "order": index.order,
                "sort": index._sort,
                "starts": index._starts,
                "ends": index._ends,
                "unique": index._unique,
            },
        )
    elif isinstance(index, MultiSpaceTree):
        header["kind"] = "mstree"
        header["scalars"] = {
            "eps": float(index.eps),
            "n_points": int(index.n_points),
            "dims": int(index.dims),
            "construction_evaluations": int(index.construction_evaluations),
        }
        arrays: dict[str, np.ndarray] = {}
        levels = []
        for k, level in enumerate(index.levels):
            arrays[f"level_{k:02d}_bins"] = level.bins
            entry = {"kind": level.kind, "param": int(level.param)}
            if level.pivot_point is not None:
                arrays[f"level_{k:02d}_pivot"] = level.pivot_point
                entry["pivot"] = f"level_{k:02d}_pivot"
            levels.append(entry)
        header["levels"] = levels
        header["arrays"] = _save_arrays(path, arrays)
    else:
        raise TypeError(f"cannot persist index of type {type(index).__name__}")

    if data is not None:
        # Fresh inode for the same reason as _save_arrays.
        (path / DATA_NAME).unlink(missing_ok=True)
        as_source(data).write_npy(path / DATA_NAME)
        header["data"] = DATA_NAME
    elif data_path is not None:
        header["data"] = str(data_path)

    (path / HEADER_NAME).write_text(json.dumps(header, indent=2) + "\n")
    # Replacing an index of a different shape (other kind, fewer tree
    # levels) must not leave its dead payloads behind: drop every .npy
    # the new header does not reference.
    referenced = set(header["arrays"].values())
    if header.get("data") == DATA_NAME:
        referenced.add(DATA_NAME)
    for stray in path.glob("*.npy"):
        if stray.name not in referenced:
            stray.unlink()
    return path


def read_header(path: str | Path) -> dict:
    """Read and validate an index directory's header.

    Raises :class:`ValueError` for anything that is not a compatible
    persisted index: missing header, wrong magic, or a format version
    this reader does not understand.
    """
    path = Path(path)
    header_path = path / HEADER_NAME
    if not header_path.is_file():
        raise ValueError(f"{path} is not a persisted index (no {HEADER_NAME})")
    try:
        header = json.loads(header_path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{header_path} is not valid JSON") from exc
    if header.get("magic") != MAGIC:
        raise ValueError(
            f"{path}: bad magic {header.get('magic')!r} (expected {MAGIC!r})"
        )
    version = header.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported index format version {version!r} "
            f"(this reader understands {FORMAT_VERSION})"
        )
    if header.get("kind") not in ("grid", "mstree"):
        raise ValueError(f"{path}: unknown index kind {header.get('kind')!r}")
    return header


def load_index(path: str | Path, *, mmap: bool = True) -> LoadedIndex:
    """Restore a persisted index from a directory.

    ``mmap=True`` (the default) memory-maps every payload and serves an
    embedded/referenced dataset through a mmap-backed
    :class:`~repro.data.source.DatasetSource` -- queries gather only the
    rows they touch, so the dataset is never re-read into RAM wholesale.
    ``mmap=False`` loads everything resident.  Results are bit-identical
    either way, and to the freshly built index.
    """
    path = Path(path)
    header = read_header(path)
    mode = "r" if mmap else None

    def arr(name: str) -> np.ndarray:
        return np.load(path / header["arrays"][name], mmap_mode=mode)

    scalars = header["scalars"]
    if header["kind"] == "grid":
        index = GridIndex.__new__(GridIndex)
        index._install(
            eps=float(scalars["eps"]),
            n_points=int(scalars["n_points"]),
            n_dims_data=int(scalars["n_dims_data"]),
            order=arr("order"),
            r=int(scalars["r"]),
            sort=arr("sort"),
            starts=arr("starts"),
            ends=arr("ends"),
            unique=np.ascontiguousarray(arr("unique")),
        )
    else:
        index = MultiSpaceTree.__new__(MultiSpaceTree)
        index.eps = float(scalars["eps"])
        index.n_points = int(scalars["n_points"])
        index.dims = int(scalars["dims"])
        index.construction_evaluations = int(
            scalars["construction_evaluations"]
        )
        index.levels = []
        for k, entry in enumerate(header["levels"]):
            pivot = None
            if "pivot" in entry:
                pivot = np.asarray(
                    np.load(path / header["arrays"][entry["pivot"]],
                            mmap_mode=mode),
                    dtype=np.float64,
                )
            index.levels.append(
                _Level(
                    kind=entry["kind"],
                    param=int(entry["param"]),
                    bins=arr(f"level_{k:02d}_bins"),
                    pivot_point=pivot,
                )
            )

    source: DatasetSource | None = None
    if "data" in header:
        data_ref = Path(header["data"])
        if not data_ref.is_absolute():
            data_ref = path / data_ref
        if not data_ref.exists():
            raise ValueError(f"{path}: referenced dataset {data_ref} is missing")
        source = as_source(data_ref)
        if not mmap:
            from repro.data.source import ArraySource

            source = ArraySource(source.materialize())

    return LoadedIndex(
        index=index,
        kind=header["kind"],
        eps=float(scalars["eps"]),
        path=path,
        source=source,
        header=header,
    )


__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "HEADER_NAME",
    "DATA_NAME",
    "LoadedIndex",
    "save_index",
    "load_index",
    "read_header",
]
