"""Versioned, crash-safe on-disk persistence for the query indexes.

The batch engine rebuilds its :class:`~repro.index.grid.GridIndex` /
:class:`~repro.index.mstree.MultiSpaceTree` from the dataset on every
invocation -- fine for one join, hopeless for a serving workload where the
same index answers thousands of queries.  This module gives both index
types a build-once / query-many lifecycle:

* :func:`save_index` writes an index as a **directory**: one JSON header
  (``header.json`` -- magic, format version, index kind, scalars, and a
  per-payload SHA-256 checksum + byte size) plus one ``.npy`` payload per
  index array.  The arrays saved are exactly the grouped state the
  constructors install, so nothing is recomputed on load.  A dataset can
  ride along -- embedded as a ``data-*.npy`` payload (streamed through
  :meth:`~repro.data.source.DatasetSource.write_npy`, never materialized)
  or referenced by path -- because answering distance queries needs the
  points themselves, not just the grouping.

* **Crash safety**: a save stages everything in a temp sibling directory
  (``<name>.saving-<token>``), fsyncs files and directories, and commits
  atomically -- a single ``rename`` of the whole directory for a fresh
  save, or (when replacing a live index) per-payload renames that the old
  header cannot see followed by one atomic ``os.replace`` of
  ``header.json``, which *is* the commit point.  A ``SIGKILL`` at any
  instant therefore leaves either the old or the new index fully
  loadable, never a partial.  Payload files are generation-tagged
  (``<name>-<token>.npy``) so a replacement writes fresh inodes: live
  memory maps of the previous generation keep reading valid bytes.
  Orphans of interrupted or superseded saves (stale ``.saving-*``
  siblings, unreferenced ``*.npy``) are detected and garbage-collected by
  the next save.

* :func:`load_index` **verifies before it touches payloads**:
  ``verify="header"`` (the default) checks that every payload exists with
  exactly the byte size the header recorded; ``verify="full"`` re-hashes
  every payload against its SHA-256; ``verify="off"`` skips both.
  Verification failures raise :class:`CorruptIndexError` (a
  :class:`ValueError`) before any query can run over bad bytes.
  ``mmap=True`` (the default) memory-maps the payloads; ``mmap=False``
  loads everything resident -- bit-identical results either way
  (tests/test_service.py pins mmap vs in-RAM and loaded vs freshly
  built; tests/test_faults.py drives the corruption and kill paths).

* **Versioning**: the header's ``magic`` / ``version`` are checked before
  anything else; unknown versions (and non-index directories) are
  rejected with :class:`ValueError` rather than misinterpreted.

Bit-identity argument: the saved arrays *are* the index state (the stable
sort permutation, cell extents, cell coordinates; per-level bins and
pivots for the tree).  Loading installs them verbatim, so candidate
iteration -- and therefore every query routed through the engine's
candidate executors -- is exactly what the freshly built index yields.
"""

from __future__ import annotations

import hashlib
import json
import os
import secrets
import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import faults
from repro.data.source import DatasetSource, as_source
from repro.index.grid import GridIndex
from repro.index.mstree import MultiSpaceTree, _Level

#: Directory-format identification; bump ``FORMAT_VERSION`` on layout
#: changes (readers reject versions they do not understand).  Version 2
#: added per-payload SHA-256 checksums / byte sizes and generation-tagged
#: payload file names.
MAGIC = "repro-index"
FORMAT_VERSION = 2

#: Header file name inside an index directory.
HEADER_NAME = "header.json"

#: Base name for an embedded dataset payload (tagged per save:
#: ``data-<token>.npy``).
DATA_STEM = "data"

#: Suffix marking an in-flight save's staging directory, sibling to the
#: target: ``<name>.saving-<token>``.
SAVING_SUFFIX = ".saving-"

#: Accepted ``verify=`` levels for :func:`load_index`.
VERIFY_LEVELS = ("off", "header", "full")


class CorruptIndexError(ValueError):
    """A persisted index failed integrity verification.

    Raised by :func:`load_index` / :func:`verify_index` when a payload is
    missing, truncated, resized, or fails its SHA-256 -- and by
    :func:`read_header` when the header itself is unreadable garbage.
    Subclasses :class:`ValueError` so callers that guard broadly against
    invalid index directories keep working.
    """


@dataclass
class LoadedIndex:
    """A persisted index restored from disk, plus its dataset binding.

    ``index`` is a ready-to-query :class:`GridIndex` or
    :class:`MultiSpaceTree`; ``source`` is the dataset it was built over
    (embedded copy or referenced path) as a block/gather-addressable
    :class:`~repro.data.source.DatasetSource`, or None when the index was
    saved without one (the caller must then supply the data to the query
    engine itself).
    """

    index: "GridIndex | MultiSpaceTree"
    kind: str  # "grid" | "mstree"
    eps: float
    path: Path
    source: DatasetSource | None
    header: dict


def _sha256_file(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _payload_entry(path: Path) -> dict:
    """Header record for one staged payload: file name + integrity facts."""
    return {
        "file": path.name,
        "sha256": _sha256_file(path),
        "nbytes": path.stat().st_size,
    }


def _stage_payload(directory: Path, fname: str, arr: np.ndarray) -> dict:
    """Write one payload array into the staging dir, fsynced + checksummed.

    The ``persist.payload`` fault point fires after the checksum is
    recorded, so an injected corruption is exactly what ``verify`` must
    catch: bytes that no longer match the header.
    """
    fpath = directory / fname
    np.save(fpath, np.ascontiguousarray(arr))
    _fsync_file(fpath)
    entry = _payload_entry(fpath)
    if faults.ARMED:
        if faults.check("persist.payload") == "corrupt":
            faults.corrupt_file(fpath)
    return entry


def _gc_interrupted_saves(path: Path, *, keep: Path | None = None) -> None:
    """Remove stale ``<name>.saving-*`` staging dirs next to ``path``.

    A save that died before its commit leaves one behind; the target
    itself was never touched, so the leftovers are pure garbage.
    """
    parent = path.parent
    if not parent.is_dir():
        return
    for stale in parent.glob(path.name + SAVING_SUFFIX + "*"):
        if keep is not None and stale == keep:
            continue
        shutil.rmtree(stale, ignore_errors=True)


def _gc_unreferenced_payloads(path: Path, header: dict) -> None:
    """Drop every ``.npy`` in a live index dir the header does not name.

    Replacing an index leaves the previous generation's payloads behind
    (they kept live mmaps valid through the commit); with the new header
    committed they are unreachable and can go.
    """
    referenced = {entry["file"] for entry in header["arrays"].values()}
    data = header.get("data")
    if isinstance(data, str) and header.get("data_embedded"):
        referenced.add(data)
    for stray in path.glob("*.npy"):
        if stray.name not in referenced:
            stray.unlink(missing_ok=True)


def save_index(
    index: "GridIndex | MultiSpaceTree",
    path: str | Path,
    *,
    data=None,
    data_path: str | Path | None = None,
) -> Path:
    """Persist an index (and optionally its dataset) to a directory.

    The save is **atomic**: payloads and header are staged in a
    ``<name>.saving-<token>`` sibling directory, fsynced, and committed
    either by renaming the whole staging dir into place (fresh save) or
    by moving the generation-tagged payloads in and atomically replacing
    ``header.json`` (replacement of a live index).  Interrupted saves
    leave the target untouched and are garbage-collected here on the
    next save.

    Parameters
    ----------
    index:
        A built :class:`GridIndex` or :class:`MultiSpaceTree`.
    path:
        Target directory (created; an existing index there is replaced).
    data:
        Dataset to **embed** as a ``data-<token>.npy`` payload -- an
        ndarray, a :class:`~repro.data.source.DatasetSource`, or a path
        coercible by :func:`~repro.data.source.as_source`.  Sources are
        streamed in row blocks, never materialized.
    data_path:
        Dataset to **reference** by path instead of copying (stored
        verbatim; relative paths resolve against the index directory at
        load time).  Mutually exclusive with ``data``.
    """
    if data is not None and data_path is not None:
        raise ValueError("pass data (embed) or data_path (reference), not both")
    path = Path(path)
    if path.exists() and not path.is_dir():
        raise ValueError(f"{path} exists and is not a directory")
    path.parent.mkdir(parents=True, exist_ok=True)
    _gc_interrupted_saves(path)

    token = secrets.token_hex(4)
    tmp = path.parent / f"{path.name}{SAVING_SUFFIX}{token}"
    tmp.mkdir()

    def fname(name: str) -> str:
        return f"{name}-{token}.npy"

    try:
        header: dict = {"magic": MAGIC, "version": FORMAT_VERSION}
        if isinstance(index, GridIndex):
            header["kind"] = "grid"
            header["scalars"] = {
                "eps": float(index.eps),
                "n_points": int(index.n_points),
                "n_dims_data": int(index.n_dims_data),
                "r": int(index.r),
            }
            to_save = {
                "order": index.order,
                "sort": index._sort,
                "starts": index._starts,
                "ends": index._ends,
                "unique": index._unique,
            }
            header["arrays"] = {
                name: _stage_payload(tmp, fname(name), arr)
                for name, arr in to_save.items()
            }
        elif isinstance(index, MultiSpaceTree):
            header["kind"] = "mstree"
            header["scalars"] = {
                "eps": float(index.eps),
                "n_points": int(index.n_points),
                "dims": int(index.dims),
                "construction_evaluations": int(
                    index.construction_evaluations
                ),
            }
            arrays: dict[str, np.ndarray] = {}
            levels = []
            for k, level in enumerate(index.levels):
                arrays[f"level_{k:02d}_bins"] = level.bins
                entry = {"kind": level.kind, "param": int(level.param)}
                if level.pivot_point is not None:
                    arrays[f"level_{k:02d}_pivot"] = level.pivot_point
                    entry["pivot"] = f"level_{k:02d}_pivot"
                levels.append(entry)
            header["levels"] = levels
            header["arrays"] = {
                name: _stage_payload(tmp, fname(name), arr)
                for name, arr in arrays.items()
            }
        else:
            raise TypeError(
                f"cannot persist index of type {type(index).__name__}"
            )

        if data is not None:
            data_file = tmp / fname(DATA_STEM)
            as_source(data).write_npy(data_file)
            _fsync_file(data_file)
            entry = _payload_entry(data_file)
            if faults.ARMED:
                if faults.check("persist.payload") == "corrupt":
                    faults.corrupt_file(data_file)
            header["data"] = entry["file"]
            header["data_embedded"] = True
            header["data_sha256"] = entry["sha256"]
            header["data_nbytes"] = entry["nbytes"]
        elif data_path is not None:
            header["data"] = str(data_path)

        header_tmp = tmp / HEADER_NAME
        header_tmp.write_text(json.dumps(header, indent=2) + "\n")
        _fsync_file(header_tmp)
        _fsync_dir(tmp)

        # ---- commit point ------------------------------------------------
        if faults.ARMED:
            faults.check("persist.write")
        if not path.exists():
            # Fresh save: one atomic rename publishes the whole directory.
            os.rename(tmp, path)
            _fsync_dir(path.parent)
        else:
            # Replacement: move the tagged payloads in (the live header
            # cannot reference them, so readers still see the old index
            # intact), then atomically swing header.json -- the commit.
            for staged in sorted(tmp.iterdir()):
                if staged.name == HEADER_NAME:
                    continue
                os.rename(staged, path / staged.name)
            _fsync_dir(path)
            os.replace(header_tmp, path / HEADER_NAME)
            _fsync_dir(path)
            tmp.rmdir()
            _gc_unreferenced_payloads(path, header)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return path


def read_header(path: str | Path) -> dict:
    """Read and validate an index directory's header.

    Raises :class:`ValueError` for anything that is not a compatible
    persisted index (missing header, wrong magic, unknown format
    version) and :class:`CorruptIndexError` -- a ValueError subclass --
    when the header file itself is unreadable garbage.
    """
    path = Path(path)
    header_path = path / HEADER_NAME
    if not header_path.is_file():
        raise ValueError(f"{path} is not a persisted index (no {HEADER_NAME})")
    try:
        header = json.loads(header_path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CorruptIndexError(
            f"{header_path} is not valid JSON (truncated or garbled header)"
        ) from exc
    if not isinstance(header, dict):
        raise CorruptIndexError(f"{header_path} does not contain an object")
    if header.get("magic") != MAGIC:
        raise ValueError(
            f"{path}: bad magic {header.get('magic')!r} (expected {MAGIC!r})"
        )
    version = header.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported index format version {version!r} "
            f"(this reader understands {FORMAT_VERSION})"
        )
    if header.get("kind") not in ("grid", "mstree"):
        raise ValueError(f"{path}: unknown index kind {header.get('kind')!r}")
    if not isinstance(header.get("arrays"), dict):
        raise CorruptIndexError(f"{path}: header lost its arrays map")
    return header


def verify_index(
    path: str | Path, header: dict | None = None, *, level: str = "header"
) -> None:
    """Verify a persisted index's payloads against its header.

    ``level="header"`` confirms every payload exists with exactly the
    recorded byte size (one ``stat`` each -- catches truncation, partial
    writes, and swapped files without reading payload bytes).
    ``level="full"`` additionally re-hashes every payload and compares
    its SHA-256 (catches in-place bit corruption).  ``level="off"`` is a
    no-op.  Raises :class:`CorruptIndexError` on the first mismatch.
    """
    if level not in VERIFY_LEVELS:
        raise ValueError(
            f"verify must be one of {VERIFY_LEVELS}, got {level!r}"
        )
    if level == "off":
        return
    path = Path(path)
    if header is None:
        header = read_header(path)
    entries = dict(header["arrays"])
    if header.get("data_embedded"):
        entries["<data>"] = {
            "file": header["data"],
            "sha256": header.get("data_sha256"),
            "nbytes": header.get("data_nbytes"),
        }
    for name, entry in entries.items():
        if not isinstance(entry, dict) or "file" not in entry:
            raise CorruptIndexError(
                f"{path}: malformed header entry for payload {name!r}"
            )
        fpath = path / entry["file"]
        if not fpath.is_file():
            raise CorruptIndexError(
                f"{path}: payload {entry['file']} ({name}) is missing"
            )
        nbytes = entry.get("nbytes")
        actual = fpath.stat().st_size
        if nbytes is not None and actual != nbytes:
            raise CorruptIndexError(
                f"{path}: payload {entry['file']} ({name}) is {actual} bytes, "
                f"header recorded {nbytes} (truncated or partially written)"
            )
        if level == "full":
            digest = entry.get("sha256")
            if digest is None:
                raise CorruptIndexError(
                    f"{path}: payload {entry['file']} ({name}) has no "
                    "recorded checksum"
                )
            actual_digest = _sha256_file(fpath)
            if actual_digest != digest:
                raise CorruptIndexError(
                    f"{path}: payload {entry['file']} ({name}) failed its "
                    f"SHA-256 check (got {actual_digest[:12]}..., header "
                    f"recorded {digest[:12]}...)"
                )


def load_index(
    path: str | Path, *, mmap: bool = True, verify: str = "header"
) -> LoadedIndex:
    """Restore a persisted index from a directory.

    Integrity is checked **before** any payload is mapped or read:
    ``verify="header"`` (default) stat-checks byte sizes,
    ``verify="full"`` re-hashes every payload against its SHA-256,
    ``verify="off"`` trusts the directory.  Failures raise
    :class:`CorruptIndexError`.

    ``mmap=True`` (the default) memory-maps every payload and serves an
    embedded/referenced dataset through a mmap-backed
    :class:`~repro.data.source.DatasetSource` -- queries gather only the
    rows they touch, so the dataset is never re-read into RAM wholesale.
    ``mmap=False`` loads everything resident.  Results are bit-identical
    either way, and to the freshly built index.
    """
    path = Path(path)
    header = read_header(path)
    verify_index(path, header, level=verify)
    mode = "r" if mmap else None

    def arr(name: str) -> np.ndarray:
        fname = header["arrays"][name]["file"]
        try:
            return np.load(path / fname, mmap_mode=mode)
        except (ValueError, OSError) as exc:
            # Size-preserving corruption inside the npy format header
            # slips past verify="header"; surface it typed, not as a raw
            # numpy parse error.
            raise CorruptIndexError(
                f"{path}: payload {fname} is unreadable: {exc}"
            ) from exc

    scalars = header["scalars"]
    if header["kind"] == "grid":
        index = GridIndex.__new__(GridIndex)
        index._install(
            eps=float(scalars["eps"]),
            n_points=int(scalars["n_points"]),
            n_dims_data=int(scalars["n_dims_data"]),
            order=arr("order"),
            r=int(scalars["r"]),
            sort=arr("sort"),
            starts=arr("starts"),
            ends=arr("ends"),
            unique=np.ascontiguousarray(arr("unique")),
        )
    else:
        index = MultiSpaceTree.__new__(MultiSpaceTree)
        index.eps = float(scalars["eps"])
        index.n_points = int(scalars["n_points"])
        index.dims = int(scalars["dims"])
        index.construction_evaluations = int(
            scalars["construction_evaluations"]
        )
        index.levels = []
        for k, entry in enumerate(header["levels"]):
            pivot = None
            if "pivot" in entry:
                pivot = np.asarray(arr(entry["pivot"]), dtype=np.float64)
            index.levels.append(
                _Level(
                    kind=entry["kind"],
                    param=int(entry["param"]),
                    bins=arr(f"level_{k:02d}_bins"),
                    pivot_point=pivot,
                )
            )

    source: DatasetSource | None = None
    if "data" in header:
        data_ref = Path(header["data"])
        if not data_ref.is_absolute():
            data_ref = path / data_ref
        if not data_ref.exists():
            raise ValueError(f"{path}: referenced dataset {data_ref} is missing")
        source = as_source(data_ref)
        if not mmap:
            from repro.data.source import ArraySource

            source = ArraySource(source.materialize())

    return LoadedIndex(
        index=index,
        kind=header["kind"],
        eps=float(scalars["eps"]),
        path=path,
        source=source,
        header=header,
    )


__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "HEADER_NAME",
    "DATA_STEM",
    "SAVING_SUFFIX",
    "VERIFY_LEVELS",
    "CorruptIndexError",
    "LoadedIndex",
    "save_index",
    "load_index",
    "read_header",
    "verify_index",
]
