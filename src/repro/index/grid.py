"""Epsilon-grid index over a prefix of variance-ordered dimensions.

GDS-Join (Gowanlock & Karsin 2019; Gowanlock et al. 2023) indexes
high-dimensional data with a regular grid of cell width ``eps`` over the
first ``r`` dimensions only (indexing all dimensions would create an
astronomically sparse grid), after reordering coordinates by decreasing
variance so the indexed prefix is as discriminative as possible.  A range
query for point ``p`` must examine every point in the 3^r adjacent cells;
those are the *candidates* whose distances are actually computed.

The same structure backs TED-Join-Index's candidate generation.

The implementation is fully vectorized: cell ids are computed with one
``floordiv`` + row hashing, points are grouped by sorting, and candidates
are produced per *cell* (every point in a cell shares its candidate set),
which is exactly how the GPU algorithms batch their work.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np


def variance_order(data: np.ndarray) -> np.ndarray:
    """Dimension permutation by decreasing variance (GDS-Join reordering).

    Besides improving index selectivity, this ordering is what makes
    short-circuiting effective: high-variance dimensions contribute to the
    running distance sum first, so non-neighbors are rejected early.
    """
    return np.argsort(-np.var(np.asarray(data, dtype=np.float64), axis=0), kind="stable")


@dataclass
class GridStats:
    """Construction/query statistics consumed by the timing models."""

    n_points: int
    n_indexed_dims: int
    n_nonempty_cells: int
    total_candidates: int  # sum over points of candidate-set sizes

    @property
    def mean_candidates(self) -> float:
        return self.total_candidates / max(self.n_points, 1)


class GridIndex:
    """Grid over the first ``r`` variance-ordered dimensions.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset.
    eps:
        Cell width = search radius, the standard choice: all neighbors of a
        point lie within the 3^r adjacent cells.
    n_dims:
        Number of indexed dimensions ``r``; capped at 6 like GDS-Join (the
        adjacency fan-out is 3^r).
    reorder:
        Apply variance ordering before indexing (on by default, matching
        the reference implementation).
    """

    def __init__(
        self,
        data: np.ndarray,
        eps: float,
        n_dims: int = 6,
        *,
        reorder: bool = True,
    ) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be (n, d)")
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.eps = float(eps)
        self.n_points = data.shape[0]
        self.order = (
            variance_order(data) if reorder else np.arange(data.shape[1])
        )
        self.r = int(min(n_dims, data.shape[1]))
        proj = data[:, self.order[: self.r]]
        self._cells = np.floor(proj / self.eps).astype(np.int64)
        # Group points by cell via lexicographic sort.
        self._sort = np.lexsort(self._cells.T[::-1])
        sorted_cells = self._cells[self._sort]
        change = np.any(np.diff(sorted_cells, axis=0) != 0, axis=1)
        starts = np.concatenate(([0], np.nonzero(change)[0] + 1))
        ends = np.concatenate((starts[1:], [self.n_points]))
        self._cell_keys = [tuple(sorted_cells[s]) for s in starts]
        self._cell_slices = {
            key: (int(s), int(e)) for key, s, e in zip(self._cell_keys, starts, ends)
        }

    # ------------------------------------------------------------------

    def points_in_cell(self, key: tuple[int, ...]) -> np.ndarray:
        """Original indices of the points in one cell."""
        se = self._cell_slices.get(key)
        if se is None:
            return np.empty(0, dtype=np.int64)
        s, e = se
        return self._sort[s:e]

    def candidates_of_cell(self, key: tuple[int, ...]) -> np.ndarray:
        """Candidate indices for a cell: points in the 3^r adjacent cells."""
        chunks = []
        for offset in product((-1, 0, 1), repeat=self.r):
            nkey = tuple(k + o for k, o in zip(key, offset))
            se = self._cell_slices.get(nkey)
            if se is not None:
                chunks.append(self._sort[se[0] : se[1]])
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def iter_cells(self):
        """Yield ``(members, candidates)`` index arrays per nonempty cell."""
        for key in self._cell_keys:
            yield self.points_in_cell(key), self.candidates_of_cell(key)

    def stats(self) -> GridStats:
        """Candidate-count statistics (drives the baselines' cost models)."""
        total = 0
        for key in self._cell_keys:
            members = self._cell_slices[key]
            n_members = members[1] - members[0]
            total += n_members * int(self.candidates_of_cell(key).size)
        return GridStats(
            n_points=self.n_points,
            n_indexed_dims=self.r,
            n_nonempty_cells=len(self._cell_keys),
            total_candidates=total,
        )
