"""Epsilon-grid index over a prefix of variance-ordered dimensions.

GDS-Join (Gowanlock & Karsin 2019; Gowanlock et al. 2023) indexes
high-dimensional data with a regular grid of cell width ``eps`` over the
first ``r`` dimensions only (indexing all dimensions would create an
astronomically sparse grid), after reordering coordinates by decreasing
variance so the indexed prefix is as discriminative as possible.  A range
query for point ``p`` must examine every point in the 3^r adjacent cells;
those are the *candidates* whose distances are actually computed.

The same structure backs TED-Join-Index's candidate generation.

The implementation is fully vectorized: cell ids are computed with one
``floordiv`` + row hashing, points are grouped by sorting, and candidates
are produced per *cell* (every point in a cell shares its candidate set),
which is exactly how the GPU algorithms batch their work.  Neighbor-cell
adjacency is resolved in one batched pass: occupied cells are encoded to
scalar keys whose numeric order equals the lexicographic cell order, and
all ``cells x 3^r`` neighbor probes become a single ``np.searchsorted``
over the sorted keys (chunked to bound temporaries) instead of 3^r Python
dict lookups per cell.  The adjacency is built once and shared by
candidate generation and :meth:`GridIndex.stats`, and per-cell candidate
arrays requested through :meth:`GridIndex.candidates_of_cell` are cached.

The grid can also be built **out of core** (:meth:`GridIndex.from_source`):
the dataset streams through in row blocks -- variance, cell-coordinate
spans and the scalar cell keys are each computed in one streamed pass, and
the point grouping is an external *counting sort* over the row blocks --
so only ``O(n)`` key/permutation state plus one block is ever resident,
never the ``(n, d)`` float64 dataset.  The resulting index groups points
exactly like the in-memory constructor (both sorts are stable by the same
key order), so candidate iteration -- and therefore the kernels' join
results -- is identical (pinned by tests/test_two_source.py).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

#: Default row-block edge for the streamed (out-of-core) build passes.
_SOURCE_ROW_BLOCK = 65536

#: Probe-matrix budget for the batched adjacency pass (cells per chunk is
#: derived from this so a chunk's ``cells x 3^r`` int64 block stays small).
_ADJACENCY_CHUNK_ELEMS = 4_000_000

#: Cap on the total int64 entries retained by the per-cell candidate-array
#: cache (~32 MB).  On dense data the sum of all candidate arrays is
#: O(n^2); the cache keeps hot cells fast without letting a scan over
#: every cell pin that much memory.
_CAND_CACHE_MAX_ELEMS = 4_000_000


def variance_order(data: np.ndarray) -> np.ndarray:
    """Dimension permutation by decreasing variance (GDS-Join reordering).

    Besides improving index selectivity, this ordering is what makes
    short-circuiting effective: high-variance dimensions contribute to the
    running distance sum first, so non-neighbors are rejected early.
    """
    return np.argsort(-np.var(np.asarray(data, dtype=np.float64), axis=0), kind="stable")


def _group_by_cells(
    cells: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stable lexicographic grouping of rows by their cell coordinates.

    Returns ``(sort, starts, ends, sorted_cells)``: the permutation
    ordering rows by cell (stable, so within-cell order is original row
    order) and the per-cell slice bounds into it.  The single definition
    of the grouping semantics shared by the in-memory build, the
    ``from_source`` overflow fallback, and external-query grouping -- the
    streamed counting sort of :meth:`GridIndex.from_source` reproduces it
    exactly, which is what the bit-identity contract rests on.
    """
    sort = np.lexsort(cells.T[::-1])
    sorted_cells = cells[sort]
    change = np.any(np.diff(sorted_cells, axis=0) != 0, axis=1)
    starts = np.concatenate(([0], np.nonzero(change)[0] + 1))
    ends = np.concatenate((starts[1:], [cells.shape[0]]))
    return sort, starts, ends, sorted_cells


def _iter_source_blocks(source, row_block: int, stats=None):
    """Yield ``(r0, r1, block)`` over a source, accounting residency.

    ``stats`` is an optional ``repro.core.engine.StreamStats`` (duck-typed:
    ``_acquire`` / ``_release`` / ``blocks_loaded``); each block is
    released once the consumer advances, so at most one block is charged.
    """
    for r0 in range(0, source.n, row_block):
        r1 = min(r0 + row_block, source.n)
        block = source.load_block(r0, r1)
        if stats is not None:
            stats._acquire(block.nbytes)
            stats.blocks_loaded += 1
        try:
            yield r0, r1, block
        finally:
            if stats is not None:
                stats._release(block.nbytes)


def variance_order_from_source(
    source, *, row_block: int = _SOURCE_ROW_BLOCK, stats=None
) -> np.ndarray:
    """Streamed :func:`variance_order`: two passes (mean, squared devs).

    Summation order differs from ``np.var`` over the resident array, so
    the per-dimension variances can differ in their last float64 bits; the
    *ordering* -- all that the grid consumes -- matches unless two
    dimensions' variances tie to within rounding.
    """
    n, d = int(source.n), int(source.dim)
    if n == 0:
        return np.arange(d)
    total = np.zeros(d, dtype=np.float64)
    for _r0, _r1, block in _iter_source_blocks(source, row_block, stats):
        total += block.sum(axis=0)
    mean = total / n
    ssd = np.zeros(d, dtype=np.float64)
    for _r0, _r1, block in _iter_source_blocks(source, row_block, stats):
        diff = block - mean
        ssd += (diff * diff).sum(axis=0)
    return np.argsort(-(ssd / n), kind="stable")


@dataclass
class GridStats:
    """Construction/query statistics consumed by the timing models.

    The group-shape moments (``mean_members`` / ``std_members`` over
    per-cell member counts, ``mean_group_candidates`` /
    ``std_group_candidates`` over per-cell candidate-set sizes) also
    drive the batched executor's derived knobs
    (:func:`repro.core.engine.batch_params_from_stats`) and the
    query-serving layer's kNN starting radius.
    """

    n_points: int
    n_indexed_dims: int
    n_nonempty_cells: int
    total_candidates: int  # sum over points of candidate-set sizes
    mean_members: float = 0.0  # mean points per nonempty cell
    std_members: float = 0.0
    mean_group_candidates: float = 0.0  # mean candidate-set size per cell
    std_group_candidates: float = 0.0

    @property
    def mean_candidates(self) -> float:
        return self.total_candidates / max(self.n_points, 1)


class GridIndex:
    """Grid over the first ``r`` variance-ordered dimensions.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset.
    eps:
        Cell width = search radius, the standard choice: all neighbors of a
        point lie within the 3^r adjacent cells.
    n_dims:
        Number of indexed dimensions ``r``; capped at 6 like GDS-Join (the
        adjacency fan-out is 3^r).
    reorder:
        Apply variance ordering before indexing (on by default, matching
        the reference implementation).
    """

    def __init__(
        self,
        data: np.ndarray,
        eps: float,
        n_dims: int = 6,
        *,
        reorder: bool = True,
    ) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be (n, d)")
        if eps <= 0:
            raise ValueError("eps must be positive")
        n, d = data.shape
        order = variance_order(data) if reorder else np.arange(d)
        r = int(min(n_dims, d))
        proj = data[:, order[:r]]
        self._cells = np.floor(proj / float(eps)).astype(np.int64)
        # Group points by cell via lexicographic sort.
        sort, starts, ends, sorted_cells = _group_by_cells(self._cells)
        self._install(
            eps=float(eps),
            n_points=n,
            n_dims_data=d,
            order=order,
            r=r,
            sort=sort,
            starts=starts,
            ends=ends,
            unique=np.ascontiguousarray(sorted_cells[starts]),
        )

    def _install(
        self,
        *,
        eps: float,
        n_points: int,
        n_dims_data: int,
        order: np.ndarray,
        r: int,
        sort: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        unique: np.ndarray,
    ) -> None:
        """Common tail of both constructors: grouped state + lazy caches."""
        self.eps = eps
        self.n_points = n_points
        self.n_dims_data = n_dims_data
        self.order = order
        self.r = r
        self._sort = sort
        self._starts = starts
        self._ends = ends
        #: Occupied cell coordinates in lexicographic order, shape (C, r).
        self._unique = unique
        self._cell_keys = [tuple(row) for row in self._unique]
        #: Single key -> occupied-cell-index mapping; slices come from
        #: _starts/_ends so there is one source of truth for cell extents.
        self._cell_id = {key: i for i, key in enumerate(self._cell_keys)}
        # Lazily built batched adjacency (CSR over occupied-cell indices)
        # and the per-cell candidate-array cache it feeds.
        self._nbr_indptr: np.ndarray | None = None
        self._nbr_cells: np.ndarray | None = None
        self._cand_cache: dict[int, np.ndarray] = {}
        self._cand_cache_elems = 0

    @classmethod
    def from_source(
        cls,
        source,
        eps: float,
        n_dims: int = 6,
        *,
        reorder: bool = True,
        row_block: int = _SOURCE_ROW_BLOCK,
        stats=None,
    ) -> "GridIndex":
        """Out-of-core grid build: the dataset streams through in row blocks.

        Equivalent to ``GridIndex(source.materialize(), eps, n_dims)``
        without ever holding the ``(n, d)`` float64 dataset: the streamed
        passes keep one ``row_block`` block resident and the build state is
        ``O(n)`` (scalar cell keys + the point permutation) plus the
        occupied-cell structures every grid holds anyway.

        Pipeline (each step one pass over ``source``):

        1. streamed variance -> dimension order
           (:func:`variance_order_from_source`; see its note on ordering
           ties -- cell *assignment* is bit-exact either way);
        2. cell-coordinate spans (per-dimension min/max of
           ``floor(proj / eps)``);
        3. streamed **cell-key encoding**: each row's cell encoded to one
           mixed-radix int64 whose numeric order equals the lexicographic
           cell order;
        4. external **counting sort over row blocks**: unique keys +
           counts give each cell's slot range, then every block's rows are
           placed at their cell cursors (stable: blocks in order,
           stable argsort within a block) -- producing exactly the
           permutation the in-memory ``np.lexsort`` yields.

        When the coordinate spans are too wide for the int64 encoding
        (pathological eps), the build falls back to materializing the
        ``(n, r)`` cell-coordinate array and lexsorting it -- still never
        the dataset itself.

        Parameters
        ----------
        source:
            ``DatasetSource`` (or anything :func:`repro.data.source.as_source`
            accepts).
        eps, n_dims, reorder:
            As for the in-memory constructor.
        row_block:
            Rows per streamed block.
        stats:
            Optional ``repro.core.engine.StreamStats`` accounting the pass
            loads (block residency + ``blocks_loaded``).
        """
        from repro.data.source import as_source

        source = as_source(source)
        if eps <= 0:
            raise ValueError("eps must be positive")
        n, d = int(source.n), int(source.dim)
        order = (
            variance_order_from_source(source, row_block=row_block, stats=stats)
            if reorder
            else np.arange(d)
        )
        r = int(min(n_dims, d))
        proj_dims = order[:r]
        eps = float(eps)

        obj = cls.__new__(cls)
        if n == 0:
            obj._install(
                eps=eps, n_points=0, n_dims_data=d, order=order, r=r,
                sort=np.empty(0, np.int64),
                starts=np.empty(0, np.int64), ends=np.empty(0, np.int64),
                unique=np.empty((0, r), np.int64),
            )
            return obj

        def block_cells(block: np.ndarray) -> np.ndarray:
            # Identical elementwise op on identical float64 values, so the
            # coordinates are bit-exactly those of the in-memory build.
            return np.floor(block[:, proj_dims] / eps).astype(np.int64)

        # Pass: per-dimension cell-coordinate spans.
        mins = np.full(r, np.iinfo(np.int64).max, dtype=np.int64)
        maxs = np.full(r, np.iinfo(np.int64).min, dtype=np.int64)
        for _r0, _r1, block in _iter_source_blocks(source, row_block, stats):
            cells = block_cells(block)
            np.minimum(mins, cells.min(axis=0), out=mins)
            np.maximum(maxs, cells.max(axis=0), out=maxs)

        # Overflow guard in float64 (cf. GridIndex._encode): extreme spans
        # would wrap the int64 key arithmetic.
        spans_f = maxs.astype(np.float64) - mins.astype(np.float64) + 3.0
        if r and float(np.prod(spans_f)) >= 2.0**62:
            # Fallback: materialize the (n, r) coordinates and lexsort --
            # same grouping, O(n*r) resident instead of O(n).
            cells = np.empty((n, r), dtype=np.int64)
            for r0, r1, block in _iter_source_blocks(source, row_block, stats):
                cells[r0:r1] = block_cells(block)
            sort, starts, ends, sorted_cells = _group_by_cells(cells)
            obj._install(
                eps=eps, n_points=n, n_dims_data=d, order=order, r=r,
                sort=sort, starts=starts, ends=ends,
                unique=np.ascontiguousarray(sorted_cells[starts]),
            )
            return obj

        spans = maxs - mins + 3  # +-1 probe margins, matching _encode
        strides = np.ones(max(r, 1), dtype=np.int64)[:r]
        for k in range(r - 2, -1, -1):
            strides[k] = strides[k + 1] * spans[k + 1]

        # Pass: streamed cell-key encoding (numeric key order == lex order).
        keys = np.empty(n, dtype=np.int64)
        for r0, r1, block in _iter_source_blocks(source, row_block, stats):
            keys[r0:r1] = ((block_cells(block) - mins + 1) * strides).sum(axis=1)

        ukeys, counts = np.unique(keys, return_counts=True)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        ends = starts + counts

        # External counting sort over row blocks: place each block's rows
        # at their cell cursors.  Stable (blocks in order, stable argsort
        # within each block), so the permutation equals np.lexsort's.
        sort = np.empty(n, dtype=np.int64)
        cursors = starts.copy()
        for b0 in range(0, n, row_block):
            kb = keys[b0 : b0 + row_block]
            ci = np.searchsorted(ukeys, kb)
            blk_order = np.argsort(ci, kind="stable")
            cs = ci[blk_order]
            run_start = np.concatenate(([0], np.nonzero(np.diff(cs))[0] + 1))
            run_len = np.diff(np.concatenate((run_start, [cs.size])))
            ranks = np.arange(cs.size) - np.repeat(run_start, run_len)
            sort[cursors[cs] + ranks] = b0 + blk_order
            cursors += np.bincount(ci, minlength=ukeys.size)

        # Decode the unique keys back to cell coordinates (exact ints).
        unique = np.empty((ukeys.size, r), dtype=np.int64)
        for k in range(r):
            unique[:, k] = (ukeys // strides[k]) % spans[k] + mins[k] - 1

        obj._install(
            eps=eps, n_points=n, n_dims_data=d, order=order, r=r,
            sort=sort, starts=starts, ends=ends, unique=unique,
        )
        return obj

    # ------------------------------------------------------------------
    # Batched neighbor-cell adjacency
    # ------------------------------------------------------------------

    def _encode(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Scalar cell keys preserving lexicographic order, or None.

        Encodes each occupied cell as a mixed-radix integer with one digit
        per indexed dimension; digit ranges leave one-slot margins so every
        ±1 neighbor offset stays a valid (collision-free) encoding.  Returns
        ``(keys, offset_deltas)`` or None when the coordinate spans are so
        wide the encoding would overflow int64 (pathological eps).
        """
        unique = self._unique
        mins = unique.min(axis=0)
        maxs = unique.max(axis=0)
        # Overflow guard must run in float64 *before* any int64 span math:
        # extreme coordinate ranges (|cell| ~ 2**62) would wrap the int64
        # subtraction itself and corrupt the keys silently.
        spans_f = maxs.astype(np.float64) - mins.astype(np.float64) + 3.0
        if float(np.prod(spans_f)) >= 2.0**62:
            return None
        spans = maxs - mins + 3  # +2: margin for +-1 probes (now wrap-safe)
        strides = np.ones(self.r, dtype=np.int64)
        for k in range(self.r - 2, -1, -1):
            strides[k] = strides[k + 1] * spans[k + 1]
        keys = ((unique - mins + 1) * strides).sum(axis=1)
        offsets = np.array(
            list(product((-1, 0, 1), repeat=self.r)), dtype=np.int64
        ).reshape(-1, self.r)
        deltas = (offsets * strides).sum(axis=1)
        return keys, deltas

    def _build_adjacency(self) -> None:
        """One vectorized pass resolving every cell's 3^r neighbor probes."""
        if self._nbr_indptr is not None:
            return
        n_cells = len(self._cell_keys)
        encoded = self._encode() if n_cells else None
        if encoded is None:
            # Fallback for degenerate geometry: per-cell dict probes in the
            # same (-1, 0, 1)-product order.
            rows: list[list[int]] = []
            for key in self._cell_keys:
                hits = []
                for offset in product((-1, 0, 1), repeat=self.r):
                    nkey = tuple(k + o for k, o in zip(key, offset))
                    ci = self._cell_id.get(nkey)
                    if ci is not None:
                        hits.append(ci)
                rows.append(hits)
            counts = np.array([len(h) for h in rows], dtype=np.int64)
            # _nbr_cells first: the build guard checks _nbr_indptr, so a
            # concurrent reader (serving engines share one index across
            # threads) must never see indptr published before cells.
            self._nbr_cells = np.array(
                [c for h in rows for c in h], dtype=np.int64
            )
            self._nbr_indptr = np.concatenate(([0], np.cumsum(counts)))
            return
        keys, deltas = encoded
        fan = deltas.size
        chunk = max(1, _ADJACENCY_CHUNK_ELEMS // fan)
        counts = np.empty(n_cells, dtype=np.int64)
        hit_chunks: list[np.ndarray] = []
        for b0 in range(0, n_cells, chunk):
            b1 = min(b0 + chunk, n_cells)
            probes = keys[b0:b1, None] + deltas[None, :]
            idx = np.searchsorted(keys, probes.ravel())
            np.clip(idx, 0, n_cells - 1, out=idx)
            valid = (keys[idx] == probes.ravel()).reshape(b1 - b0, fan)
            counts[b0:b1] = valid.sum(axis=1)
            # Row-major selection keeps the probe (offset-product) order
            # within each cell, matching the reference iteration order.
            hit_chunks.append(idx.reshape(b1 - b0, fan)[valid])
        # Same publication order as the fallback branch: cells before
        # indptr, so the lazy-build guard stays race-free for readers.
        self._nbr_cells = (
            np.concatenate(hit_chunks) if hit_chunks else np.empty(0, np.int64)
        )
        self._nbr_indptr = np.concatenate(([0], np.cumsum(counts)))

    def _neighbor_cells(self, cell_index: int) -> np.ndarray:
        """Occupied-cell indices adjacent to one cell (itself included)."""
        self._build_adjacency()
        s, e = self._nbr_indptr[cell_index], self._nbr_indptr[cell_index + 1]
        return self._nbr_cells[s:e]

    # ------------------------------------------------------------------

    def points_in_cell(self, key: tuple[int, ...]) -> np.ndarray:
        """Original indices of the points in one cell."""
        ci = self._cell_id.get(tuple(key))
        if ci is None:
            return np.empty(0, dtype=np.int64)
        return self._sort[self._starts[ci] : self._ends[ci]]

    def _candidates_of_index(self, cell_index: int, *, cache: bool) -> np.ndarray:
        cached = self._cand_cache.get(cell_index)
        if cached is not None:
            return cached
        nbrs = self._neighbor_cells(cell_index)
        out = np.concatenate(
            [self._sort[self._starts[b] : self._ends[b]] for b in nbrs]
        ) if nbrs.size else np.empty(0, dtype=np.int64)
        if cache and self._cand_cache_elems + out.size <= _CAND_CACHE_MAX_ELEMS:
            # Cached arrays are handed out on every later query: freeze
            # them so an in-place edit by a caller fails loudly instead of
            # silently corrupting the index.
            out.flags.writeable = False
            self._cand_cache[cell_index] = out
            self._cand_cache_elems += out.size
        return out

    def candidates_of_cell(
        self, key: tuple[int, ...], *, reach: int = 1
    ) -> np.ndarray:
        """Candidate indices for a cell: points in the adjacent cells.

        With the default ``reach=1`` these are the 3^r adjacent cells --
        sound for query radii up to the cell width ``eps``.  ``reach=m``
        widens the probe to every occupied cell within Chebyshev distance
        ``m`` in the indexed dimensions, which is sound for radii up to
        ``m * eps`` (a coordinate difference of at most ``m * eps`` moves
        the floor-divided cell coordinate by at most ``m``): the expanding
        search the query-serving layer's kNN uses.

        The key does not have to be occupied -- a query point can land in
        an empty cell whose neighbors hold points.  Occupied-cell
        ``reach=1`` queries are cached and reuse the batched adjacency;
        the returned array may be that shared cache entry and is then
        read-only (copy it before mutating).  Empty-cell and ``reach>1``
        queries return fresh arrays (candidate *order* may differ between
        the two paths -- probe order vs lexicographic cell order -- which
        no consumer depends on for ``reach>1``).
        """
        key = tuple(key)
        if reach < 1:
            raise ValueError("reach must be >= 1")
        if reach > 1:
            if self.r == 0 or not len(self._cell_keys):
                # Zero indexed dims: one cell holds everything.
                return self._sort.copy() if len(self._cell_keys) else np.empty(0, np.int64)
            # Chebyshev filter over the occupied cells (lexicographic
            # order): O(C * r) per queried cell, no (2m+1)^r probe blowup.
            key_arr = np.asarray(key, dtype=np.int64)
            near = np.abs(self._unique - key_arr).max(axis=1) <= reach
            hits = np.nonzero(near)[0]
            if hits.size == 0:
                return np.empty(0, dtype=np.int64)
            return np.concatenate(
                [self._sort[self._starts[b] : self._ends[b]] for b in hits]
            )
        ci = self._cell_id.get(key)
        if ci is not None:
            return self._candidates_of_index(ci, cache=True)
        chunks = []
        for offset in product((-1, 0, 1), repeat=self.r):
            nb = self._cell_id.get(tuple(k + o for k, o in zip(key, offset)))
            if nb is not None:
                chunks.append(self._sort[self._starts[nb] : self._ends[nb]])
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def iter_cells(self, *, order: str = "lex"):
        """Yield ``(members, candidates)`` index arrays per nonempty cell.

        Bulk scans reuse any cached arrays but do not populate the cache
        (one transient candidate array at a time keeps memory bounded,
        matching the kernels' streaming consumption).

        Parameters
        ----------
        order:
            ``"lex"`` (default): lexicographic cell order, the reference
            iteration order every bit-identity test pins.  ``"size"``:
            cells sorted by (member count, candidate-cell fan-in) so
            consecutive cells have similar padded shapes -- what the
            batched executor (:func:`repro.core.engine.batched_candidate_self_join`)
            wants, since one batch's padding waste is set by its largest
            group.  The pair *set* is order-independent.
        """
        self._build_adjacency()
        cells = range(len(self._cell_keys))
        if order == "size":
            member_counts = self._ends - self._starts
            fan_in = np.diff(self._nbr_indptr)
            cells = np.lexsort((fan_in, member_counts))
        elif order != "lex":
            raise ValueError("order must be 'lex' or 'size'")
        for ci in cells:
            members = self._sort[self._starts[ci] : self._ends[ci]]
            yield members, self._candidates_of_index(ci, cache=False)

    def iter_join_groups(
        self, queries, *, row_block: int = _SOURCE_ROW_BLOCK, reach: int = 1
    ):
        """Yield ``(query_members, candidates)`` for an external query set.

        The two-source (A x B) counterpart of :meth:`iter_cells`: this
        index was built over the *right* set B; ``queries`` is the left
        set A (an ndarray, a ``DatasetSource``, or a path).  Each query
        point is dropped into B's grid -- projected with **B's** variance
        order and cell width -- queries sharing a cell are grouped, and
        the group's candidates are the B points of the 3^r adjacent cells
        (:meth:`candidates_of_cell`, which handles unoccupied query cells).
        Yields ``(A-index array, B-index array)`` groups for
        :func:`repro.core.engine.candidate_join`; query cell coordinates
        are computed in streamed row blocks, so A never has to be resident
        (the ``O(n_A)`` cell/permutation state is).  ``reach`` widens the
        candidate probe for radii beyond one cell width (see
        :meth:`candidates_of_cell`).
        """
        from repro.data.source import as_source

        src = as_source(queries)
        if int(src.dim) != int(self.n_dims_data):
            raise ValueError(
                f"query dimensionality {src.dim} != indexed {self.n_dims_data}"
            )
        nq = int(src.n)
        if nq == 0:
            return
        proj_dims = self.order[: self.r]
        qcells = np.empty((nq, self.r), dtype=np.int64)
        for r0 in range(0, nq, row_block):
            r1 = min(r0 + row_block, nq)
            block = src.load_block(r0, r1)
            qcells[r0:r1] = np.floor(block[:, proj_dims] / self.eps).astype(
                np.int64
            )
        qsort, starts, ends, sorted_cells = _group_by_cells(qcells)
        for s, e in zip(starts, ends):
            members = qsort[s:e]
            yield members, self.candidates_of_cell(
                tuple(sorted_cells[s]), reach=reach
            )

    def stats(self) -> GridStats:
        """Candidate-count statistics (drives the baselines' cost models).

        Computed from the shared adjacency in a few reductions -- candidate
        arrays are never materialized (nor recomputed) for this.
        """
        self._build_adjacency()
        member_counts = self._ends - self._starts
        if member_counts.size:
            cand_sizes = np.add.reduceat(
                member_counts[self._nbr_cells], self._nbr_indptr[:-1]
            )
            total = int((member_counts * cand_sizes).sum())
            mean_m, std_m = float(member_counts.mean()), float(member_counts.std())
            mean_c, std_c = float(cand_sizes.mean()), float(cand_sizes.std())
        else:
            total = 0
            mean_m = std_m = mean_c = std_c = 0.0
        return GridStats(
            n_points=self.n_points,
            n_indexed_dims=self.r,
            n_nonempty_cells=len(self._cell_keys),
            total_candidates=total,
            mean_members=mean_m,
            std_members=std_m,
            mean_group_candidates=mean_c,
            std_group_candidates=std_c,
        )
