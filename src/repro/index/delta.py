"""LSM-style mutable indexes: delta segments + tombstones over a base.

The persisted indexes of :mod:`repro.index.persist` are read-only: any
new point means a full out-of-core rebuild.  :class:`MutableIndex` turns
one persisted index directory into a **live store** with the classic
log-structured layering:

* **Appends** land in a small in-memory buffer (a resident
  :class:`~repro.index.grid.GridIndex` is built over it lazily when a
  query arrives).  Past ``seal_threshold`` rows the buffer is *sealed*:
  saved as an immutable on-disk **delta segment** -- an ordinary
  :func:`~repro.index.persist.save_index` directory with its rows
  embedded, so sealing inherits the v2 atomic-staging crash safety
  (stage + fsync + one ``rename``) and its fault points unchanged.
* **Deletes** write **tombstones**: global row ids masked out of every
  query answer.  Rows are never rewritten in place; a tombstoned row
  physically persists in its base/segment until a compaction folds it
  out.  Tombstones are durable -- every ``delete`` commits the manifest.
* **Compaction** streams the live rows (base + sealed segments, minus
  tombstones, in ascending global-id order) through the existing
  ``GridIndex.from_source`` / ``MultiSpaceTree.from_source`` out-of-core
  builds into a **new versioned base snapshot** (``base-<token>/``),
  then commits.  Appends/deletes that race a compaction are preserved:
  segments sealed after the snapshot stay layered on the new base, and
  only the tombstones the snapshot already folded out are pruned.

**Commit point.**  The store is a directory holding ``state.json`` (the
manifest: base directory name, base-row global ids, tombstone payload,
segment list, ``next_id``) next to the base and segment index
directories.  Every state change is committed by staging the side
payloads (``ids-<token>.npy``, ``tomb-<token>.npy``, fsynced and
SHA-256-checksummed like index payloads), writing the new manifest to a
temp sibling, and swinging it in with one atomic ``os.replace`` -- the
exact v2 header-replacement discipline, sharing the ``persist.write`` /
``persist.payload`` fault points.  A ``SIGKILL`` at any instant
therefore leaves the previous *or* the new manifest in place, each
referencing only fully-committed payloads: the store always reloads as
old-or-new, never a half-compacted generation (tests/test_faults.py
kills saves mid-seal and mid-compaction to pin this).  Unsealed buffer
rows are the deliberate exception -- like any memtable without a WAL
they are volatile until sealed; a crash simply loses them, and reopen
prunes any tombstones left dangling at the vanished ids.

**Bit-identity.**  Queries merge the layers and must be bit-identical to
an index *rebuilt from scratch* over the equivalent live dataset
(tests/test_mutable.py drives randomized op sequences against exactly
that rebuild).  The argument:

* Global ids are minted monotonically and each layer covers an
  ascending id block (base ids < every later segment's < the buffer's;
  a compacted base inherits the sorted live ids), so "position in the
  rebuilt dataset" and "global id" order rows identically.
* Range: each layer is itself a full index at the same eps, so the
  per-layer ``range_query`` is bit-identical to brute force over that
  layer's rows (the engine's FP64 contract); squared distances are
  row-local (norm expansion over per-element-stable GEMM products), so
  masking tombstones and concatenating layers yields exactly the
  rebuilt pair set, and the canonical ``(query, global id)`` lexsort
  makes the ordering equal too.
* kNN: each layer answers an *exact* top-``k + dead(layer)`` (padding by
  the layer's tombstone count guarantees ``k`` live survivors), the
  survivors' distances are recomputed in the working precision (bitwise
  what the rebuilt engine computes, by row-locality), and a stable merge
  over the ascending-id layout reproduces the rebuilt engine's strict
  ``(distance, index)`` tie-break.

**Concurrency.**  One writer process; within it, mutations serialize on
an internal lock, queries capture an immutable generation snapshot (the
layer list + tombstone array) and run lock-free on it, and a compaction
swaps the base atomically under the lock -- in-flight queries finish on
the old generation (their mmaps stay valid; POSIX keeps unlinked
payload inodes readable) while new queries see the new one.  The
serving layer (:class:`repro.service.server.IndexCache`) keys cached
mutable engines on the manifest digest for the same old-or-new swap
across processes.
"""

from __future__ import annotations

import hashlib
import json
import os
import secrets
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import faults
from repro.core.results import JoinResult
from repro.data.source import DatasetSource, as_source
from repro.index.grid import GridIndex
from repro.index.mstree import MultiSpaceTree
from repro.index.persist import (
    CorruptIndexError,
    _fsync_dir,
    _fsync_file,
    _sha256_file,
    load_index,
    save_index,
)

#: Manifest identification; readers reject unknown magic/version.
MUTABLE_MAGIC = "repro-mutable"
MUTABLE_VERSION = 1

#: Manifest file name inside a mutable store directory (the commit point).
MANIFEST_NAME = "state.json"

#: Default buffer size (rows) past which an append seals a segment.
DEFAULT_SEAL_THRESHOLD = 4096


class CompactionInProgress(RuntimeError):
    """A non-waiting ``compact`` found another compaction running."""


def is_mutable_index(path) -> bool:
    """True when ``path`` holds a mutable store (a ``state.json`` manifest)."""
    return (Path(path) / MANIFEST_NAME).is_file()


def read_manifest(path) -> dict:
    """Read and validate a mutable store's manifest.

    Mirrors :func:`repro.index.persist.read_header`: anything that is
    not a compatible manifest raises :class:`ValueError`; unreadable
    garbage raises :class:`~repro.index.persist.CorruptIndexError`.
    """
    path = Path(path)
    mpath = path / MANIFEST_NAME
    if not mpath.is_file():
        raise ValueError(f"{path} is not a mutable index (no {MANIFEST_NAME})")
    try:
        manifest = json.loads(mpath.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CorruptIndexError(
            f"{mpath} is not valid JSON (truncated or garbled manifest)"
        ) from exc
    if not isinstance(manifest, dict):
        raise CorruptIndexError(f"{mpath} does not contain an object")
    if manifest.get("magic") != MUTABLE_MAGIC:
        raise ValueError(
            f"{path}: bad magic {manifest.get('magic')!r} "
            f"(expected {MUTABLE_MAGIC!r})"
        )
    if manifest.get("version") != MUTABLE_VERSION:
        raise ValueError(
            f"{path}: unsupported mutable-store version "
            f"{manifest.get('version')!r} (this reader understands "
            f"{MUTABLE_VERSION})"
        )
    if manifest.get("kind") not in ("grid", "mstree"):
        raise ValueError(
            f"{path}: unknown index kind {manifest.get('kind')!r}"
        )
    for field in ("eps", "dim", "next_id", "base", "segments"):
        if field not in manifest:
            raise CorruptIndexError(f"{path}: manifest lost {field!r}")
    return manifest


def _digest_of(mpath: Path) -> str:
    return hashlib.blake2b(mpath.read_bytes(), digest_size=16).hexdigest()


def _verify_side_payload(path: Path, entry: dict, *, level: str) -> None:
    """Size/hash-check one manifest side payload (ids/tombstones)."""
    if level == "off":
        return
    fpath = path / entry["file"]
    if not fpath.is_file():
        raise CorruptIndexError(f"{path}: missing payload {entry['file']}")
    if fpath.stat().st_size != entry["nbytes"]:
        raise CorruptIndexError(
            f"{path}: payload {entry['file']} is {fpath.stat().st_size} "
            f"bytes, manifest recorded {entry['nbytes']}"
        )
    if level == "full" and _sha256_file(fpath) != entry["sha256"]:
        raise CorruptIndexError(
            f"{path}: payload {entry['file']} failed its SHA-256 check"
        )


def _stage_side_payload(path: Path, fname: str, arr: np.ndarray) -> dict:
    """Write one manifest side payload, fsynced + checksummed.

    Same contract as the index payload staging: the ``persist.payload``
    corrupt fault fires after the checksum is recorded, so verification
    is exactly what must catch it.
    """
    fpath = path / fname
    np.save(fpath, np.ascontiguousarray(arr))
    _fsync_file(fpath)
    entry = {
        "file": fname,
        "sha256": _sha256_file(fpath),
        "nbytes": fpath.stat().st_size,
    }
    if faults.ARMED:
        if faults.check("persist.payload") == "corrupt":
            faults.corrupt_file(fpath)
    return entry


def _as_rows(rows, dim: int | None = None) -> np.ndarray:
    q = np.ascontiguousarray(np.asarray(rows, dtype=np.float64))
    if q.ndim == 1:
        q = q[None, :]
    if q.ndim != 2:
        raise ValueError("rows must be (n, d) or a single (d,) point")
    if dim is not None and q.shape[1] != dim:
        raise ValueError(f"row dimensionality {q.shape[1]} != indexed {dim}")
    return q


class _LiveRowsSource(DatasetSource):
    """Live rows of a generation, in ascending global-id order.

    ``parts`` is a list of ``(source, local_indices)``: each layer's
    dataset plus the sorted local rows that survive the tombstone mask.
    This is what a compaction streams through ``from_source`` and
    ``save_index`` -- the rows a from-scratch rebuild over the live
    dataset would see, in the same order, so the built index is
    bit-identical to that rebuild.
    """

    def __init__(self, parts) -> None:
        self._parts = [(src, np.asarray(ix, dtype=np.int64))
                       for src, ix in parts if len(ix)]
        if not self._parts:
            raise ValueError("no live rows")
        self.dim = int(self._parts[0][0].dim)
        counts = [ix.size for _, ix in self._parts]
        self._bounds = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        self.n = int(self._bounds[-1])

    def load_block(self, r0: int, r1: int) -> np.ndarray:
        self._check_block(r0, r1)
        out = np.empty((r1 - r0, self.dim), dtype=np.float64)
        for p, (src, ix) in enumerate(self._parts):
            lo = max(r0, int(self._bounds[p]))
            hi = min(r1, int(self._bounds[p + 1]))
            if lo >= hi:
                continue
            local = ix[lo - int(self._bounds[p]) : hi - int(self._bounds[p])]
            out[lo - r0 : hi - r0] = src.take(local)
        return out

    def take(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        out = np.empty((indices.size, self.dim), dtype=np.float64)
        part = np.searchsorted(self._bounds, indices, side="right") - 1
        for p, (src, ix) in enumerate(self._parts):
            sel = np.nonzero(part == p)[0]
            if sel.size:
                out[sel] = src.take(ix[indices[sel] - int(self._bounds[p])])
        return out


@dataclass
class _Layer:
    """One immutable query layer: an engine plus its global-id mapping."""

    engine: object  # QueryEngine (imported lazily -- see _engine_cls)
    gids: np.ndarray  # (n,) int64, ascending
    dir_name: str | None  # store-relative directory; None for the buffer


@dataclass
class _Generation:
    """Immutable snapshot a query runs against (captured under the lock)."""

    layers: tuple
    tomb: np.ndarray  # sorted int64 global ids
    n_rows: int
    n_live: int
    next_id: int


def _engine_cls():
    # Imported lazily: repro.service imports this module (via server.py),
    # so a module-level import here would be circular.
    from repro.service.query import QueryEngine

    return QueryEngine


def _knn_result_cls():
    from repro.service.query import KnnResult

    return KnnResult


class MutableIndex:
    """A persisted index that accepts appends and deletes (LSM layering).

    Open an existing store with ``MutableIndex(path)``; create one from a
    dataset with :meth:`MutableIndex.create`.  The instance duck-types
    :class:`~repro.service.query.QueryEngine` (``range_query`` /
    ``knn_query`` / ``eps`` / ``dim`` / ``n_points``), so the whole
    serving stack -- :class:`~repro.service.server.QueryService`
    micro-batching, the HTTP front end, the load generator -- works on it
    unchanged, with ``n_points`` reporting the **live** row count.

    Query answers index rows by **global id**: the dense ``0..n-1``
    numbering of the creating dataset, extended monotonically by every
    append (``append`` returns the minted ids).  Ids are stable for the
    life of a row -- across seals and compactions -- and are never
    reused.

    Single-writer: one process mutates a store at a time (same contract
    as :func:`~repro.index.persist.save_index`).  Within the process the
    class is thread-safe; see the module docstring for the snapshot
    discipline.
    """

    def __init__(
        self,
        path,
        *,
        mmap: bool = True,
        precision: str = "fp64",
        workers=0,
        verify: str = "header",
        seal_threshold: int | None = None,
    ) -> None:
        path = Path(path)
        manifest = read_manifest(path)
        self.path = path
        self.kind = manifest["kind"]
        self.eps = float(manifest["eps"])
        self.dim = int(manifest["dim"])
        self.precision = precision
        self.dtype = np.dtype(
            np.float32 if precision == "fp32" else np.float64
        )
        self._mmap = mmap
        self._workers = workers
        self._verify = verify
        self._params = dict(manifest.get("params", {}))
        self.seal_threshold = int(
            seal_threshold
            if seal_threshold is not None
            else manifest.get("seal_threshold", DEFAULT_SEAL_THRESHOLD)
        )
        if self.seal_threshold < 1:
            raise ValueError("seal_threshold must be >= 1")

        self._lock = threading.RLock()
        self._compact_lock = threading.Lock()
        self._protected: set[str] = set()  # dirs an in-flight compaction owns
        self._gen: _Generation | None = None
        self._buffer_rows: list[np.ndarray] = []
        self._buffer_n = 0
        self._buffer_start = 0
        self._buffer_engine = None

        engine_cls = _engine_cls()
        self._base_dir = manifest["base"]
        loaded = load_index(path / self._base_dir, mmap=mmap, verify=verify)
        if loaded.kind != self.kind or float(loaded.eps) != self.eps:
            raise CorruptIndexError(
                f"{path}: base {self._base_dir} disagrees with the manifest "
                f"(kind/eps)"
            )
        self._base_engine = engine_cls(
            loaded, precision=precision, workers=workers
        )
        self._base_n = int(self._base_engine.n_points)
        entry = manifest.get("base_ids")
        if entry is None:
            self._base_gids = None  # identity: arange(base_n)
        else:
            _verify_side_payload(path, entry, level=verify)
            self._base_gids = np.load(path / entry["file"]).astype(
                np.int64, copy=False
            )
            if self._base_gids.size != self._base_n:
                raise CorruptIndexError(
                    f"{path}: base_ids covers {self._base_gids.size} rows, "
                    f"base holds {self._base_n}"
                )
        self._segments: list[dict] = []
        for seg in manifest["segments"]:
            seg_loaded = load_index(
                path / seg["dir"], mmap=mmap, verify=verify
            )
            self._segments.append(
                {
                    "dir": seg["dir"],
                    "start_id": int(seg["start_id"]),
                    "n": int(seg["n"]),
                    "engine": engine_cls(
                        seg_loaded, precision=precision, workers=workers
                    ),
                }
            )
        self.next_id = int(manifest["next_id"])
        self._buffer_start = self.next_id
        entry = manifest.get("tombstones")
        if entry is None:
            self._tombstones: set[int] = set()
        else:
            _verify_side_payload(path, entry, level=verify)
            tomb = np.load(path / entry["file"]).astype(np.int64, copy=False)
            # Tombstones at ids that no longer exist (buffer rows lost to
            # a crash before their seal) are dangling; prune them.
            exists = self._exists_mask_locked(tomb)
            self._tombstones = set(int(t) for t in tomb[exists])
        self.committed_state_digest = _digest_of(path / MANIFEST_NAME)
        self._manifest = manifest
        with self._lock:
            self._gc_locked()

    # -- construction ---------------------------------------------------

    @classmethod
    def create(
        cls,
        path,
        data,
        eps: float,
        *,
        kind: str = "grid",
        n_dims: int = 6,
        n_levels: int = 6,
        n_candidates: int = 38,
        seed: int = 0,
        seal_threshold: int = DEFAULT_SEAL_THRESHOLD,
        mmap: bool = True,
        precision: str = "fp64",
        workers=0,
        verify: str = "header",
    ) -> "MutableIndex":
        """Create a mutable store over ``data`` at ``path`` and open it.

        The initial base index is built like :func:`repro.core.api.build_index`
        (in-memory for resident arrays, out-of-core otherwise) with the
        dataset embedded; row ``i`` of ``data`` gets global id ``i``.
        The whole store is staged in a ``<name>.saving-<token>`` sibling
        and published by one atomic ``rename`` -- a crash mid-create
        leaves no partial store behind.
        """
        if kind not in ("grid", "mstree"):
            raise ValueError("kind must be 'grid' or 'mstree'")
        path = Path(path)
        if path.exists():
            raise ValueError(f"{path} already exists")
        source = as_source(data)
        if source.n < 1:
            raise ValueError("a mutable index needs at least one initial row")
        resident = isinstance(data, np.ndarray)
        if kind == "grid":
            index = (
                GridIndex(data, eps, n_dims=n_dims)
                if resident
                else GridIndex.from_source(source, eps, n_dims=n_dims)
            )
        else:
            index = (
                MultiSpaceTree(
                    data, eps, n_levels=n_levels,
                    n_candidates=n_candidates, seed=seed,
                )
                if resident
                else MultiSpaceTree.from_source(
                    source, eps, n_levels=n_levels,
                    n_candidates=n_candidates, seed=seed,
                )
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        token = secrets.token_hex(4)
        tmp = path.parent / f"{path.name}.saving-{token}"
        tmp.mkdir()
        try:
            base_dir = f"base-{secrets.token_hex(4)}"
            save_index(index, tmp / base_dir, data=source)
            (tmp / "segments").mkdir()
            manifest = {
                "magic": MUTABLE_MAGIC,
                "version": MUTABLE_VERSION,
                "kind": kind,
                "eps": float(eps),
                "dim": int(source.dim),
                "next_id": int(source.n),
                "base": base_dir,
                "base_ids": None,
                "tombstones": None,
                "segments": [],
                "params": {
                    "n_dims": int(n_dims),
                    "n_levels": int(n_levels),
                    "n_candidates": int(n_candidates),
                    "seed": int(seed),
                },
                "seal_threshold": int(seal_threshold),
            }
            mpath = tmp / MANIFEST_NAME
            mpath.write_text(json.dumps(manifest, indent=2) + "\n")
            _fsync_file(mpath)
            _fsync_dir(tmp)
            os.rename(tmp, path)
            _fsync_dir(path.parent)
        except BaseException:
            import shutil

            shutil.rmtree(tmp, ignore_errors=True)
            raise
        return cls(
            path, mmap=mmap, precision=precision, workers=workers,
            verify=verify, seal_threshold=seal_threshold,
        )

    # -- bookkeeping ----------------------------------------------------

    @property
    def base_engine(self):
        """The base layer's :class:`QueryEngine` (query sampling etc.)."""
        return self._base_engine

    @property
    def source(self):
        """The base layer's dataset source (samplers draw from it)."""
        return self._base_engine.source

    @property
    def index(self):
        """The base layer's raw index (grid-cell introspection)."""
        return self._base_engine.index

    @property
    def n_points(self) -> int:
        """Live row count (rows appended or initial, minus tombstones)."""
        with self._lock:
            return self._n_rows_locked() - len(self._tombstones)

    @property
    def delta_depth(self) -> int:
        """Delta layers above the base: sealed segments + live buffer."""
        with self._lock:
            return len(self._segments) + (1 if self._buffer_n else 0)

    @property
    def n_tombstones(self) -> int:
        with self._lock:
            return len(self._tombstones)

    @property
    def n_segments(self) -> int:
        with self._lock:
            return len(self._segments)

    def _n_rows_locked(self) -> int:
        return (
            self._base_n
            + sum(s["n"] for s in self._segments)
            + self._buffer_n
        )

    def live_ids(self) -> np.ndarray:
        """Sorted global ids of every live row."""
        gen = self._generation()
        if not gen.layers:
            return np.empty(0, dtype=np.int64)
        gids = np.concatenate([layer.gids for layer in gen.layers])
        if gen.tomb.size:
            gids = gids[~np.isin(gids, gen.tomb)]
        return gids

    def _base_gids_locked(self) -> np.ndarray:
        if self._base_gids is not None:
            return self._base_gids
        return np.arange(self._base_n, dtype=np.int64)

    def _exists_mask_locked(self, ids: np.ndarray) -> np.ndarray:
        """Which of ``ids`` name a physically present row (dead or live)."""
        ids = np.asarray(ids, dtype=np.int64)
        mask = np.zeros(ids.shape, dtype=bool)
        if self._base_n:
            bg = self._base_gids
            if bg is None:
                mask |= (ids >= 0) & (ids < self._base_n)
            else:
                pos = np.searchsorted(bg, ids)
                inb = pos < bg.size
                mask |= inb & (bg[np.minimum(pos, bg.size - 1)] == ids)
        for seg in self._segments:
            mask |= (ids >= seg["start_id"]) & (ids < seg["start_id"] + seg["n"])
        if self._buffer_n:
            mask |= (ids >= self._buffer_start) & (
                ids < self._buffer_start + self._buffer_n
            )
        return mask

    # -- manifest commit ------------------------------------------------

    def _commit_manifest_locked(self) -> None:
        """Atomically publish the current in-memory state to ``state.json``.

        Side payloads first (fsynced, checksummed, generation-tagged so
        the live manifest cannot reference them), then the manifest to a
        temp sibling, then one ``os.replace`` -- the commit point, guarded
        by the ``persist.write`` fault like every index commit.
        """
        token = secrets.token_hex(4)
        base_ids_entry = None
        if self._base_gids is not None:
            base_ids_entry = _stage_side_payload(
                self.path, f"ids-{token}.npy", self._base_gids
            )
        tomb_entry = None
        if self._tombstones:
            tomb = np.fromiter(
                sorted(self._tombstones), dtype=np.int64,
                count=len(self._tombstones),
            )
            tomb_entry = _stage_side_payload(
                self.path, f"tomb-{token}.npy", tomb
            )
        manifest = {
            "magic": MUTABLE_MAGIC,
            "version": MUTABLE_VERSION,
            "kind": self.kind,
            "eps": self.eps,
            "dim": self.dim,
            "next_id": int(self.next_id),
            "base": self._base_dir,
            "base_ids": base_ids_entry,
            "tombstones": tomb_entry,
            "segments": [
                {"dir": s["dir"], "start_id": s["start_id"], "n": s["n"]}
                for s in self._segments
            ],
            "params": self._params,
            "seal_threshold": int(self.seal_threshold),
        }
        body = json.dumps(manifest, indent=2) + "\n"
        tmp = self.path / f"{MANIFEST_NAME}.saving-{token}"
        tmp.write_text(body)
        _fsync_file(tmp)
        if faults.ARMED:
            faults.check("persist.write")
        os.replace(tmp, self.path / MANIFEST_NAME)
        _fsync_dir(self.path)
        self._manifest = manifest
        self.committed_state_digest = hashlib.blake2b(
            body.encode(), digest_size=16
        ).hexdigest()
        self._gc_locked()

    def _gc_locked(self) -> None:
        """Drop files/dirs the committed manifest does not reference.

        Superseded bases, folded segments, stale side payloads, and
        interrupted staging leftovers all become garbage the moment a
        new manifest commits (live mmaps keep reading the unlinked
        inodes).  Directories an in-flight compaction is staging are
        protected by name.
        """
        import shutil

        manifest = self._manifest
        keep_files = {MANIFEST_NAME}
        for entry in (manifest.get("base_ids"), manifest.get("tombstones")):
            if entry:
                keep_files.add(entry["file"])
        keep_dirs = {manifest["base"], "segments"}
        keep_segs = {Path(s["dir"]).name for s in manifest["segments"]}
        # In-memory state may be ahead of the manifest (a sealed segment
        # whose commit failed retries on the next commit) -- keep it too.
        keep_dirs.add(self._base_dir)
        keep_segs.update(Path(s["dir"]).name for s in self._segments)
        protected = set(self._protected)

        def _shielded(name: str) -> bool:
            return any(name.startswith(p) for p in protected)

        for child in self.path.iterdir():
            name = child.name
            if _shielded(name):
                continue
            if child.is_dir():
                if name == "segments":
                    for seg in child.iterdir():
                        if seg.name not in keep_segs and not _shielded(
                            seg.name
                        ):
                            shutil.rmtree(seg, ignore_errors=True)
                elif name not in keep_dirs:
                    shutil.rmtree(child, ignore_errors=True)
            elif name not in keep_files:
                child.unlink(missing_ok=True)

    # -- mutations ------------------------------------------------------

    def append(self, rows) -> np.ndarray:
        """Add rows; returns their newly minted global ids (ascending).

        Rows land in the in-memory buffer -- **volatile until sealed**
        (see the module docstring).  Crossing ``seal_threshold`` buffered
        rows triggers an automatic :meth:`seal`.
        """
        rows = _as_rows(rows, self.dim)
        if rows.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        with self._lock:
            if self._buffer_n == 0:
                self._buffer_start = self.next_id
            ids = np.arange(
                self.next_id, self.next_id + rows.shape[0], dtype=np.int64
            )
            self.next_id += rows.shape[0]
            self._buffer_rows.append(rows.copy())
            self._buffer_n += rows.shape[0]
            self._buffer_engine = None
            self._gen = None
            if self._buffer_n >= self.seal_threshold:
                self._seal_locked()
            return ids

    def delete(self, ids, *, missing: str = "error") -> int:
        """Tombstone global ids; returns how many rows became dead.

        ``missing="error"`` (default) raises :class:`ValueError` when an
        id is unknown or already dead; ``missing="ignore"`` skips those.
        The write is durable: every delete commits the manifest (the
        tombstone payload is small -- one int64 per dead row).
        """
        if missing not in ("error", "ignore"):
            raise ValueError("missing must be 'error' or 'ignore'")
        ids = np.unique(np.asarray(ids, dtype=np.int64).ravel())
        if ids.size == 0:
            return 0
        with self._lock:
            exists = self._exists_mask_locked(ids)
            dead = np.fromiter(
                (int(i) in self._tombstones for i in ids),
                dtype=bool, count=ids.size,
            )
            target = exists & ~dead
            if missing == "error" and not target.all():
                bad = ids[~target][:8].tolist()
                raise ValueError(
                    f"cannot delete ids {bad}: unknown or already deleted"
                )
            if not target.any():
                return 0
            self._tombstones.update(int(i) for i in ids[target])
            self._gen = None
            self._commit_manifest_locked()
            return int(target.sum())

    def seal(self) -> "str | None":
        """Spill the buffer to an immutable on-disk segment (if nonempty).

        Returns the new segment's store-relative directory, or None when
        the buffer was empty.  The segment is an ordinary persisted grid
        index with its rows embedded, written with the atomic staging
        discipline; the manifest commit that follows makes it (and every
        tombstone/append fact accumulated since the last commit) durable.
        """
        with self._lock:
            return self._seal_locked()

    def _seal_locked(self) -> "str | None":
        if self._buffer_n == 0:
            return None
        data = (
            self._buffer_rows[0]
            if len(self._buffer_rows) == 1
            else np.concatenate(self._buffer_rows)
        )
        index = GridIndex(
            data, self.eps, n_dims=int(self._params.get("n_dims", 6))
        )
        rel = f"segments/seg-{secrets.token_hex(4)}"
        (self.path / "segments").mkdir(exist_ok=True)
        save_index(index, self.path / rel, data=data)
        engine = _engine_cls()(
            index, data, precision=self.precision, workers=self._workers
        )
        self._segments.append(
            {
                "dir": rel,
                "start_id": int(self._buffer_start),
                "n": int(self._buffer_n),
                "engine": engine,
            }
        )
        self._buffer_rows = []
        self._buffer_n = 0
        self._buffer_engine = None
        self._buffer_start = self.next_id
        self._gen = None
        self._commit_manifest_locked()
        return rel

    def compact(self, *, wait: bool = True) -> dict:
        """Fold base + sealed segments into a fresh base snapshot.

        Seals the buffer first, snapshots the layer list and tombstone
        set, streams the surviving rows through the out-of-core builder
        into a new versioned ``base-<token>/`` directory, and commits a
        manifest that references it -- pruning exactly the tombstones the
        snapshot folded out.  Appends and deletes that land *during* the
        build are preserved: segments sealed after the snapshot stay
        layered on the new base, and their tombstones stay masked.  The
        commit is the single atomic manifest replace; a crash at any
        point leaves the old generation intact.

        One compaction runs at a time; ``wait=False`` raises
        :class:`CompactionInProgress` instead of queueing behind one.
        Returns ``{"duration_s", "n_live", "segments_folded"}``.
        """
        if not self._compact_lock.acquire(blocking=wait):
            raise CompactionInProgress(
                f"{self.path}: a compaction is already running"
            )
        t0 = time.perf_counter()
        try:
            with self._lock:
                self._seal_locked()
                if self._n_rows_locked() - len(self._tombstones) == 0:
                    raise ValueError(
                        "compaction would produce an empty index; a mutable "
                        "store must keep at least one live row"
                    )
                snap_segments = list(self._segments)
                snap_tomb = np.fromiter(
                    sorted(self._tombstones), dtype=np.int64,
                    count=len(self._tombstones),
                )
                base_engine = self._base_engine
                base_gids = self._base_gids_locked()
                new_base_dir = f"base-{secrets.token_hex(4)}"
                self._protected.add(new_base_dir)
            try:
                parts = []
                live_gid_parts = []
                layers = [(base_engine, base_gids)] + [
                    (s["engine"], np.arange(
                        s["start_id"], s["start_id"] + s["n"], dtype=np.int64
                    ))
                    for s in snap_segments
                ]
                for engine, gids in layers:
                    alive = (
                        ~np.isin(gids, snap_tomb)
                        if snap_tomb.size
                        else np.ones(gids.size, dtype=bool)
                    )
                    local = np.nonzero(alive)[0]
                    if local.size:
                        parts.append((engine.source, local))
                        live_gid_parts.append(gids[local])
                live_src = _LiveRowsSource(parts)
                live_gids = np.concatenate(live_gid_parts)
                if self.kind == "grid":
                    new_index = GridIndex.from_source(
                        live_src, self.eps,
                        n_dims=int(self._params.get("n_dims", 6)),
                    )
                else:
                    new_index = MultiSpaceTree.from_source(
                        live_src, self.eps,
                        n_levels=int(self._params.get("n_levels", 6)),
                        n_candidates=int(self._params.get("n_candidates", 38)),
                        seed=int(self._params.get("seed", 0)),
                    )
                save_index(
                    new_index, self.path / new_base_dir, data=live_src
                )
                loaded = load_index(
                    self.path / new_base_dir,
                    mmap=self._mmap, verify=self._verify,
                )
                new_engine = _engine_cls()(
                    loaded, precision=self.precision, workers=self._workers
                )
                with self._lock:
                    folded = {id(s) for s in snap_segments}
                    self._segments = [
                        s for s in self._segments if id(s) not in folded
                    ]
                    self._base_engine = new_engine
                    self._base_dir = new_base_dir
                    self._base_n = int(live_gids.size)
                    identity = (
                        live_gids.size == 0 or
                        (live_gids[0] == 0
                         and live_gids[-1] == live_gids.size - 1)
                    )
                    self._base_gids = None if identity else live_gids
                    self._tombstones.difference_update(
                        int(t) for t in snap_tomb
                    )
                    self._gen = None
                    self._commit_manifest_locked()  # the commit point
            finally:
                self._protected.discard(new_base_dir)
        finally:
            self._compact_lock.release()
        return {
            "duration_s": time.perf_counter() - t0,
            "n_live": int(live_gids.size),
            "segments_folded": len(snap_segments),
        }

    # -- query snapshot -------------------------------------------------

    def _generation(self) -> _Generation:
        with self._lock:
            if self._gen is not None:
                return self._gen
            layers = []
            if self._base_n:
                layers.append(
                    _Layer(
                        engine=self._base_engine,
                        gids=self._base_gids_locked(),
                        dir_name=self._base_dir,
                    )
                )
            for seg in self._segments:
                layers.append(
                    _Layer(
                        engine=seg["engine"],
                        gids=np.arange(
                            seg["start_id"], seg["start_id"] + seg["n"],
                            dtype=np.int64,
                        ),
                        dir_name=seg["dir"],
                    )
                )
            if self._buffer_n:
                if self._buffer_engine is None:
                    data = (
                        self._buffer_rows[0]
                        if len(self._buffer_rows) == 1
                        else np.concatenate(self._buffer_rows)
                    )
                    index = GridIndex(
                        data, self.eps,
                        n_dims=int(self._params.get("n_dims", 6)),
                    )
                    self._buffer_engine = _engine_cls()(
                        index, data,
                        precision=self.precision, workers=self._workers,
                    )
                layers.append(
                    _Layer(
                        engine=self._buffer_engine,
                        gids=np.arange(
                            self._buffer_start,
                            self._buffer_start + self._buffer_n,
                            dtype=np.int64,
                        ),
                        dir_name=None,
                    )
                )
            tomb = np.fromiter(
                sorted(self._tombstones), dtype=np.int64,
                count=len(self._tombstones),
            )
            n_rows = self._n_rows_locked()
            self._gen = _Generation(
                layers=tuple(layers),
                tomb=tomb,
                n_rows=n_rows,
                n_live=n_rows - tomb.size,
                next_id=int(self.next_id),
            )
            return self._gen

    # -- queries --------------------------------------------------------

    def range_query(
        self,
        queries,
        eps: float | None = None,
        *,
        workers=None,
        batched: bool = False,
        store_distances: bool = True,
    ) -> JoinResult:
        """eps-neighbors over the live rows; ``pairs_j`` are global ids.

        Each layer answers through its own engine (the per-layer FP64
        answers are bit-identical to brute force over that layer's rows),
        tombstoned ids are masked, and the union is canonicalized by an
        ascending ``(query, global id)`` lexsort -- making the result
        bit-identical, pairs and distances, to an engine rebuilt over the
        live dataset with rows renumbered through the live-id order.
        ``n_right`` reports the id-space bound (``next_id``), not the
        live count: global ids are sparse after deletions.
        """
        q = _as_rows(queries, self.dim)
        eps = self.eps if eps is None else float(eps)
        gen = self._generation()
        parts_i, parts_g, parts_d = [], [], []
        for layer in gen.layers:
            res = layer.engine.range_query(
                q, eps, workers=workers, batched=batched,
                store_distances=store_distances,
            )
            gid = layer.gids[res.pairs_j]
            if gen.tomb.size and gid.size:
                alive = ~np.isin(gid, gen.tomb)
                parts_i.append(res.pairs_i[alive])
                parts_g.append(gid[alive])
                if store_distances:
                    parts_d.append(res.sq_dists[alive])
            else:
                parts_i.append(res.pairs_i)
                parts_g.append(gid)
                if store_distances:
                    parts_d.append(res.sq_dists)
        pi = (
            np.concatenate(parts_i)
            if parts_i
            else np.empty(0, dtype=np.int64)
        )
        pg = (
            np.concatenate(parts_g)
            if parts_g
            else np.empty(0, dtype=np.int64)
        )
        order = np.lexsort((pg, pi))
        sd = np.empty(0, dtype=np.float32)
        if store_distances and parts_d:
            sd = np.concatenate(parts_d)[order]
        return JoinResult(
            n_left=q.shape[0],
            n_right=int(gen.next_id),
            eps=float(eps),
            pairs_i=pi[order],
            pairs_j=pg[order],
            sq_dists=sd,
        )

    def knn_query(self, queries, k: int):
        """k nearest live rows per query; indices are global ids.

        Per layer, an exact top-``min(n_layer, k + dead(layer))`` is
        fetched (the padding guarantees ``k`` live survivors), survivors'
        squared distances are recomputed in the working precision --
        row-local, hence bitwise what a rebuilt engine computes -- and a
        stable merge over the ascending-global-id layer layout selects
        the final top-k with the engine's exact ``(distance, index)``
        tie-break.  Padding follows the engine convention: ``-1`` /
        ``+inf`` when fewer than ``k`` live rows exist.
        """
        from repro.core.engine import norm_expansion_sq_dists

        q = _as_rows(queries, self.dim)
        k = int(k)
        if k <= 0:
            raise ValueError("k must be positive")
        gen = self._generation()
        nq = q.shape[0]
        out_idx = np.full((nq, k), -1, dtype=np.int64)
        out_d = np.full((nq, k), np.inf, dtype=np.float32)
        if nq == 0 or gen.n_live == 0:
            return _knn_result_cls()(
                k=k, n_points=gen.n_live, indices=out_idx, sq_dists=out_d
            )
        kk = min(k, gen.n_live)
        wq = q.astype(self.dtype)
        sq = (wq * wq).sum(axis=1)
        rows = np.arange(nq)[:, None]
        parts_d, parts_g = [], []
        for layer in gen.layers:
            n_layer = layer.gids.size
            dead = (
                int(np.isin(layer.gids, gen.tomb).sum())
                if gen.tomb.size
                else 0
            )
            k_layer = min(n_layer, kk + dead)
            res = layer.engine.knn_query(q, k_layer)
            idx = res.indices
            valid = idx >= 0
            safe = np.clip(idx, 0, None)
            gid = np.where(valid, layer.gids[safe], -1)
            if gen.tomb.size:
                alive = valid & ~np.isin(gid, gen.tomb)
            else:
                alive = valid
            d_part = np.full(idx.shape, np.inf)
            if alive.any():
                uniq = np.unique(idx[alive])
                wc = layer.engine.source.take(uniq).astype(
                    self.dtype, copy=False
                )
                sc = (wc * wc).sum(axis=1)
                d2 = norm_expansion_sq_dists(sq, sc, wq @ wc.T).astype(
                    np.float64, copy=False
                )
                # Dead/padded slots may map past the end of ``uniq``;
                # clamp before gathering -- ``where`` discards them.
                pos = np.minimum(np.searchsorted(uniq, safe), uniq.size - 1)
                d_part = np.where(alive, d2[rows, pos], np.inf)
            parts_d.append(d_part)
            parts_g.append(np.where(alive, gid, -1))
        cat_d = np.concatenate(parts_d, axis=1)
        cat_g = np.concatenate(parts_g, axis=1)
        # Stable sort on the ascending-id column layout: every distance
        # tie resolves to the lower global id, exactly the rebuilt
        # engine's tie-break (its candidate order is its row order, which
        # maps monotonically to global ids).
        order = np.argsort(cat_d, axis=1, kind="stable")[:, :kk]
        best_d = cat_d[rows, order]
        best_g = cat_g[rows, order]
        finite = np.isfinite(best_d)
        out_idx[:, :kk] = np.where(finite, best_g, -1)
        out_d[:, :kk] = np.where(finite, best_d, np.inf).astype(np.float32)
        return _knn_result_cls()(
            k=k, n_points=gen.n_live, indices=out_idx, sq_dists=out_d
        )

    def iter_join_groups(self, queries, *, reach: int = 1):
        """Candidate groups over the live rows, candidates as global ids.

        Chains each layer's group stream with ids mapped and tombstones
        masked -- the same soundness contract the per-layer indexes
        carry: every live row within ``reach * eps`` of a member query
        appears among that query's candidates (tests/test_mutable.py
        checks coverage against the brute pair set).
        """
        q = _as_rows(queries, self.dim)
        gen = self._generation()
        for layer in gen.layers:
            for members, cand in layer.engine._iter_groups(q, reach=reach):
                gid = layer.gids[np.asarray(cand, dtype=np.int64)]
                if gen.tomb.size and gid.size:
                    gid = gid[~np.isin(gid, gen.tomb)]
                yield members, gid

    # -- info -----------------------------------------------------------

    def stats(self) -> dict:
        """Store-shape summary (the CLI ``index info`` view)."""
        with self._lock:
            return {
                "kind": self.kind,
                "eps": self.eps,
                "dim": self.dim,
                "n_live": self._n_rows_locked() - len(self._tombstones),
                "n_rows": self._n_rows_locked(),
                "n_tombstones": len(self._tombstones),
                "n_segments": len(self._segments),
                "buffered_rows": self._buffer_n,
                "next_id": int(self.next_id),
                "base": self._base_dir,
                "seal_threshold": self.seal_threshold,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        s = self.stats()
        return (
            f"MutableIndex({str(self.path)!r}, kind={s['kind']!r}, "
            f"live={s['n_live']}, segments={s['n_segments']}, "
            f"tombstones={s['n_tombstones']})"
        )


__all__ = [
    "MANIFEST_NAME",
    "MUTABLE_MAGIC",
    "MUTABLE_VERSION",
    "DEFAULT_SEAL_THRESHOLD",
    "CompactionInProgress",
    "MutableIndex",
    "is_mutable_index",
    "read_manifest",
]
