"""Concurrent request layer: index cache, micro-batching, JSON-over-HTTP.

Three pieces stack into the serving path:

* :class:`IndexCache` -- a thread-safe LRU of loaded
  :class:`~repro.service.query.QueryEngine`\\ s keyed by ``(resolved
  path, eps)``: the eps ties the cache entry to the grid the index was
  built at, so two indexes over the same dataset at different radii are
  distinct entries.  Hits hand back the live engine (loading an index is
  the expensive part a serving layer must amortize -- the
  ``query_service`` benchmark entry measures exactly this against
  rebuild-per-query).

* :class:`QueryService` -- the **micro-batching queue**.  Concurrent
  small queries against the same ``(engine, eps, kind)`` are drained
  from one queue inside a short coalescing window, concatenated into a
  single query matrix, answered by **one** executor batch, and split
  back per request.  kNN requests coalesce *across different k*: the
  batch runs once at the largest requested k and each request takes the
  leading columns of its rows (the kNN kernel breaks distance ties by
  index with a stable sort and pads positionally, so every smaller-k
  answer is a strict prefix of the max-k answer).  Batching changes
  only how many engine calls run -- at FP64 the split results are
  bit-identical to per-request serial calls (same contract the join
  executors carry; tests/test_service.py hammers one cached index from
  N threads and compares against serial).  The coalescing window is
  **adaptive** (:class:`AdaptiveWindow`): it widens toward
  ``max_delay_s`` while requests queue behind the dispatcher and decays
  to zero when traffic is sparse, so an idle service adds no latency
  and a loaded one amortizes engine calls.  Dispatch runs on one
  background thread; the engine call itself fans out on the existing
  :class:`~repro.core.engine.WorkerPlan`.

* :func:`make_server` -- stdlib-only JSON-over-HTTP behind one of two
  interchangeable front ends (``frontend="thread" | "async"``): the
  classic ``http.server.ThreadingHTTPServer`` (one thread per
  connection, now speaking keep-alive HTTP/1.1) and an
  ``asyncio``-based server (:class:`AsyncHTTPServer`) that holds
  hundreds of in-flight requests on one event loop -- a request waiting
  on the micro-batcher costs a pending callback, not a blocked thread.
  Both serve the same routes with the same JSON contracts: ``POST
  /range`` and ``POST /knn`` submit through the service, ``GET
  /healthz`` reports liveness, and ``GET /stats`` / ``GET /metrics``
  are the JSON and Prometheus-text views of the same
  :class:`~repro.service.metrics.MetricsRegistry` (cache/batch/queue
  counters plus per-endpoint HTTP totals and latency histograms).  Only
  **registered** index names are served -- requests cannot make the
  process open arbitrary filesystem paths.

Fault tolerance (see docs/ARCHITECTURE.md "Fault tolerance"):

* **Admission control** -- the submission queue is bounded
  (``max_queue_depth``); a full queue rejects *fast* with
  :class:`ServiceOverloaded` in-process and ``429 Too Many Requests`` +
  ``Retry-After`` over HTTP, so overload produces immediate backpressure
  instead of unbounded memory growth and timeout storms.
* **Deadlines** -- ``submit(..., deadline_s=...)`` attaches a
  per-request deadline that rides into batch dispatch: a request already
  past its deadline is *failed* with :class:`DeadlineExceeded`, never
  executed (the engine call its batch runs is for the still-live
  requests only).
* **Graceful shutdown** -- :meth:`QueryService.stop` (``drain=True``)
  fails everything still queued immediately with
  :class:`ServiceShuttingDown` instead of leaving waiters to their own
  timeouts; ``drain=False`` serves the queue out first.  While stopping,
  ``/healthz`` reports ``draining`` (503) and new submissions are
  refused.
"""

from __future__ import annotations

import asyncio
import contextvars
import hashlib
import json
import queue
import socket
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import numpy as np

from repro import faults
from repro import log as _log
from repro import trace as trace_mod
from repro.core import engine as _engine_mod
from repro.core.engine import WorkerPlan
from repro.core.results import JoinResult
from repro.index.delta import (
    MANIFEST_NAME,
    CompactionInProgress,
    MutableIndex,
    is_mutable_index,
    read_manifest,
)
from repro.index.persist import HEADER_NAME, read_header
from repro.service.metrics import (
    BATCH_FILL_BUCKETS,
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
)
from repro.service.query import KnnResult, QueryEngine

_logger = _log.get_logger("repro.service.server")


class ServiceError(RuntimeError):
    """Base class for the service's typed request-rejection errors."""


class ServiceOverloaded(ServiceError):
    """The bounded submission queue is full; retry after backing off.

    ``retry_after`` is the suggested wait in seconds (the HTTP layer
    forwards it as a ``Retry-After`` header on the 429 it returns).
    """

    def __init__(self, message: str, *, retry_after: float = 0.05) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class ServiceShuttingDown(ServiceError):
    """The service is draining; queued/new requests are refused."""


class DeadlineExceeded(ServiceError, TimeoutError):
    """A request's deadline passed before dispatch; it was not executed."""


class IndexCache:
    """Thread-safe LRU cache of :class:`QueryEngine`\\ s for persisted indexes.

    Parameters
    ----------
    capacity:
        Maximum simultaneously loaded engines; the least recently used is
        evicted past that (its mmap-backed arrays simply lose their last
        reference).
    mmap, precision, workers, verify:
        Forwarded to every :class:`QueryEngine` the cache constructs
        (``verify`` is the :func:`~repro.index.persist.load_index`
        integrity level applied on each cache miss).
    metrics:
        The :class:`~repro.service.metrics.MetricsRegistry` the hit /
        miss / eviction counters live in (one is created when absent).
        ``hits`` / ``misses`` / ``evictions`` remain readable as
        properties; they are views of the registry counters.
    """

    def __init__(
        self,
        capacity: int = 4,
        *,
        mmap: bool = True,
        precision: str = "fp64",
        workers: "int | str | WorkerPlan | None" = 0,
        verify: str = "header",
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._mmap = mmap
        self._precision = precision
        self._workers = workers
        self._verify = verify
        self._entries: "OrderedDict[tuple, QueryEngine]" = OrderedDict()
        # Memo of header digest -> eps so cache hits pay one small file
        # read + hash, not a JSON parse + validation per request.
        self._eps_memo: dict[str, float] = {}
        self._lock = threading.Lock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._c_hits = self.metrics.counter(
            "repro_cache_hits_total",
            "Index-cache lookups served from an already-loaded engine",
        )
        self._c_misses = self.metrics.counter(
            "repro_cache_misses_total",
            "Index-cache lookups that had to load an engine",
        )
        self._c_evictions = self.metrics.counter(
            "repro_cache_evictions_total",
            "Engines evicted past the LRU capacity",
        )
        # len() of a dict is GIL-atomic, so the callback can read it
        # without taking the cache lock (no lock-order coupling between
        # the registry and the cache).
        self.metrics.gauge(
            "repro_cache_loaded",
            "Engines currently resident in the LRU",
            fn=lambda: float(len(self._entries)),
        )
        self.metrics.gauge(
            "repro_cache_capacity", "Index-cache LRU capacity"
        ).set(float(self.capacity))

    @property
    def hits(self) -> int:
        return int(self._c_hits.value())

    @property
    def misses(self) -> int:
        return int(self._c_misses.value())

    @property
    def evictions(self) -> int:
        return int(self._c_evictions.value())

    def _key(self, path: str | Path) -> tuple[str, float, str]:
        """Cache key ``(resolved path, eps, header digest)``.

        The digest of the header *bytes* makes the key exact: rebuilding
        an index at the same path commits a new header (new payload
        checksums and generation tags), so a rewritten index is never
        served stale -- including re-saves that land within mtime
        granularity, which an mtime-based key would miss.  The eps comes
        from a digest-keyed memo: the full header parse (which also
        validates magic/version) only happens the first time a given
        on-disk state is seen.
        """
        resolved = Path(path).resolve()
        try:
            header_bytes = (resolved / HEADER_NAME).read_bytes()
        except OSError as exc:
            raise ValueError(
                f"{resolved} is not a persisted index (no {HEADER_NAME})"
            ) from exc
        digest = hashlib.blake2b(header_bytes, digest_size=16).hexdigest()
        # GIL-atomic read; the memo is only written under the lock, and a
        # racing miss merely re-parses the header.
        eps = self._eps_memo.get(digest)
        if eps is None:
            header = read_header(resolved)
            eps = float(header["scalars"]["eps"])
            with self._lock:
                if len(self._eps_memo) > 64 * max(self.capacity, 1):
                    self._eps_memo.clear()  # stale-state entries, rebuild
                self._eps_memo[digest] = eps
        return str(resolved), eps, digest

    def get(self, path: str | Path) -> QueryEngine:
        """Return the cached engine for a persisted index, loading on miss.

        A mutable store (a :class:`~repro.index.delta.MutableIndex`
        root) is served through :meth:`_get_mutable` -- same LRU, but
        with the generation-swap staleness rule instead of a digest key.
        """
        resolved = Path(path).resolve()
        if (resolved / MANIFEST_NAME).is_file():
            return self._get_mutable(resolved)
        key = self._key(path)
        with self._lock:
            engine = self._entries.get(key)
            if engine is not None:
                self._entries.move_to_end(key)
                self._c_hits.inc()
                return engine
            self._c_misses.inc()
        # Load outside the lock -- the expensive part; a racing duplicate
        # load is harmless (last writer wins, both engines are valid).
        t0 = time.perf_counter()
        engine = QueryEngine(
            key[0],
            precision=self._precision,
            workers=self._workers,
            mmap=self._mmap,
            verify=self._verify,
        )
        # A cache miss on the request path shows up in the trace: the
        # load+verify time is usually the whole cold-start story.
        trace_mod.record_ambient_span(
            "cache.load", time.perf_counter() - t0,
            attrs={"path": key[0], "verify": self._verify},
        )
        with self._lock:
            self._entries[key] = engine
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._c_evictions.inc()
        return engine

    def _get_mutable(self, resolved: Path) -> MutableIndex:
        """Atomic generation swap for mutable stores.

        The entry is keyed by path alone and stays **hit** as long as the
        engine's own last-committed manifest digest matches the on-disk
        one -- a live writer engine keeps serving through its own seals,
        deletes and compactions (its unsealed buffer must not be dropped
        by a reload).  When the digests diverge (the store was rewritten
        externally), the stale engine is swapped out atomically: requests
        already holding it finish on the old generation, new lookups load
        and see the new one.
        """
        digest = hashlib.blake2b(
            (resolved / MANIFEST_NAME).read_bytes(), digest_size=16
        ).hexdigest()
        key = (str(resolved), "mutable")
        with self._lock:
            engine = self._entries.get(key)
            if (
                engine is not None
                and engine.committed_state_digest == digest
            ):
                self._entries.move_to_end(key)
                self._c_hits.inc()
                return engine
            if engine is not None:
                del self._entries[key]
            self._c_misses.inc()
        t0 = time.perf_counter()
        engine = MutableIndex(
            resolved,
            precision=self._precision,
            workers=self._workers,
            mmap=self._mmap,
            verify=self._verify,
        )
        trace_mod.record_ambient_span(
            "cache.load", time.perf_counter() - t0,
            attrs={"path": str(resolved), "verify": self._verify},
        )
        with self._lock:
            self._entries[key] = engine
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._c_evictions.inc()
        return engine

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _stats_from(self, snap: dict) -> dict:
        """Build the stats dict from a registry snapshot (shared-registry
        callers reuse one snapshot for service + cache consistency)."""
        return {
            "capacity": self.capacity,
            "loaded": int(snap["repro_cache_loaded"]),
            "hits": int(snap["repro_cache_hits_total"]),
            "misses": int(snap["repro_cache_misses_total"]),
            "evictions": int(snap["repro_cache_evictions_total"]),
        }

    def stats(self) -> dict:
        return self._stats_from(self.metrics.snapshot())


class _Pending:
    """One in-flight request: an event the dispatcher fulfills.

    ``deadline`` is an absolute :func:`time.monotonic` instant (or None);
    the dispatcher fails, rather than executes, a request whose deadline
    has already passed when its batch is dispatched.
    """

    __slots__ = (
        "engine", "queries", "eps", "kind", "k", "deadline",
        "span", "submit_t",
        "_event", "_result", "_error", "_callbacks", "_cb_lock",
    )

    def __init__(self, engine, queries, eps, kind, k, deadline=None) -> None:
        self.engine = engine
        self.queries = queries
        self.eps = eps
        self.kind = kind  # "range" | "knn"
        self.k = k
        self.deadline = deadline
        # Trace attribution: the submitting thread/task's ambient span
        # (the HTTP root, or None for direct library use) rides along so
        # the dispatcher thread can attach queue-wait / dispatch / split
        # child spans to the originating request.
        self.span = trace_mod.current_span()
        self.submit_t = time.perf_counter()
        self._event = threading.Event()
        self._result = None
        self._error: BaseException | None = None
        self._callbacks: list = []
        self._cb_lock = threading.Lock()

    def _fulfill(self, result) -> None:
        self._result = result
        self._event.set()
        self._run_callbacks()

    def _fail(self, exc: BaseException) -> None:
        self._error = exc
        self._event.set()
        self._run_callbacks()

    def _run_callbacks(self) -> None:
        with self._cb_lock:
            callbacks, self._callbacks = self._callbacks, []
        # Run outside the lock; a callback must never take down the
        # dispatcher thread.
        for fn in callbacks:
            try:
                fn(self)
            except Exception:  # noqa: BLE001 -- isolate the dispatcher
                pass

    def add_done_callback(self, fn) -> None:
        """Run ``fn(self)`` when the dispatcher answers (or now, if done).

        This is the threadless completion hook the asyncio front end
        rides: instead of parking a thread in :meth:`result`, it
        registers a callback that trampolines into the event loop via
        ``call_soon_threadsafe``.  Each callback fires exactly once, on
        the dispatcher thread -- or inline here when the request is
        already answered; exceptions it raises are swallowed.
        """
        with self._cb_lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        try:
            fn(self)
        except Exception:  # noqa: BLE001 -- same isolation as above
            pass

    def result(self, timeout: float | None = None):
        """Block until the dispatcher answers; re-raises its exception."""
        if not self._event.wait(timeout):
            raise TimeoutError("query not answered within the timeout")
        if self._error is not None:
            raise self._error
        return self._result


class AdaptiveWindow:
    """Adaptive micro-batch coalescing window: pressure widens, idle decays.

    The fixed ``max_delay_s`` window taxes every sparse-traffic request
    with the full delay while capping how much a loaded service can
    amortize.  This controller keeps the window between 0 and ``cap_s``
    (the configured ``max_delay_s``), steering on what each drained
    batch *observed*:

    * **widen** (x2, floored at ``cap_s / 16``) when the batch coalesced
      two or more requests or left requests queued behind it -- arrivals
      are outpacing dispatch, so a longer window converts queueing delay
      into batching;
    * **shrink** (x0.5) when a batch carried a single request with an
      empty queue -- nobody was waiting, the window was pure added
      latency; below ``cap_s / 64`` it snaps to 0 so an idle service
      dispatches immediately;
    * **reset to 0** when more than ``idle_reset_s`` passed since the
      previous batch -- the first request after a lull never pays a
      window tuned for a burst that ended long ago.

    ``clock`` is injectable for deterministic tests.  The controller is
    only touched from the dispatcher thread; reads of :attr:`window_s`
    from other threads are GIL-atomic float reads.
    """

    def __init__(
        self,
        cap_s: float,
        *,
        idle_reset_s: float | None = None,
        clock=time.monotonic,
    ) -> None:
        if cap_s < 0:
            raise ValueError("cap_s must be >= 0")
        self.cap_s = float(cap_s)
        #: A gap this long since the previous batch counts as a lull.
        self.idle_reset_s = (
            float(idle_reset_s) if idle_reset_s is not None
            else max(50.0 * self.cap_s, 0.25)
        )
        self._clock = clock
        self._window = self.cap_s
        self._last_batch_t: float | None = None

    @property
    def window_s(self) -> float:
        """Last computed window in seconds (0 = dispatch at once)."""
        return self._window

    def current(self) -> float:
        """Window to apply to the batch starting *now* (idle-reset aware).

        Called by the dispatcher when the first request of a batch
        arrives: a lull longer than ``idle_reset_s`` since the previous
        batch zeroes the window before it is paid, so the request that
        ends an idle period dispatches immediately.
        """
        if self.cap_s <= 0.0:
            return 0.0
        if (
            self._last_batch_t is not None
            and self._clock() - self._last_batch_t > self.idle_reset_s
        ):
            self._window = 0.0
        return self._window

    def observe(self, n_requests: int, queue_depth: int) -> float:
        """Account one drained batch; returns the window for the next one.

        ``n_requests`` is how many requests the batch carried and
        ``queue_depth`` how many were still queued when it dispatched.
        """
        if self.cap_s <= 0.0:
            return 0.0
        self._last_batch_t = self._clock()
        if n_requests >= 2 or queue_depth > 0:
            self._window = min(
                self.cap_s, max(self._window * 2.0, self.cap_s / 16.0)
            )
        elif self._window > 0.0:
            self._window *= 0.5
            if self._window < self.cap_s / 64.0:
                self._window = 0.0
        return self._window


class QueryService:
    """Micro-batching dispatcher over cached query engines.

    ``submit`` enqueues a request and returns a handle; a single
    background thread drains the queue, coalesces compatible requests
    (same engine, eps, and query kind -- kNN requests coalesce across
    different k, served once at the largest k and split as per-request
    prefixes) that arrive within the current coalescing window of the
    first -- or until ``max_batch_points`` query rows are buffered --
    into **one** engine call, and splits the answer back per request.
    The window adapts between 0 and ``max_delay_s`` (see
    :class:`AdaptiveWindow`; ``adaptive_window=False`` pins it at
    ``max_delay_s``); its live value is exported as the
    ``repro_service_batch_window_seconds`` gauge.  Use as a context
    manager, or call :meth:`start` / :meth:`stop`.

    The submission queue is bounded at ``max_queue_depth`` requests: a
    full queue makes ``submit`` raise :class:`ServiceOverloaded`
    immediately (admission control -- reject fast, never buffer without
    bound).  ``default_deadline_s`` attaches a deadline to every request
    that does not bring its own.
    """

    def __init__(
        self,
        cache: IndexCache | None = None,
        *,
        max_batch_points: int = 4096,
        max_delay_s: float = 0.002,
        workers: "int | str | WorkerPlan | None" = 0,
        precision: str = "fp64",
        mmap: bool = True,
        batched: bool = False,
        max_queue_depth: int = 256,
        default_deadline_s: float | None = None,
        verify: str = "header",
        metrics: "MetricsRegistry | None" = None,
        adaptive_window: bool = True,
        tracer: "trace_mod.Tracer | None" = None,
    ) -> None:
        # One registry backs service + cache: adopt an explicit one, else
        # the supplied cache's, else create a fresh one -- so /stats and
        # /metrics always read the same counters.
        if cache is not None:
            self.metrics = metrics if metrics is not None else cache.metrics
            self.cache = cache
        else:
            self.metrics = metrics if metrics is not None else MetricsRegistry()
            self.cache = IndexCache(
                precision=precision, workers=workers, mmap=mmap,
                verify=verify, metrics=self.metrics,
            )
        # The tracer is always present: request ids are echoed and stage
        # timings aggregated unconditionally; ``sample`` only decides
        # which completed traces are *retained* for /trace endpoints.
        # The default keeps errored traces (on_error=True) and nothing
        # else -- pass an explicit Tracer to turn retention up.
        self.tracer = (
            tracer if tracer is not None else trace_mod.Tracer(sample=0.0)
        )
        self.max_batch_points = int(max_batch_points)
        self.max_delay_s = float(max_delay_s)
        self.adaptive_window = bool(adaptive_window)
        #: The live coalescing-window controller (dispatcher-thread only).
        self.window = AdaptiveWindow(self.max_delay_s)
        self.workers = workers
        self.batched = batched
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.max_queue_depth = int(max_queue_depth)
        self.default_deadline_s = default_deadline_s
        self._queue: "queue.Queue[_Pending]" = queue.Queue(
            maxsize=self.max_queue_depth
        )
        self._stop = threading.Event()
        self._draining = False
        self._thread: threading.Thread | None = None
        self._lifecycle_lock = threading.Lock()
        # All mutable counters live in the registry (atomic under its
        # lock) -- stats() takes one consistent snapshot instead of the
        # old bare-int reads that could be torn mid-dispatch.
        m = self.metrics
        self._c_batches = m.counter(
            "repro_service_batches_dispatched_total",
            "Engine batches dispatched by the micro-batcher",
        )
        self._c_served = m.counter(
            "repro_service_requests_served_total",
            "Requests answered by a dispatched batch",
        )
        self._c_coalesced = m.counter(
            "repro_service_requests_coalesced_total",
            "Requests served in a batch with >= 2 requests",
        )
        self._c_rejected = m.counter(
            "repro_service_requests_rejected_total",
            "Requests refused at admission (bounded queue full)",
        )
        self._c_expired = m.counter(
            "repro_service_requests_expired_total",
            "Requests failed at dispatch because their deadline passed",
        )
        m.gauge(
            "repro_service_queue_depth",
            "Requests currently waiting in the submission queue",
            fn=lambda: float(self._queue.qsize()),
        )
        m.gauge(
            "repro_service_queue_capacity",
            "Admission-control bound on queued requests",
        ).set(float(self.max_queue_depth))
        self._g_window = m.gauge(
            "repro_service_batch_window_seconds",
            "Micro-batch coalescing window (adaptive; 0 = immediate)",
        )
        self._g_window.set(self.max_delay_s)
        m.gauge(
            "repro_service_draining",
            "1 while stop() is refusing new submissions",
            fn=lambda: float(self._draining),
        )
        self._h_fill = m.histogram(
            "repro_service_batch_fill",
            "Requests coalesced per dispatched batch",
            buckets=BATCH_FILL_BUCKETS,
        )
        self._h_dispatch = m.histogram(
            "repro_service_dispatch_seconds",
            "Wall time of one dispatched engine batch",
        )
        # Mutable-index traffic (see repro.index.delta).  The counters
        # are bumped in the same grouped metrics.lock section as the
        # dispatch counters, so a snapshot never tears a mutation apart
        # from its request accounting; the gauges read the live shape of
        # every cached mutable engine.
        self._c_appends = m.counter(
            "repro_mutable_appends_total",
            "Append requests executed against mutable indexes",
        )
        self._c_rows_appended = m.counter(
            "repro_mutable_rows_appended_total",
            "Rows appended to mutable indexes",
        )
        self._c_deletes = m.counter(
            "repro_mutable_deletes_total",
            "Delete requests executed against mutable indexes",
        )
        self._c_tombstones_written = m.counter(
            "repro_mutable_tombstones_written_total",
            "Rows tombstoned by delete requests",
        )
        self._c_compactions = m.counter(
            "repro_mutable_compactions_total",
            "Compactions completed through the service",
        )
        self._h_compaction = m.histogram(
            "repro_mutable_compaction_seconds",
            "Wall time of one compaction (seal + rebuild + commit)",
        )
        m.gauge(
            "repro_mutable_delta_depth",
            "Delta layers (sealed segments + live buffer) summed over "
            "cached mutable indexes",
            fn=lambda: float(sum(
                e.delta_depth
                for e in list(self.cache._entries.values())
                if isinstance(e, MutableIndex)
            )),
        )
        m.gauge(
            "repro_mutable_tombstones",
            "Live tombstones summed over cached mutable indexes",
            fn=lambda: float(sum(
                e.n_tombstones
                for e in list(self.cache._entries.values())
                if isinstance(e, MutableIndex)
            )),
        )
        m.gauge(
            "repro_fork_recoveries",
            "Group batches recovered inline after fork-pool child death",
            fn=lambda: float(_engine_mod.FORK_RECOVERIES),
        )
        # Engine-level counters that live outside the registry (module
        # globals bumped by the spawn pool) surfaced as gauges -- plain
        # int reads are GIL-atomic, no lock coupling with the engine.
        m.gauge(
            "repro_spawn_shm_segments",
            "Shared-memory segments created for spawn-pool workers",
            fn=lambda: float(_engine_mod.SPAWN_SHM_SEGMENTS),
        )
        m.gauge(
            "repro_spawn_shm_bytes",
            "Bytes written into spawn-pool shared-memory segments",
            fn=lambda: float(_engine_mod.SPAWN_SHM_BYTES),
        )
        # Per-stage engine time aggregated across every dispatched batch
        # (fed from TraceHooks regardless of trace retention).
        self._h_stage = m.histogram(
            "repro_stage_seconds",
            "Engine pipeline stage wall time per dispatched batch",
            labels=("stage",),
        )
        # Tracer retention counters (ints under the tracer lock; reads
        # here are GIL-atomic snapshots, same pattern as fork recoveries).
        m.gauge(
            "repro_traces_started",
            "Root spans opened since process start",
            fn=lambda: float(self.tracer.traces_started),
        )
        m.gauge(
            "repro_traces_retained",
            "Completed traces kept by the retention policy",
            fn=lambda: float(self.tracer.traces_retained),
        )
        m.gauge(
            "repro_traces_dropped",
            "Completed traces discarded by the retention policy",
            fn=lambda: float(self.tracer.traces_dropped),
        )
        m.gauge(
            "repro_faults_armed",
            "Fault-injection specs currently armed",
            fn=lambda: float(len(faults.active())),
        )
        m.gauge(
            "repro_faults_fired",
            "Total injected-fault firings across armed specs",
            fn=lambda: float(
                sum(s.fired for s in faults.active().values())
            ),
        )

    @property
    def batches_dispatched(self) -> int:
        return int(self._c_batches.value())

    @property
    def requests_served(self) -> int:
        return int(self._c_served.value())

    @property
    def requests_coalesced(self) -> int:
        """Requests served in a batch with >= 2 requests."""
        return int(self._c_coalesced.value())

    @property
    def requests_rejected(self) -> int:
        """Requests refused at admission (queue full)."""
        return int(self._c_rejected.value())

    @property
    def requests_expired(self) -> int:
        """Requests failed at dispatch (deadline passed)."""
        return int(self._c_expired.value())

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "QueryService":
        # Locked: concurrent first submits must not each spawn a
        # dispatcher (two loops would split batches that should coalesce).
        with self._lifecycle_lock:
            if self._thread is None or not self._thread.is_alive():
                self._stop.clear()
                self._thread = threading.Thread(
                    target=self._loop, name="repro-query-service", daemon=True
                )
                self._thread.start()
        return self

    @property
    def draining(self) -> bool:
        """True while :meth:`stop` is refusing new submissions."""
        return self._draining

    def stop(self, drain: bool = True) -> None:
        """Stop the dispatcher; never abandon a queued request.

        ``drain=True`` (the default) fails everything still queued
        immediately with :class:`ServiceShuttingDown` -- waiters get a
        typed error now instead of sitting out their own timeouts.
        ``drain=False`` lets the dispatcher serve the queue out first.
        Either way new submissions are refused (``ServiceShuttingDown``)
        until the stop completes; afterwards a submit revives the
        service.
        """
        self._draining = True
        try:
            if not drain:
                # Serve out what was admitted before the drain flag went
                # up; nothing new can join the queue behind it.
                while self._thread is not None and self._thread.is_alive():
                    if self._queue.empty():
                        break
                    time.sleep(0.001)
            self._stop.set()
            if self._thread is not None:
                self._thread.join(timeout=5.0)
                self._thread = None
            # Fail anything still queued rather than leaving its waiters
            # blocked until their own timeouts.
            while True:
                try:
                    pending = self._queue.get_nowait()
                except queue.Empty:
                    break
                pending._fail(
                    ServiceShuttingDown("query service stopped while draining")
                )
        finally:
            self._draining = False

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- submission -----------------------------------------------------

    def engine_for(self, index: "QueryEngine | str | Path") -> QueryEngine:
        if isinstance(index, (QueryEngine, MutableIndex)):
            return index
        return self.cache.get(index)

    def submit(
        self,
        index: "QueryEngine | str | Path",
        queries,
        *,
        eps: float | None = None,
        k: int | None = None,
        deadline_s: float | None = None,
    ) -> _Pending:
        """Enqueue one range (``k=None``) or kNN query batch.

        Starts the dispatcher if it is not running, so the service works
        without an explicit :meth:`start` and a stopped service revives
        on the next submission instead of queueing forever.

        Raises :class:`ServiceShuttingDown` while a :meth:`stop` is in
        progress and :class:`ServiceOverloaded` -- immediately, without
        blocking -- when the bounded queue is full.  ``deadline_s``
        (falling back to ``default_deadline_s``) bounds how stale the
        request may be when its batch dispatches: past the deadline it is
        failed with :class:`DeadlineExceeded` instead of executed.
        """
        if self._draining:
            raise ServiceShuttingDown("query service is draining")
        self.start()
        engine = self.engine_for(index)
        q = np.ascontiguousarray(np.asarray(queries, dtype=np.float64))
        if q.ndim == 1:
            q = q[None, :]
        # Validate here, synchronously: a malformed request must fail its
        # own submit, never poison the micro-batch it would coalesce into
        # (the dispatcher concatenates group members blindly).
        if q.ndim != 2 or q.shape[1] != engine.dim:
            raise ValueError(
                f"queries must be (q, {engine.dim}); got shape {q.shape}"
            )
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        pending = _Pending(
            engine,
            q,
            float(eps) if eps is not None else None,
            "knn" if k is not None else "range",
            int(k) if k is not None else None,
            time.monotonic() + float(deadline_s)
            if deadline_s is not None
            else None,
        )
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            self._c_rejected.inc()
            raise ServiceOverloaded(
                f"submission queue is full ({self.max_queue_depth} requests "
                "queued); back off and retry",
                retry_after=max(self.max_delay_s * 2, 0.05),
            ) from None
        return pending

    def query(self, index, queries, *, eps=None, k=None, timeout=30.0):
        """Blocking convenience: ``submit(...).result(timeout)``."""
        return self.submit(index, queries, eps=eps, k=k).result(timeout)

    # -- mutations ------------------------------------------------------

    def _mutable_engine_for(self, index) -> MutableIndex:
        engine = self.engine_for(index)
        if not isinstance(engine, MutableIndex):
            raise TypeError(
                "index is immutable: append/delete/compact need a store "
                "built with --mutable (see repro.index.delta)"
            )
        return engine

    def _enqueue(self, pending: _Pending) -> _Pending:
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            self._c_rejected.inc()
            raise ServiceOverloaded(
                f"submission queue is full ({self.max_queue_depth} requests "
                "queued); back off and retry",
                retry_after=max(self.max_delay_s * 2, 0.05),
            ) from None
        return pending

    def submit_append(self, index, rows, *, deadline_s=None) -> _Pending:
        """Enqueue an append of ``rows`` to a mutable index.

        Mutations ride the same bounded admission queue as queries (so
        overload produces the same 429 back-pressure) but are never
        coalesced: each executes as its own serialized engine call on the
        dispatcher thread.  The result is the ``int64`` array of ids
        minted for the rows.
        """
        if self._draining:
            raise ServiceShuttingDown("query service is draining")
        self.start()
        engine = self._mutable_engine_for(index)
        r = np.ascontiguousarray(np.asarray(rows, dtype=np.float64))
        if r.ndim == 1:
            r = r[None, :]
        if r.ndim != 2 or r.shape[0] == 0 or r.shape[1] != engine.dim:
            raise ValueError(
                f"rows must be (n >= 1, {engine.dim}); got shape {r.shape}"
            )
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        return self._enqueue(_Pending(
            engine, r, None, "append", None,
            time.monotonic() + float(deadline_s)
            if deadline_s is not None
            else None,
        ))

    def submit_delete(self, index, ids, *, deadline_s=None) -> _Pending:
        """Enqueue a tombstone-delete of ``ids`` from a mutable index.

        The result is the number of rows deleted; unknown or already
        dead ids fail the request with :class:`ValueError` (mapped to
        400 over HTTP) without touching the store.
        """
        if self._draining:
            raise ServiceShuttingDown("query service is draining")
        self.start()
        engine = self._mutable_engine_for(index)
        arr = np.asarray(ids, dtype=np.int64).ravel()
        if arr.size == 0:
            raise ValueError("ids must name at least one row")
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        return self._enqueue(_Pending(
            engine, arr, None, "delete", None,
            time.monotonic() + float(deadline_s)
            if deadline_s is not None
            else None,
        ))

    def append(self, index, rows, *, timeout=30.0):
        """Blocking convenience: ``submit_append(...).result(timeout)``."""
        return self.submit_append(index, rows).result(timeout)

    def delete(self, index, ids, *, timeout=30.0):
        """Blocking convenience: ``submit_delete(...).result(timeout)``."""
        return self.submit_delete(index, ids).result(timeout)

    def compact(self, index) -> dict:
        """Fold sealed segments + tombstones into a new base generation.

        Runs inline on the caller's thread (compaction is minutes-scale
        next to the micro-batch loop; queueing it would head-of-line
        block every query).  A compaction already in flight surfaces as
        :class:`ServiceOverloaded` -- the HTTP layer turns that into a
        429 with ``Retry-After``, matching admission-control semantics.
        """
        engine = self._mutable_engine_for(index)
        try:
            out = engine.compact(wait=False)
        except CompactionInProgress as exc:
            raise ServiceOverloaded(str(exc), retry_after=1.0) from exc
        with self.metrics.lock:
            self._c_compactions.inc()
            self._h_compaction.observe(float(out["duration_s"]))
        return out

    def stats(self) -> dict:
        """JSON view of the metrics registry (one atomic snapshot).

        The keys are unchanged from the bare-counter era; the values now
        come from a single :meth:`MetricsRegistry.snapshot`, so the dict
        is internally consistent and always agrees with ``/metrics``.
        """
        snap = self.metrics.snapshot()
        cache_stats = (
            self.cache._stats_from(snap)
            if self.cache.metrics is self.metrics
            else self.cache.stats()
        )
        return {
            "cache": cache_stats,
            "batches_dispatched": int(
                snap["repro_service_batches_dispatched_total"]
            ),
            "requests_served": int(
                snap["repro_service_requests_served_total"]
            ),
            "requests_coalesced": int(
                snap["repro_service_requests_coalesced_total"]
            ),
            "requests_rejected": int(
                snap["repro_service_requests_rejected_total"]
            ),
            "requests_expired": int(
                snap["repro_service_requests_expired_total"]
            ),
            "queue_depth": int(snap["repro_service_queue_depth"]),
            "max_queue_depth": self.max_queue_depth,
            "draining": bool(snap["repro_service_draining"]),
        }

    # -- dispatch loop --------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            window = (
                self.window.current() if self.adaptive_window
                else self.max_delay_s
            )
            batch = [first]
            points = first.queries.shape[0]
            deadline = time.monotonic() + window
            # Coalescing window: whatever lands in the queue while the
            # window is open rides in this dispatch.
            while points < self.max_batch_points:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                batch.append(nxt)
                points += nxt.queries.shape[0]
            if self.adaptive_window:
                # Steer on what this drain saw, then export the window
                # the *next* batch will pay.
                self._g_window.set(
                    self.window.observe(len(batch), self._queue.qsize())
                )
            self._dispatch(batch)

    def _dispatch(self, batch: list[_Pending]) -> None:
        now = time.monotonic()
        groups: "OrderedDict[tuple, list[_Pending]]" = OrderedDict()
        for req in batch:
            # A request past its deadline is failed, not executed -- its
            # waiter has given up (or will, immediately); spending an
            # engine call on it only delays the still-live requests
            # batched behind it.
            if req.deadline is not None and now > req.deadline:
                self._c_expired.inc()
                req._fail(
                    DeadlineExceeded(
                        "request deadline passed before dispatch"
                    )
                )
                continue
            if req.kind in ("append", "delete"):
                # Mutations never coalesce: each is its own serialized
                # engine call, so the op log order equals dispatch order.
                key = (id(req),)
            elif req.kind == "knn":
                # k is deliberately absent: mixed-k kNN requests share
                # one engine call at the largest k (_run_group slices
                # each request's prefix back out).
                key = (id(req.engine), req.eps, req.kind)
            else:
                key = (id(req.engine), req.eps, req.kind, req.k)
            groups.setdefault(key, []).append(req)
        for reqs in groups.values():
            # Grouped under the registry lock (reentrant) so a snapshot
            # never sees the batch counted but its requests not.
            with self.metrics.lock:
                self._c_batches.inc()
                self._c_served.inc(len(reqs))
                if len(reqs) > 1:
                    self._c_coalesced.inc(len(reqs))
                self._h_fill.observe(float(len(reqs)))
            t0 = time.perf_counter()
            # The time between submit and dispatch is the queue wait
            # (admission queue + coalescing window), attributed to each
            # request before the engine runs.
            for req in reqs:
                if req.span is not None:
                    self.tracer.record_span(
                        "queue.wait", t0 - req.submit_t, parent=req.span,
                        attrs={"batch_size": len(reqs)},
                    )
            try:
                self._run_group(reqs)
            except BaseException as exc:  # propagate to every waiter
                dt = time.perf_counter() - t0
                for req in reqs:
                    if req.span is not None:
                        # An explicit error span: the message names the
                        # exception (injected faults carry their fault
                        # tag), and it flips on-error retention even if
                        # the front end never records the failure.
                        sp = self.tracer.start_span(
                            "engine.dispatch", parent=req.span,
                            attrs={"batch_size": len(reqs)},
                        )
                        sp.record_error(exc)
                        sp.duration_s = dt
                        sp.finish()
                    req._fail(exc)
                _logger.warning(
                    "batch dispatch failed",
                    extra={
                        "kind": reqs[0].kind,
                        "batch_size": len(reqs),
                        "error": f"{type(exc).__name__}: {exc}",
                    },
                )
            self._h_dispatch.observe(time.perf_counter() - t0)

    def _trace_exec(
        self, reqs: list[_Pending], cat_rows: int, exec_s: float,
        stages: dict[str, float],
    ) -> None:
        """Attribute one engine dispatch to every traced request in it.

        Stage seconds are batch-wide (one engine call served the whole
        group), so coalesced requests share the same numbers -- the
        ``batch_size`` attribute says so.
        """
        for req in reqs:
            if req.span is None:
                continue
            attrs: dict = {
                "batch_size": len(reqs), "n_queries": cat_rows,
            }
            for stage, seconds in sorted(stages.items()):
                attrs[f"stage.{stage}_s"] = seconds
            self.tracer.record_span(
                "engine.dispatch", exec_s, parent=req.span, attrs=attrs
            )

    def _observe_stages(self, stages: dict[str, float]) -> None:
        if not stages:
            return
        with self.metrics.lock:
            for stage, seconds in stages.items():
                self._h_stage.observe(seconds, stage=stage)

    def _run_group(self, reqs: list[_Pending]) -> None:
        if faults.ARMED:
            faults.check("service.dispatch")
        engine = reqs[0].engine
        if reqs[0].kind == "append":
            req = reqs[0]
            t0 = time.perf_counter()
            ids = engine.append(req.queries)
            if req.span is not None:
                self.tracer.record_span(
                    "engine.append", time.perf_counter() - t0,
                    parent=req.span, attrs={"rows": int(ids.size)},
                )
            with self.metrics.lock:
                self._c_appends.inc()
                self._c_rows_appended.inc(int(ids.size))
            req._fulfill(ids)
            return
        if reqs[0].kind == "delete":
            req = reqs[0]
            t0 = time.perf_counter()
            n = engine.delete(req.queries)
            if req.span is not None:
                self.tracer.record_span(
                    "engine.delete", time.perf_counter() - t0,
                    parent=req.span, attrs={"deleted": int(n)},
                )
            with self.metrics.lock:
                self._c_deletes.inc()
                self._c_tombstones_written.inc(int(n))
            req._fulfill(int(n))
            return
        t_asm = time.perf_counter()
        cat = (
            np.concatenate([r.queries for r in reqs])
            if len(reqs) > 1
            else reqs[0].queries
        )
        asm_s = time.perf_counter() - t_asm
        for req in reqs:
            if req.span is not None:
                self.tracer.record_span(
                    "batch.assemble", asm_s, parent=req.span,
                    attrs={"batch_size": len(reqs)},
                )
        # One TraceHooks per dispatch: the executors accumulate stage
        # seconds into it (and the process pools copy its trace id into
        # worker task metadata).  Installed unconditionally -- the
        # repro_stage_seconds aggregates are a metrics feature, not a
        # sampling-gated one.
        hooks = trace_mod.TraceHooks(
            trace_id=next(
                (r.span.trace_id for r in reqs if r.span is not None), None
            )
        )
        if reqs[0].kind == "knn":
            # Serve the whole group once at the largest requested k.
            # Every smaller-k answer is the leading columns of its rows:
            # the kNN kernel breaks distance ties deterministically by
            # (distance, index) with a stable sort, so top-k is a strict
            # prefix of top-max_k, and short-of-k padding (-1 / +inf) is
            # positional -- the slices are bit-identical to per-request
            # calls at each request's own k.
            max_k = max(r.k for r in reqs)
            t_exec = time.perf_counter()
            with trace_mod.use_hooks(hooks):
                res = engine.knn_query(cat, max_k)
            exec_s = time.perf_counter() - t_exec
            stages = hooks.snapshot()
            self._observe_stages(stages)
            self._trace_exec(reqs, int(cat.shape[0]), exec_s, stages)
            off = 0
            for req in reqs:
                m = req.queries.shape[0]
                t_split = time.perf_counter()
                out = KnnResult(
                    k=req.k,
                    n_points=res.n_points,
                    indices=res.indices[off : off + m, : req.k],
                    sq_dists=res.sq_dists[off : off + m, : req.k],
                )
                if req.span is not None:
                    # Recorded before _fulfill: once the waiter holds the
                    # answer it may finish the root and seal the trace.
                    self.tracer.record_span(
                        "batch.split", time.perf_counter() - t_split,
                        parent=req.span,
                    )
                req._fulfill(out)
                off += m
            return
        t_exec = time.perf_counter()
        with trace_mod.use_hooks(hooks):
            res = engine.range_query(cat, reqs[0].eps, workers=self.workers,
                                     batched=self.batched)
        exec_s = time.perf_counter() - t_exec
        stages = hooks.snapshot()
        self._observe_stages(stages)
        self._trace_exec(reqs, int(cat.shape[0]), exec_s, stages)
        off = 0
        for req in reqs:
            m = req.queries.shape[0]
            t_split = time.perf_counter()
            sel = (res.pairs_i >= off) & (res.pairs_i < off + m)
            sq = res.sq_dists[sel] if res.sq_dists.size else res.sq_dists
            out = JoinResult(
                n_left=m,
                n_right=res.n_right,
                eps=res.eps,
                pairs_i=res.pairs_i[sel] - off,
                pairs_j=res.pairs_j[sel],
                sq_dists=sq,
            )
            if req.span is not None:
                self.tracer.record_span(
                    "batch.split", time.perf_counter() - t_split,
                    parent=req.span,
                )
            req._fulfill(out)
            off += m


# ----------------------------------------------------------------------
# JSON-over-HTTP front end (stdlib http.server)
# ----------------------------------------------------------------------


def _range_payload(res: JoinResult) -> dict:
    """Group a range answer per query: neighbor lists + distances."""
    order = np.lexsort((res.pairs_j, res.pairs_i))
    pi = res.pairs_i[order]
    pj = res.pairs_j[order]
    counts = np.bincount(pi, minlength=res.n_left)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    neighbors = [
        pj[bounds[i] : bounds[i + 1]].tolist() for i in range(res.n_left)
    ]
    out = {"n_queries": int(res.n_left), "eps": res.eps, "neighbors": neighbors}
    # Emit the key whenever distances are tracked -- including the
    # zero-pair case (size 0 == 0 pairs), so the response shape does not
    # flip on clients when a request happens to match nothing.
    if res.sq_dists.size == res.pairs_i.size:
        sd = res.sq_dists[order]
        out["sq_dists"] = [
            sd[bounds[i] : bounds[i + 1]].astype(float).tolist()
            for i in range(res.n_left)
        ]
    return out


def _knn_payload(res: KnnResult) -> dict:
    """JSON view of a kNN answer (strict-parser-safe distances)."""
    return {
        "k": res.k,
        "indices": res.indices.tolist(),
        # Padding slots (k > n) carry +inf, which is not valid JSON --
        # strict parsers reject "Infinity"; send null there instead.
        "sq_dists": [
            [float(x) if np.isfinite(x) else None for x in row]
            for row in res.sq_dists
        ],
    }


#: Every route either front end serves.  Unknown paths share one
#: metrics label ("other") so a scanner cannot grow the registry.
KNOWN_ENDPOINTS = (
    "/range", "/knn", "/append", "/delete", "/compact",
    "/healthz", "/stats", "/metrics",
)

_POST_ENDPOINTS = ("/range", "/knn", "/append", "/delete", "/compact")


def _endpoint_label(path: str) -> str:
    """Bounded metrics label for a request path.

    Known routes map to themselves; the whole ``/trace/*`` family shares
    one label (trace ids must not grow the registry); everything else is
    ``"other"`` so a scanner cannot either.
    """
    if path in KNOWN_ENDPOINTS:
        return path.lstrip("/")
    if path == "/trace/recent" or path.startswith("/trace/"):
        return "trace"
    return "other"


def _get_route(svc: QueryService, registry: dict, path: str):
    """Shared GET routing: ``(status, payload)`` for the JSON endpoints.

    ``/metrics`` is not handled here: its body is Prometheus text and
    the order it is counted in is transport-specific (rendered strictly
    before the request is counted, so scrapes stay monotonic).
    """
    if path == "/healthz":
        if svc.draining:
            return 503, {"status": "draining", "indexes": sorted(registry)}
        return 200, {"status": "ok", "indexes": sorted(registry)}
    if path == "/stats":
        return 200, svc.stats()
    if path == "/trace/recent":
        return 200, {
            "traces": svc.tracer.recent(), **svc.tracer.counters()
        }
    if path.startswith("/trace/"):
        trace_id = path[len("/trace/"):]
        trace = svc.tracer.get_trace(trace_id)
        if trace is None:
            return 404, {
                "error": f"no retained trace {trace_id!r} (it may have "
                         "been dropped by sampling or rotated out of "
                         "the ring)"
            }
        return 200, trace
    return 404, {"error": f"unknown path {path}"}


def _post_action(svc: QueryService, registry: dict, path: str, raw: bytes):
    """Shared POST routing: validate ``raw`` and stage the service call.

    Returns one of::

        ("send", status, payload, headers)   # answer immediately
        ("compact", index_path)              # run svc.compact (blocking)
        ("wait", kind, pending)              # await the _Pending handle

    The staging split is what lets both front ends share every
    validation and error contract while waiting their own way: the
    threaded handler blocks in ``pending.result``, the asyncio handler
    bridges :meth:`_Pending.add_done_callback` into its event loop.
    Service-typed errors (overload, draining, malformed input) raise to
    the caller, which maps them through :func:`_error_response`.
    """
    req = json.loads(raw or b"{}")
    if not isinstance(req, dict):
        return ("send", 400,
                {"error": "request body must be a JSON object"}, None)
    name = req.get("index", "default")
    if name not in registry:
        return ("send", 404,
                {"error": f"unknown index {name!r}",
                 "indexes": sorted(registry)}, None)
    if path == "/compact":
        return ("compact", registry[name])
    if path == "/append":
        return ("wait", "append", svc.submit_append(
            registry[name], np.asarray(req["rows"], dtype=np.float64)
        ))
    if path == "/delete":
        return ("wait", "delete", svc.submit_delete(
            registry[name], req["ids"]
        ))
    queries = np.asarray(req["queries"], dtype=np.float64)
    if path == "/knn":
        return ("wait", "knn", svc.submit(
            registry[name], queries, k=int(req.get("k", 1))
        ))
    return ("wait", "range", svc.submit(
        registry[name], queries, eps=req.get("eps")
    ))


def _format_result(kind: str, res) -> dict:
    """Shared 200-payload formatting for an awaited service result."""
    if kind == "append":
        return {"ids": res.tolist()}
    if kind == "delete":
        return {"deleted": int(res)}
    if kind == "knn":
        return _knn_payload(res)
    return _range_payload(res)


def _error_response(exc: BaseException):
    """Map an exception to the shared JSON error contract.

    The same chain the HTTP layer has always applied: admission
    rejection -> 429 + Retry-After, draining -> 503, deadline -> 504,
    malformed input -> 400, anything else -> a JSON 500 (a stack trace
    never crosses the wire).  Returns ``(status, payload, headers)``.
    """
    if isinstance(exc, ServiceOverloaded):
        return (429, {"error": str(exc), "retry_after": exc.retry_after},
                {"Retry-After": f"{exc.retry_after:.3f}"})
    if isinstance(exc, ServiceShuttingDown):
        return 503, {"error": str(exc)}, None
    if isinstance(exc, DeadlineExceeded):
        return 504, {"error": str(exc)}, None
    if isinstance(exc, (KeyError, TypeError, ValueError)):
        return 400, {"error": str(exc)}, None
    return 500, {"error": f"{type(exc).__name__}: {exc}"}, None


_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    413: "Content Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class AsyncHTTPServer:
    """asyncio HTTP/1.1 front end with the threaded server's surface.

    A stdlib-only server (``asyncio.start_server`` plus a hand-rolled
    HTTP/1.1 parser with keep-alive) answering the exact same routes,
    JSON contracts, and bit-identical payloads as the threaded front
    end.  The difference is what a *waiting* request costs: the threaded
    server parks one OS thread per in-flight request inside
    ``_Pending.result``; here the handler coroutine registers a
    :meth:`_Pending.add_done_callback` that trampolines the answer back
    into the event loop, so hundreds of requests can sit in the
    micro-batcher while the process holds a handful of threads.
    Blocking service calls that do not ride a callback -- admission
    itself (which may load an index from disk on a cache miss) and
    ``/compact`` -- hop through ``loop.run_in_executor``.

    The lifecycle mirrors ``ThreadingHTTPServer`` so callers stay
    agnostic: the listening socket binds in the constructor
    (``server_address`` is final immediately, ephemeral port included),
    ``serve_forever()`` runs the event loop on the calling thread,
    ``shutdown()`` is thread-safe and blocks until the loop exits, and
    ``server_close()`` releases the socket.  On shutdown, in-flight
    handler tasks are cancelled by the loop teardown (their sockets
    close with it).

    ``max_inflight`` bounds concurrently admitted POSTs *at the front
    door*: past it, requests are answered 429 + ``Retry-After`` before
    any service work, so an open-loop flood cannot pile unbounded
    decode/dispatch work behind the event loop.
    """

    def __init__(
        self,
        registry: "dict[str, Path]",
        service: QueryService,
        *,
        host: str = "127.0.0.1",
        port: int = 8787,
        max_body_bytes: int = 8 << 20,
        max_inflight: int = 512,
    ) -> None:
        self.registry = dict(registry)
        self.service = service
        self.max_body_bytes = int(max_body_bytes)
        self.max_inflight = int(max_inflight)
        # Bind eagerly so server_address is usable before serve_forever
        # (tests and the CLI read the ephemeral port right after build).
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._sock.bind((host, port))
            self._sock.listen(128)
        except OSError:
            self._sock.close()
            raise
        self._sock.setblocking(False)
        self.server_address = self._sock.getsockname()
        self._lifecycle = threading.Lock()
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._stop_event: "asyncio.Event | None" = None
        self._shutdown_requested = False
        self._stopped = threading.Event()
        self._stopped.set()  # not serving yet
        # Loop-confined counters (only the event loop mutates them).
        self._inflight = 0
        self._open_connections = 0
        m = service.metrics
        self._http_requests = m.counter(
            "repro_http_requests_total",
            "HTTP requests answered, by endpoint and status code",
            labels=("endpoint", "status"),
        )
        self._http_latency = m.histogram(
            "repro_http_request_seconds",
            "HTTP request handling latency, by endpoint",
            labels=("endpoint",),
        )
        m.gauge(
            "repro_http_open_connections",
            "TCP connections currently open on the async front end",
            fn=lambda: float(self._open_connections),
        )
        m.gauge(
            "repro_http_inflight_requests",
            "POST requests currently admitted on the async front end",
            fn=lambda: float(self._inflight),
        )

    # -- lifecycle (ThreadingHTTPServer-compatible) --------------------

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        """Run the event loop on this thread until :meth:`shutdown`."""
        self._stopped.clear()
        try:
            asyncio.run(self._serve())
        finally:
            with self._lifecycle:
                self._loop = None
                self._stop_event = None
            self._stopped.set()

    async def _serve(self) -> None:
        with self._lifecycle:
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
            if self._shutdown_requested:
                self._stop_event.set()
        server = await asyncio.start_server(
            self._handle_connection, sock=self._sock
        )
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            # Returns once the listener closes; in-flight handler tasks
            # are cancelled by asyncio.run's teardown right after.
            await server.wait_closed()

    def shutdown(self) -> None:
        """Thread-safe stop; blocks until ``serve_forever`` returns."""
        with self._lifecycle:
            self._shutdown_requested = True
            loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # the loop tore down between the check and the call
        self._stopped.wait(timeout=10.0)

    def server_close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._open_connections += 1
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break  # clean EOF between requests
                if line in (b"\r\n", b"\n"):
                    continue  # stray blank line, tolerate like stdlib
                t0 = time.perf_counter()
                parts = line.decode("latin-1", "replace").split()
                if len(parts) != 3 or not parts[2].upper().startswith(
                    "HTTP/"
                ):
                    await self._write(
                        writer, 400, {"error": "malformed request line"},
                        close=True, request_id=trace_mod.new_id(),
                    )
                    break
                method, target, version = parts
                headers: dict[str, str] = {}
                truncated = False
                while True:
                    hline = await reader.readline()
                    if hline in (b"\r\n", b"\n"):
                        break
                    if not hline:
                        truncated = True
                        break
                    key, sep, value = (
                        hline.decode("latin-1", "replace").partition(":")
                    )
                    if sep:
                        headers[key.strip().lower()] = value.strip()
                if truncated:
                    break
                conn_tokens = headers.get("connection", "").lower()
                keep_alive = (
                    "close" not in conn_tokens
                    if version.upper() == "HTTP/1.1"
                    else "keep-alive" in conn_tokens
                )
                must_close = await self._handle_request(
                    reader, writer, method, target, headers, t0, keep_alive
                )
                if must_close or not keep_alive:
                    break
        except asyncio.CancelledError:
            # Server shutdown: loop teardown cancels connection tasks.
            # Finish quietly -- a cancelled-state task trips a noisy
            # done-callback in Python 3.11's asyncio.streams.
            pass
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # the peer went away mid-request
        finally:
            self._open_connections -= 1
            writer.close()

    async def _handle_request(
        self, reader, writer, method, target, headers, t0, keep_alive
    ) -> bool:
        """Serve one parsed request.

        Returns True when the connection must close afterwards (an
        unread body after a 413 leaves the stream unframeable).
        """
        endpoint = _endpoint_label(target)
        # Root span per request: honors an inbound X-Request-Id (or a
        # W3C traceparent) and is the id echoed on the response.
        span = self.service.tracer.start_trace(
            f"{method} {endpoint}",
            request_id=headers.get("x-request-id"),
            traceparent=headers.get("traceparent"),
            attrs={"method": method, "path": target},
        )
        rid = span.trace_id
        with trace_mod.activate(span):
            if method == "GET" and target == "/metrics":
                body = self.service.metrics.render().encode()
                await self._write(
                    writer, 200, body, content_type=PROMETHEUS_CONTENT_TYPE,
                    close=not keep_alive, request_id=rid,
                )
                # Counted after the write, mirroring the threaded front
                # end: the text is a snapshot from strictly before this
                # request was counted, so scraped counters stay
                # monotonic.
                self._count(endpoint, 200, t0)
                span.set_attr("http.status", 200)
                span.finish()
                return False
            extra: "dict[str, str] | None" = None
            must_close = False
            if method == "GET":
                code, payload = _get_route(
                    self.service, self.registry, target
                )
            elif method == "POST":
                code, payload, extra, must_close = await self._handle_post(
                    reader, target, headers, span
                )
            else:
                code, payload = 501, {"error": f"unsupported method {method}"}
            # Counted before the body is written -- same guarantee as the
            # threaded front end: a client holding the response always
            # finds its request in /metrics.
            self._count(endpoint, code, t0)
            await self._write(
                writer, code, payload, headers=extra,
                close=must_close or not keep_alive, request_id=rid,
            )
        span.set_attr("http.status", code)
        span.finish()
        return must_close

    async def _handle_post(self, reader, target, headers, span):
        """Returns ``(status, payload, extra_headers, must_close)``."""
        try:
            length = int(headers.get("content-length", "0"))
            if length > self.max_body_bytes:
                # Body left unread: the stream cannot be re-framed.
                return (
                    413,
                    {"error": f"request body of {length} bytes exceeds "
                              f"the {self.max_body_bytes} byte limit"},
                    None,
                    True,
                )
            raw = await reader.readexactly(length) if length else b""
            # Body drained first: under keep-alive, even a 404 must
            # leave the stream positioned at the next request line.
            if target not in _POST_ENDPOINTS:
                return 404, {"error": f"unknown path {target}"}, None, False
            if self._inflight >= self.max_inflight:
                # Front-door admission: shed before any service work so
                # a flood cannot queue unbounded decode/dispatch jobs.
                retry_after = 0.05
                return (
                    429,
                    {"error": f"{self.max_inflight} requests already in "
                              "flight; back off and retry",
                     "retry_after": retry_after},
                    {"Retry-After": f"{retry_after:.3f}"},
                    False,
                )
            self._inflight += 1
            try:
                loop = asyncio.get_running_loop()
                # Validation + admission may decode megabytes of JSON
                # and load an index from disk on a cache miss: off-loop.
                # run_in_executor does NOT propagate contextvars, so the
                # copied context carries the root span into submit()
                # (where _Pending captures it).
                ctx = contextvars.copy_context()
                action = await loop.run_in_executor(
                    None, ctx.run, _post_action, self.service,
                    self.registry, target, raw,
                )
                if action[0] == "send":
                    return action[1], action[2], action[3], False
                if action[0] == "compact":
                    out = await loop.run_in_executor(
                        None, self.service.compact, action[1]
                    )
                    return 200, {"compacted": True, **out}, None, False
                _, kind, pending = action
                res = await self._await_pending(pending)
                return 200, _format_result(kind, res), None, False
            finally:
                self._inflight -= 1
        except (ConnectionError, asyncio.IncompleteReadError):
            raise  # the peer died; unwind to the connection loop
        except Exception as exc:  # noqa: BLE001 -- shared JSON contract
            span.record_error(exc)
            code, payload, extra = _error_response(exc)
            return code, payload, extra, False

    async def _await_pending(self, pending: _Pending):
        """Threadless wait on a :class:`_Pending`.

        The pending's done-callback (dispatcher thread) resolves an
        asyncio future via ``call_soon_threadsafe`` -- the asyncio
        mirror of the 30 s ``pending.result`` the threaded handler
        blocks in, raising the same typed errors.
        """
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()

        def _resolve(p: _Pending) -> None:
            if fut.cancelled():
                return
            if p._error is not None:
                fut.set_exception(p._error)
            else:
                fut.set_result(p._result)

        def _bridge(p: _Pending) -> None:
            try:
                loop.call_soon_threadsafe(_resolve, p)
            except RuntimeError:
                pass  # loop already closed (shutdown mid-request)

        pending.add_done_callback(_bridge)
        try:
            return await asyncio.wait_for(fut, timeout=30.0)
        except TimeoutError as exc:
            if isinstance(exc, ServiceError):
                raise  # the service's own DeadlineExceeded -> 504
            raise TimeoutError(
                "query not answered within the timeout"
            ) from None

    # -- response plumbing ---------------------------------------------

    def _count(self, endpoint: str, code: int, t0: float) -> None:
        self._http_requests.inc(endpoint=endpoint, status=str(code))
        self._http_latency.observe(
            time.perf_counter() - t0, endpoint=endpoint
        )

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        code: int,
        payload,
        *,
        content_type: str = "application/json",
        headers: "dict[str, str] | None" = None,
        close: bool = False,
        request_id: "str | None" = None,
    ) -> None:
        body = (
            payload if isinstance(payload, bytes)
            else json.dumps(payload).encode()
        )
        head = [
            f"HTTP/1.1 {code} {_HTTP_REASONS.get(code, 'OK')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        if request_id is not None:
            head.append(f"X-Request-Id: {request_id}")
        for key, value in (headers or {}).items():
            head.append(f"{key}: {value}")
        if close:
            head.append("Connection: close")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        )
        await writer.drain()


def make_server(
    indexes: "dict[str, str | Path]",
    host: str = "127.0.0.1",
    port: int = 8787,
    *,
    service: QueryService | None = None,
    workers: "int | str | WorkerPlan | None" = 0,
    precision: str = "fp64",
    max_queue_depth: int = 256,
    verify: str = "header",
    max_body_bytes: int = 8 << 20,
    frontend: str = "thread",
    max_inflight: "int | None" = None,
    trace_sample: float = 0.0,
    trace_log: "str | Path | None" = None,
    slow_ms: float | None = None,
):
    """Build (but do not run) the JSON-over-HTTP query server.

    ``indexes`` maps request-visible names to persisted index paths; the
    paths are validated (header magic/version) eagerly so a bad registry
    fails at startup, not on the first request.  Call
    ``serve_forever()`` on the result (and ``shutdown()`` to stop); the
    attached :class:`QueryService` is started with the server and
    stopped when the server closes.

    ``frontend`` selects the transport: ``"thread"`` (the default) is
    the keep-alive ``ThreadingHTTPServer`` -- one thread per connection;
    ``"async"`` is :class:`AsyncHTTPServer` -- one event loop for every
    connection, with in-flight requests parked on callbacks instead of
    threads.  Both serve identical routes, contracts, and bit-identical
    answers; ``serve_forever``/``shutdown``/``server_close`` behave the
    same on either.  ``max_inflight`` bounds concurrently admitted POSTs
    on the async front end (default ``2 * max_queue_depth + 16``);
    ignored for the threaded one, whose thread-per-connection model is
    bounded by the service's own admission queue.

    Every failure mode answers with well-formed JSON, never a stack
    trace: 400 (malformed request), 404 (unknown path/index), 413 (body
    over ``max_body_bytes``), 429 + ``Retry-After`` (admission queue
    full), 503 (draining), 500 (anything unexpected, as
    ``{"error": ...}``).

    Tracing: every request opens a root span and every response --
    errors included -- echoes its trace id as ``X-Request-Id``.
    ``trace_sample`` is the probability a completed trace is *retained*
    for ``GET /trace/recent`` / ``/trace/<id>`` (errored traces are
    always kept); ``trace_log`` appends retained spans to a JSONL file
    (``python -m repro trace report`` renders it); ``slow_ms`` always
    retains traces whose root ran at least that long (the slow-query
    log).  These knobs are ignored when an explicit ``service`` (with
    its own tracer) is passed.
    """
    if frontend not in ("thread", "async"):
        raise ValueError(
            f"frontend must be 'thread' or 'async'; got {frontend!r}"
        )
    registry = {name: Path(p) for name, p in indexes.items()}
    if not registry:
        raise ValueError("at least one index must be registered")
    for name, path in registry.items():
        # Fail fast on bad registrations: mutable stores validate their
        # manifest, immutable ones their header magic/version.
        if is_mutable_index(path):
            read_manifest(path)
        else:
            read_header(path)
    svc = service or QueryService(
        workers=workers,
        precision=precision,
        max_queue_depth=max_queue_depth,
        verify=verify,
        tracer=trace_mod.Tracer(
            sample=trace_sample,
            jsonl_path=trace_log,
            slow_threshold_s=(
                float(slow_ms) / 1e3 if slow_ms is not None else None
            ),
        ),
    )
    http_requests = svc.metrics.counter(
        "repro_http_requests_total",
        "HTTP requests answered, by endpoint and status code",
        labels=("endpoint", "status"),
    )
    http_latency = svc.metrics.histogram(
        "repro_http_request_seconds",
        "HTTP request handling latency, by endpoint",
        labels=("endpoint",),
    )
    class Handler(BaseHTTPRequestHandler):
        # Keep-alive: clients reuse one TCP connection across requests.
        # Content-Length is always sent, so response framing is explicit
        # (HTTP/1.0 would close the socket after every response).
        protocol_version = "HTTP/1.1"

        # Serving diagnostics go through the return payloads; the default
        # per-request stderr line would swamp concurrent smoke runs.
        def log_message(self, fmt, *args):  # noqa: N802 (stdlib name)
            pass

        def _begin(self) -> None:
            self._t0 = time.perf_counter()
            # Unknown paths share one label so a scanner cannot grow the
            # registry without bound.
            self._endpoint = _endpoint_label(self.path)
            # Root span per request; its trace id doubles as the
            # X-Request-Id echoed on every response.
            self._span = svc.tracer.start_trace(
                f"{self.command} {self._endpoint}",
                request_id=self.headers.get("X-Request-Id"),
                traceparent=self.headers.get("traceparent"),
                attrs={"method": self.command, "path": self.path},
            )

        def _finish(self, code: int) -> None:
            http_requests.inc(endpoint=self._endpoint, status=str(code))
            http_latency.observe(
                time.perf_counter() - self._t0, endpoint=self._endpoint
            )

        def _send(
            self, code: int, payload: dict,
            headers: "dict[str, str] | None" = None,
        ) -> None:
            body = json.dumps(payload).encode()
            # Counted before the body is written: a client holding the
            # response is guaranteed to find the request in /metrics.
            self._finish(code)
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.send_header("X-Request-Id", self._span.trace_id)
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)
            self._span.set_attr("http.status", code)
            self._span.finish()

        def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
            self._begin()
            with trace_mod.activate(self._span):
                if self.path == "/metrics":
                    # Rendered before this request is counted: the text
                    # is a snapshot taken strictly before the response
                    # completes, so counters stay monotonic across
                    # scrapes.
                    body = svc.metrics.render().encode()
                    self.send_response(200)
                    self.send_header(
                        "Content-Type", PROMETHEUS_CONTENT_TYPE
                    )
                    self.send_header("Content-Length", str(len(body)))
                    self.send_header("X-Request-Id", self._span.trace_id)
                    self.end_headers()
                    self.wfile.write(body)
                    self._finish(200)
                    self._span.set_attr("http.status", 200)
                    self._span.finish()
                    return
                code, payload = _get_route(svc, registry, self.path)
                self._send(code, payload)

        def do_POST(self) -> None:  # noqa: N802 (stdlib casing)
            self._begin()
            # The root span is ambient for the whole handling block, so
            # submit() (via _post_action) attributes the request's
            # queue/dispatch/split child spans to it.
            with trace_mod.activate(self._span):
                try:
                    length = int(self.headers.get("Content-Length", "0"))
                    if length > max_body_bytes:
                        # The oversized body is deliberately left unread,
                        # so the connection cannot be re-framed: close it
                        # rather than desync keep-alive parsing on the
                        # leftovers.
                        self.close_connection = True
                        self._send(
                            413,
                            {"error": f"request body of {length} bytes "
                                      f"exceeds the {max_body_bytes} byte "
                                      "limit"},
                            headers={"Connection": "close"},
                        )
                        return
                    raw = self.rfile.read(length)
                    # Body drained first: under keep-alive, even a 404
                    # must leave the stream positioned at the next
                    # request line.
                    if self.path not in _POST_ENDPOINTS:
                        self._send(
                            404, {"error": f"unknown path {self.path}"}
                        )
                        return
                    action = _post_action(svc, registry, self.path, raw)
                    if action[0] == "send":
                        _, code, payload, headers = action
                        self._send(code, payload, headers)
                    elif action[0] == "compact":
                        out = svc.compact(action[1])
                        self._send(200, {"compacted": True, **out})
                    else:
                        _, kind, pending = action
                        res = pending.result(timeout=30.0)
                        self._send(200, _format_result(kind, res))
                except Exception as exc:  # noqa: BLE001 -- a JSON error
                    # beats a dropped connection (e.g. a dispatch
                    # TimeoutError).
                    self._span.record_error(exc)
                    code, payload, headers = _error_response(exc)
                    self._send(code, payload, headers)

    if frontend == "async":
        server: "ThreadingHTTPServer | AsyncHTTPServer" = AsyncHTTPServer(
            registry, svc, host=host, port=port,
            max_body_bytes=max_body_bytes,
            max_inflight=(
                max_inflight if max_inflight is not None
                else 2 * max_queue_depth + 16
            ),
        )
    else:
        server = ThreadingHTTPServer((host, port), Handler)
    server.service = svc  # type: ignore[attr-defined]
    svc.start()
    _logger.info(
        "server built",
        extra={
            "frontend": frontend,
            "indexes": ",".join(sorted(registry)),
            "host": server.server_address[0],
            "port": int(server.server_address[1]),
            "trace_sample": svc.tracer.sample,
        },
    )
    _orig_close = server.server_close

    def _close() -> None:
        svc.stop()
        svc.tracer.close()  # flush the JSONL exporter, if any
        _orig_close()

    server.server_close = _close  # type: ignore[method-assign]
    return server


def run_self_test(
    index_path: str | Path,
    *,
    n_clients: int = 4,
    queries_per_client: int = 8,
    max_queue_depth: int = 256,
    verify: str = "header",
    frontend: str = "thread",
    trace_sample: float = 0.0,
    trace_log: "str | Path | None" = None,
    slow_ms: "float | None" = None,
) -> dict:
    """One-shot serve smoke: spin up, hammer, verify, shut down.

    Starts the HTTP server (threaded or async ``frontend``) on an
    ephemeral port, fires ``n_clients``
    concurrent :class:`~repro.service.client.ServiceClient` threads at
    ``/range`` and ``/knn`` for one cached index, and verifies every
    HTTP answer against a direct serial :class:`QueryEngine` call on the
    same points.  The retrying client absorbs any 429s the admission
    queue emits (CI runs this with ``service.dispatch`` delay faults
    armed and a small ``max_queue_depth`` to force exactly that), so the
    smoke passes iff every request ultimately lands bit-exact.  Returns
    a summary dict (raises on any mismatch) -- the CI
    ``serve --self-test`` path.
    """
    from repro.service.client import ServiceClient

    index_path = Path(index_path)
    server = make_server(
        {"default": index_path}, port=0,
        max_queue_depth=max_queue_depth, verify=verify, frontend=frontend,
        trace_sample=trace_sample, trace_log=trace_log, slow_ms=slow_ms,
    )
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    engine = server.service.cache.get(index_path)  # type: ignore[attr-defined]
    from repro.service.query import sample_queries

    all_queries = sample_queries(
        engine.source, engine.eps, n_clients * queries_per_client, seed=0
    )
    errors: list[str] = []
    retries = [0] * n_clients

    def client(ci: int) -> None:
        rows = all_queries[
            ci * queries_per_client : (ci + 1) * queries_per_client
        ]
        try:
            sc = ServiceClient(host, port, timeout=30.0, max_attempts=8)
            got = sc.range_query(rows.tolist(), index="default")
            want = engine.range_query(rows)
            want_sets = [set() for _ in range(rows.shape[0])]
            for i, j in zip(want.pairs_i.tolist(), want.pairs_j.tolist()):
                want_sets[i].add(j)
            for i, neigh in enumerate(got["neighbors"]):
                if set(neigh) != want_sets[i]:
                    errors.append(f"client {ci}: range mismatch on query {i}")
            got_knn = sc.knn_query(rows.tolist(), k=3, index="default")
            want_knn = engine.knn_query(rows, 3)
            if got_knn["indices"] != want_knn.indices.tolist():
                errors.append(f"client {ci}: knn mismatch")
            retries[ci] = sc.retries
            sc.close()
        except Exception as exc:  # noqa: BLE001 -- surfaced in the summary
            errors.append(f"client {ci}: {exc!r}")

    threads = [
        threading.Thread(target=client, args=(ci,)) for ci in range(n_clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stats = server.service.stats()  # type: ignore[attr-defined]
    server.shutdown()
    server.server_close()
    thread.join(timeout=5.0)
    if errors:
        raise AssertionError("; ".join(errors))
    return {
        "clients": n_clients,
        "queries_per_client": queries_per_client,
        "client_retries": sum(retries),
        "frontend": frontend,
        "stats": stats,
    }


__all__ = [
    "AdaptiveWindow",
    "AsyncHTTPServer",
    "IndexCache",
    "QueryService",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceShuttingDown",
    "DeadlineExceeded",
    "make_server",
    "run_self_test",
]
