"""Concurrent request layer: index cache, micro-batching, JSON-over-HTTP.

Three pieces stack into the serving path:

* :class:`IndexCache` -- a thread-safe LRU of loaded
  :class:`~repro.service.query.QueryEngine`\\ s keyed by ``(resolved
  path, eps)``: the eps ties the cache entry to the grid the index was
  built at, so two indexes over the same dataset at different radii are
  distinct entries.  Hits hand back the live engine (loading an index is
  the expensive part a serving layer must amortize -- the
  ``query_service`` benchmark entry measures exactly this against
  rebuild-per-query).

* :class:`QueryService` -- the **micro-batching queue**.  Concurrent
  small queries against the same ``(engine, eps, kind, k)`` are drained
  from one queue inside a short coalescing window, concatenated into a
  single query matrix, answered by **one** executor batch, and split
  back per request.  Batching changes only how many engine calls run --
  at FP64 the split results are bit-identical to per-request serial
  calls (same contract the join executors carry; tests/test_service.py
  hammers one cached index from N threads and compares against serial).
  Dispatch runs on one background thread; the engine call itself fans
  out on the existing :class:`~repro.core.engine.WorkerPlan`.

* :func:`make_server` -- stdlib-only JSON-over-HTTP
  (``http.server.ThreadingHTTPServer``): ``POST /range`` and ``POST
  /knn`` submit through the service (each HTTP connection thread is a
  concurrent client, so the micro-batcher sees real concurrency), ``GET
  /healthz`` reports liveness, and ``GET /stats`` / ``GET /metrics``
  are the JSON and Prometheus-text views of the same
  :class:`~repro.service.metrics.MetricsRegistry` (cache/batch/queue
  counters plus per-endpoint HTTP totals and latency histograms).  Only
  **registered** index names are served -- requests cannot make the
  process open arbitrary filesystem paths.

Fault tolerance (see docs/ARCHITECTURE.md "Fault tolerance"):

* **Admission control** -- the submission queue is bounded
  (``max_queue_depth``); a full queue rejects *fast* with
  :class:`ServiceOverloaded` in-process and ``429 Too Many Requests`` +
  ``Retry-After`` over HTTP, so overload produces immediate backpressure
  instead of unbounded memory growth and timeout storms.
* **Deadlines** -- ``submit(..., deadline_s=...)`` attaches a
  per-request deadline that rides into batch dispatch: a request already
  past its deadline is *failed* with :class:`DeadlineExceeded`, never
  executed (the engine call its batch runs is for the still-live
  requests only).
* **Graceful shutdown** -- :meth:`QueryService.stop` (``drain=True``)
  fails everything still queued immediately with
  :class:`ServiceShuttingDown` instead of leaving waiters to their own
  timeouts; ``drain=False`` serves the queue out first.  While stopping,
  ``/healthz`` reports ``draining`` (503) and new submissions are
  refused.
"""

from __future__ import annotations

import hashlib
import json
import queue
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import numpy as np

from repro import faults
from repro.core import engine as _engine_mod
from repro.core.engine import WorkerPlan
from repro.core.results import JoinResult
from repro.index.delta import (
    MANIFEST_NAME,
    CompactionInProgress,
    MutableIndex,
    is_mutable_index,
    read_manifest,
)
from repro.index.persist import HEADER_NAME, read_header
from repro.service.metrics import (
    BATCH_FILL_BUCKETS,
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
)
from repro.service.query import KnnResult, QueryEngine


class ServiceError(RuntimeError):
    """Base class for the service's typed request-rejection errors."""


class ServiceOverloaded(ServiceError):
    """The bounded submission queue is full; retry after backing off.

    ``retry_after`` is the suggested wait in seconds (the HTTP layer
    forwards it as a ``Retry-After`` header on the 429 it returns).
    """

    def __init__(self, message: str, *, retry_after: float = 0.05) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class ServiceShuttingDown(ServiceError):
    """The service is draining; queued/new requests are refused."""


class DeadlineExceeded(ServiceError, TimeoutError):
    """A request's deadline passed before dispatch; it was not executed."""


class IndexCache:
    """Thread-safe LRU cache of :class:`QueryEngine`\\ s for persisted indexes.

    Parameters
    ----------
    capacity:
        Maximum simultaneously loaded engines; the least recently used is
        evicted past that (its mmap-backed arrays simply lose their last
        reference).
    mmap, precision, workers, verify:
        Forwarded to every :class:`QueryEngine` the cache constructs
        (``verify`` is the :func:`~repro.index.persist.load_index`
        integrity level applied on each cache miss).
    metrics:
        The :class:`~repro.service.metrics.MetricsRegistry` the hit /
        miss / eviction counters live in (one is created when absent).
        ``hits`` / ``misses`` / ``evictions`` remain readable as
        properties; they are views of the registry counters.
    """

    def __init__(
        self,
        capacity: int = 4,
        *,
        mmap: bool = True,
        precision: str = "fp64",
        workers: "int | str | WorkerPlan | None" = 0,
        verify: str = "header",
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._mmap = mmap
        self._precision = precision
        self._workers = workers
        self._verify = verify
        self._entries: "OrderedDict[tuple, QueryEngine]" = OrderedDict()
        # Memo of header digest -> eps so cache hits pay one small file
        # read + hash, not a JSON parse + validation per request.
        self._eps_memo: dict[str, float] = {}
        self._lock = threading.Lock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._c_hits = self.metrics.counter(
            "repro_cache_hits_total",
            "Index-cache lookups served from an already-loaded engine",
        )
        self._c_misses = self.metrics.counter(
            "repro_cache_misses_total",
            "Index-cache lookups that had to load an engine",
        )
        self._c_evictions = self.metrics.counter(
            "repro_cache_evictions_total",
            "Engines evicted past the LRU capacity",
        )
        # len() of a dict is GIL-atomic, so the callback can read it
        # without taking the cache lock (no lock-order coupling between
        # the registry and the cache).
        self.metrics.gauge(
            "repro_cache_loaded",
            "Engines currently resident in the LRU",
            fn=lambda: float(len(self._entries)),
        )
        self.metrics.gauge(
            "repro_cache_capacity", "Index-cache LRU capacity"
        ).set(float(self.capacity))

    @property
    def hits(self) -> int:
        return int(self._c_hits.value())

    @property
    def misses(self) -> int:
        return int(self._c_misses.value())

    @property
    def evictions(self) -> int:
        return int(self._c_evictions.value())

    def _key(self, path: str | Path) -> tuple[str, float, str]:
        """Cache key ``(resolved path, eps, header digest)``.

        The digest of the header *bytes* makes the key exact: rebuilding
        an index at the same path commits a new header (new payload
        checksums and generation tags), so a rewritten index is never
        served stale -- including re-saves that land within mtime
        granularity, which an mtime-based key would miss.  The eps comes
        from a digest-keyed memo: the full header parse (which also
        validates magic/version) only happens the first time a given
        on-disk state is seen.
        """
        resolved = Path(path).resolve()
        try:
            header_bytes = (resolved / HEADER_NAME).read_bytes()
        except OSError as exc:
            raise ValueError(
                f"{resolved} is not a persisted index (no {HEADER_NAME})"
            ) from exc
        digest = hashlib.blake2b(header_bytes, digest_size=16).hexdigest()
        # GIL-atomic read; the memo is only written under the lock, and a
        # racing miss merely re-parses the header.
        eps = self._eps_memo.get(digest)
        if eps is None:
            header = read_header(resolved)
            eps = float(header["scalars"]["eps"])
            with self._lock:
                if len(self._eps_memo) > 64 * max(self.capacity, 1):
                    self._eps_memo.clear()  # stale-state entries, rebuild
                self._eps_memo[digest] = eps
        return str(resolved), eps, digest

    def get(self, path: str | Path) -> QueryEngine:
        """Return the cached engine for a persisted index, loading on miss.

        A mutable store (a :class:`~repro.index.delta.MutableIndex`
        root) is served through :meth:`_get_mutable` -- same LRU, but
        with the generation-swap staleness rule instead of a digest key.
        """
        resolved = Path(path).resolve()
        if (resolved / MANIFEST_NAME).is_file():
            return self._get_mutable(resolved)
        key = self._key(path)
        with self._lock:
            engine = self._entries.get(key)
            if engine is not None:
                self._entries.move_to_end(key)
                self._c_hits.inc()
                return engine
            self._c_misses.inc()
        # Load outside the lock -- the expensive part; a racing duplicate
        # load is harmless (last writer wins, both engines are valid).
        engine = QueryEngine(
            key[0],
            precision=self._precision,
            workers=self._workers,
            mmap=self._mmap,
            verify=self._verify,
        )
        with self._lock:
            self._entries[key] = engine
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._c_evictions.inc()
        return engine

    def _get_mutable(self, resolved: Path) -> MutableIndex:
        """Atomic generation swap for mutable stores.

        The entry is keyed by path alone and stays **hit** as long as the
        engine's own last-committed manifest digest matches the on-disk
        one -- a live writer engine keeps serving through its own seals,
        deletes and compactions (its unsealed buffer must not be dropped
        by a reload).  When the digests diverge (the store was rewritten
        externally), the stale engine is swapped out atomically: requests
        already holding it finish on the old generation, new lookups load
        and see the new one.
        """
        digest = hashlib.blake2b(
            (resolved / MANIFEST_NAME).read_bytes(), digest_size=16
        ).hexdigest()
        key = (str(resolved), "mutable")
        with self._lock:
            engine = self._entries.get(key)
            if (
                engine is not None
                and engine.committed_state_digest == digest
            ):
                self._entries.move_to_end(key)
                self._c_hits.inc()
                return engine
            if engine is not None:
                del self._entries[key]
            self._c_misses.inc()
        engine = MutableIndex(
            resolved,
            precision=self._precision,
            workers=self._workers,
            mmap=self._mmap,
            verify=self._verify,
        )
        with self._lock:
            self._entries[key] = engine
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._c_evictions.inc()
        return engine

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _stats_from(self, snap: dict) -> dict:
        """Build the stats dict from a registry snapshot (shared-registry
        callers reuse one snapshot for service + cache consistency)."""
        return {
            "capacity": self.capacity,
            "loaded": int(snap["repro_cache_loaded"]),
            "hits": int(snap["repro_cache_hits_total"]),
            "misses": int(snap["repro_cache_misses_total"]),
            "evictions": int(snap["repro_cache_evictions_total"]),
        }

    def stats(self) -> dict:
        return self._stats_from(self.metrics.snapshot())


class _Pending:
    """One in-flight request: an event the dispatcher fulfills.

    ``deadline`` is an absolute :func:`time.monotonic` instant (or None);
    the dispatcher fails, rather than executes, a request whose deadline
    has already passed when its batch is dispatched.
    """

    __slots__ = (
        "engine", "queries", "eps", "kind", "k", "deadline",
        "_event", "_result", "_error",
    )

    def __init__(self, engine, queries, eps, kind, k, deadline=None) -> None:
        self.engine = engine
        self.queries = queries
        self.eps = eps
        self.kind = kind  # "range" | "knn"
        self.k = k
        self.deadline = deadline
        self._event = threading.Event()
        self._result = None
        self._error: BaseException | None = None

    def _fulfill(self, result) -> None:
        self._result = result
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        self._error = exc
        self._event.set()

    def result(self, timeout: float | None = None):
        """Block until the dispatcher answers; re-raises its exception."""
        if not self._event.wait(timeout):
            raise TimeoutError("query not answered within the timeout")
        if self._error is not None:
            raise self._error
        return self._result


class QueryService:
    """Micro-batching dispatcher over cached query engines.

    ``submit`` enqueues a request and returns a handle; a single
    background thread drains the queue, coalesces compatible requests
    (same engine, eps, query kind, and k) that arrive within
    ``max_delay_s`` of the first -- or until ``max_batch_points`` query
    rows are buffered -- into **one** engine call, and splits the answer
    back per request.  Use as a context manager, or call
    :meth:`start` / :meth:`stop`.

    The submission queue is bounded at ``max_queue_depth`` requests: a
    full queue makes ``submit`` raise :class:`ServiceOverloaded`
    immediately (admission control -- reject fast, never buffer without
    bound).  ``default_deadline_s`` attaches a deadline to every request
    that does not bring its own.
    """

    def __init__(
        self,
        cache: IndexCache | None = None,
        *,
        max_batch_points: int = 4096,
        max_delay_s: float = 0.002,
        workers: "int | str | WorkerPlan | None" = 0,
        precision: str = "fp64",
        mmap: bool = True,
        batched: bool = False,
        max_queue_depth: int = 256,
        default_deadline_s: float | None = None,
        verify: str = "header",
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        # One registry backs service + cache: adopt an explicit one, else
        # the supplied cache's, else create a fresh one -- so /stats and
        # /metrics always read the same counters.
        if cache is not None:
            self.metrics = metrics if metrics is not None else cache.metrics
            self.cache = cache
        else:
            self.metrics = metrics if metrics is not None else MetricsRegistry()
            self.cache = IndexCache(
                precision=precision, workers=workers, mmap=mmap,
                verify=verify, metrics=self.metrics,
            )
        self.max_batch_points = int(max_batch_points)
        self.max_delay_s = float(max_delay_s)
        self.workers = workers
        self.batched = batched
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.max_queue_depth = int(max_queue_depth)
        self.default_deadline_s = default_deadline_s
        self._queue: "queue.Queue[_Pending]" = queue.Queue(
            maxsize=self.max_queue_depth
        )
        self._stop = threading.Event()
        self._draining = False
        self._thread: threading.Thread | None = None
        self._lifecycle_lock = threading.Lock()
        # All mutable counters live in the registry (atomic under its
        # lock) -- stats() takes one consistent snapshot instead of the
        # old bare-int reads that could be torn mid-dispatch.
        m = self.metrics
        self._c_batches = m.counter(
            "repro_service_batches_dispatched_total",
            "Engine batches dispatched by the micro-batcher",
        )
        self._c_served = m.counter(
            "repro_service_requests_served_total",
            "Requests answered by a dispatched batch",
        )
        self._c_coalesced = m.counter(
            "repro_service_requests_coalesced_total",
            "Requests served in a batch with >= 2 requests",
        )
        self._c_rejected = m.counter(
            "repro_service_requests_rejected_total",
            "Requests refused at admission (bounded queue full)",
        )
        self._c_expired = m.counter(
            "repro_service_requests_expired_total",
            "Requests failed at dispatch because their deadline passed",
        )
        m.gauge(
            "repro_service_queue_depth",
            "Requests currently waiting in the submission queue",
            fn=lambda: float(self._queue.qsize()),
        )
        m.gauge(
            "repro_service_queue_capacity",
            "Admission-control bound on queued requests",
        ).set(float(self.max_queue_depth))
        m.gauge(
            "repro_service_batch_window_seconds",
            "Micro-batch coalescing window",
        ).set(self.max_delay_s)
        m.gauge(
            "repro_service_draining",
            "1 while stop() is refusing new submissions",
            fn=lambda: float(self._draining),
        )
        self._h_fill = m.histogram(
            "repro_service_batch_fill",
            "Requests coalesced per dispatched batch",
            buckets=BATCH_FILL_BUCKETS,
        )
        self._h_dispatch = m.histogram(
            "repro_service_dispatch_seconds",
            "Wall time of one dispatched engine batch",
        )
        # Mutable-index traffic (see repro.index.delta).  The counters
        # are bumped in the same grouped metrics.lock section as the
        # dispatch counters, so a snapshot never tears a mutation apart
        # from its request accounting; the gauges read the live shape of
        # every cached mutable engine.
        self._c_appends = m.counter(
            "repro_mutable_appends_total",
            "Append requests executed against mutable indexes",
        )
        self._c_rows_appended = m.counter(
            "repro_mutable_rows_appended_total",
            "Rows appended to mutable indexes",
        )
        self._c_deletes = m.counter(
            "repro_mutable_deletes_total",
            "Delete requests executed against mutable indexes",
        )
        self._c_tombstones_written = m.counter(
            "repro_mutable_tombstones_written_total",
            "Rows tombstoned by delete requests",
        )
        self._c_compactions = m.counter(
            "repro_mutable_compactions_total",
            "Compactions completed through the service",
        )
        self._h_compaction = m.histogram(
            "repro_mutable_compaction_seconds",
            "Wall time of one compaction (seal + rebuild + commit)",
        )
        m.gauge(
            "repro_mutable_delta_depth",
            "Delta layers (sealed segments + live buffer) summed over "
            "cached mutable indexes",
            fn=lambda: float(sum(
                e.delta_depth
                for e in list(self.cache._entries.values())
                if isinstance(e, MutableIndex)
            )),
        )
        m.gauge(
            "repro_mutable_tombstones",
            "Live tombstones summed over cached mutable indexes",
            fn=lambda: float(sum(
                e.n_tombstones
                for e in list(self.cache._entries.values())
                if isinstance(e, MutableIndex)
            )),
        )
        m.gauge(
            "repro_fork_recoveries",
            "Group batches recovered inline after fork-pool child death",
            fn=lambda: float(_engine_mod.FORK_RECOVERIES),
        )
        m.gauge(
            "repro_faults_armed",
            "Fault-injection specs currently armed",
            fn=lambda: float(len(faults.active())),
        )
        m.gauge(
            "repro_faults_fired",
            "Total injected-fault firings across armed specs",
            fn=lambda: float(
                sum(s.fired for s in faults.active().values())
            ),
        )

    @property
    def batches_dispatched(self) -> int:
        return int(self._c_batches.value())

    @property
    def requests_served(self) -> int:
        return int(self._c_served.value())

    @property
    def requests_coalesced(self) -> int:
        """Requests served in a batch with >= 2 requests."""
        return int(self._c_coalesced.value())

    @property
    def requests_rejected(self) -> int:
        """Requests refused at admission (queue full)."""
        return int(self._c_rejected.value())

    @property
    def requests_expired(self) -> int:
        """Requests failed at dispatch (deadline passed)."""
        return int(self._c_expired.value())

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "QueryService":
        # Locked: concurrent first submits must not each spawn a
        # dispatcher (two loops would split batches that should coalesce).
        with self._lifecycle_lock:
            if self._thread is None or not self._thread.is_alive():
                self._stop.clear()
                self._thread = threading.Thread(
                    target=self._loop, name="repro-query-service", daemon=True
                )
                self._thread.start()
        return self

    @property
    def draining(self) -> bool:
        """True while :meth:`stop` is refusing new submissions."""
        return self._draining

    def stop(self, drain: bool = True) -> None:
        """Stop the dispatcher; never abandon a queued request.

        ``drain=True`` (the default) fails everything still queued
        immediately with :class:`ServiceShuttingDown` -- waiters get a
        typed error now instead of sitting out their own timeouts.
        ``drain=False`` lets the dispatcher serve the queue out first.
        Either way new submissions are refused (``ServiceShuttingDown``)
        until the stop completes; afterwards a submit revives the
        service.
        """
        self._draining = True
        try:
            if not drain:
                # Serve out what was admitted before the drain flag went
                # up; nothing new can join the queue behind it.
                while self._thread is not None and self._thread.is_alive():
                    if self._queue.empty():
                        break
                    time.sleep(0.001)
            self._stop.set()
            if self._thread is not None:
                self._thread.join(timeout=5.0)
                self._thread = None
            # Fail anything still queued rather than leaving its waiters
            # blocked until their own timeouts.
            while True:
                try:
                    pending = self._queue.get_nowait()
                except queue.Empty:
                    break
                pending._fail(
                    ServiceShuttingDown("query service stopped while draining")
                )
        finally:
            self._draining = False

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- submission -----------------------------------------------------

    def engine_for(self, index: "QueryEngine | str | Path") -> QueryEngine:
        if isinstance(index, (QueryEngine, MutableIndex)):
            return index
        return self.cache.get(index)

    def submit(
        self,
        index: "QueryEngine | str | Path",
        queries,
        *,
        eps: float | None = None,
        k: int | None = None,
        deadline_s: float | None = None,
    ) -> _Pending:
        """Enqueue one range (``k=None``) or kNN query batch.

        Starts the dispatcher if it is not running, so the service works
        without an explicit :meth:`start` and a stopped service revives
        on the next submission instead of queueing forever.

        Raises :class:`ServiceShuttingDown` while a :meth:`stop` is in
        progress and :class:`ServiceOverloaded` -- immediately, without
        blocking -- when the bounded queue is full.  ``deadline_s``
        (falling back to ``default_deadline_s``) bounds how stale the
        request may be when its batch dispatches: past the deadline it is
        failed with :class:`DeadlineExceeded` instead of executed.
        """
        if self._draining:
            raise ServiceShuttingDown("query service is draining")
        self.start()
        engine = self.engine_for(index)
        q = np.ascontiguousarray(np.asarray(queries, dtype=np.float64))
        if q.ndim == 1:
            q = q[None, :]
        # Validate here, synchronously: a malformed request must fail its
        # own submit, never poison the micro-batch it would coalesce into
        # (the dispatcher concatenates group members blindly).
        if q.ndim != 2 or q.shape[1] != engine.dim:
            raise ValueError(
                f"queries must be (q, {engine.dim}); got shape {q.shape}"
            )
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        pending = _Pending(
            engine,
            q,
            float(eps) if eps is not None else None,
            "knn" if k is not None else "range",
            int(k) if k is not None else None,
            time.monotonic() + float(deadline_s)
            if deadline_s is not None
            else None,
        )
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            self._c_rejected.inc()
            raise ServiceOverloaded(
                f"submission queue is full ({self.max_queue_depth} requests "
                "queued); back off and retry",
                retry_after=max(self.max_delay_s * 2, 0.05),
            ) from None
        return pending

    def query(self, index, queries, *, eps=None, k=None, timeout=30.0):
        """Blocking convenience: ``submit(...).result(timeout)``."""
        return self.submit(index, queries, eps=eps, k=k).result(timeout)

    # -- mutations ------------------------------------------------------

    def _mutable_engine_for(self, index) -> MutableIndex:
        engine = self.engine_for(index)
        if not isinstance(engine, MutableIndex):
            raise TypeError(
                "index is immutable: append/delete/compact need a store "
                "built with --mutable (see repro.index.delta)"
            )
        return engine

    def _enqueue(self, pending: _Pending) -> _Pending:
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            self._c_rejected.inc()
            raise ServiceOverloaded(
                f"submission queue is full ({self.max_queue_depth} requests "
                "queued); back off and retry",
                retry_after=max(self.max_delay_s * 2, 0.05),
            ) from None
        return pending

    def submit_append(self, index, rows, *, deadline_s=None) -> _Pending:
        """Enqueue an append of ``rows`` to a mutable index.

        Mutations ride the same bounded admission queue as queries (so
        overload produces the same 429 back-pressure) but are never
        coalesced: each executes as its own serialized engine call on the
        dispatcher thread.  The result is the ``int64`` array of ids
        minted for the rows.
        """
        if self._draining:
            raise ServiceShuttingDown("query service is draining")
        self.start()
        engine = self._mutable_engine_for(index)
        r = np.ascontiguousarray(np.asarray(rows, dtype=np.float64))
        if r.ndim == 1:
            r = r[None, :]
        if r.ndim != 2 or r.shape[0] == 0 or r.shape[1] != engine.dim:
            raise ValueError(
                f"rows must be (n >= 1, {engine.dim}); got shape {r.shape}"
            )
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        return self._enqueue(_Pending(
            engine, r, None, "append", None,
            time.monotonic() + float(deadline_s)
            if deadline_s is not None
            else None,
        ))

    def submit_delete(self, index, ids, *, deadline_s=None) -> _Pending:
        """Enqueue a tombstone-delete of ``ids`` from a mutable index.

        The result is the number of rows deleted; unknown or already
        dead ids fail the request with :class:`ValueError` (mapped to
        400 over HTTP) without touching the store.
        """
        if self._draining:
            raise ServiceShuttingDown("query service is draining")
        self.start()
        engine = self._mutable_engine_for(index)
        arr = np.asarray(ids, dtype=np.int64).ravel()
        if arr.size == 0:
            raise ValueError("ids must name at least one row")
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        return self._enqueue(_Pending(
            engine, arr, None, "delete", None,
            time.monotonic() + float(deadline_s)
            if deadline_s is not None
            else None,
        ))

    def append(self, index, rows, *, timeout=30.0):
        """Blocking convenience: ``submit_append(...).result(timeout)``."""
        return self.submit_append(index, rows).result(timeout)

    def delete(self, index, ids, *, timeout=30.0):
        """Blocking convenience: ``submit_delete(...).result(timeout)``."""
        return self.submit_delete(index, ids).result(timeout)

    def compact(self, index) -> dict:
        """Fold sealed segments + tombstones into a new base generation.

        Runs inline on the caller's thread (compaction is minutes-scale
        next to the micro-batch loop; queueing it would head-of-line
        block every query).  A compaction already in flight surfaces as
        :class:`ServiceOverloaded` -- the HTTP layer turns that into a
        429 with ``Retry-After``, matching admission-control semantics.
        """
        engine = self._mutable_engine_for(index)
        try:
            out = engine.compact(wait=False)
        except CompactionInProgress as exc:
            raise ServiceOverloaded(str(exc), retry_after=1.0) from exc
        with self.metrics.lock:
            self._c_compactions.inc()
            self._h_compaction.observe(float(out["duration_s"]))
        return out

    def stats(self) -> dict:
        """JSON view of the metrics registry (one atomic snapshot).

        The keys are unchanged from the bare-counter era; the values now
        come from a single :meth:`MetricsRegistry.snapshot`, so the dict
        is internally consistent and always agrees with ``/metrics``.
        """
        snap = self.metrics.snapshot()
        cache_stats = (
            self.cache._stats_from(snap)
            if self.cache.metrics is self.metrics
            else self.cache.stats()
        )
        return {
            "cache": cache_stats,
            "batches_dispatched": int(
                snap["repro_service_batches_dispatched_total"]
            ),
            "requests_served": int(
                snap["repro_service_requests_served_total"]
            ),
            "requests_coalesced": int(
                snap["repro_service_requests_coalesced_total"]
            ),
            "requests_rejected": int(
                snap["repro_service_requests_rejected_total"]
            ),
            "requests_expired": int(
                snap["repro_service_requests_expired_total"]
            ),
            "queue_depth": int(snap["repro_service_queue_depth"]),
            "max_queue_depth": self.max_queue_depth,
            "draining": bool(snap["repro_service_draining"]),
        }

    # -- dispatch loop --------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            batch = [first]
            points = first.queries.shape[0]
            deadline = time.monotonic() + self.max_delay_s
            # Coalescing window: whatever lands in the queue while the
            # window is open rides in this dispatch.
            while points < self.max_batch_points:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                batch.append(nxt)
                points += nxt.queries.shape[0]
            self._dispatch(batch)

    def _dispatch(self, batch: list[_Pending]) -> None:
        now = time.monotonic()
        groups: "OrderedDict[tuple, list[_Pending]]" = OrderedDict()
        for req in batch:
            # A request past its deadline is failed, not executed -- its
            # waiter has given up (or will, immediately); spending an
            # engine call on it only delays the still-live requests
            # batched behind it.
            if req.deadline is not None and now > req.deadline:
                self._c_expired.inc()
                req._fail(
                    DeadlineExceeded(
                        "request deadline passed before dispatch"
                    )
                )
                continue
            if req.kind in ("append", "delete"):
                # Mutations never coalesce: each is its own serialized
                # engine call, so the op log order equals dispatch order.
                key = (id(req),)
            else:
                key = (id(req.engine), req.eps, req.kind, req.k)
            groups.setdefault(key, []).append(req)
        for reqs in groups.values():
            # Grouped under the registry lock (reentrant) so a snapshot
            # never sees the batch counted but its requests not.
            with self.metrics.lock:
                self._c_batches.inc()
                self._c_served.inc(len(reqs))
                if len(reqs) > 1:
                    self._c_coalesced.inc(len(reqs))
                self._h_fill.observe(float(len(reqs)))
            t0 = time.perf_counter()
            try:
                self._run_group(reqs)
            except BaseException as exc:  # propagate to every waiter
                for req in reqs:
                    req._fail(exc)
            self._h_dispatch.observe(time.perf_counter() - t0)

    def _run_group(self, reqs: list[_Pending]) -> None:
        if faults.ARMED:
            faults.check("service.dispatch")
        engine = reqs[0].engine
        if reqs[0].kind == "append":
            req = reqs[0]
            ids = engine.append(req.queries)
            with self.metrics.lock:
                self._c_appends.inc()
                self._c_rows_appended.inc(int(ids.size))
            req._fulfill(ids)
            return
        if reqs[0].kind == "delete":
            req = reqs[0]
            n = engine.delete(req.queries)
            with self.metrics.lock:
                self._c_deletes.inc()
                self._c_tombstones_written.inc(int(n))
            req._fulfill(int(n))
            return
        cat = (
            np.concatenate([r.queries for r in reqs])
            if len(reqs) > 1
            else reqs[0].queries
        )
        if reqs[0].kind == "knn":
            res = engine.knn_query(cat, reqs[0].k)
            off = 0
            for req in reqs:
                m = req.queries.shape[0]
                req._fulfill(
                    KnnResult(
                        k=res.k,
                        n_points=res.n_points,
                        indices=res.indices[off : off + m],
                        sq_dists=res.sq_dists[off : off + m],
                    )
                )
                off += m
            return
        res = engine.range_query(cat, reqs[0].eps, workers=self.workers,
                                 batched=self.batched)
        off = 0
        for req in reqs:
            m = req.queries.shape[0]
            sel = (res.pairs_i >= off) & (res.pairs_i < off + m)
            sq = res.sq_dists[sel] if res.sq_dists.size else res.sq_dists
            req._fulfill(
                JoinResult(
                    n_left=m,
                    n_right=res.n_right,
                    eps=res.eps,
                    pairs_i=res.pairs_i[sel] - off,
                    pairs_j=res.pairs_j[sel],
                    sq_dists=sq,
                )
            )
            off += m


# ----------------------------------------------------------------------
# JSON-over-HTTP front end (stdlib http.server)
# ----------------------------------------------------------------------


def _range_payload(res: JoinResult) -> dict:
    """Group a range answer per query: neighbor lists + distances."""
    order = np.lexsort((res.pairs_j, res.pairs_i))
    pi = res.pairs_i[order]
    pj = res.pairs_j[order]
    counts = np.bincount(pi, minlength=res.n_left)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    neighbors = [
        pj[bounds[i] : bounds[i + 1]].tolist() for i in range(res.n_left)
    ]
    out = {"n_queries": int(res.n_left), "eps": res.eps, "neighbors": neighbors}
    # Emit the key whenever distances are tracked -- including the
    # zero-pair case (size 0 == 0 pairs), so the response shape does not
    # flip on clients when a request happens to match nothing.
    if res.sq_dists.size == res.pairs_i.size:
        sd = res.sq_dists[order]
        out["sq_dists"] = [
            sd[bounds[i] : bounds[i + 1]].astype(float).tolist()
            for i in range(res.n_left)
        ]
    return out


def make_server(
    indexes: "dict[str, str | Path]",
    host: str = "127.0.0.1",
    port: int = 8787,
    *,
    service: QueryService | None = None,
    workers: "int | str | WorkerPlan | None" = 0,
    precision: str = "fp64",
    max_queue_depth: int = 256,
    verify: str = "header",
    max_body_bytes: int = 8 << 20,
) -> ThreadingHTTPServer:
    """Build (but do not run) the JSON-over-HTTP query server.

    ``indexes`` maps request-visible names to persisted index paths; the
    paths are validated (header magic/version) eagerly so a bad registry
    fails at startup, not on the first request.  Call
    ``serve_forever()`` on the result (and ``shutdown()`` to stop); the
    attached :class:`QueryService` is started with the server and
    stopped when the server closes.

    Every failure mode answers with well-formed JSON, never a stack
    trace: 400 (malformed request), 404 (unknown path/index), 413 (body
    over ``max_body_bytes``), 429 + ``Retry-After`` (admission queue
    full), 503 (draining), 500 (anything unexpected, as
    ``{"error": ...}``).
    """
    registry = {name: Path(p) for name, p in indexes.items()}
    if not registry:
        raise ValueError("at least one index must be registered")
    for name, path in registry.items():
        # Fail fast on bad registrations: mutable stores validate their
        # manifest, immutable ones their header magic/version.
        if is_mutable_index(path):
            read_manifest(path)
        else:
            read_header(path)
    svc = service or QueryService(
        workers=workers,
        precision=precision,
        max_queue_depth=max_queue_depth,
        verify=verify,
    )
    http_requests = svc.metrics.counter(
        "repro_http_requests_total",
        "HTTP requests answered, by endpoint and status code",
        labels=("endpoint", "status"),
    )
    http_latency = svc.metrics.histogram(
        "repro_http_request_seconds",
        "HTTP request handling latency, by endpoint",
        labels=("endpoint",),
    )
    known_endpoints = (
        "/range", "/knn", "/append", "/delete", "/compact",
        "/healthz", "/stats", "/metrics",
    )

    class Handler(BaseHTTPRequestHandler):
        # Serving diagnostics go through the return payloads; the default
        # per-request stderr line would swamp concurrent smoke runs.
        def log_message(self, fmt, *args):  # noqa: N802 (stdlib name)
            pass

        def _begin(self) -> None:
            self._t0 = time.perf_counter()
            # Unknown paths share one label so a scanner cannot grow the
            # registry without bound.
            self._endpoint = (
                self.path.lstrip("/") if self.path in known_endpoints
                else "other"
            )

        def _finish(self, code: int) -> None:
            http_requests.inc(endpoint=self._endpoint, status=str(code))
            http_latency.observe(
                time.perf_counter() - self._t0, endpoint=self._endpoint
            )

        def _send(
            self, code: int, payload: dict,
            headers: "dict[str, str] | None" = None,
        ) -> None:
            body = json.dumps(payload).encode()
            # Counted before the body is written: a client holding the
            # response is guaranteed to find the request in /metrics.
            self._finish(code)
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
            self._begin()
            if self.path == "/healthz":
                if svc.draining:
                    self._send(
                        503,
                        {"status": "draining", "indexes": sorted(registry)},
                    )
                else:
                    self._send(
                        200, {"status": "ok", "indexes": sorted(registry)}
                    )
            elif self.path == "/stats":
                self._send(200, svc.stats())
            elif self.path == "/metrics":
                # Rendered before this request is counted: the text is a
                # snapshot taken strictly before the response completes,
                # so counters stay monotonic across scrapes.
                body = svc.metrics.render().encode()
                self.send_response(200)
                self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                self._finish(200)
            else:
                self._send(404, {"error": f"unknown path {self.path}"})

        def do_POST(self) -> None:  # noqa: N802 (stdlib casing)
            self._begin()
            if self.path not in (
                "/range", "/knn", "/append", "/delete", "/compact"
            ):
                self._send(404, {"error": f"unknown path {self.path}"})
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                if length > max_body_bytes:
                    self._send(
                        413,
                        {"error": f"request body of {length} bytes exceeds "
                                  f"the {max_body_bytes} byte limit"},
                    )
                    return
                req = json.loads(self.rfile.read(length) or b"{}")
                if not isinstance(req, dict):
                    self._send(400, {"error": "request body must be a JSON "
                                              "object"})
                    return
                name = req.get("index", "default")
                if name not in registry:
                    self._send(
                        404, {"error": f"unknown index {name!r}",
                              "indexes": sorted(registry)}
                    )
                    return
                if self.path == "/compact":
                    out = svc.compact(registry[name])
                    self._send(200, {"compacted": True, **out})
                    return
                if self.path == "/append":
                    ids = svc.append(
                        registry[name],
                        np.asarray(req["rows"], dtype=np.float64),
                    )
                    self._send(200, {"ids": ids.tolist()})
                    return
                if self.path == "/delete":
                    deleted = svc.delete(registry[name], req["ids"])
                    self._send(200, {"deleted": int(deleted)})
                    return
                queries = np.asarray(req["queries"], dtype=np.float64)
                if self.path == "/knn":
                    res = svc.query(
                        registry[name], queries, k=int(req.get("k", 1))
                    )
                    self._send(
                        200,
                        {
                            "k": res.k,
                            "indices": res.indices.tolist(),
                            # Padding slots (k > n) carry +inf, which is
                            # not valid JSON -- strict parsers reject
                            # "Infinity"; send null there instead.
                            "sq_dists": [
                                [
                                    float(x) if np.isfinite(x) else None
                                    for x in row
                                ]
                                for row in res.sq_dists
                            ],
                        },
                    )
                else:
                    res = svc.query(
                        registry[name], queries, eps=req.get("eps")
                    )
                    self._send(200, _range_payload(res))
            except ServiceOverloaded as exc:
                self._send(
                    429,
                    {"error": str(exc), "retry_after": exc.retry_after},
                    headers={"Retry-After": f"{exc.retry_after:.3f}"},
                )
            except ServiceShuttingDown as exc:
                self._send(503, {"error": str(exc)})
            except DeadlineExceeded as exc:
                self._send(504, {"error": str(exc)})
            except (KeyError, TypeError, ValueError) as exc:
                self._send(400, {"error": str(exc)})
            except Exception as exc:  # noqa: BLE001 -- a JSON 500 beats a
                # dropped connection (e.g. a dispatch TimeoutError).
                self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    server = ThreadingHTTPServer((host, port), Handler)
    server.service = svc  # type: ignore[attr-defined]
    svc.start()
    _orig_close = server.server_close

    def _close() -> None:
        svc.stop()
        _orig_close()

    server.server_close = _close  # type: ignore[method-assign]
    return server


def run_self_test(
    index_path: str | Path,
    *,
    n_clients: int = 4,
    queries_per_client: int = 8,
    max_queue_depth: int = 256,
    verify: str = "header",
) -> dict:
    """One-shot serve smoke: spin up, hammer, verify, shut down.

    Starts the HTTP server on an ephemeral port, fires ``n_clients``
    concurrent :class:`~repro.service.client.ServiceClient` threads at
    ``/range`` and ``/knn`` for one cached index, and verifies every
    HTTP answer against a direct serial :class:`QueryEngine` call on the
    same points.  The retrying client absorbs any 429s the admission
    queue emits (CI runs this with ``service.dispatch`` delay faults
    armed and a small ``max_queue_depth`` to force exactly that), so the
    smoke passes iff every request ultimately lands bit-exact.  Returns
    a summary dict (raises on any mismatch) -- the CI
    ``serve --self-test`` path.
    """
    from repro.service.client import ServiceClient

    index_path = Path(index_path)
    server = make_server(
        {"default": index_path}, port=0,
        max_queue_depth=max_queue_depth, verify=verify,
    )
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    engine = server.service.cache.get(index_path)  # type: ignore[attr-defined]
    from repro.service.query import sample_queries

    all_queries = sample_queries(
        engine.source, engine.eps, n_clients * queries_per_client, seed=0
    )
    errors: list[str] = []
    retries = [0] * n_clients

    def client(ci: int) -> None:
        rows = all_queries[
            ci * queries_per_client : (ci + 1) * queries_per_client
        ]
        try:
            sc = ServiceClient(host, port, timeout=30.0, max_attempts=8)
            got = sc.range_query(rows.tolist(), index="default")
            want = engine.range_query(rows)
            want_sets = [set() for _ in range(rows.shape[0])]
            for i, j in zip(want.pairs_i.tolist(), want.pairs_j.tolist()):
                want_sets[i].add(j)
            for i, neigh in enumerate(got["neighbors"]):
                if set(neigh) != want_sets[i]:
                    errors.append(f"client {ci}: range mismatch on query {i}")
            got_knn = sc.knn_query(rows.tolist(), k=3, index="default")
            want_knn = engine.knn_query(rows, 3)
            if got_knn["indices"] != want_knn.indices.tolist():
                errors.append(f"client {ci}: knn mismatch")
            retries[ci] = sc.retries
            sc.close()
        except Exception as exc:  # noqa: BLE001 -- surfaced in the summary
            errors.append(f"client {ci}: {exc!r}")

    threads = [
        threading.Thread(target=client, args=(ci,)) for ci in range(n_clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stats = server.service.stats()  # type: ignore[attr-defined]
    server.shutdown()
    server.server_close()
    thread.join(timeout=5.0)
    if errors:
        raise AssertionError("; ".join(errors))
    return {
        "clients": n_clients,
        "queries_per_client": queries_per_client,
        "client_retries": sum(retries),
        "stats": stats,
    }


__all__ = [
    "IndexCache",
    "QueryService",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceShuttingDown",
    "DeadlineExceeded",
    "make_server",
    "run_self_test",
]
