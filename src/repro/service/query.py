"""Batched range/kNN query engine over a persisted or in-memory index.

The serving counterpart of the batch join API: a :class:`QueryEngine`
binds one index (grid or multi-space tree -- freshly built, or restored
by :mod:`repro.index.persist`) to the dataset it was built over and
answers **external** queries through the same engine executors the joins
run on:

* :meth:`QueryEngine.range_query` -- eps-neighbors of a batch of query
  points.  Queries are grouped by index cell (``iter_join_groups``) and
  evaluated by :func:`repro.core.engine.candidate_join` (per-group GEMMs)
  or :func:`repro.core.engine.batched_candidate_join` (padded batch
  GEMMs), emitting into a :class:`~repro.core.results.PairAccumulator`.
  At the default FP64 precision the result is **bit-identical** to the
  dense brute-force reference (:func:`brute_range_query`) -- the same
  contract the index-backed two-source joins carry
  (tests/test_service.py pins it, loaded-from-disk indexes included);
  FP32 carries the usual pair-set contract.

* :meth:`QueryEngine.knn_query` -- k nearest neighbors via **expanding
  radius**: candidates are probed at grid reach ``m`` (sound for radius
  ``m * eps``; see ``GridIndex.candidates_of_cell``), a query resolves
  once its k-th candidate distance is within ``m * eps`` (every point
  that near is guaranteed to be a candidate, so the top-k is exact in
  the working precision), and unresolved queries double ``m``.  The
  starting reach comes from ``GridIndex.stats()``: the measured mean
  candidate count at reach 1 is extrapolated by the ``(2m+1)^r / 3^r``
  cell fan-out to the smallest reach expected to cover ``k``.

The dataset side can stay **out of core**: a mmap-backed
:class:`~repro.data.source.DatasetSource` (what ``load_index`` hands
back) serves candidate rows through ``take`` gathers, touching only the
rows queries actually hit.  ``workers=`` follows the engine convention
(:class:`~repro.core.engine.WorkerPlan`; the fork-based candidate pool
needs a resident dataset and is ignored for source-backed data).
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import trace as trace_mod
from repro.core.engine import (
    GROUP_CHUNK_ELEMS,
    SourceWorkView,
    WorkerPlan,
    batched_candidate_join,
    candidate_join,
    norm_expansion_sq_dists,
    process_candidate_self_join,
)
from repro.core.results import JoinResult, PairAccumulator
from repro.data.source import ArraySource, DatasetSource, as_source
from repro.index.grid import GridIndex
from repro.index.mstree import MultiSpaceTree
from repro.index.persist import LoadedIndex, load_index

#: Query rows per tree group (mirrors MultiSpaceTree.iter_join_groups).
_TREE_GROUP = 1024

#: kNN expansion cap on the derived starting reach (the loop still
#: doubles past it when needed).
_MAX_START_REACH = 8


@dataclass
class KnnResult:
    """Batched kNN answer: per-query neighbor indices and distances.

    ``indices[q]`` holds the ``k`` nearest dataset rows of query ``q`` in
    ascending (squared distance, index) order -- the index tie-break makes
    results deterministic; ``sq_dists`` parallels it.  When the dataset
    has fewer than ``k`` points the tail is padded with ``-1`` indices
    and ``+inf`` distances.
    """

    k: int
    n_points: int
    indices: np.ndarray  # (n_queries, k) int64, -1 padded
    sq_dists: np.ndarray  # (n_queries, k) float32, +inf padded

    @property
    def n_queries(self) -> int:
        return self.indices.shape[0]


def _as_queries(queries) -> np.ndarray:
    q = np.ascontiguousarray(np.asarray(queries, dtype=np.float64))
    if q.ndim == 1:
        q = q[None, :]
    if q.ndim != 2:
        raise ValueError("queries must be (q, d) or a single (d,) point")
    return q


def sample_queries(data, eps: float, n_queries: int, *, seed: int = 0) -> np.ndarray:
    """Realistic query points: dataset rows jittered by ~``eps/4`` total.

    The one definition of the synthetic serving workload shared by the
    CLI demo (``python -m repro query``), the serve self-test, and the
    ``query_service`` benchmark entry -- seed rows are drawn uniformly
    and displaced by a Gaussian whose per-dimension scale shrinks with
    ``sqrt(d)``, so queries land inside their seed row's neighborhood
    and range answers are non-trivial.
    """
    src = as_source(data)
    rng = np.random.default_rng(seed)
    base = src.take(rng.integers(0, src.n, size=int(n_queries)))
    scale = float(eps) / (4.0 * max(int(src.dim), 1) ** 0.5)
    return base + rng.normal(0, scale, size=base.shape)


def brute_range_query(
    data,
    queries,
    eps: float,
    *,
    precision: str = "fp64",
    store_distances: bool = True,
    row_block: int = 1024,
) -> JoinResult:
    """Dense brute-force reference: eps-neighbors by full distance rows.

    Computes each query block's distances to **every** dataset point via
    the shared norm-expansion recombination in the requested working
    precision -- the ground truth :meth:`QueryEngine.range_query` is
    pinned against (bit-identical at FP64, pair-set at FP32).  Intended
    for tests, benchmarks and small validation runs; it is O(q * n * d).
    """
    data = np.ascontiguousarray(as_source(data).materialize())
    q = _as_queries(queries)
    if q.shape[1] != data.shape[1]:
        raise ValueError("query dimensionality does not match the dataset")
    dtype = np.dtype(np.float32 if precision == "fp32" else np.float64)
    wb = data.astype(dtype)
    sb = (wb * wb).sum(axis=1)
    wq = q.astype(dtype)
    sq = (wq * wq).sum(axis=1)
    eps2 = dtype.type(float(eps) ** 2)
    acc = PairAccumulator(store_distances=store_distances)
    for r0 in range(0, q.shape[0], row_block):
        r1 = min(r0 + row_block, q.shape[0])
        d2 = norm_expansion_sq_dists(sq[r0:r1], sb, wq[r0:r1] @ wb.T)
        ii, jj = np.nonzero(d2 <= eps2)
        dd = d2[ii, jj].astype(np.float32) if store_distances else None
        acc.append(ii.astype(np.int64) + r0, jj.astype(np.int64), dd)
    return acc.finalize_join(q.shape[0], data.shape[0], float(eps))


class QueryEngine:
    """Build-once / query-many engine over one index + its dataset.

    Parameters
    ----------
    index:
        A built :class:`GridIndex` or :class:`MultiSpaceTree`, a
        :class:`~repro.index.persist.LoadedIndex`, or a path to a
        persisted index directory (loaded mmap-backed).
    data:
        The dataset the index was built over -- ndarray,
        :class:`~repro.data.source.DatasetSource`, or path.  Optional
        when a persisted index carries its dataset; passing it overrides
        the embedded one.
    precision:
        ``"fp64"`` (default -- range queries bit-identical to the brute
        reference) or ``"fp32"`` (pair-set contract, half the memory
        traffic).
    workers:
        Default engine worker request for queries
        (:meth:`~repro.core.engine.WorkerPlan.resolve`); per-call
        ``workers=`` overrides it.
    mmap, verify:
        Only used when ``index`` is a path: forwarded to
        :func:`~repro.index.persist.load_index` (``verify`` is the
        integrity level -- ``"off"``, ``"header"``, or ``"full"`` -- and
        a failed check raises
        :class:`~repro.index.persist.CorruptIndexError` before any query
        can run).
    candidate_cache_bytes:
        Source-backed (mmap/chunked) datasets only: budget for the
        engine's LRU of gathered candidate blocks (rows + norms, keyed by
        the candidate index set).  Serving workloads hit the same hot
        cells over and over; a hit skips the ``take`` gather and the norm
        recompute entirely, which is most of a warm query's cost.  The
        cached values are exactly what a fresh gather produces (row-local
        ops), so results are unchanged.  ``0`` disables the cache.
    """

    def __init__(
        self,
        index,
        data=None,
        *,
        precision: str = "fp64",
        workers: "int | str | WorkerPlan | None" = 0,
        mmap: bool = True,
        verify: str = "header",
        candidate_cache_bytes: int = 64 << 20,
    ) -> None:
        if precision not in ("fp32", "fp64"):
            raise ValueError("precision must be 'fp32' or 'fp64'")
        if isinstance(index, (str, Path)):
            index = load_index(index, mmap=mmap, verify=verify)
        source: DatasetSource | None = None
        if isinstance(index, LoadedIndex):
            source = index.source
            index = index.index
        if not isinstance(index, (GridIndex, MultiSpaceTree)):
            raise TypeError(f"unsupported index type {type(index).__name__}")
        if data is not None:
            source = as_source(data)
        if source is None:
            raise ValueError(
                "no dataset: the index was persisted without one -- pass "
                "data= (array, source, or path)"
            )
        self.index = index
        self.kind = "grid" if isinstance(index, GridIndex) else "mstree"
        self.eps = float(index.eps)
        self.precision = precision
        self.dtype = np.dtype(np.float32 if precision == "fp32" else np.float64)
        self.workers = workers
        self.source = source
        n = int(source.n)
        if n != int(index.n_points):
            raise ValueError(
                f"dataset has {n} rows but the index covers {index.n_points}"
            )
        self.n_points = n
        self.dim = int(source.dim)
        # Resident fast path: an in-memory dataset is converted once and
        # candidate rows are sliced; mmap/chunked sources stay on disk and
        # are gathered per group (touched rows only).
        self._resident = isinstance(source, ArraySource)
        if self._resident:
            work = source.materialize().astype(self.dtype)
            self._work = work
            self._sq = (work * work).sum(axis=1)
        else:
            self._work = self._sq = None
        self._stats = None  # lazy GridIndex.stats() (kNN starting reach)
        self._chunk = max(1, GROUP_CHUNK_ELEMS // max(self.dim, 1))
        # Candidate-block LRU for source-backed data (see class docstring).
        # Engines are shared across threads (IndexCache + the HTTP
        # server's connection threads), so every cache mutation holds the
        # lock; the gather itself runs outside it (a racing duplicate
        # gather is wasted work, not corruption).
        self._cand_cache_bytes = int(candidate_cache_bytes)
        self._cand_cache: "OrderedDict[bytes, tuple[np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )
        self._cand_cache_used = 0
        self._cand_cache_lock = threading.Lock()

    def _gather_candidates(
        self, cand: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Rows + norms of a candidate index set, LRU-cached by content.

        Keying on a digest of the index bytes makes repeat queries into
        the same cells (the serving hot path) skip both the ``take``
        gather and the norm recompute; values are bitwise what a fresh
        gather yields, so caching never changes an answer.  Thread-safe.
        """
        if self._cand_cache_bytes <= 0:
            wc = self.source.take(cand)
            if wc.dtype != self.dtype:
                wc = wc.astype(self.dtype)
            return wc, (wc * wc).sum(axis=1)
        key = hashlib.blake2b(
            np.ascontiguousarray(cand).tobytes(), digest_size=16
        ).digest()
        with self._cand_cache_lock:
            hit = self._cand_cache.get(key)
            if hit is not None:
                self._cand_cache.move_to_end(key)
                return hit
        wc = self.source.take(cand)
        if wc.dtype != self.dtype:
            wc = wc.astype(self.dtype)
        sc = (wc * wc).sum(axis=1)
        with self._cand_cache_lock:
            if key not in self._cand_cache:
                self._cand_cache[key] = (wc, sc)
                self._cand_cache_used += wc.nbytes + sc.nbytes
            while (
                self._cand_cache_used > self._cand_cache_bytes
                and self._cand_cache
            ):
                _, (ow, os_) = self._cand_cache.popitem(last=False)
                self._cand_cache_used -= ow.nbytes + os_.nbytes
        return wc, sc

    # ------------------------------------------------------------------

    def _iter_groups(self, q: np.ndarray, reach: int = 1):
        if self.kind == "grid":
            return self.index.iter_join_groups(q, reach=reach)
        return self.index.iter_join_groups(q, group=_TREE_GROUP, reach=reach)

    def _query_state(self, q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        wq = q.astype(self.dtype)
        return wq, (wq * wq).sum(axis=1)

    def _check_queries(self, queries) -> np.ndarray:
        q = _as_queries(queries)
        if q.shape[1] != self.dim:
            raise ValueError(
                f"query dimensionality {q.shape[1]} != indexed {self.dim}"
            )
        return q

    def range_query(
        self,
        queries,
        eps: float | None = None,
        *,
        workers: "int | str | WorkerPlan | None" = None,
        batched: bool = False,
        store_distances: bool = True,
    ) -> JoinResult:
        """eps-neighbors of each query point: pairs ``(query, data row)``.

        ``eps`` defaults to the index's cell width and must not exceed it
        (the +-1 cell / +-1 bin candidate window is only sound up to
        there -- larger radii belong to an index built at that eps, which
        is why the serving cache keys on the eps grid).  ``batched=True``
        routes through the padded-batch-GEMM executor (pair-set
        contract); the default per-group path is bit-identical to
        :func:`brute_range_query` at FP64.  ``workers`` fans groups out
        to the engine's fork-based candidate pool -- resident datasets
        and the per-group path only (the two-source batched executor has
        no process form, so ``batched=True`` runs serial); in-order
        commit, bit-identical to serial.
        """
        q = self._check_queries(queries)
        eps = self.eps if eps is None else float(eps)
        if eps <= 0:
            raise ValueError("eps must be positive")
        if eps > self.eps:
            raise ValueError(
                f"eps={eps} exceeds the index cell width {self.eps}; "
                "build (or load) an index at that radius"
            )
        # Square in float64 before any precision cast (the kernels'
        # boundary-tie convention).
        eps2 = self.dtype.type(float(eps) ** 2)
        wq, sq = self._query_state(q)
        wp = WorkerPlan.resolve(self.workers if workers is None else workers)
        groups = self._iter_groups(q)

        if self._resident:
            work, s = self._work, self._sq
            if wp.parallel and not batched:
                acc = process_candidate_self_join(
                    groups, wq, sq, eps2,
                    store_distances=store_distances,
                    candidate_chunk=self._chunk,
                    workers=wp,
                    drop_self=False,
                    work_right=work,
                    sq_norms_right=s,
                )
                return acc.finalize_join(q.shape[0], self.n_points, eps)
            if batched:
                acc = batched_candidate_join(
                    groups, wq, sq, work, s, eps2,
                    store_distances=store_distances,
                )
                return acc.finalize_join(q.shape[0], self.n_points, eps)

            hooks = trace_mod.current_hooks()

            def dist(members: np.ndarray, cand: np.ndarray) -> np.ndarray:
                if hooks is None:
                    return norm_expansion_sq_dists(
                        sq[members], s[cand], wq[members] @ work[cand].T
                    )
                # Timed flavor: split only at NumPy evaluation boundaries
                # so the arithmetic stays bit-identical to the one-liner.
                t0 = time.perf_counter()
                sm = sq[members]
                sc = s[cand]
                wm = wq[members]
                wc = work[cand]
                t1 = time.perf_counter()
                gram = wm @ wc.T
                t2 = time.perf_counter()
                d2 = norm_expansion_sq_dists(sm, sc, gram)
                t3 = time.perf_counter()
                hooks.record("gather", t1 - t0)
                hooks.record("gemm", t2 - t1)
                hooks.record("rz", t3 - t2)
                return d2

            acc = candidate_join(
                groups, dist, eps2,
                store_distances=store_distances,
                candidate_chunk=self._chunk,
            )
            return acc.finalize_join(q.shape[0], self.n_points, eps)

        # Source-backed (mmap/chunked) dataset: gather candidate rows on
        # demand through the hot-cell LRU; norms per gather are row-local,
        # hence bit-identical to a resident precompute.  The fork pool
        # would re-open the source per child; stay on the gather path
        # regardless of workers.
        if batched:
            view = SourceWorkView(self.source, self.dtype)
            try:
                acc = batched_candidate_join(
                    groups, wq, sq, view.work, view.sq_norms, eps2,
                    store_distances=store_distances,
                )
            finally:
                view.close()
            return acc.finalize_join(q.shape[0], self.n_points, eps)

        hooks = trace_mod.current_hooks()

        def dist(members: np.ndarray, cand: np.ndarray) -> np.ndarray:
            if hooks is None:
                wc, sc = self._gather_candidates(cand)
                return norm_expansion_sq_dists(
                    sq[members], sc, wq[members] @ wc.T
                )
            t0 = time.perf_counter()
            wc, sc = self._gather_candidates(cand)
            sm = sq[members]
            wm = wq[members]
            t1 = time.perf_counter()
            gram = wm @ wc.T
            t2 = time.perf_counter()
            d2 = norm_expansion_sq_dists(sm, sc, gram)
            t3 = time.perf_counter()
            hooks.record("gather", t1 - t0)
            hooks.record("gemm", t2 - t1)
            hooks.record("rz", t3 - t2)
            return d2

        acc = candidate_join(
            groups, dist, eps2,
            store_distances=store_distances,
            candidate_chunk=self._chunk,
        )
        return acc.finalize_join(q.shape[0], self.n_points, eps)

    # ------------------------------------------------------------------

    def _initial_reach(self, k: int) -> int:
        """Smallest probe reach expected to cover ``k`` neighbors.

        Grid indexes extrapolate the measured per-point candidate mean at
        reach 1 (``GridIndex.stats()``) by the ``((2m+1)/3)^r`` growth of
        the probe volume; trees start at 1 (their window intersection has
        no comparable closed form).
        """
        if self.kind != "grid":
            return 1
        if self._stats is None:
            self._stats = self.index.stats()
        mean = max(self._stats.mean_candidates, 1e-9)
        r = max(int(self.index.r), 1)
        reach = 1
        while (
            reach < _MAX_START_REACH
            and mean * ((2.0 * reach + 1.0) / 3.0) ** r < 4.0 * k
        ):
            reach += 1
        return reach

    def knn_query(self, queries, k: int) -> KnnResult:
        """k nearest neighbors of each query point, expanding-eps search.

        Distances are squared Euclidean in the engine's working precision;
        ties break deterministically by dataset index.  Queries resolve
        as soon as the probed reach provably covers their k-th neighbor
        (see the module docstring); the rest re-probe at double reach,
        degenerating to an exact brute pass when the probe reaches the
        whole dataset.
        """
        q = self._check_queries(queries)
        k = int(k)
        if k <= 0:
            raise ValueError("k must be positive")
        nq = q.shape[0]
        out_idx = np.full((nq, k), -1, dtype=np.int64)
        out_d = np.full((nq, k), np.inf, dtype=np.float32)
        if nq == 0 or self.n_points == 0:
            return KnnResult(k=k, n_points=self.n_points, indices=out_idx, sq_dists=out_d)
        kk = min(k, self.n_points)
        wq, sq = self._query_state(q)

        def fetch(cand: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            if self._resident:
                return self._work[cand], self._sq[cand]
            return self._gather_candidates(cand)

        hooks = trace_mod.current_hooks()
        unresolved = np.arange(nq)
        reach = self._initial_reach(kk)
        while unresolved.size:
            radius2 = float(reach * self.eps) ** 2
            still: list[np.ndarray] = []
            for members, candidates in self._iter_groups(
                q[unresolved], reach=reach
            ):
                gm = unresolved[members]  # global query rows
                if candidates.size == 0:
                    still.append(gm)
                    continue
                # Ascending candidate order: a stable distance sort
                # then breaks ties by dataset index.
                candidates = np.sort(candidates)
                best_d = np.full((gm.size, kk), np.inf)
                best_i = np.full((gm.size, kk), -1, dtype=np.int64)
                chunk = max(kk, self._chunk)
                for c0 in range(0, candidates.size, chunk):
                    cand = candidates[c0 : c0 + chunk]
                    if hooks is None:
                        wc, sc = fetch(cand)
                        d2 = norm_expansion_sq_dists(
                            sq[gm], sc, wq[gm] @ wc.T
                        ).astype(np.float64, copy=False)
                    else:
                        # Timed flavor -- same ops, same order, split at
                        # NumPy evaluation boundaries (bit-identical).
                        t0 = time.perf_counter()
                        wc, sc = fetch(cand)
                        sm = sq[gm]
                        wm = wq[gm]
                        t1 = time.perf_counter()
                        gram = wm @ wc.T
                        t2 = time.perf_counter()
                        d2 = norm_expansion_sq_dists(sm, sc, gram).astype(
                            np.float64, copy=False
                        )
                        t3 = time.perf_counter()
                        hooks.record("gather", t1 - t0)
                        hooks.record("gemm", t2 - t1)
                        hooks.record("rz", t3 - t2)
                    tm = time.perf_counter() if hooks is not None else 0.0
                    cat_d = np.concatenate([best_d, d2], axis=1)
                    cat_i = np.concatenate(
                        [best_i, np.broadcast_to(cand, d2.shape)], axis=1
                    )
                    order = np.argsort(cat_d, axis=1, kind="stable")[:, :kk]
                    rows = np.arange(gm.size)[:, None]
                    best_d = cat_d[rows, order]
                    best_i = cat_i[rows, order]
                    if hooks is not None:
                        hooks.record("commit", time.perf_counter() - tm)
                covered = candidates.size >= self.n_points
                done = covered | (best_d[:, kk - 1] <= radius2)
                sel = np.nonzero(done)[0]
                if sel.size:
                    out_idx[gm[sel], :kk] = best_i[sel]
                    out_d[gm[sel], :kk] = best_d[sel].astype(np.float32)
                if not done.all():
                    still.append(gm[~done])
            unresolved = (
                np.concatenate(still) if still else np.empty(0, np.int64)
            )
            reach *= 2
        return KnnResult(
            k=k, n_points=self.n_points, indices=out_idx, sq_dists=out_d
        )


__all__ = ["QueryEngine", "KnnResult", "brute_range_query", "sample_queries"]
