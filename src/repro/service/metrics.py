"""Thread-safe metrics registry + Prometheus text exposition.

One registry is the single source of truth for every serving-side
counter: :class:`~repro.service.server.QueryService` and
:class:`~repro.service.server.IndexCache` register their counters here
instead of keeping bare ``int`` attributes, the HTTP layer's ``GET
/metrics`` renders the registry in Prometheus text exposition format,
and ``GET /stats`` is a JSON view of the *same* registry snapshot -- the
two endpoints cannot disagree because neither holds its own state.

Design constraints:

* **Atomic snapshots.**  Every mutation and every read happens under one
  registry :class:`threading.RLock`, so :meth:`MetricsRegistry.snapshot`
  returns a *consistent* view: a counter pair like ``requests_served`` /
  ``requests_coalesced`` can never be observed torn (served incremented,
  coalesced not) the way the former bare-attribute
  ``QueryService.stats()`` could.  The lock is reentrant so an
  instrumented code path can group several increments into one atomic
  unit with ``with registry.lock: ...``.
* **Streaming histograms.**  :class:`LogHistogram` keeps HDR-style
  logarithmic buckets (fixed multiplicative growth), so latency
  quantiles come from O(buckets) integer counts -- no per-request record
  retention.  Quantiles resolve to the containing bucket's upper bound
  (the overflow bucket reports the max observed value), which makes the
  bucket math exactly testable.
* **Stdlib only.**  Rendering follows the Prometheus text format
  (``text/plain; version=0.0.4``); :func:`parse_prometheus_text` is the
  matching reader used by tests, the load generator's health check, and
  the service benchmark.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from collections import OrderedDict

__all__ = [
    "log_buckets",
    "DEFAULT_LATENCY_BUCKETS",
    "LogHistogram",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus_text",
    "PROMETHEUS_CONTENT_TYPE",
]

#: Content type the /metrics endpoint answers with.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def log_buckets(
    start: float = 1e-4, factor: float = 2.0 ** 0.5, count: int = 40
) -> tuple[float, ...]:
    """Multiplicative bucket upper bounds: ``start * factor**i``.

    The defaults span 100 us .. ~100 s at sqrt(2) growth (two buckets
    per octave, ~19% worst-case quantile error) -- the HDR-histogram
    trade: fixed relative precision, O(1) memory, no per-sample storage.
    """
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    return tuple(start * factor ** i for i in range(count))


DEFAULT_LATENCY_BUCKETS = log_buckets()

#: Batch-fill buckets: requests coalesced per dispatch (powers of two).
BATCH_FILL_BUCKETS = tuple(float(1 << i) for i in range(12))


class LogHistogram:
    """Streaming histogram over fixed bucket upper bounds.

    Standalone-usable (the load generator aggregates latencies through
    one shared instance across worker threads); inside a
    :class:`MetricsRegistry` the registry's lock is shared instead so
    histogram observations participate in atomic snapshots.
    """

    __slots__ = ("bounds", "counts", "overflow", "total", "sum", "max", "_lock")

    def __init__(
        self,
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        *,
        lock: "threading.RLock | None" = None,
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError("bounds must be a non-empty increasing sequence")
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0  # observations above the last bound (+Inf bucket)
        self.total = 0
        self.sum = 0.0
        self.max = 0.0
        self._lock = lock if lock is not None else threading.RLock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            i = bisect_left(self.bounds, value)
            if i < len(self.bounds):
                self.counts[i] += 1
            else:
                self.overflow += 1
            self.total += 1
            self.sum += value
            if value > self.max:
                self.max = value

    def quantile(self, q: float) -> float:
        """Linearly interpolated value at the ``q``-quantile.

        The rank ``q * total`` is located in its containing bucket and
        the value interpolated between that bucket's bounds assuming a
        uniform in-bucket distribution (the Prometheus
        ``histogram_quantile`` convention); returning the containing
        bucket's *upper* bound -- the previous behavior -- overstated
        mid-bucket quantiles by up to a full bucket width (p50 of a
        single 3 ms sample in a (2, 4] ms bucket read as 4 ms).
        Results are clamped to the max observed value, the overflow
        bucket resolves to that max (finite), and an empty histogram
        returns ``nan``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if self.total == 0:
                return math.nan
            rank = q * self.total
            seen = 0
            lo = 0.0
            for bound, count in zip(self.bounds, self.counts):
                if count and seen + count >= rank:
                    frac = max(0.0, rank - seen) / count
                    return min(lo + (bound - lo) * frac, self.max)
                seen += count
                lo = bound
            return self.max

    def snapshot(self) -> dict:
        """Consistent summary: count/sum/max plus p50/p95/p99."""
        with self._lock:
            return {
                "count": self.total,
                "sum": self.sum,
                "max": self.max,
                "p50": self.quantile(0.50),
                "p95": self.quantile(0.95),
                "p99": self.quantile(0.99),
            }


def _check_labels(
    label_names: tuple[str, ...], labels: dict
) -> tuple[str, ...]:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {label_names}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[k]) for k in label_names)


def _fmt_value(v: float) -> str:
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _escape_label(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_labels(label_names: tuple[str, ...], key: tuple[str, ...],
                extra: "tuple[tuple[str, str], ...]" = ()) -> str:
    pairs = list(zip(label_names, key)) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + body + "}"


class _Metric:
    """Shared bookkeeping: name, help text, declared label names."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 label_names: tuple[str, ...], lock: threading.RLock) -> None:
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self._lock = lock


class Counter(_Metric):
    """Monotonically non-decreasing counter (optionally labeled)."""

    kind = "counter"

    def __init__(self, name, help_text, label_names, lock) -> None:
        super().__init__(name, help_text, label_names, lock)
        self._values: "dict[tuple[str, ...], float]" = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _check_labels(self.label_names, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = _check_labels(self.label_names, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def _snapshot(self):
        if not self.label_names:
            return self._values.get((), 0.0)
        return {
            ",".join(f"{k}={v}" for k, v in zip(self.label_names, key)): val
            for key, val in sorted(self._values.items())
        }

    def _render(self, out: list) -> None:
        values = sorted(self._values.items()) or ([((), 0.0)] if not self.label_names else [])
        for key, val in values:
            out.append(
                f"{self.name}{_fmt_labels(self.label_names, key)} "
                f"{_fmt_value(val)}"
            )


class Gauge(_Metric):
    """Settable instantaneous value, or a callback evaluated at read time.

    Callback gauges (``fn=...``) mirror live state -- queue depth, cache
    residency, the module-level fork-recovery counter -- without the
    owner having to push updates through the registry.
    """

    kind = "gauge"

    def __init__(self, name, help_text, label_names, lock, fn=None) -> None:
        super().__init__(name, help_text, label_names, lock)
        if fn is not None and label_names:
            raise ValueError("callback gauges cannot be labeled")
        self._fn = fn
        self._values: "dict[tuple[str, ...], float]" = {}

    def set(self, value: float, **labels) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name} is callback-backed")
        key = _check_labels(self.label_names, labels)
        with self._lock:
            self._values[key] = float(value)

    def value(self, **labels) -> float:
        if self._fn is not None:
            return float(self._fn())
        key = _check_labels(self.label_names, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def _snapshot(self):
        if self._fn is not None:
            return float(self._fn())
        if not self.label_names:
            return self._values.get((), 0.0)
        return {
            ",".join(f"{k}={v}" for k, v in zip(self.label_names, key)): val
            for key, val in sorted(self._values.items())
        }

    def _render(self, out: list) -> None:
        if self._fn is not None:
            out.append(f"{self.name} {_fmt_value(float(self._fn()))}")
            return
        values = sorted(self._values.items()) or ([((), 0.0)] if not self.label_names else [])
        for key, val in values:
            out.append(
                f"{self.name}{_fmt_labels(self.label_names, key)} "
                f"{_fmt_value(val)}"
            )


class Histogram(_Metric):
    """Registry-resident histogram; one :class:`LogHistogram` per label set."""

    kind = "histogram"

    def __init__(self, name, help_text, label_names, lock,
                 buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS) -> None:
        super().__init__(name, help_text, label_names, lock)
        self.buckets = tuple(float(b) for b in buckets)
        self._children: "dict[tuple[str, ...], LogHistogram]" = {}

    def _child(self, labels: dict) -> LogHistogram:
        key = _check_labels(self.label_names, labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = LogHistogram(self.buckets, lock=self._lock)
                self._children[key] = child
            return child

    def observe(self, value: float, **labels) -> None:
        self._child(labels).observe(value)

    def quantile(self, q: float, **labels) -> float:
        key = _check_labels(self.label_names, labels)
        with self._lock:
            child = self._children.get(key)
            return child.quantile(q) if child is not None else math.nan

    def _snapshot(self):
        if not self.label_names:
            child = self._children.get(())
            return child.snapshot() if child is not None else (
                LogHistogram(self.buckets).snapshot()
            )
        return {
            ",".join(f"{k}={v}" for k, v in zip(self.label_names, key)): (
                child.snapshot()
            )
            for key, child in sorted(self._children.items())
        }

    def _render(self, out: list) -> None:
        children = sorted(self._children.items()) or (
            [((), LogHistogram(self.buckets))] if not self.label_names else []
        )
        for key, child in children:
            cumulative = 0
            for bound, count in zip(child.bounds, child.counts):
                cumulative += count
                out.append(
                    f"{self.name}_bucket"
                    f"{_fmt_labels(self.label_names, key, (('le', _fmt_value(bound)),))}"
                    f" {cumulative}"
                )
            cumulative += child.overflow
            out.append(
                f"{self.name}_bucket"
                f"{_fmt_labels(self.label_names, key, (('le', '+Inf'),))}"
                f" {cumulative}"
            )
            out.append(
                f"{self.name}_sum{_fmt_labels(self.label_names, key)} "
                f"{_fmt_value(child.sum)}"
            )
            out.append(
                f"{self.name}_count{_fmt_labels(self.label_names, key)} "
                f"{cumulative}"
            )


class MetricsRegistry:
    """Named metrics behind one reentrant lock.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create (re-asking
    for an existing name returns the same object; a kind or label
    mismatch raises), so independent components can share a registry
    without coordinating registration order.
    """

    def __init__(self) -> None:
        self.lock = threading.RLock()
        self._metrics: "OrderedDict[str, _Metric]" = OrderedDict()

    def _get_or_create(self, cls, name, help_text, label_names, **kw):
        label_names = tuple(label_names)
        with self.lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or (
                    existing.label_names != label_names
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.label_names}"
                    )
                return existing
            metric = cls(name, help_text, label_names, self.lock, **kw)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "",
                labels: tuple[str, ...] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: tuple[str, ...] = (), fn=None) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labels, fn=fn)

    def histogram(self, name: str, help_text: str = "",
                  labels: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labels, buckets=buckets
        )

    def snapshot(self) -> dict:
        """One consistent JSON-friendly view of every metric.

        Taken under the registry lock, so cross-counter invariants hold
        (``/stats`` is built from this -- the torn-read fix).
        """
        with self.lock:
            return {
                name: metric._snapshot()
                for name, metric in self._metrics.items()
            }

    def render(self) -> str:
        """Prometheus text exposition of the whole registry."""
        out: list[str] = []
        with self.lock:
            for name, metric in self._metrics.items():
                if metric.help:
                    out.append(f"# HELP {name} {metric.help}")
                out.append(f"# TYPE {name} {metric.kind}")
                metric._render(out)
        return "\n".join(out) + "\n"


def parse_prometheus_text(text: str) -> dict:
    """Parse Prometheus text exposition into ``{name: {labels: value}}``.

    ``labels`` is a tuple of sorted ``(key, value)`` pairs (``()`` for
    unlabeled samples).  Raises :class:`ValueError` on malformed sample
    lines -- tests use this as the format check itself.
    """
    samples: dict[str, dict[tuple, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            labels_raw, _, value_raw = rest.rpartition("}")
            value_raw = value_raw.strip()
            pairs = []
            for item in _split_labels(labels_raw):
                if "=" not in item:
                    raise ValueError(f"malformed label in line: {line!r}")
                k, v = item.split("=", 1)
                if not (v.startswith('"') and v.endswith('"')):
                    raise ValueError(f"unquoted label value in: {line!r}")
                pairs.append(
                    (k, v[1:-1].replace('\\"', '"').replace("\\\\", "\\"))
                )
            key = tuple(sorted(pairs))
        else:
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"malformed sample line: {line!r}")
            name, value_raw = parts
            key = ()
        name = name.strip()
        if not name or not all(
            c.isalnum() or c in "_:" for c in name
        ) or name[0].isdigit():
            raise ValueError(f"invalid metric name in line: {line!r}")
        try:
            value = float(value_raw)
        except ValueError as exc:
            raise ValueError(f"invalid sample value in: {line!r}") from exc
        samples.setdefault(name, {})[key] = value
    return samples


def _split_labels(raw: str) -> list[str]:
    """Split ``k1="v1",k2="v2"`` at commas outside quoted values."""
    items, buf, quoted, escaped = [], [], False, False
    for ch in raw:
        if escaped:
            buf.append(ch)
            escaped = False
        elif ch == "\\":
            buf.append(ch)
            escaped = True
        elif ch == '"':
            buf.append(ch)
            quoted = not quoted
        elif ch == "," and not quoted:
            items.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
    if buf:
        items.append("".join(buf))
    return [i for i in (s.strip() for s in items) if i]
