"""Query-serving subsystem: build-once / query-many over persisted indexes.

The batch layers (PRs 1-4) answer one join per invocation and rebuild
their index every time.  This package is the serving layer on top of the
same bit-exact machinery: :class:`QueryEngine` answers batched range and
kNN queries against a persisted or in-memory index
(:mod:`repro.index.persist`), :class:`IndexCache` keeps loaded indexes
hot behind an LRU, and :class:`QueryService` coalesces concurrent small
queries into single executor batches under an adaptive micro-batch
window.  Two interchangeable HTTP front ends expose it over JSON
(``python -m repro serve [--frontend thread|async]``): a keep-alive
``ThreadingHTTPServer`` and the event-loop :class:`AsyncHTTPServer`.
See the "Query serving" and "Async serving" sections of
docs/ARCHITECTURE.md.
"""

from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.metrics import (
    LogHistogram,
    MetricsRegistry,
    log_buckets,
    parse_prometheus_text,
)
from repro.service.query import (
    KnnResult,
    QueryEngine,
    brute_range_query,
    sample_queries,
)
from repro.service.server import (
    AdaptiveWindow,
    AsyncHTTPServer,
    DeadlineExceeded,
    IndexCache,
    QueryService,
    ServiceError,
    ServiceOverloaded,
    ServiceShuttingDown,
    make_server,
    run_self_test,
)

__all__ = [
    "QueryEngine",
    "KnnResult",
    "brute_range_query",
    "sample_queries",
    "AdaptiveWindow",
    "AsyncHTTPServer",
    "IndexCache",
    "QueryService",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceShuttingDown",
    "DeadlineExceeded",
    "ServiceClient",
    "ServiceUnavailable",
    "make_server",
    "run_self_test",
    "MetricsRegistry",
    "LogHistogram",
    "log_buckets",
    "parse_prometheus_text",
]
