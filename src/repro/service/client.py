"""Retrying JSON-over-HTTP client for the query server.

The server rejects fast under pressure (429 + ``Retry-After`` from
admission control, 503 while draining) -- which only yields a usable
system if clients *absorb* those rejections instead of surfacing every
transient refusal.  :class:`ServiceClient` is that absorber: a
stdlib-only (``http.client``) wrapper that retries 429/503 responses and
connection-level failures with **capped exponential backoff + full
jitter**, honoring the server's ``Retry-After`` hint when present.
Anything else -- 400s, 404s, a 200 with a mismatched payload -- is the
caller's problem and surfaces immediately; retrying a malformed request
would just fail again.

Used by ``python -m repro query --server`` and by the serve self-test
(:func:`~repro.service.server.run_self_test`), which CI runs with
dispatch-delay faults armed and a tiny admission queue precisely so this
retry path is exercised against real 429s.
"""

from __future__ import annotations

import http.client
import json
import random
import time


class ServiceUnavailable(RuntimeError):
    """The server kept refusing (or the connection kept failing) past
    ``max_attempts``; the last status/error is in the message."""


#: HTTP statuses worth retrying: admission rejection and drain refusal.
RETRYABLE_STATUSES = (429, 503)


class ServiceClient:
    """JSON client with capped exponential backoff + jitter.

    Parameters
    ----------
    host, port:
        The running query server (see
        :func:`~repro.service.server.make_server`).
    timeout:
        Per-attempt socket timeout in seconds.
    max_attempts:
        Total tries per request before :class:`ServiceUnavailable`.
    base_delay_s, max_delay_s:
        Backoff schedule: attempt ``a`` sleeps ``uniform(0, min(max_delay,
        base * 2**a))`` (full jitter -- concurrent retriers decorrelate
        instead of stampeding in lockstep).  A ``Retry-After`` response
        header overrides the lower bound, capped at ``max_delay_s``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8787,
        *,
        timeout: float = 30.0,
        max_attempts: int = 5,
        base_delay_s: float = 0.02,
        max_delay_s: float = 1.0,
        seed: int | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.max_attempts = int(max_attempts)
        self.base_delay_s = float(base_delay_s)
        self.max_delay_s = float(max_delay_s)
        self._rng = random.Random(seed)
        self._conn: http.client.HTTPConnection | None = None
        #: Requests already served on the live connection (keep-alive
        #: reuse depth; resets whenever the connection is replaced).
        self._conn_uses = 0
        #: Count of retried attempts (429/503/connection errors absorbed).
        self.retries = 0
        #: The ``X-Request-Id`` the server echoed on the last response
        #: (== the server-side trace id; quote it to ``/trace/<id>``).
        self.last_request_id: "str | None" = None

    # -- plumbing -------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._conn_uses = 0
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
            self._conn_uses = 0

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _backoff(self, attempt: int, retry_after: float | None) -> None:
        ceiling = min(self.max_delay_s, self.base_delay_s * (2 ** attempt))
        delay = self._rng.uniform(0.0, ceiling)
        if retry_after is not None:
            delay = max(delay, min(float(retry_after), self.max_delay_s))
        time.sleep(delay)

    def request_once(self, method: str, path: str,
                     payload: dict | None = None):
        """One attempt, **no** retries: ``(status, body, retry_after)``.

        The load generator uses this to *count* every 429/503 the
        admission layer emits instead of absorbing them the way
        :meth:`request` does -- a generator that silently retried would
        measure the post-backoff world and hide the saturation knee.
        The body is parsed JSON when the response says it is JSON, the
        raw decoded text otherwise (``/metrics`` is Prometheus text).
        Connection-level failures propagate (the stale connection is
        dropped first so the next call starts clean) -- with one
        exception: a *reused* keep-alive connection the server quietly
        closed between requests (idle timeout, restart) gets one
        transparent reconnect, since the failure says nothing about the
        request itself.  A failure on a fresh connection still raises.
        """
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload)
            headers["Content-Type"] = "application/json"
        for _ in range(2):
            reused = self._conn is not None and self._conn_uses > 0
            try:
                conn = self._connection()
                conn.request(method, path, body, headers)
                resp = conn.getresponse()
                break
            except (
                http.client.RemoteDisconnected,
                ConnectionResetError,
                BrokenPipeError,
            ):
                self.close()
                if not reused:
                    raise
                # Stale keep-alive socket: retry once on a fresh one.
            except (OSError, http.client.HTTPException):
                self.close()
                raise
        try:
            raw = resp.read()
            status = resp.status
            retry_after = resp.getheader("Retry-After")
            content_type = resp.getheader("Content-Type") or ""
            self.last_request_id = resp.getheader("X-Request-Id")
        except (OSError, http.client.HTTPException):
            self.close()
            raise
        self._conn_uses += 1
        if "application/json" in content_type:
            parsed = json.loads(raw) if raw else {}
        else:
            parsed = raw.decode()
        return status, parsed, (
            float(retry_after) if retry_after is not None else None
        )

    def metrics_text(self) -> str:
        """``GET /metrics``: the Prometheus text exposition, unparsed."""
        status, body, _ = self.request_once("GET", "/metrics")
        if status != 200:
            raise RuntimeError(f"/metrics returned HTTP {status}")
        return body if isinstance(body, str) else json.dumps(body)

    def request(self, method: str, path: str, payload: dict | None = None):
        """One JSON request with retries; returns ``(status, body_dict)``.

        Retries 429/503 and connection-level errors up to
        ``max_attempts``; every other status returns to the caller
        as-is (the body is parsed JSON, ``{}`` on an empty body).
        """
        last = "no attempt made"
        for attempt in range(self.max_attempts):
            retry_after = None
            try:
                status, parsed, retry_after = self.request_once(
                    method, path, payload
                )
            except (OSError, http.client.HTTPException) as exc:
                # Connection refused/reset, timeouts, protocol hiccups:
                # the connection was dropped; retry on a fresh one.
                last = f"connection error: {exc!r}"
            else:
                if status not in RETRYABLE_STATUSES:
                    return status, parsed
                last = f"HTTP {status}: {str(parsed)[:200]!r}"
            if attempt + 1 < self.max_attempts:
                self.retries += 1
                self._backoff(attempt, retry_after)
        raise ServiceUnavailable(
            f"{method} {path} failed after {self.max_attempts} attempts "
            f"(last: {last})"
        )

    def _query(self, path: str, payload: dict) -> dict:
        status, parsed = self.request("POST", path, payload)
        if status != 200:
            raise RuntimeError(
                f"{path} returned HTTP {status}: "
                f"{parsed.get('error', parsed)}"
            )
        return parsed

    # -- API ------------------------------------------------------------

    def range_query(
        self, queries, *, index: str = "default", eps: float | None = None
    ) -> dict:
        """``POST /range``; returns the grouped-neighbor JSON payload."""
        payload: dict = {"index": index, "queries": queries}
        if eps is not None:
            payload["eps"] = float(eps)
        return self._query("/range", payload)

    def knn_query(self, queries, k: int, *, index: str = "default") -> dict:
        """``POST /knn``; returns the indices/sq_dists JSON payload."""
        return self._query(
            "/knn", {"index": index, "queries": queries, "k": int(k)}
        )

    def append(self, rows, *, index: str = "default") -> list:
        """``POST /append`` to a mutable index; returns the minted ids."""
        return self._query("/append", {"index": index, "rows": rows})["ids"]

    def delete(self, ids, *, index: str = "default") -> int:
        """``POST /delete``; returns how many rows were tombstoned."""
        return int(
            self._query("/delete", {"index": index, "ids": list(ids)})[
                "deleted"
            ]
        )

    def compact(self, *, index: str = "default") -> dict:
        """``POST /compact``; returns the compaction summary.

        A compaction already in flight answers 429, which the retry
        loop absorbs like any other admission rejection.
        """
        return self._query("/compact", {"index": index})

    def healthz(self) -> dict:
        """``GET /healthz`` (note: 503-while-draining is retried --
        use :meth:`request` directly to observe the draining state)."""
        status, parsed = self.request("GET", "/healthz")
        return parsed

    def stats(self) -> dict:
        status, parsed = self.request("GET", "/stats")
        if status != 200:
            raise RuntimeError(f"/stats returned HTTP {status}")
        return parsed


__all__ = ["ServiceClient", "ServiceUnavailable", "RETRYABLE_STATUSES"]
