"""Calibrated micro-architectural constants of the timing model.

The simulator's structural parameters (tile sizes, bandwidths, peak rates)
come straight from the paper and the A100 datasheet.  A small number of
latency/efficiency constants cannot be derived from first principles --
they summarize effects like instruction-issue contention, pipeline-commit
synchronization and the per-tile serialized latency chain (queue pop,
pipeline drain, epilogue dependency, result flush).  They were fitted once
against the paper's published measurements (Figure 8/9 throughput curves,
Table 5 ablations, Table 6 profiler counters) and are recorded here with
their provenance; ``benchmarks/bench_fig9_brute_tc.py`` prints model-vs-
paper numbers so drift is visible.

None of these constants depend on the dataset -- they are properties of the
kernel/GPU pair -- so fitting them to the paper's synthetic-throughput
experiments and then *predicting* the real-dataset experiments (Figure 10)
is the legitimate train/test split.
"""

from __future__ import annotations

#: Warp instruction-issue cycles per 128x128x64 k-chunk per block
#: (mma.sync + ldmatrix + loop bookkeeping competing for the schedulers).
ISSUE_CYCLES_PER_CHUNK = 120.0

#: ldmatrix delivers one 128 B conflict-free transaction per cycle per SM;
#: this is the per-SM byte/cycle capacity of the shared-memory load path.
LDMATRIX_BYTES_PER_CYCLE_PER_SM = 128.0

#: Per-tile serialized latency: work-queue atomic pop, pipeline drain/fill
#: latency chains, epilogue dependency chain and result-write flush.  Mostly
#: hidden by the co-resident block's compute when there is enough of it
#: (see ``fasted._exposed_tile_latency``); fully exposed at low d.
TILE_LATENCY_CYCLES = 33000.0

#: Fraction of a co-resident block's busy cycles that can hide tile latency.
TILE_LATENCY_HIDE = 0.9

#: Floor of exposed per-tile latency even with perfect hiding (queue pop +
#: barrier + epilogue issue).
TILE_LATENCY_MIN_CYCLES = 2000.0

#: Epilogue compute: recombine 128x128 distances with the point norms,
#: compare against eps^2 and compact the matching pairs.
EPILOGUE_CYCLES = 4200.0

#: Fraction of shared-memory conflict replays that the warp schedulers fail
#: to hide behind tensor-core work (applies when the swizzle is disabled).
CONFLICT_EXPOSURE = 0.13

#: Exposed ldmatrix->mma dependency latency per MMA when the warp tile is
#: disabled and operands cannot be reused from registers (cycles).
NO_WARP_TILE_STALL_PER_MMA = 54.0

#: Shared-memory traffic multiplier without the warp tile: every MMA
#: reloads its full A and B fragments instead of reusing them 8x / 4x.
NO_WARP_TILE_SMEM_FACTOR = 6.0

#: Global/L2 traffic multiplier when the block tile (shared SMEM staging
#: across the 4 warps) is disabled; below the naive 4x because concurrent
#: warp requests to the same lines partially coalesce in L2.
NO_BLOCK_TILE_TRAFFIC_FACTOR = 2.9

#: Fixed kernel-side overhead per launch: driver launch, norms kernel
#: dispatch, work-queue initialization and result-buffer setup (seconds).
#: Dominates the sub-millisecond kernels of Figure 8's small-|D| rows.
FIXED_KERNEL_OVERHEAD_S = 300e-6
