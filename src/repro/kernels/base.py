"""Shared infrastructure for the four modeled GPU implementations.

Each implementation (FaSTED, TED-Join x2, GDS-Join, MiSTIC) provides:

* a **functional** path that computes the actual self-join result on real
  data (NumPy, with the precision semantics of the implementation), and
* a **timing** path that models its end-to-end response time on the
  simulated GPU, matching the paper's measurement methodology
  (Section 4.1.1): *all* overheads are included -- host<->device transfers,
  index construction, kernel time, and storing the result set in host
  memory.

This module holds the pieces common to all of them: the response-time
breakdown container and the transfer/result-storage cost helpers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.spec import GpuSpec

#: Host memory store bandwidth for materializing result pairs (B/s).
HOST_STORE_BANDWIDTH = 12e9

#: Fixed per-launch overhead (driver + launch + sync), seconds.
LAUNCH_OVERHEAD_S = 20e-6

#: Bytes per result pair on the device->host path (two int32 indices).
PAIR_BYTES = 8


@dataclass(frozen=True)
class ResponseTime:
    """End-to-end response-time breakdown (seconds).

    Mirrors the paper's "total end-to-end response time ... includes all
    associated overheads for each method (e.g., index construction and
    transferring data to/from the GPU)" (Figure 10 caption).
    """

    h2d_s: float
    index_build_s: float
    kernel_s: float
    d2h_s: float
    host_store_s: float
    overhead_s: float

    @property
    def total_s(self) -> float:
        return (
            self.h2d_s
            + self.index_build_s
            + self.kernel_s
            + self.d2h_s
            + self.host_store_s
            + self.overhead_s
        )


def h2d_seconds(spec: GpuSpec, n_points: int, dims: int, elem_bytes: int) -> float:
    """Host-to-device transfer time for the dataset."""
    return n_points * dims * elem_bytes / spec.pcie_bandwidth + LAUNCH_OVERHEAD_S


def result_transfer_seconds(
    spec: GpuSpec, n_pairs: int, *, batch_bytes: int = 16 * 10**9
) -> tuple[float, float]:
    """(device->host, host store) time for ``n_pairs`` result pairs.

    Result sets larger than ``batch_bytes`` are moved in batches with one
    launch/sync overhead each, the way GDS-Join/MiSTIC batch their output
    (paper Section 4.1.2).
    """
    bytes_total = n_pairs * PAIR_BYTES
    n_batches = max(1, -(-bytes_total // batch_bytes))
    d2h = bytes_total / spec.pcie_bandwidth + n_batches * LAUNCH_OVERHEAD_S
    store = bytes_total / HOST_STORE_BANDWIDTH
    return d2h, store
