"""CUDA-core (non-tensor) cost model shared by GDS-Join and MiSTIC.

Both baselines compute candidate distances on FP32 CUDA cores with
**short-circuiting**: the running squared-distance sum is compared against
``eps^2`` after every dimension and the loop aborts once it is exceeded
(paper Section 4.1.2).  Combined with variance-ordered coordinates this
means non-neighbors usually touch only a small prefix of the dimensions --
the quantity that makes index-supported methods competitive at all.

The short-circuit profile is *measured on the actual data*: we sample
candidate pairs, accumulate squared differences in variance order and
record where each pair would abort.  The timing model then charges

    work = sum(candidates) x d x mean_computed_fraction x OPS_PER_DIM

FLOPs at an effective fraction of the FP32 peak; the effective fraction is
a per-algorithm calibration constant covering divergence, gather-pattern
memory behaviour and load (im)balance -- the structural reasons the paper
cites for why these kernels cannot approach peak.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.pipeline import PipelineConfig
from repro.gpusim.spec import GpuSpec
from repro.gpusim.timing import KernelCost, ResourceDemand

#: FLOPs per dimension of one distance computation (sub, FMA).
OPS_PER_DIM = 3.0


@dataclass(frozen=True)
class ShortCircuitProfile:
    """Measured early-abort behaviour of candidate distance computations.

    ``mean_fraction`` is the per-*pair* average abort depth; ``warp_fraction``
    is the per-*warp* average of the worst lane, which is what the hardware
    actually pays: the 32 lanes of a warp advance in lock-step, so a warp's
    distance loop runs until its slowest pair aborts (one surviving neighbor
    forces all 32 lanes through the full depth).  This intra-warp load
    imbalance is precisely the effect the GDS-Join/MiSTIC papers engineer
    against, and it dominates at small radii where most pairs abort early.
    """

    mean_fraction: float  # mean fraction of dimensions actually computed
    warp_fraction: float  # mean over warps of the max lane fraction
    neighbor_fraction: float  # fraction of candidate pairs that are neighbors

    @property
    def effective_dims_factor(self) -> float:
        return self.warp_fraction


def short_circuit_profile(
    data: np.ndarray,
    eps: float,
    candidate_pairs: tuple[np.ndarray, np.ndarray],
    *,
    order: np.ndarray | None = None,
    max_pairs: int = 20000,
    seed: int = 0,
) -> ShortCircuitProfile:
    """Measure the short-circuit profile on sampled candidate pairs.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset (the precision of the baseline is irrelevant for
        the *profile*; float64 is used for stability).
    eps:
        Search radius.
    candidate_pairs:
        ``(i_idx, j_idx)`` arrays of candidate pairs produced by an index.
    order:
        Coordinate evaluation order (variance order when the algorithm
        reorders dimensions; identity otherwise).
    max_pairs:
        Sample size cap; pairs are subsampled uniformly beyond it.
    """
    data = np.asarray(data, dtype=np.float64)
    n, d = data.shape
    ii, jj = candidate_pairs
    ii = np.asarray(ii)
    jj = np.asarray(jj)
    if ii.size == 0:
        return ShortCircuitProfile(
            mean_fraction=1.0, warp_fraction=1.0, neighbor_fraction=0.0
        )
    if ii.size > max_pairs:
        rng = np.random.default_rng(seed)
        pick = rng.choice(ii.size, size=max_pairs, replace=False)
        ii, jj = ii[pick], jj[pick]
    if order is None:
        order = np.arange(d)
    diffs = data[ii][:, order] - data[jj][:, order]
    cum = np.cumsum(diffs * diffs, axis=1)
    eps2 = eps * eps
    exceeded = cum > eps2
    # First dimension index at which the pair aborts; d when it never does.
    first = np.where(
        exceeded.any(axis=1), np.argmax(exceeded, axis=1) + 1, d
    ).astype(np.float64)
    neighbors = ~exceeded[:, -1]
    # Warp cost: the max abort depth over each group of 32 consecutive
    # sampled pairs (candidates of a point are processed consecutively by a
    # warp's lanes, so consecutive grouping is the realistic pairing).
    n_warps = first.size // 32
    if n_warps >= 1:
        warp_max = first[: n_warps * 32].reshape(n_warps, 32).max(axis=1)
        warp_fraction = float(warp_max.mean() / d)
    else:
        warp_fraction = float(first.max() / d)
    return ShortCircuitProfile(
        mean_fraction=float(first.mean() / d),
        warp_fraction=warp_fraction,
        neighbor_fraction=float(neighbors.mean()),
    )


def cuda_kernel_seconds(
    spec: GpuSpec,
    total_candidates: float,
    dims: int,
    profile: ShortCircuitProfile,
    efficiency: float,
) -> float:
    """Kernel time of a short-circuiting CUDA-core distance pass."""
    if efficiency <= 0:
        raise ValueError("efficiency must be positive")
    work = total_candidates * dims * profile.effective_dims_factor * OPS_PER_DIM
    return work / (spec.fp32_cuda_flops * efficiency)


def cuda_candidate_cost(
    spec: GpuSpec,
    dims: int,
    *,
    total_candidates: int,
    profile: ShortCircuitProfile,
    efficiency: float,
    elem_bytes: int,
) -> KernelCost:
    """Measured-work :class:`KernelCost` of a short-circuiting candidate pass.

    The candidate kernels (GDS-Join, MiSTIC) have no standalone tile
    geometry to model -- the functional run *is* the work inventory.
    ``n_tiles`` is the number of 32-lane warp work units over the
    candidate pairs the executor actually evaluated, ``chunks_per_tile``
    the short-circuit-weighted dimension depth, both taken from the same
    measured statistics the kernels' ``response_time`` charges -- modeled
    and executed work agree by construction (the candidate-kernel
    analogue of the tiled kernels' shared ``TilePlan``).
    """
    warps = max(1, -(-int(total_candidates) // 32))
    depth = max(1, int(round(dims * profile.effective_dims_factor)))
    rate = (
        spec.fp32_cuda_flops * efficiency / spec.boost_clock_hz / spec.sm_count
    )
    demand = ResourceDemand(
        tc_cycles=32 * OPS_PER_DIM / rate,
        smem_load_cycles=0.0,
        issue_cycles=0.0,
        gmem_bytes=32 * elem_bytes,  # one gathered dim per lane
        smem_store_bytes=0.0,
    )
    return KernelCost(
        n_tiles=warps,
        chunks_per_tile=depth,
        demand=demand,
        epilogue_cycles=0.0,
        pipeline=PipelineConfig(async_copy=False, depth=1),
        grid_blocks=spec.sm_count,
        blocks_per_sm=1,
        l2_hit_rate=0.5,
    )


def grid_build_seconds(spec: GpuSpec, n_points: int, n_dims_indexed: int) -> float:
    """GPU grid-index construction: project, hash, sort, mark boundaries."""
    key_ops = n_points * max(1.0, np.log2(max(n_points, 2)))
    project_ops = n_points * n_dims_indexed * 2.0
    sort_rate = 2.0e9  # keys/s for a GPU radix sort of this key width
    return key_ops / (sort_rate * np.log2(max(n_points, 2))) + project_ops / (
        spec.fp32_cuda_flops * 0.05
    ) + 200e-6
