"""MiSTIC: multi-space-tree indexed CUDA-core self-join (paper Section 2.6).

Functionally identical output to GDS-Join (FP32 distances over a candidate
set), but the candidate set comes from the incrementally constructed
multi-space tree (:class:`repro.index.mstree.MultiSpaceTree`), whose
combined coordinate + metric pruning yields fewer candidates, and whose
better load-balance properties the paper credits for beating GDS-Join --
captured here as a higher effective-efficiency constant, while the
incremental construction's extra work is charged to index-build time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import (
    SourceWorkView,
    StreamStats,
    TilePlan,
    WorkerPlan,
    auto_batched_from_stats,
    batch_params_from_stats,
    batched_candidate_self_join,
    candidate_join,
    candidate_self_join,
    norm_expansion_sq_dists,
    process_candidate_self_join,
)
from repro.core.results import JoinResult, NeighborResult
from repro.gpusim.spec import DEFAULT_SPEC, GpuSpec
from repro.index.mstree import MultiSpaceTree
from repro.kernels.base import (
    LAUNCH_OVERHEAD_S,
    ResponseTime,
    h2d_seconds,
    result_transfer_seconds,
)
from repro.gpusim.timing import KernelCost
from repro.kernels.cudacore import (
    ShortCircuitProfile,
    cuda_candidate_cost,
    cuda_kernel_seconds,
    short_circuit_profile,
)

#: Effective fraction of FP32 peak; higher than GDS-Join's because of the
#: tree's superior intra-/inter-warp load balance (paper Section 2.6).
MISTIC_EFFICIENCY = 0.085

#: Paper configuration: 6 levels, 38 candidate partitions per level.
MISTIC_LEVELS = 6
MISTIC_CANDIDATES = 38


@dataclass
class MisticResult:
    """Functional result plus the statistics the timing model consumes."""

    result: NeighborResult
    total_candidates: int
    profile: ShortCircuitProfile
    construction_evaluations: int


class MisticKernel:
    """MiSTIC on the simulated GPU (FP32 CUDA cores)."""

    def __init__(self, spec: GpuSpec = DEFAULT_SPEC, *, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed

    def self_join(
        self,
        data: np.ndarray,
        eps: float,
        *,
        store_distances: bool = True,
        group: int = 512,
        batched: bool | None = None,
        workers: "int | str | WorkerPlan | None" = 0,
    ) -> MisticResult:
        """Index-supported self-join; returns result + cost statistics.

        ``batched`` fuses small tree groups into padded batch GEMMs
        (:func:`repro.core.engine.batched_candidate_self_join`) -- same
        pair set, faster when ``group`` is small or eps prunes hard;
        ``None`` (the default) resolves from the tree's measured
        group-shape moments
        (:func:`repro.core.engine.auto_batched_from_stats` over
        ``MultiSpaceTree.stats``).  ``workers`` fans the tree groups out
        to the engine's process pool
        (:func:`repro.core.engine.process_candidate_self_join`;
        in-order commit, bit-identical to serial -- pair-set-equal when
        combined with ``batched``).
        """
        data = np.ascontiguousarray(data, dtype=np.float64)
        n = data.shape[0]
        wp = WorkerPlan.resolve(workers)
        tree = MultiSpaceTree(
            data, eps, n_levels=MISTIC_LEVELS, n_candidates=MISTIC_CANDIDATES,
            seed=self.seed,
        )
        if batched is None:
            batched = auto_batched_from_stats(tree.stats(group=group))
        work = data.astype(np.float32)
        eps2 = np.float32(float(eps) ** 2)

        sq_norms = np.einsum("nd,nd->n", work, work)

        if wp.parallel:
            acc = process_candidate_self_join(
                tree.iter_groups(group=group),
                work,
                sq_norms,
                eps2,
                store_distances=store_distances,
                workers=wp,
                batched=batched,
            )
        elif batched:
            acc = batched_candidate_self_join(
                tree.iter_groups(group=group),
                work,
                sq_norms,
                eps2,
                store_distances=store_distances,
                **batch_params_from_stats(tree.stats(group=group)),
            )
        else:

            def dist(members: np.ndarray, candidates: np.ndarray) -> np.ndarray:
                # Norm-expansion distances (see gdsjoin.py for the precision
                # argument); BLAS-backed, so group size only bounds memory.
                return norm_expansion_sq_dists(
                    sq_norms[members],
                    sq_norms[candidates],
                    work[members] @ work[candidates].T,
                )

            acc = candidate_self_join(
                tree.iter_groups(group=group),
                dist,
                eps2,
                store_distances=store_distances,
            )
        result = acc.finalize(n, float(eps))
        total_candidates = tree.total_candidates()
        rng = np.random.default_rng(self.seed)
        qi = rng.integers(0, n, size=min(n, 256))
        cand_i, cand_j = [], []
        for q in qi[:64]:
            cm = np.nonzero(tree.candidate_mask_for(int(q)))[0]
            cand_i.append(np.full(cm.size, q))
            cand_j.append(cm)
        profile = short_circuit_profile(
            data,
            eps,
            (
                np.concatenate(cand_i) if cand_i else np.empty(0, np.int64),
                np.concatenate(cand_j) if cand_j else np.empty(0, np.int64),
            ),
        )
        return MisticResult(
            result=result,
            total_candidates=total_candidates,
            profile=profile,
            construction_evaluations=tree.construction_evaluations,
        )

    def self_join_source(
        self,
        source,
        eps: float,
        *,
        store_distances: bool = True,
        group: int = 512,
        row_block: int = 65536,
        memory_budget_bytes: int | None = None,
        batched: bool | None = None,
        batch_params: dict | None = None,
    ) -> tuple[MisticResult, StreamStats]:
        """Self-join against a source: streamed tree build + row gathers.

        The multi-space tree is built out of core
        (``MultiSpaceTree.from_source``: every candidate-partition
        evaluation is one streamed pass, which *is* MiSTIC's incremental
        construction cost) and the candidate executor gathers group rows
        on demand with ``source.take``; per-row FP32 conversion and norms
        match the in-memory precompute bit for bit, so the result is
        bit-identical to :meth:`self_join` on the materialized data
        (pinned by tests/test_two_source.py).  ``batched=True`` fuses
        small groups into padded batch GEMMs with the ``take()`` gathers
        batched per flush (:class:`~repro.core.engine.SourceWorkView`,
        einsum norms matching this kernel's precompute; pair-set
        contract).  The batch knobs are derived from the tree's measured
        group-shape moments (``MultiSpaceTree.stats`` ->
        :func:`~repro.core.engine.batch_params_from_stats`, the same
        sizing contract the grid index uses); ``batch_params`` entries
        override individual derived knobs.
        """
        from repro.data.source import as_source

        source = as_source(source)
        n, d = int(source.n), int(source.dim)
        if memory_budget_bytes is not None:
            row_block = TilePlan.from_budget(n, d, int(memory_budget_bytes)).row_block
        stats = StreamStats(plan=TilePlan(n=n, row_block=row_block))
        tree = MultiSpaceTree.from_source(
            source, eps, n_levels=MISTIC_LEVELS, n_candidates=MISTIC_CANDIDATES,
            seed=self.seed, row_block=row_block, stats=stats,
        )
        if batched is None:
            batched = auto_batched_from_stats(tree.stats(group=group))
        eps2 = np.float32(float(eps) ** 2)

        if batched:
            view = SourceWorkView(source, np.float32, norm="einsum", stats=stats)
            try:
                acc = batched_candidate_self_join(
                    tree.iter_groups(group=group),
                    view.work,
                    view.sq_norms,
                    eps2,
                    store_distances=store_distances,
                    **batch_params_from_stats(
                        tree.stats(group=group), **(batch_params or {})
                    ),
                )
            finally:
                view.close()
        else:

            def dist(members: np.ndarray, candidates: np.ndarray) -> np.ndarray:
                wm = source.take(members).astype(np.float32)
                wc = source.take(candidates).astype(np.float32)
                stats._acquire(wm.nbytes + wc.nbytes)
                try:
                    return norm_expansion_sq_dists(
                        np.einsum("nd,nd->n", wm, wm),
                        np.einsum("nd,nd->n", wc, wc),
                        wm @ wc.T,
                    )
                finally:
                    stats._release(wm.nbytes + wc.nbytes)

            acc = candidate_self_join(
                tree.iter_groups(group=group),
                dist,
                eps2,
                store_distances=store_distances,
            )
        result = acc.finalize(n, float(eps))
        total_candidates = tree.total_candidates()
        rng = np.random.default_rng(self.seed)
        qi = rng.integers(0, n, size=min(n, 256))
        cand_i, cand_j = [], []
        for q in qi[:64]:
            cm = np.nonzero(tree.candidate_mask_for(int(q)))[0]
            cand_i.append(np.full(cm.size, q))
            cand_j.append(cm)
        si = np.concatenate(cand_i) if cand_i else np.empty(0, np.int64)
        sj = np.concatenate(cand_j) if cand_j else np.empty(0, np.int64)
        # Compact the sampled pair indices so the profile gathers only the
        # sampled rows, never the dataset.
        uniq, inv = np.unique(np.concatenate((si, sj)), return_inverse=True)
        profile = short_circuit_profile(
            source.take(uniq), eps, (inv[: si.size], inv[si.size :])
        )
        return (
            MisticResult(
                result=result,
                total_candidates=total_candidates,
                profile=profile,
                construction_evaluations=tree.construction_evaluations,
            ),
            stats,
        )

    def join(
        self,
        a: np.ndarray,
        b: np.ndarray,
        eps: float,
        *,
        store_distances: bool = True,
        group: int = 512,
        workers: "int | str | WorkerPlan | None" = 0,
    ) -> JoinResult:
        """Two-source tree join: pairs ``(i in A, j in B)`` within ``eps``.

        The tree indexes **B**; blocks of A's points are binned per level
        (``MultiSpaceTree.iter_join_groups`` -- coordinate floor-divides
        plus pivot rings, both valid for external points) and evaluated
        against the +-1 window candidates by the two-source candidate
        executor, fanned out to the process pool when ``workers`` asks
        for one (bit-identical, in-order commit).  Functional path only;
        timing stays self-join-scoped.
        """
        a = np.ascontiguousarray(a, dtype=np.float64)
        b = np.ascontiguousarray(b, dtype=np.float64)
        if a.shape[1] != b.shape[1]:
            raise ValueError("A and B dimensionalities must match")
        wp = WorkerPlan.resolve(workers)
        tree = MultiSpaceTree(
            b, eps, n_levels=MISTIC_LEVELS, n_candidates=MISTIC_CANDIDATES,
            seed=self.seed,
        )
        wa = a.astype(np.float32)
        wb = b.astype(np.float32)
        sa = np.einsum("nd,nd->n", wa, wa)
        sb = np.einsum("nd,nd->n", wb, wb)
        eps2 = np.float32(float(eps) ** 2)

        if wp.parallel:
            acc = process_candidate_self_join(
                tree.iter_join_groups(a, group=group),
                wa,
                sa,
                eps2,
                store_distances=store_distances,
                workers=wp,
                drop_self=False,
                work_right=wb,
                sq_norms_right=sb,
            )
            return acc.finalize_join(a.shape[0], b.shape[0], float(eps))

        def dist(members: np.ndarray, candidates: np.ndarray) -> np.ndarray:
            return norm_expansion_sq_dists(
                sa[members], sb[candidates], wa[members] @ wb[candidates].T
            )

        acc = candidate_join(
            tree.iter_join_groups(a, group=group),
            dist,
            eps2,
            store_distances=store_distances,
        )
        return acc.finalize_join(a.shape[0], b.shape[0], float(eps))

    def cost(
        self, d: int, *, total_candidates: int, profile: ShortCircuitProfile
    ) -> KernelCost:
        """Measured-work cost view of the CUDA-core candidate pass.

        Built by :func:`repro.kernels.cudacore.cuda_candidate_cost` (the
        construction shared with GDS-Join) from the same measured
        statistics :meth:`response_time` charges, so modeled and executed
        work agree by construction.
        """
        return cuda_candidate_cost(
            self.spec, d,
            total_candidates=total_candidates,
            profile=profile,
            efficiency=MISTIC_EFFICIENCY,
            elem_bytes=4,  # FP32 lanes
        )

    def response_time(
        self,
        n: int,
        d: int,
        *,
        total_candidates: int,
        profile: ShortCircuitProfile,
        n_result_pairs: int,
        construction_evaluations: int = MISTIC_LEVELS * MISTIC_CANDIDATES,
    ) -> ResponseTime:
        """End-to-end response time from measured join statistics.

        Incremental construction evaluates ``construction_evaluations``
        candidate partitions, each a full pass over the dataset (pivot
        distances or bin projection) -- the "incremental index construction"
        cost the MiSTIC paper accepts in exchange for better pruning.
        """
        build_work = construction_evaluations * n * d * 2.0
        build = build_work / (self.spec.fp32_cuda_flops * 0.25) + 8 * LAUNCH_OVERHEAD_S
        kernel = cuda_kernel_seconds(
            self.spec, total_candidates, d, profile, MISTIC_EFFICIENCY
        )
        d2h, store = result_transfer_seconds(self.spec, n_result_pairs)
        return ResponseTime(
            h2d_s=h2d_seconds(self.spec, n, d, 4),
            index_build_s=build,
            kernel_s=kernel,
            d2h_s=d2h,
            host_store_s=store,
            overhead_s=LAUNCH_OVERHEAD_S,
        )
